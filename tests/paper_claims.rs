//! The paper's headline claims, asserted end to end through the facade.
//!
//! Each test names the claim and where the paper makes it. These are the
//! "shape" checks DESIGN.md §4 commits to: who wins, by roughly what
//! factor, and where the crossovers fall.

use figlut::model::config::by_name;
use figlut::model::workload::decode_workload;
use figlut::prelude::*;
use figlut::sim::lutcost::{lut_power, optimal_k, LutKind};

fn tops_per_w(e: SimEngine, q: f64) -> f64 {
    let tech = Tech::cmos28();
    let wl = decode_workload(by_name("OPT-6.7B").unwrap(), 32);
    evaluate(&tech, &EngineSpec::paper(e, FpFormat::Fp16), &wl, q).tops_per_w()
}

#[test]
fn abstract_59_percent_higher_tops_per_w_at_3bit() {
    // "For the same 3-bit weight precision, FIGLUT demonstrates 59% higher
    // TOPS/W … than state-of-the-art accelerator design [FIGNA]."
    let gain = tops_per_w(SimEngine::FiglutI, 3.0) / tops_per_w(SimEngine::Figna, 3.0);
    assert!(
        (1.4..2.3).contains(&gain),
        "Q3 gain {gain}, paper reports 1.59x"
    );
}

#[test]
fn abstract_98_percent_higher_at_q24() {
    // "When targeting the same perplexity, FIGLUT achieves 98% higher
    // TOPS/W by performing 2.4-bit operations" (vs FIGNA-Q3).
    let gain = tops_per_w(SimEngine::FiglutI, 2.4) / tops_per_w(SimEngine::Figna, 3.0);
    assert!(
        (1.7..2.6).contains(&gain),
        "Q2.4-vs-Q3 gain {gain}, paper reports 1.98x"
    );
}

#[test]
fn table5_engine_ordering() {
    // Table V: iFPU 0.21 < FIGNA 0.33 < FIGLUT 0.47 TOPS/W.
    let ifpu = tops_per_w(SimEngine::Ifpu, 4.0);
    let figna = tops_per_w(SimEngine::Figna, 4.0);
    let figlut = tops_per_w(SimEngine::FiglutI, 4.0);
    assert!(ifpu < figna && figna < figlut, "{ifpu} {figna} {figlut}");
    // Relative spreads in the right ballpark (paper: 1.57x and 1.42x).
    assert!((1.2..2.2).contains(&(figna / ifpu)), "{}", figna / ifpu);
    assert!((1.1..1.8).contains(&(figlut / figna)), "{}", figlut / figna);
}

#[test]
fn fig16_q2_gain_up_to_2_4x_over_figna() {
    // "For 2-bit weight precision … improving energy efficiency by up to
    // 2.4×" (vs FIGNA, whose fixed hardware pads to Q4).
    let gain = tops_per_w(SimEngine::FiglutI, 2.0) / tops_per_w(SimEngine::Figna, 2.0);
    assert!((2.0..3.2).contains(&gain), "Q2 gain {gain}");
}

#[test]
fn fig13_area_efficiency_up_to_1_5x_over_figna_sub4() {
    // "the proposed engines achieve up to 1.5× higher area efficiency than
    // state-of-the-art … in the current trend of sub-4-bit quantization."
    let tech = Tech::cmos28();
    let wl = decode_workload(by_name("OPT-6.7B").unwrap(), 32);
    let at = |e: SimEngine, q: f64| {
        evaluate(&tech, &EngineSpec::paper(e, FpFormat::Fp16), &wl, q).tops_per_mm2()
    };
    let q4 = at(SimEngine::FiglutI, 4.0) / at(SimEngine::Figna, 4.0);
    let q3 = at(SimEngine::FiglutI, 3.0) / at(SimEngine::Figna, 3.0);
    let q2 = at(SimEngine::FiglutI, 2.0) / at(SimEngine::Figna, 2.0);
    assert!(q4 > 1.0, "Q4 area-efficiency ratio {q4}");
    assert!(
        q3 > q4 && q2 > q3,
        "gain should grow as bits shrink: {q4} {q3} {q2}"
    );
    assert!(
        (1.2..2.6).contains(&q3),
        "Q3 ratio {q3} (paper: up to ~1.5x)"
    );
}

#[test]
fn fig13_bit_serial_loses_at_q8() {
    // "hardware designs with bit-serial architecture consume approximately
    // twice the cycles with increased weight bit-width, leading to more
    // significant performance degradation in Q8."
    let tech = Tech::cmos28();
    let wl = decode_workload(by_name("OPT-6.7B").unwrap(), 32);
    let lut4 = evaluate(
        &tech,
        &EngineSpec::paper(SimEngine::FiglutI, FpFormat::Fp16),
        &wl,
        4.0,
    );
    let lut8 = evaluate(
        &tech,
        &EngineSpec::paper(SimEngine::FiglutI, FpFormat::Fp16),
        &wl,
        8.0,
    );
    let ratio = lut4.tops() / lut8.tops();
    assert!((1.8..2.2).contains(&ratio), "Q8 slowdown {ratio}");
}

#[test]
fn section3_hfflut_halves_lut_power() {
    // §III-D / Table III: the hFFLUT "effectively halves the power consumed
    // by the LUT", with trivial decoder overhead.
    let tech = Tech::cmos28();
    let full = lut_power(&tech, LutKind::Fflut, 4, 16, 32);
    let half = lut_power(&tech, LutKind::Hfflut, 4, 16, 32);
    let r = half.hold_pj_per_cycle / full.hold_pj_per_cycle;
    assert!((0.47..0.53).contains(&r), "hFFLUT ratio {r}");
    assert!(half.decoder_pj_per_read < 0.01 * full.hold_pj_per_cycle);
}

#[test]
fn section3_optimal_design_point() {
    // §III-C: "we use the FIGLUT architecture with µ = 4" and "the optimal
    // value of k to be 32".
    let tech = Tech::cmos28();
    let k = optimal_k(&tech, 4, FpFormat::Fp16, 64);
    assert_eq!(k, 32);
}

#[test]
fn section3e_generator_saves_42_percent() {
    // §III-E: "reduces the number of adders and the total addition
    // operations by 42% … for µ = 4, the LUT generator requires 14
    // additions".
    let o = GenSchedule::optimized(4, true);
    let s = GenSchedule::straightforward(4, true);
    assert_eq!(o.adds(), 14);
    assert_eq!(s.adds(), 24);
    // And the break-even claim: "for k > 4, the proposed LUT generator
    // performs fewer additions … than straightforward hardware with k RACs"
    // (each RAC replacing µ−1 = 3 adds per result).
    for k in 5..=64usize {
        assert!(o.adds() < 3 * k + 2, "k={k}"); // 14 < 3k for k > 4
    }
    assert!(o.adds() > 3 * 4, "at k = 4 the generator is not yet ahead");
}

#[test]
fn mixed_precision_only_on_bit_serial() {
    // Table I: FIGNA has no mixed-precision support — its efficiency is
    // flat below Q4 while FIGLUT's scales.
    let f2 = tops_per_w(SimEngine::Figna, 2.0);
    let f4 = tops_per_w(SimEngine::Figna, 4.0);
    assert!(
        (f2 / f4 - 1.0).abs() < 0.02,
        "FIGNA should be flat: {f2} {f4}"
    );
    let l2 = tops_per_w(SimEngine::FiglutI, 2.0);
    let l4 = tops_per_w(SimEngine::FiglutI, 4.0);
    assert!(l2 > 1.5 * l4, "FIGLUT should scale: {l2} vs {l4}");
}

#[test]
fn gpu_rows_match_paper_table5() {
    use figlut::sim::gpu::{A100_FP16, A100_LUTGEMM_Q4, H100_FP16};
    assert!((A100_FP16.tops_per_w() - 0.21).abs() < 0.01);
    assert!((H100_FP16.tops_per_w() - 0.22).abs() < 0.01);
    assert!(A100_LUTGEMM_Q4.tops_per_w() < 0.02);
    // Every dedicated accelerator beats every GPU row by an order of
    // magnitude (the Table V punchline).
    assert!(tops_per_w(SimEngine::Ifpu, 4.0) > 4.0 * H100_FP16.tops_per_w());
}
