//! Cross-crate numerical invariants: the LUT machinery, pre-alignment and
//! engine datapaths must compose without losing the equivalences the paper
//! relies on.

use figlut::prelude::*;
use figlut::quant::bcq::BcqParams;
use figlut::quant::uniform::rtn;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn figlut_i_equals_ifpu_through_facade(
        wv in prop::collection::vec(-1.0f64..1.0, 6 * 32),
        xv in prop::collection::vec(-4.0f64..4.0, 2 * 32),
        bits in 1u32..=4,
    ) {
        let w = Mat::from_vec(6, 32, wv);
        let x = Mat::from_vec(2, 32, xv);
        let b = BcqWeight::quantize(&w, BcqParams::per_row(bits));
        let cfg = EngineConfig::paper_default();
        let yi = Engine::FiglutI.run(&x, &Weights::Bcq(&b), &cfg);
        let yf = Engine::Ifpu.run(&x, &Weights::Bcq(&b), &cfg);
        prop_assert_eq!(yi.as_slice(), yf.as_slice());
    }

    #[test]
    fn uniform_bcq_rewrite_end_to_end(
        wv in prop::collection::vec(-2.0f64..2.0, 4 * 24),
        xv in prop::collection::vec(-1.0f64..1.0, 3 * 24),
        bits in 2u32..=4,
    ) {
        // rtn → from_uniform → FIGLUT must equal rtn → FPE up to FP32
        // association noise (both datapaths see identical weight values).
        let w = Mat::from_vec(4, 24, wv);
        let x = Mat::from_vec(3, 24, xv);
        let u = rtn(&w, RtnParams::per_row(bits));
        let b = BcqWeight::from_uniform(&u);
        let cfg = EngineConfig::with_act(FpFormat::Fp32);
        let y_fpe = Engine::Fpe.run(&x, &Weights::Uniform(&u), &cfg);
        let y_lut = Engine::FiglutF.run(&x, &Weights::Bcq(&b), &cfg);
        let scale = 1.0 + y_fpe.frob_norm();
        prop_assert!(y_lut.max_abs_diff(&y_fpe) < 1e-5 * scale,
            "diff {}", y_lut.max_abs_diff(&y_fpe));
    }

    #[test]
    fn half_lut_decoder_is_transparent_at_engine_level(
        xv in prop::collection::vec(-8.0f64..8.0, 8),
        keys in prop::collection::vec(0u16..256, 16),
    ) {
        // Reading through the hFFLUT decoder equals the full table for
        // arbitrary µ=8 activations and keys — stressing the largest
        // supported group size.
        let full = FullLut::build(&xv, |a, b| a + b);
        let half = HalfLut::build(&xv, |a, b| a + b);
        for &k in &keys {
            let key = Key::new(k, 8);
            prop_assert!((full.read(key) - half.read(key)).abs() < 1e-9);
        }
    }

    #[test]
    fn alignment_respects_engine_tolerance(
        xv in prop::collection::vec(-100.0f64..100.0, 16),
    ) {
        // The pre-alignment error bound from figlut-num must hold for the
        // fp16 path engines actually use.
        let rounded: Vec<f64> = xv.iter().map(|&v| Fp16::from_f64(v).to_f64()).collect();
        let a = AlignedVector::align(&rounded, FpFormat::Fp16, 4, AlignMode::RoundNearestEven);
        let bound = a.max_element_error(AlignMode::RoundNearestEven) * 1.0001;
        for (i, &x) in rounded.iter().enumerate() {
            prop_assert!((a.value(i) - x).abs() <= bound);
        }
    }
}

#[test]
fn soft_float_formats_differ_as_documented() {
    // BF16 trades mantissa for range: a value fp16 can't hold.
    let big = 1.0e38f64;
    assert!(Fp16::from_f64(big).is_infinite());
    assert!(Bf16::from_f64(big).is_finite());
    // FP16 keeps more precision in range.
    let v = 1.0 + 1.0 / 512.0;
    assert_eq!(Fp16::from_f64(v).to_f64(), v);
    assert_ne!(Bf16::from_f64(v).to_f64(), v);
    // FP32 subsumes both.
    assert_eq!(Fp32::from_f64(v).to_f64(), v);
}
