//! Facade smoke test: `figlut::prelude::*` must keep re-exporting every name
//! the rustdoc quickstart uses, and the quickstart's numerical claim must
//! hold exactly as written.

use figlut::prelude::*;

/// Every prelude name resolves and is usable. This is a compile-time
/// guarantee for most of the list; the `let` bindings below pin the handful
/// whose construction is part of the documented API.
#[test]
fn prelude_reexports_resolve() {
    // figlut-num
    let _: FpFormat = FpFormat::Fp16;
    let _: AlignMode = AlignMode::RoundNearestEven;
    let _ = Fp16::from_f64(1.0);
    let _ = Bf16::from_f64(1.0);
    let _ = Fp32::from_f64(1.0);
    let _: AlignedVector = AlignedVector::align(&[1.0], FpFormat::Fp16, 0, AlignMode::Truncate);
    let m: Mat<f64> = Mat::from_fn(2, 2, |r, c| (r + c) as f64);

    // figlut-quant
    let bcq = BcqWeight::quantize(&m, BcqParams::per_row(2));
    let _: BitMatrix = bcq.plane(0).clone();
    let u: UniformWeight = figlut::quant::uniform::rtn(&m, RtnParams::per_row(2));

    // figlut-lut
    let key = Key::new(1, 2);
    let _ = key.fold();
    let full = FullLut::build(&[1.0, 2.0], |a, b| a + b);
    let half = HalfLut::build(&[1.0, 2.0], |a, b| a + b);
    assert_eq!(full.read(key), half.read(key));
    let _: GenSchedule = GenSchedule::optimized(2, false);
    let _: Rac<f64> = Rac::new(2);

    // figlut-gemm
    let cfg = EngineConfig::paper_default();
    for e in Engine::ALL {
        let w = if e.supports_bcq() {
            Weights::Bcq(&bcq)
        } else {
            Weights::Uniform(&u)
        };
        let y = e.run(&m, &w, &cfg);
        assert_eq!((y.rows(), y.cols()), (2, 2), "{e}");
    }

    // figlut-exec
    let packed: PackedBcq = PackedBcq::pack(&bcq);
    let plan: ExecPlan = ExecPlan::new(&packed, &cfg);
    assert_eq!(
        plan.exec_i(&m, &packed, &cfg).as_slice(),
        exec_i(&m, &packed, &cfg).as_slice()
    );
    let _ = exec_f(&m, &packed, &cfg);

    // figlut-model
    let opt: &OptConfig = &OPT_FAMILY[0];
    assert!(opt.layers > 0);
    let t = Transformer::teacher(ModelConfig::tiny(), 7);
    let _: &Backend = &Backend::Exact;
    assert!(t.cfg.d_model > 0);

    // figlut-serve
    let trace: Trace = synthetic_trace(&t.cfg, &TraceParams::light(2), 3);
    let _: &Request = &trace.requests[0];
    let _: Sampling = Sampling::Greedy;
    let engine = BatchEngine::new(&t, Backend::Exact);
    let sr: ServeReport = figlut::serve::serve(
        &engine,
        &trace,
        &ServeConfig::new(2, Policy::PrefillPriority),
    );
    assert_eq!(sr.requests.len(), 2);
    for r in &sr.requests {
        assert_eq!(r.generated, engine.solo_run(&trace.requests[r.id]));
    }
    // The README quickstart's chunked-prefill configuration.
    let chunked = figlut::serve::serve(
        &engine,
        &trace,
        &ServeConfig::new(2, Policy::PrefillPriority).with_prefill_chunk(8),
    );
    let _stall: u64 = chunked.max_inter_token_stall();
    for r in &chunked.requests {
        assert_eq!(r.generated, engine.solo_run(&trace.requests[r.id]));
    }
    // The README quickstart's paged-KV configuration: block-table paging
    // with prefix sharing keeps the tokens bit-identical and reports
    // PagingStats; BlockPool is the underlying refcounted block store.
    let _pool: BlockPool = BlockPool::new(4, t.cfg.layers, t.cfg.d_model, None);
    let _hooks: ServeHooks = ServeHooks::default();
    let paged = figlut::serve::serve(
        &engine,
        &trace,
        &ServeConfig::new(2, Policy::PrefillPriority).with_block_size(16),
    );
    let stats: &PagingStats = paged.paging.as_ref().expect("paged run reports stats");
    assert_eq!(stats.block_size, 16);
    assert_eq!(stats.final_live_blocks, 0);
    for r in &paged.requests {
        assert_eq!(r.generated, engine.solo_run(&trace.requests[r.id]));
    }

    // figlut-sim
    let tech = Tech::cmos28();
    let spec = EngineSpec::paper(SimEngine::FiglutI, FpFormat::Fp16);
    let wl = Workload {
        gemms: vec![GemmShape {
            m: 256,
            n: 256,
            batch: 4,
            repeat: 1.0,
        }],
        nongemm_flops: 0.0,
    };
    let report: Report = evaluate(&tech, &spec, &wl, 4.0);
    assert!(report.tops_per_w() > 0.0);
}

/// The exact scenario from the facade rustdoc quickstart (`src/lib.rs`):
/// FIGLUT-F on 3-bit BCQ must stay within 1e-2 of the exact reference.
#[test]
fn quickstart_figlut_f_tracks_reference() {
    let w = Mat::from_fn(8, 64, |r, c| ((r * 64 + c) as f64 * 0.1).sin());
    let bcq = BcqWeight::quantize(&w, BcqParams::per_row(3));
    let x = Mat::from_fn(2, 64, |b, c| ((b + c) as f64 * 0.05).cos());
    let cfg = EngineConfig::paper_default();
    let y = Engine::FiglutF.run(&x, &Weights::Bcq(&bcq), &cfg);
    let oracle = Engine::Reference.run(&x, &Weights::Bcq(&bcq), &cfg);
    assert!(
        y.max_abs_diff(&oracle) < 1e-2,
        "quickstart bound violated: {}",
        y.max_abs_diff(&oracle)
    );
}
