//! End-to-end integration: quantizer → engine → transformer → simulator,
//! exercised through the public facade API only.

use figlut::model::calibrate::{quantize_model, to_bcq, Method};
use figlut::model::corpus::generate;
use figlut::model::ppl::perplexity;
use figlut::prelude::*;
use figlut::quant::uniform::rtn;

fn teacher() -> Transformer {
    Transformer::teacher(ModelConfig::tiny(), 77)
}

#[test]
fn rtn_model_runs_identically_on_all_lut_engines() {
    // The Table IV pipeline in miniature: RTN-Q4 model, perplexity under
    // exact execution and under both FIGLUT datapaths.
    let t = teacher();
    let calib = generate(&t, 2, 10, 1);
    let eval = generate(&t, 3, 12, 2);
    let (q, _) = quantize_model(&t, &calib, Method::Rtn { bits: 4 });
    let qb = to_bcq(&q);
    let cfg = EngineConfig::paper_default();
    let exact = perplexity(&q, &eval, &Backend::Exact);
    let f = perplexity(&qb, &eval, &Backend::Engine(Engine::FiglutF, cfg));
    let i = perplexity(&qb, &eval, &Backend::Engine(Engine::FiglutI, cfg));
    assert!(
        (f / exact - 1.0).abs() < 1e-3,
        "FIGLUT-F ppl {f} vs exact {exact}"
    );
    assert!(
        (i / exact - 1.0).abs() < 1e-3,
        "FIGLUT-I ppl {i} vs exact {exact}"
    );
}

#[test]
fn quantization_method_quality_ordering() {
    // On the same model and budget: ShiftAdd(BCQ) ≤ GPTQ ≤ RTN at 2 bits
    // (allowing small noise margins), all finite.
    let t = teacher();
    let calib = generate(&t, 3, 12, 5);
    let eval = generate(&t, 6, 14, 6);
    let ppl_of = |m: Method| {
        let (q, _) = quantize_model(&t, &calib, m);
        perplexity(&q, &eval, &Backend::Exact)
    };
    let p_rtn = ppl_of(Method::Rtn { bits: 2 });
    let p_gptq = ppl_of(Method::Gptq { bits: 2 });
    let p_sa = ppl_of(Method::ShiftAdd { bits: 2 });
    assert!(p_sa.is_finite() && p_gptq.is_finite() && p_rtn.is_finite());
    assert!(p_sa < p_rtn, "ShiftAdd {p_sa} !< RTN {p_rtn}");
    assert!(
        p_gptq < p_rtn * 1.2,
        "GPTQ {p_gptq} much worse than RTN {p_rtn}"
    );
}

#[test]
fn engine_outputs_agree_on_quantized_transformer_layer() {
    // Take a real layer from the model and push it through every engine.
    let t = teacher();
    let w = match &t.blocks[0].fc1.weights {
        figlut::model::transformer::LinearWeights::Fp(w) => w.clone(),
        _ => unreachable!(),
    };
    let u = rtn(&w, RtnParams::per_row(4));
    let b = BcqWeight::from_uniform(&u);
    let x = Mat::from_fn(4, w.cols(), |r, c| {
        ((r * w.cols() + c) as f64 * 0.031).sin()
    });
    let cfg = EngineConfig::paper_default();
    let oracle = Engine::Reference.run(&x, &Weights::Uniform(&u), &cfg);
    let scale = oracle.frob_norm() / (oracle.rows() * oracle.cols()) as f64;
    for (e, wts) in [
        (Engine::Fpe, Weights::Uniform(&u)),
        (Engine::Figna, Weights::Uniform(&u)),
        (Engine::Ifpu, Weights::Bcq(&b)),
        (Engine::FiglutF, Weights::Bcq(&b)),
        (Engine::FiglutI, Weights::Bcq(&b)),
    ] {
        let y = e.run(&x, &wts, &cfg);
        assert!(
            y.max_abs_diff(&oracle) < 1e-2 * scale.max(1.0) * w.cols() as f64,
            "{} diverged: {}",
            e.name(),
            y.max_abs_diff(&oracle)
        );
    }
}

#[test]
fn simulator_consumes_model_workloads() {
    // Model crate → sim crate plumbing: evaluate every OPT size on every
    // engine without panicking, with sane outputs.
    let tech = Tech::cmos28();
    for cfg in &OPT_FAMILY {
        let wl = figlut::model::workload::decode_workload(cfg, 32);
        for e in SimEngine::ALL {
            let r = evaluate(&tech, &EngineSpec::paper(e, FpFormat::Fp16), &wl, 4.0);
            assert!(r.tops() > 0.0 && r.tops().is_finite(), "{} {}", cfg.name, e);
            assert!(r.tops_per_w() > 0.0, "{} {}", cfg.name, e);
            assert!(r.power_w() < 100.0, "{} {} implausible power", cfg.name, e);
        }
    }
}

#[test]
fn payload_compression_matches_bit_budget() {
    // Fig. 17's "Q2.4 compresses the model by 20% vs Q3" accounting.
    let t = teacher();
    let calib = generate(&t, 2, 10, 9);
    let (q24, _) = quantize_model(&t, &calib, Method::ShiftAddMixed { avg_bits: 2.4 });
    let (q3, _) = quantize_model(&t, &calib, Method::ShiftAdd { bits: 3 });
    let ratio = q24.average_bits() / q3.average_bits();
    assert!(
        (0.72..=0.85).contains(&ratio),
        "Q2.4/Q3 size ratio {ratio}, expected ≈0.8"
    );
}
