#![warn(missing_docs)]

//! Vendored, API-compatible **subset** of the `criterion` crate.
//!
//! This workspace must build with no network access (see DESIGN.md §5), so
//! the `benches/` targets link against this shim instead of crates.io
//! criterion. It implements exactly the surface those benches use —
//! [`Criterion::benchmark_group`], `bench_function` / `bench_with_input`,
//! [`BenchmarkId`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`] — with a deliberately simple measurement loop:
//! warm-up, then geometrically growing batches until a batch runs for at
//! least ~20 ms, reporting mean wall-clock time per iteration.
//!
//! There are no statistical comparisons, plots, or saved baselines. The
//! numbers are honest but coarse; for publication-grade measurements swap
//! the real criterion back in when a registry is reachable.

use std::time::{Duration, Instant};

/// Opaque identity function that prevents the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Entry point handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        BenchmarkGroup {
            _criterion: self,
            name,
        }
    }
}

/// A named collection of benchmarks, printed under a common heading.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Measure `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { ns_per_iter: None };
        f(&mut bencher);
        self.report(&id, bencher.ns_per_iter);
        self
    }

    /// Measure `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { ns_per_iter: None };
        f(&mut bencher, input);
        self.report(&id, bencher.ns_per_iter);
        self
    }

    /// Finish the group (upstream consumes `self`; so do we).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, ns_per_iter: Option<f64>) {
        match ns_per_iter {
            Some(ns) => println!("  {}/{:<28} {}", self.name, id.label, format_ns(ns)),
            None => println!("  {}/{:<28} (no measurement)", self.name, id.label),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:>10.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:>10.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:>10.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:>10.1} ns/iter")
    }
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Time `f`, storing mean nanoseconds per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3 {
            black_box(f());
        }
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(20) || iters >= 1 << 22 {
                self.ns_per_iter = Some(elapsed.as_nanos() as f64 / iters as f64);
                return;
            }
            iters = iters.saturating_mul(4);
        }
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
