//! Self-tests for the vendored proptest shim: the harness must actually run
//! bodies, report failures, honor rejection, and stay deterministic —
//! otherwise every property test in the workspace would be vacuous.

use proptest::prelude::*;
use proptest::test_runner::{run, Config, TestCaseError, TestRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};

/// A config with an exact case count, immune to the `PROPTEST_CASES`
/// override that `Config::with_cases` honors (these tests assert counts).
fn exactly(cases: u32) -> Config {
    Config {
        cases,
        max_global_rejects: cases * 64,
    }
}

#[test]
fn runs_exactly_the_configured_number_of_cases() {
    let counter = AtomicU32::new(0);
    run(&exactly(37), "count_cases", |_rng| {
        counter.fetch_add(1, Ordering::Relaxed);
        Ok(())
    });
    assert_eq!(counter.load(Ordering::Relaxed), 37);
}

#[test]
fn failing_case_panics_with_inputs() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        run(&exactly(10), "always_fails", |_rng| {
            Err(TestCaseError::fail("boom").with_input("x = 42; "))
        });
    }));
    let msg = *result.unwrap_err().downcast::<String>().unwrap();
    assert!(msg.contains("boom"), "missing message: {msg}");
    assert!(msg.contains("x = 42"), "missing inputs: {msg}");
}

#[test]
fn rejections_do_not_count_as_cases_but_are_bounded() {
    // Rejecting forever must trip the cap instead of spinning.
    let result = catch_unwind(AssertUnwindSafe(|| {
        run(&exactly(5), "always_rejects", |_rng| {
            Err(TestCaseError::reject("nope"))
        });
    }));
    assert!(result.is_err(), "unbounded rejection loop did not trip");
}

#[test]
fn rng_is_deterministic_per_name_and_distinct_across_names() {
    let mut a1 = TestRng::deterministic("alpha");
    let mut a2 = TestRng::deterministic("alpha");
    let mut b = TestRng::deterministic("beta");
    let s1: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();
    let s2: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
    let s3: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
    assert_eq!(s1, s2);
    assert_ne!(s1, s3);
}

#[test]
fn range_strategies_respect_bounds() {
    let mut rng = TestRng::deterministic("bounds");
    for _ in 0..2000 {
        let v = (1u32..=8).new_value(&mut rng);
        assert!((1..=8).contains(&v));
        let w = (-1000i32..1000).new_value(&mut rng);
        assert!((-1000..1000).contains(&w));
        let x = (-1e4f64..1e4).new_value(&mut rng);
        assert!((-1e4..1e4).contains(&x));
        let l = prop::collection::vec(any::<bool>(), 3..7).new_value(&mut rng);
        assert!((3..7).contains(&l.len()));
        let e = prop::collection::vec(any::<u8>(), 4).new_value(&mut rng);
        assert_eq!(e.len(), 4);
    }
}

#[test]
fn full_domain_strategies_cover_extremes_eventually() {
    // 16-bit domain, 200k draws: every value class should appear.
    let mut rng = TestRng::deterministic("coverage");
    let mut seen_zero = false;
    let mut seen_max = false;
    for _ in 0..200_000 {
        let v = any::<u16>().new_value(&mut rng);
        seen_zero |= v == 0;
        seen_max |= v == u16::MAX;
    }
    assert!(seen_zero && seen_max, "u16 domain not covered");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn macro_binds_args_sequentially(n in 1usize..16, xs in prop::collection::vec(0u8.., 8)) {
        // A later arg may use an earlier one; here we just exercise the
        // multi-arg path end to end, including prop_assume and prop_assert.
        prop_assume!(n != 13);
        prop_assert_eq!(xs.len(), 8);
        prop_assert!(n < 16, "n = {}", n);
        prop_assert_ne!(n, 13);
    }

    #[test]
    fn flat_map_and_map_compose(v in (1usize..5).prop_flat_map(|n| {
        prop::collection::vec(-1.0f64..1.0, n).prop_map(move |xs| (n, xs))
    })) {
        prop_assert_eq!(v.0, v.1.len());
        for x in &v.1 {
            prop_assert!((-1.0..1.0).contains(x));
        }
    }
}
