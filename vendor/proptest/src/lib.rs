#![warn(missing_docs)]

//! Vendored, API-compatible **subset** of the `proptest` crate.
//!
//! This workspace must build with no network access (see DESIGN.md §5), so
//! instead of depending on crates.io we ship the slice of proptest's API that
//! the workspace's property tests actually use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` support),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * [`Strategy`](strategy::Strategy) with `prop_map` / `prop_flat_map`,
//! * `any::<T>()` for the primitive integer types and `bool`,
//! * integer and float range strategies, tuple strategies, and
//!   [`collection::vec`].
//!
//! Semantics differ from upstream in one deliberate way: there is **no
//! shrinking**. On failure the macro panics with the generated inputs
//! (every strategy value is `Debug`), the case number, and the assertion
//! message, which is enough to reproduce because generation is fully
//! deterministic: the RNG is seeded from the test's name, so a failing case
//! fails identically on every machine and every run.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The most commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Module-style access to strategy constructors (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Reject the current test case unless `cond` holds.
///
/// Rejected cases are not counted towards the configured case total; the
/// runner keeps generating until enough cases pass or the global rejection
/// cap is hit.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::concat!("assume failed: ", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::concat!("assertion failed: ", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {}: {}",
                    ::std::stringify!($cond),
                    ::std::format_args!($($fmt)+),
                ),
            ));
        }
    };
}

/// Fail the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`: left = {:?}, right = {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    l,
                    r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`: left = {:?}, right = {:?}: {}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    l,
                    r,
                    ::std::format_args!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Fail the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`: both = {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    l,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`: both = {:?}: {}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    l,
                    ::std::format_args!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Define property tests.
///
/// Mirrors the upstream macro: an optional `#![proptest_config(expr)]` inner
/// attribute followed by `#[test] fn name(arg in strategy, ..) { body }`
/// items. Each generated test draws its arguments from the listed strategies
/// and runs the body for the configured number of cases.
///
/// Unlike upstream, arguments are drawn left-to-right from one RNG stream,
/// so a later strategy expression may refer to earlier argument names.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                $crate::test_runner::run(
                    &($config),
                    ::std::stringify!($name),
                    |__rng: &mut $crate::test_runner::TestRng| {
                        // Keep a snapshot so the (rare) failure path can
                        // re-draw the same values for the error message;
                        // passing cases never pay for Debug-formatting.
                        let __rng_at_case_start = __rng.clone();
                        $(
                            let $arg =
                                $crate::strategy::Strategy::new_value(&($strategy), __rng);
                        )+
                        let __outcome: ::core::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > = (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                        __outcome.map_err(|__e| {
                            let mut __rng = __rng_at_case_start;
                            let mut __s = ::std::string::String::new();
                            $(
                                let $arg = $crate::strategy::Strategy::new_value(
                                    &($strategy),
                                    &mut __rng,
                                );
                                __s.push_str(::std::stringify!($arg));
                                __s.push_str(" = ");
                                __s.push_str(&::std::format!("{:?}; ", &$arg));
                            )+
                            __e.with_input(&__s)
                        })
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}
