//! The [`Strategy`] trait and the combinators / primitive strategies the
//! workspace's tests use.

use crate::test_runner::TestRng;
use core::fmt::Debug;
use core::ops::{Range, RangeFrom, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is simply a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values. `Debug` so failures can print inputs.
    type Value: Debug;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generate a value, then use it to pick a second-stage strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn new_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let width = (self.end as i128) - (self.start as i128);
                assert!(width > 0, "empty integer range strategy");
                (self.start as i128 + rng.below(width as u128) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let width = (*self.end() as i128) - (*self.start() as i128) + 1;
                assert!(width > 0, "empty integer range strategy");
                (*self.start() as i128 + rng.below(width as u128) as i128) as $t
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let width = (<$t>::MAX as i128) - (self.start as i128) + 1;
                (self.start as i128 + rng.below(width as u128) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                loop {
                    // Rounding in `start + u * (end - start)` can land exactly
                    // on `end` even though u < 1; redraw to keep the range
                    // half-open (hit probability is ~2^-25 per draw at worst,
                    // and `start` itself always satisfies the bound).
                    let u = rng.unit_f64() as $t;
                    let v = self.start + u * (self.end - self.start);
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
    (A, B, C, D, E, G, H)
    (A, B, C, D, E, G, H, I)
}
