//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::fmt::Debug;
use core::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draw a value uniformly from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the whole domain of `T` (see [`any`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}
