//! Deterministic test runner: configuration, RNG, and case outcomes.

/// Per-`proptest!` configuration. Only the fields the workspace uses.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of *passing* cases required for the test to succeed.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections across the whole run before
    /// the test is treated as unsatisfiable and fails.
    pub max_global_rejects: u32,
}

impl Config {
    /// A configuration running `cases` cases per property.
    ///
    /// The `PROPTEST_CASES` environment variable, when set to a positive
    /// integer, overrides the requested count (useful to shorten CI runs).
    pub fn with_cases(cases: u32) -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(cases);
        Config {
            cases,
            max_global_rejects: cases.saturating_mul(64).saturating_add(1024),
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::with_cases(256)
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and is not counted.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure outcome.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection outcome.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// Attach the generated-input description to a failure message.
    pub fn with_input(self, desc: &str) -> Self {
        match self {
            TestCaseError::Fail(msg) => TestCaseError::Fail(format!("{msg}\n    inputs: {desc}")),
            reject => reject,
        }
    }
}

/// A small, fast, deterministic RNG (SplitMix64).
///
/// Quality is far beyond what the strategies here need, the stream is
/// identical on every platform, and there is no global state: each test gets
/// its own stream seeded from its name.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a stream deterministically from the test name.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, mixed with an arbitrary odd constant so an
        // empty name still yields a well-mixed state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses rejection sampling on the top bits, so there is no modulo bias.
    pub fn below(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "empty range passed to a proptest strategy");
        // Sample 128 bits from two 64-bit draws; reject the tail that would
        // bias the modulo. For every bound the workspace uses, the rejection
        // probability is astronomically small.
        let zone = u128::MAX - (u128::MAX % bound + 1) % bound;
        loop {
            let hi = self.next_u64() as u128;
            let lo = self.next_u64() as u128;
            let x = (hi << 64) | lo;
            if x <= zone || zone == u128::MAX {
                return x % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Drive one property: generate cases until `config.cases` pass, a case
/// fails, or the rejection cap trips. Panics (like `assert!`) on failure so
/// the standard test harness reports it.
pub fn run<F>(config: &Config, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::deterministic(name);
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest `{name}`: too many prop_assume! rejections \
                         ({rejected} rejects for {passed} passing cases)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed at case {} (of {}):\n    {msg}",
                    passed + 1,
                    config.cases
                );
            }
        }
    }
}
