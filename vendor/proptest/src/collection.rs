//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// Length specification for [`vec()`]: an exact length or a length range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec length range");
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` strategy: each element from `element`, length from `size`
/// (an exact `usize` or a `usize` range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u128;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
