#![forbid(unsafe_code)]
//! # FIGLUT — LUT-based FP-INT GEMM, reproduced in Rust
//!
//! A full reproduction of *FIGLUT: An Energy-Efficient Accelerator Design
//! for FP-INT GEMM Using Look-Up Tables* (HPCA 2025): the LUT-based GEMM
//! method, the five compared hardware engines as bit-accurate datapath
//! models, every quantizer the paper evaluates, a 28 nm-class
//! energy/area/cycle simulator, and an LLM workload substrate.
//!
//! This facade crate re-exports the workspace members; depend on the
//! individual crates if you only need one layer:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`num`] (`figlut-num`) | bit-accurate FP16/BF16/FP32, pre-alignment, matrices |
//! | [`trace`] (`figlut-trace`) | zero-cost-when-off tracing: counter registry, spans, JSONL/Chrome-trace sinks, mergeable streaming histograms |
//! | [`quant`] (`figlut-quant`) | RTN, BCQ, GPTQ-style, ShiftAddLLM-style quantizers |
//! | [`lut`] (`figlut-lut`) | keys, FFLUT/hFFLUT, generator schedules, RACs, bank model |
//! | [`gemm`] (`figlut-gemm`) | FPE / iFPU / FIGNA / FIGLUT-F / FIGLUT-I engine models |
//! | [`exec`] (`figlut-exec`) | packed, batch-blocked LUT-GEMM kernels + `ExecPlan`, bit-exact vs FIGLUT-I |
//! | [`sim`] (`figlut-sim`) | 28 nm cost model: power, area, cycles, TOPS/W |
//! | [`model`] (`figlut-model`) | synthetic OPT-style transformer + perplexity |
//! | [`serve`] (`figlut-serve`) | deterministic continuous-batching serving layer (scenario traces, scheduler, paged KV with prefix sharing + preempt/restore, SLO metrics, fault injection + admission control + checkpoint/resume) |
//!
//! ## Quickstart
//!
//! ```
//! use figlut::prelude::*;
//!
//! // Quantize a weight matrix to 3-bit BCQ and run it through FIGLUT-F.
//! let w = Mat::from_fn(8, 64, |r, c| ((r * 64 + c) as f64 * 0.1).sin());
//! let bcq = BcqWeight::quantize(&w, BcqParams::per_row(3));
//! let x = Mat::from_fn(2, 64, |b, c| ((b + c) as f64 * 0.05).cos());
//! let cfg = EngineConfig::paper_default();
//! let y = Engine::FiglutF.run(&x, &Weights::Bcq(&bcq), &cfg);
//! let oracle = Engine::Reference.run(&x, &Weights::Bcq(&bcq), &cfg);
//! assert!(y.max_abs_diff(&oracle) < 1e-2);
//! ```

pub use figlut_exec as exec;
pub use figlut_gemm as gemm;
pub use figlut_lut as lut;
pub use figlut_model as model;
pub use figlut_num as num;
pub use figlut_quant as quant;
pub use figlut_serve as serve;
pub use figlut_sim as sim;
pub use figlut_trace as trace;

/// The most commonly used items, one `use` away.
pub mod prelude {
    pub use figlut_exec::{exec_f, exec_i, ExecPlan, PackedBcq};
    pub use figlut_gemm::{Engine, EngineConfig, Weights};
    pub use figlut_lut::{FullLut, GenSchedule, HalfLut, Key, LutRead, Rac};
    pub use figlut_model::{Backend, BlockPool, ModelConfig, OptConfig, Transformer, OPT_FAMILY};
    pub use figlut_num::{AlignMode, AlignedVector, Bf16, Fp16, Fp32, FpFormat, Mat};
    pub use figlut_quant::{BcqParams, BcqWeight, BitMatrix, RtnParams, UniformWeight};
    pub use figlut_serve::{
        synthetic_trace, AdmissionPolicy, BatchEngine, Checkpoint, Dist, FaultPlan, Goodput,
        PagingStats, Policy, Request, Sampling, Scenario, ServeConfig, ServeDists, ServeHooks,
        ServeReport, Slo, Trace, TraceParams, TtftSplit,
    };
    pub use figlut_sim::{evaluate, EngineSpec, GemmShape, Report, SimEngine, Tech, Workload};
    pub use figlut_trace::{
        install, snapshot, ChromeTraceSink, Hist, JsonlSink, TraceGuard, TraceSink,
    };
}
