//! Architecture design-space exploration: sweep the LUT group size µ and
//! the RACs-per-LUT fan-out k, reproducing the reasoning that leads the
//! paper to (µ, k) = (4, 32) — Figs. 6, 8 and 9.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use figlut::prelude::*;
use figlut::sim::lutcost::{
    optimal_k, pe_power, per_weight_read_power, system_power_per_weight, LutKind, PeParams,
};

fn main() {
    let tech = Tech::cmos28();
    let fmt = FpFormat::Fp16;

    // --- 1. Which LUT structure? (paper Fig. 6) ----------------------------
    println!("LUT read power per weight, relative to one FP16 add (= 1.0):");
    println!("{:>8} {:>6} {:>10}", "kind", "mu", "relative");
    for (kind, mus) in [
        (LutKind::Rflut, vec![4u32, 8]),
        (LutKind::Fflut, vec![2, 4, 8]),
        (LutKind::Hfflut, vec![2, 4, 8]),
    ] {
        for mu in mus {
            println!(
                "{:>8} {:>6} {:>10.3}",
                kind.name(),
                mu,
                per_weight_read_power(&tech, kind, mu, fmt, 1)
            );
        }
    }

    // --- 2. How many RACs share a LUT? (paper Figs. 8–9) -------------------
    println!("\nPE power per weight vs k (relative to FP adders), and P_RAC:");
    println!(
        "{:>4} {:>10} {:>10} {:>12}",
        "k", "mu=2", "mu=4", "P_RAC(mu=4)"
    );
    for k in [1u32, 2, 4, 8, 16, 32, 64] {
        let sys = |mu| {
            system_power_per_weight(
                &tech,
                &PeParams {
                    mu,
                    k,
                    ..PeParams::paper_default(fmt)
                },
            )
        };
        let prac = pe_power(
            &tech,
            &PeParams {
                k,
                ..PeParams::paper_default(fmt)
            },
        )
        .per_rac_pj(k);
        println!("{k:>4} {:>10.3} {:>10.3} {prac:>12.4}", sys(2), sys(4));
    }
    let kstar = optimal_k(&tech, 4, fmt, 64);
    println!("\noptimal k for mu = 4: {kstar} (the paper selects 32)");

    // --- 3. The resulting design, priced end to end ------------------------
    let wl = Workload {
        gemms: vec![GemmShape {
            m: 4096,
            n: 4096,
            batch: 32,
            repeat: 1.0,
        }],
        nongemm_flops: 0.0,
    };
    println!("\nFIGLUT-I (mu=4, k=32) vs ablated configs on a 4096x4096 GEMM:");
    for (label, mu, k) in [
        ("paper (4,32)", 4u32, 32u32),
        ("(2,32)", 2, 32),
        ("(4,8)", 4, 8),
    ] {
        let mut spec = EngineSpec::paper(SimEngine::FiglutI, fmt);
        spec.mu = mu;
        spec.k = k;
        let r = evaluate(&tech, &spec, &wl, 4.0);
        println!("  {label:>14}: {:.3} TOPS/W", r.tops_per_w());
    }
}
