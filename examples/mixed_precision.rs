//! Mixed-precision deployment: allocate 2/3/4 bit-planes per layer under a
//! fractional average budget (ShiftAddLLM-style sensitivity allocation) and
//! measure the accuracy/efficiency frontier that only a bit-serial engine
//! like FIGLUT can exploit — the paper's Fig. 17 story.
//!
//! ```text
//! cargo run --release --example mixed_precision
//! ```

use figlut::model::calibrate::{quantize_model, Method};
use figlut::model::config::by_name;
use figlut::model::corpus::generate;
use figlut::model::ppl::perplexity;
use figlut::model::workload::decode_workload;
use figlut::prelude::*;

fn main() {
    let teacher = Transformer::teacher(ModelConfig::scaled(3, 64, 4), 103);
    let calib = generate(&teacher, 4, 14, 1);
    let eval = generate(&teacher, 10, 18, 2);
    let fp_ppl = perplexity(&teacher, &eval, &Backend::Exact);
    println!("FP16 baseline perplexity: {fp_ppl:.3}\n");

    let tech = Tech::cmos28();
    let wl = decode_workload(by_name("OPT-6.7B").unwrap(), 32);
    let figlut = EngineSpec::paper(SimEngine::FiglutI, FpFormat::Fp16);
    let figna = EngineSpec::paper(SimEngine::Figna, FpFormat::Fp16);

    println!(
        "{:>22} {:>9} {:>12} {:>9} {:>11}",
        "config", "avg bits", "perplexity", "TOPS/W", "model size"
    );
    for avg in [2.0f64, 2.2, 2.4, 2.6, 3.0, 4.0] {
        let method = if (avg - avg.round()).abs() < 1e-9 {
            Method::ShiftAdd { bits: avg as u32 }
        } else {
            Method::ShiftAddMixed { avg_bits: avg }
        };
        let (q, bits) = quantize_model(&teacher, &calib, method);
        let achieved = q.average_bits();
        let p = perplexity(&q, &eval, &Backend::Exact);
        let r = evaluate(&tech, &figlut, &wl, achieved);
        println!(
            "{:>22} {:>9.2} {:>12.3} {:>9.3} {:>10.0}%   bits/layer: {:?}",
            format!("FIGLUT Q{avg}"),
            achieved,
            p,
            r.tops_per_w(),
            100.0 * achieved / 4.0,
            bits
        );
    }

    // FIGNA cannot run fractional precisions: everything pads to Q4
    // hardware, so its efficiency is flat (and its 2-bit OPTQ accuracy
    // collapses — the Fig. 17 contrast).
    println!();
    for bits in [2u32, 3, 4] {
        let (q, _) = quantize_model(&teacher, &calib, Method::Gptq { bits });
        let p = perplexity(&q, &eval, &Backend::Exact);
        let r = evaluate(&tech, &figna, &wl, bits as f64);
        println!(
            "{:>22} {:>9} {:>12.3} {:>9.3}",
            format!("FIGNA OPTQ-Q{bits}"),
            bits,
            p,
            r.tops_per_w()
        );
    }
}
