//! Quickstart: quantize a layer, run it on every engine, compare accuracy
//! and simulated efficiency.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use figlut::prelude::*;
use figlut::quant::uniform::rtn;

fn main() {
    // --- 1. A toy FP weight matrix and some activations -------------------
    let (m, n, batch) = (64, 256, 8);
    let w = Mat::from_fn(m, n, |r, c| ((r * n + c) as f64 * 0.173).sin() * 0.2);
    let x = Mat::from_fn(batch, n, |b, c| ((b * n + c) as f64 * 0.059).cos());

    // --- 2. Quantize: uniform RTN Q4, then the exact BCQ rewrite (Eq. 3) --
    let uniform = rtn(&w, RtnParams::per_row(4));
    let bcq = BcqWeight::from_uniform(&uniform);
    println!(
        "quantized {}x{} weights to Q4 (payload {:.1} KiB, FP16 would be {:.1} KiB)",
        m,
        n,
        bcq.payload_bits() as f64 / 8192.0,
        (m * n * 16) as f64 / 8192.0
    );

    // --- 3. Run every engine on the same problem --------------------------
    let cfg = EngineConfig::paper_default();
    let oracle = Engine::Reference.run(&x, &Weights::Bcq(&bcq), &cfg);
    println!("\n{:>10}  {:>12}  {:>10}", "engine", "max |err|", "weights");
    for engine in Engine::ALL {
        let weights = if engine.supports_bcq() {
            Weights::Bcq(&bcq)
        } else {
            Weights::Uniform(&uniform)
        };
        let y = engine.run(&x, &weights, &cfg);
        println!(
            "{:>10}  {:>12.3e}  {:>10}",
            engine.name(),
            y.max_abs_diff(&oracle),
            if engine.supports_bcq() { "BCQ" } else { "INT" },
        );
    }

    // --- 4. Ask the simulator what each engine costs -----------------------
    let tech = Tech::cmos28();
    let wl = Workload {
        gemms: vec![GemmShape {
            m: 4096,
            n: 4096,
            batch: 32,
            repeat: 1.0,
        }],
        nongemm_flops: 0.0,
    };
    println!("\nsimulated on a 4096x4096 GEMM at batch 32, Q4 weights:");
    println!(
        "{:>10}  {:>9}  {:>9}  {:>10}",
        "engine", "TOPS/W", "TOPS/mm2", "power (W)"
    );
    for e in [
        SimEngine::Fpe,
        SimEngine::Ifpu,
        SimEngine::Figna,
        SimEngine::FiglutI,
    ] {
        let r = evaluate(&tech, &EngineSpec::paper(e, FpFormat::Fp16), &wl, 4.0);
        println!(
            "{:>10}  {:>9.3}  {:>9.3}  {:>10.3}",
            e.name(),
            r.tops_per_w(),
            r.tops_per_mm2(),
            r.power_w()
        );
    }
}
