//! End-to-end weight-only-quantized LLM inference on the FIGLUT engine
//! models: quantize a synthetic OPT-style transformer, evaluate perplexity
//! with the linear layers executed by each hardware datapath, and price the
//! real OPT-6.7B workload on the simulator.
//!
//! ```text
//! cargo run --release --example llm_inference
//! ```

use figlut::model::calibrate::{quantize_model, to_bcq, Method};
use figlut::model::config::by_name;
use figlut::model::corpus::generate;
use figlut::model::ppl::perplexity;
use figlut::model::workload::decode_workload;
use figlut::prelude::*;

fn main() {
    // --- 1. A deterministic synthetic "OPT-6.7B" stand-in ------------------
    let teacher = Transformer::teacher(ModelConfig::scaled(3, 64, 4), 103);
    let calib = generate(&teacher, 4, 14, 1);
    let eval = generate(&teacher, 8, 16, 2);
    let fp_ppl = perplexity(&teacher, &eval, &Backend::Exact);
    println!("FP16 teacher perplexity: {fp_ppl:.3}");

    // --- 2. Weight-only quantization: RTN Q4 → run on each engine ----------
    let (q, _) = quantize_model(&teacher, &calib, Method::Rtn { bits: 4 });
    let q_bcq = to_bcq(&q);
    let cfg = EngineConfig::paper_default();
    println!("\nRTN-Q4 perplexity by execution engine (paper Table IV):");
    let gpu = perplexity(&q, &eval, &Backend::Exact);
    println!("  {:<10} {:.4}", "GPU-exact", gpu);
    for engine in [Engine::FiglutF, Engine::FiglutI] {
        let p = perplexity(&q_bcq, &eval, &Backend::Engine(engine, cfg));
        println!("  {:<10} {:.4}", engine.name(), p);
    }

    // --- 3. Lower precision with a better quantizer ------------------------
    println!("\nShiftAddLLM-style BCQ at lower precisions:");
    for bits in [4u32, 3, 2] {
        let (qq, _) = quantize_model(&teacher, &calib, Method::ShiftAdd { bits });
        let p = perplexity(&qq, &eval, &Backend::Exact);
        println!("  BCQ{bits}: perplexity {p:.3}");
    }

    // --- 4. What does serving this cost on FIGLUT hardware? ----------------
    let tech = Tech::cmos28();
    let opt = by_name("OPT-6.7B").unwrap();
    let wl = decode_workload(opt, 32);
    println!("\nOPT-6.7B decode (batch 32) on the cost model:");
    for (label, bits) in [("Q4", 4.0), ("Q3", 3.0), ("Q2", 2.0)] {
        let r = evaluate(
            &tech,
            &EngineSpec::paper(SimEngine::FiglutI, FpFormat::Fp16),
            &wl,
            bits,
        );
        println!(
            "  FIGLUT-I {label}: {:.2} TOPS, {:.3} W, {:.2} TOPS/W",
            r.tops(),
            r.power_w(),
            r.tops_per_w()
        );
    }
}
