//! Why GPU shared-memory LUTs stall and the FFLUT doesn't (paper §II-C,
//! Fig. 2): simulate the LUT-GEMM read phase on banked memory across table
//! sizes and thread counts, then the conflict-free FFLUT.
//!
//! ```text
//! cargo run --release --example bank_conflicts
//! ```

use figlut::lut::bank::{banked_read_phase, fflut_read_phase, wavefront_cycles, GPU_BANKS};

fn main() {
    println!("GPU shared memory: 32 banks, one LUT entry per bank.\n");

    // Worst case from the paper's Fig. 2: every thread hits the same bank.
    let worst = wavefront_cycles(&[5; 32], GPU_BANKS);
    println!("worst case (all 32 threads on one bank): {worst} cycles per access wave\n");

    println!(
        "{:>6} {:>9} {:>22}",
        "mu", "threads", "serialization factor"
    );
    for mu in [2u32, 4, 8] {
        for threads in [8usize, 16, 32] {
            let s = banked_read_phase(mu, threads, 5000, GPU_BANKS, 99);
            println!("{mu:>6} {threads:>9} {:>21.2}x", s.serialization());
        }
    }
    let f = fflut_read_phase(5000);
    println!(
        "{:>6} {:>9} {:>21.2}x   (dedicated mux per reader)",
        "FFLUT",
        "any",
        f.serialization()
    );

    println!();
    println!("Random weight patterns keep colliding in banks no matter the table");
    println!("size — the reason the paper replaces banked storage with a flip-flop");
    println!("table whose k = 32 readers each own a multiplexer (paper Fig. 7).");
}
