//! Quantization error metrics.
//!
//! Two views matter in the paper's evaluation: plain weight-space MSE (what
//! the BCQ objective, Eq. 1, minimizes) and output-space error on a
//! calibration set (what GPTQ/ShiftAddLLM actually optimize, and what
//! perplexity responds to).

use figlut_num::Mat;

/// Mean squared error between a reference weight matrix and its
/// reconstruction.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn weight_mse(w: &Mat<f64>, w_hat: &Mat<f64>) -> f64 {
    assert_eq!(w.shape(), w_hat.shape(), "shape mismatch");
    let n = (w.rows() * w.cols()) as f64;
    w.as_slice()
        .iter()
        .zip(w_hat.as_slice())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        / n
}

/// Output-space MSE: `‖(W − Ŵ)·X‖² / (m·s)` for calibration activations
/// `X (n × s)` and weights `W (m × n)`.
///
/// This is the layer-wise objective of GPTQ and ShiftAddLLM; the paper's
/// mixed-precision sensitivity ordering is derived from it.
///
/// # Panics
///
/// Panics on inner-dimension mismatch.
pub fn output_mse(w: &Mat<f64>, w_hat: &Mat<f64>, x: &Mat<f64>) -> f64 {
    assert_eq!(w.shape(), w_hat.shape(), "weight shape mismatch");
    assert_eq!(w.cols(), x.rows(), "calibration activation shape mismatch");
    let diff = Mat::from_fn(w.rows(), w.cols(), |r, c| w[(r, c)] - w_hat[(r, c)]);
    let y = diff.matmul(x);
    let n = (y.rows() * y.cols()) as f64;
    y.as_slice().iter().map(|v| v * v).sum::<f64>() / n
}

/// Signal-to-quantization-noise ratio in dB (∞ for exact reconstructions).
pub fn sqnr_db(w: &Mat<f64>, w_hat: &Mat<f64>) -> f64 {
    let sig: f64 = w.as_slice().iter().map(|v| v * v).sum();
    let noise: f64 = w
        .as_slice()
        .iter()
        .zip(w_hat.as_slice())
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    if noise == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (sig / noise).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_for_identical() {
        let w = Mat::from_fn(2, 3, |r, c| (r + c) as f64);
        assert_eq!(weight_mse(&w, &w), 0.0);
        assert_eq!(sqnr_db(&w, &w), f64::INFINITY);
    }

    #[test]
    fn mse_known_value() {
        let a = Mat::from_vec(1, 2, vec![0.0, 0.0]);
        let b = Mat::from_vec(1, 2, vec![1.0, 3.0]);
        assert_eq!(weight_mse(&a, &b), 5.0);
    }

    #[test]
    fn output_mse_weighs_active_columns() {
        let w = Mat::from_vec(1, 2, vec![1.0, 1.0]);
        // Error on column 0 only vs column 1 only.
        let e0 = Mat::from_vec(1, 2, vec![0.9, 1.0]);
        let e1 = Mat::from_vec(1, 2, vec![1.0, 0.9]);
        // Calibration activations excite column 0 much harder.
        let x = Mat::from_vec(2, 2, vec![10.0, 10.0, 0.1, 0.1]);
        assert!(output_mse(&w, &e0, &x) > output_mse(&w, &e1, &x));
    }

    #[test]
    fn sqnr_improves_with_smaller_noise() {
        let w = Mat::from_vec(1, 2, vec![1.0, -1.0]);
        let n1 = Mat::from_vec(1, 2, vec![1.1, -1.0]);
        let n2 = Mat::from_vec(1, 2, vec![1.01, -1.0]);
        assert!(sqnr_db(&w, &n2) > sqnr_db(&w, &n1));
    }
}
