//! Small dense linear-algebra kernels used by the quantizers.
//!
//! Everything here is plain `f64` and sized for quantizer work: the
//! alternating-BCQ normal equations are `q×q` (q ≤ 8) and the GPTQ Hessian
//! is `n×n` for a layer's input dimension (hundreds in our workloads).
//! Matrices are the row-major [`Mat<f64>`] from `figlut-num`.

use figlut_num::Mat;

/// Solve the symmetric positive (semi-)definite system `A·x = b` in place of
/// a copy, via Cholesky with diagonal jitter fallback.
///
/// Returns `None` if `A` is too ill-conditioned to factor even after
/// jittering (callers fall back to a degenerate solution).
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn solve_spd(a: &Mat<f64>, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "solve_spd needs a square matrix");
    assert_eq!(b.len(), n, "rhs length mismatch");
    let mut jitter = 0.0;
    let scale = (0..n).map(|i| a[(i, i)].abs()).fold(0.0f64, f64::max);
    for _ in 0..6 {
        let mut m = a.clone();
        if jitter > 0.0 {
            for i in 0..n {
                m[(i, i)] += jitter;
            }
        }
        if let Some(l) = cholesky(&m) {
            return Some(chol_solve(&l, b));
        }
        jitter = if jitter == 0.0 {
            (scale.max(1e-300)) * 1e-10
        } else {
            jitter * 100.0
        };
    }
    None
}

/// Lower-triangular Cholesky factor `L` with `L·Lᵀ = A`, or `None` if a
/// pivot is non-positive.
pub fn cholesky(a: &Mat<f64>) -> Option<Mat<f64>> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "cholesky needs a square matrix");
    let mut l = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if s <= 0.0 || !s.is_finite() {
                    return None;
                }
                l[(i, i)] = s.sqrt();
            } else {
                l[(i, j)] = s / l[(j, j)];
            }
        }
    }
    Some(l)
}

/// Solve `L·Lᵀ·x = b` given the Cholesky factor `L`.
pub fn chol_solve(l: &Mat<f64>, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(b.len(), n, "rhs length mismatch");
    // Forward: L·y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[(i, k)] * y[k];
        }
        y[i] = s / l[(i, i)];
    }
    // Backward: Lᵀ·x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in i + 1..n {
            s -= l[(k, i)] * x[k];
        }
        x[i] = s / l[(i, i)];
    }
    x
}

/// Invert an SPD matrix via Cholesky (used by GPTQ for `H⁻¹`).
///
/// Returns `None` if the factorization fails.
pub fn spd_inverse(a: &Mat<f64>) -> Option<Mat<f64>> {
    let n = a.rows();
    let l = cholesky(a)?;
    let mut inv = Mat::zeros(n, n);
    let mut e = vec![0.0; n];
    for j in 0..n {
        e[j] = 1.0;
        let col = chol_solve(&l, &e);
        for i in 0..n {
            inv[(i, j)] = col[i];
        }
        e[j] = 0.0;
    }
    Some(inv)
}

/// `A · Aᵀ` for a row-major matrix (used to build calibration Hessians).
pub fn gram(a: &Mat<f64>) -> Mat<f64> {
    let (n, s) = a.shape();
    let mut g = Mat::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let mut acc = 0.0;
            let (ri, rj) = (a.row(i), a.row(j));
            for k in 0..s {
                acc += ri[k] * rj[k];
            }
            g[(i, j)] = acc;
            g[(j, i)] = acc;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Mat<f64> {
        // B·Bᵀ + I for a fixed B is SPD.
        let b = Mat::from_vec(3, 3, vec![1.0, 2.0, 0.5, -1.0, 0.3, 2.0, 0.7, -0.2, 1.1]);
        let mut g = gram(&b);
        for i in 0..3 {
            g[(i, i)] += 1.0;
        }
        g
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let l = cholesky(&a).expect("SPD");
        let back = Mat::from_fn(3, 3, |i, j| (0..3).map(|k| l[(i, k)] * l[(j, k)]).sum());
        assert!(a.max_abs_diff(&back) < 1e-12);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = [1.0, -2.0, 0.5];
        let b: Vec<f64> = (0..3)
            .map(|i| (0..3).map(|j| a[(i, j)] * x_true[j]).sum())
            .collect();
        let x = solve_spd(&a, &b).expect("solvable");
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn singular_matrix_falls_back_to_jitter() {
        // Rank-1 matrix: jittered solve still returns something finite close
        // to a least-squares solution.
        let a = Mat::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        let x = solve_spd(&a, &[2.0, 2.0]).expect("jitter fallback");
        assert!(x.iter().all(|v| v.is_finite()));
        let resid: f64 = (0..2)
            .map(|i| ((0..2).map(|j| a[(i, j)] * x[j]).sum::<f64>() - 2.0).abs())
            .sum();
        assert!(resid < 1e-3, "residual {resid}");
    }

    #[test]
    fn inverse_matches_identity() {
        let a = spd3();
        let inv = spd_inverse(&a).expect("SPD");
        let prod = a.matmul(&inv);
        let eye = Mat::from_fn(3, 3, |i, j| if i == j { 1.0 } else { 0.0 });
        assert!(prod.max_abs_diff(&eye) < 1e-10);
    }

    #[test]
    fn gram_is_symmetric_psd() {
        let a = Mat::from_fn(4, 7, |i, j| ((i * 7 + j) as f64 * 0.13).sin());
        let g = gram(&a);
        for i in 0..4 {
            assert!(g[(i, i)] >= 0.0);
            for j in 0..4 {
                assert_eq!(g[(i, j)], g[(j, i)]);
            }
        }
    }
}
