//! A GPTQ/OPTQ-style second-order post-training quantizer.
//!
//! OPTQ (Frantar et al., ICLR'23) quantizes a layer's weights column by
//! column, each time *compensating* the not-yet-quantized columns for the
//! error just introduced, using curvature information from a calibration
//! Hessian `H = X·Xᵀ`. The paper uses it as the quantizer behind the FIGNA
//! comparison points in Fig. 17 (uniform 2/3/4-bit OPT models).
//!
//! This is the classic OBQ update in its explicit form: after quantizing
//! column `j`, the remaining weights move by `−e·H⁻¹[j, j:]/H⁻¹[j, j]` and
//! `H⁻¹` is reduced by the Schur complement of entry `(j, j)`. The implicit
//! Cholesky formulation used by GPU implementations is algebraically
//! identical; we favor the transparent O(n³) version since our layer widths
//! are modest.

use crate::linalg::{gram, spd_inverse};
use crate::uniform::{empty_with_grid, rtn, RtnParams, UniformWeight};
use figlut_num::Mat;

/// Configuration for [`gptq_quantize`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GptqParams {
    /// Weight precision in bits (1..=8).
    pub bits: u32,
    /// Columns per scale group (`0` = per row).
    pub group_size: usize,
    /// Relative dampening added to the Hessian diagonal (GPTQ uses 0.01).
    pub damping: f64,
}

impl GptqParams {
    /// Per-row quantization at `bits` with the reference 1% dampening.
    pub fn per_row(bits: u32) -> Self {
        Self {
            bits,
            group_size: 0,
            damping: 0.01,
        }
    }
}

/// Quantize `w (m × n)` against calibration activations `x (n × samples)`.
///
/// The grid (scales/bases) is fixed up front from the original weights via
/// RTN statistics; GPTQ chooses the codes. Columns are processed in natural
/// order (activation-order permutation is an orthogonal trick the paper's
/// baselines do not enable).
///
/// # Panics
///
/// Panics if `x` has a row count different from `w`'s column count, or on
/// invalid `bits`/`group_size`.
pub fn gptq_quantize(w: &Mat<f64>, x: &Mat<f64>, params: GptqParams) -> UniformWeight {
    let (rows, cols) = w.shape();
    assert_eq!(
        x.rows(),
        cols,
        "calibration activations must be n × samples (n = {cols})"
    );
    // Grid from the unmodified weights.
    let seed = rtn(
        w,
        RtnParams {
            bits: params.bits,
            group_size: params.group_size,
            symmetric: false,
        },
    );
    let gs = seed.group_size();
    let groups = cols / gs;
    let scale = Mat::from_fn(rows, groups, |r, g| seed.scale(r, g * gs));
    let base = Mat::from_fn(rows, groups, |r, g| seed.base(r, g * gs));
    let mut q = empty_with_grid(rows, cols, params.bits, gs, scale, base);

    // Damped Hessian and its inverse.
    let mut h = gram(x);
    let mean_diag = (0..cols).map(|i| h[(i, i)]).sum::<f64>() / cols as f64;
    let damp = params.damping * mean_diag.max(1e-12);
    for i in 0..cols {
        h[(i, i)] += damp;
    }
    let mut hinv = spd_inverse(&h).expect("damped Hessian must be SPD");

    let mut work = w.clone();
    for j in 0..cols {
        let d = hinv[(j, j)];
        let compensate = d > 1e-12;
        for r in 0..rows {
            let wv = work[(r, j)];
            let code = q.nearest_code(r, j, wv);
            q.set_code(r, j, code);
            if compensate {
                let e = (wv - q.value(r, j)) / d;
                for j2 in j + 1..cols {
                    work[(r, j2)] -= e * hinv[(j, j2)];
                }
            }
        }
        if compensate {
            // Schur reduction: remove variable j from the inverse Hessian.
            for a in j + 1..cols {
                let f = hinv[(a, j)] / d;
                if f == 0.0 {
                    continue;
                }
                for b in j + 1..cols {
                    hinv[(a, b)] -= f * hinv[(j, b)];
                }
            }
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{output_mse, weight_mse};

    fn weights(rows: usize, cols: usize) -> Mat<f64> {
        Mat::from_fn(rows, cols, |r, c| {
            let t = (r * cols + c) as f64;
            (t * 0.37).sin() + 0.25 * (t * 0.091).cos()
        })
    }

    /// Correlated calibration activations (n × samples).
    fn calib(n: usize, samples: usize) -> Mat<f64> {
        Mat::from_fn(n, samples, |i, s| {
            let base = ((s as f64) * 0.61).sin();
            // Strong common component → off-diagonal Hessian mass, which is
            // exactly the regime where GPTQ beats RTN.
            2.0 * base + 0.4 * ((i * 7 + 3 * s) as f64 * 0.23).cos()
        })
    }

    #[test]
    fn identity_hessian_reduces_to_rtn() {
        // With uncorrelated unit-variance "activations" (X = I), there is
        // nothing to compensate: GPTQ must pick exactly the RTN codes.
        let w = weights(3, 8);
        let x = Mat::from_fn(8, 8, |i, j| if i == j { 1.0 } else { 0.0 });
        let g = gptq_quantize(
            &w,
            &x,
            GptqParams {
                bits: 3,
                group_size: 0,
                damping: 1e-9,
            },
        );
        let r = rtn(&w, RtnParams::per_row(3));
        assert!(g.dequantize().max_abs_diff(&r.dequantize()) < 1e-9);
    }

    #[test]
    fn gptq_beats_rtn_on_correlated_calibration() {
        let w = weights(6, 24);
        let x = calib(24, 96);
        for bits in [2u32, 3, 4] {
            let g = gptq_quantize(&w, &x, GptqParams::per_row(bits));
            let r = rtn(&w, RtnParams::per_row(bits));
            let eg = output_mse(&w, &g.dequantize(), &x);
            let er = output_mse(&w, &r.dequantize(), &x);
            assert!(
                eg <= er * 1.0001,
                "bits={bits}: GPTQ {eg} !<= RTN {er} on calibration objective"
            );
        }
    }

    #[test]
    fn gptq_weight_error_stays_bounded() {
        // GPTQ trades weight-space error for output-space error; it must
        // still stay on the quantization grid, so the weight error is within
        // the grid span.
        let w = weights(4, 16);
        let x = calib(16, 64);
        let g = gptq_quantize(&w, &x, GptqParams::per_row(4));
        let e = weight_mse(&w, &g.dequantize());
        // Grid span per row ≈ max−min ≤ ~2.5; a code can move at most the
        // full span, so MSE is bounded far below span².
        assert!(e < 1.0, "weight MSE {e} exploded");
    }

    #[test]
    fn more_bits_never_hurt_output_error() {
        let w = weights(4, 16);
        let x = calib(16, 48);
        let mut last = f64::INFINITY;
        for bits in [2u32, 3, 4, 5] {
            let g = gptq_quantize(&w, &x, GptqParams::per_row(bits));
            let e = output_mse(&w, &g.dequantize(), &x);
            assert!(e <= last * 1.05, "bits={bits}: {e} vs {last}");
            last = e.min(last);
        }
    }

    #[test]
    #[should_panic(expected = "n × samples")]
    fn rejects_mismatched_calibration() {
        let w = weights(2, 8);
        let x = Mat::zeros(7, 4);
        let _ = gptq_quantize(&w, &x, GptqParams::per_row(4));
    }
}
