//! Round-to-nearest (RTN) uniform quantization.
//!
//! The paper's accuracy study (Table IV) quantizes OPT weights with "the
//! simple uniform quantization method, round-to-nearest", 4-bit, per-row.
//! We implement the standard asymmetric (min/max) and symmetric (absmax)
//! grids with per-tensor, per-row, or group-wise granularity.
//!
//! A [`UniformWeight`] stores unsigned codes `v ∈ [0, 2^q)` with an affine
//! map `w = scale·v + base` per (row, group). That form makes the exact
//! uniform → BCQ-with-offset conversion (paper Eq. 3) a two-line formula;
//! see [`crate::bcq::BcqWeight::from_uniform`].

use figlut_num::Mat;

/// Quantization grid granularity and symmetry for [`rtn`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RtnParams {
    /// Weight precision in bits (1..=8).
    pub bits: u32,
    /// Columns that share one scale; `0` means the whole row is one group.
    pub group_size: usize,
    /// Symmetric (absmax, zero at grid center) vs asymmetric (min/max) grid.
    pub symmetric: bool,
}

impl RtnParams {
    /// Asymmetric per-row quantization at `bits` (the paper's RTN setup).
    pub fn per_row(bits: u32) -> Self {
        Self {
            bits,
            group_size: 0,
            symmetric: false,
        }
    }

    /// Asymmetric group-wise quantization.
    pub fn grouped(bits: u32, group_size: usize) -> Self {
        Self {
            bits,
            group_size,
            symmetric: false,
        }
    }
}

/// A uniformly quantized `rows × cols` weight matrix.
///
/// Element `(r, c)` dequantizes to `scale[r][g]·code + base[r][g]` where
/// `g = c / group_size`.
#[derive(Clone, Debug, PartialEq)]
pub struct UniformWeight {
    rows: usize,
    cols: usize,
    bits: u32,
    group_size: usize,
    codes: Vec<u8>,
    scale: Mat<f64>,
    base: Mat<f64>,
}

impl UniformWeight {
    /// Weight precision in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// `(rows, cols)` of the dequantized matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Columns per scale group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Number of scale groups per row.
    pub fn groups(&self) -> usize {
        self.cols.div_ceil(self.group_size)
    }

    /// Unsigned code of element `(r, c)`.
    #[inline]
    pub fn code(&self, r: usize, c: usize) -> u8 {
        self.codes[r * self.cols + c]
    }

    /// Scale of element `(r, c)`'s group.
    #[inline]
    pub fn scale(&self, r: usize, c: usize) -> f64 {
        self.scale[(r, c / self.group_size)]
    }

    /// Affine base (grid origin) of element `(r, c)`'s group.
    #[inline]
    pub fn base(&self, r: usize, c: usize) -> f64 {
        self.base[(r, c / self.group_size)]
    }

    /// Dequantized value of one element.
    #[inline]
    pub fn value(&self, r: usize, c: usize) -> f64 {
        self.scale(r, c) * self.code(r, c) as f64 + self.base(r, c)
    }

    /// Dequantize the whole matrix.
    pub fn dequantize(&self) -> Mat<f64> {
        Mat::from_fn(self.rows, self.cols, |r, c| self.value(r, c))
    }

    /// Replace the code at `(r, c)` (used by GPTQ's compensation loop).
    ///
    /// # Panics
    ///
    /// Panics if `code` does not fit in `bits`.
    pub fn set_code(&mut self, r: usize, c: usize, code: u8) {
        assert!(
            (code as u32) < (1 << self.bits),
            "code {code} out of range for {} bits",
            self.bits
        );
        self.codes[r * self.cols + c] = code;
    }

    /// Quantize `x` onto the grid of `(r, c)`'s group, returning the code.
    pub fn nearest_code(&self, r: usize, c: usize, x: f64) -> u8 {
        let s = self.scale(r, c);
        let b = self.base(r, c);
        let max = (1u32 << self.bits) - 1;
        if s == 0.0 {
            return 0;
        }
        let v = ((x - b) / s).round();
        v.clamp(0.0, max as f64) as u8
    }

    /// Payload size in bits: codes + one (scale, base) pair per group in the
    /// activation format's width (16 bits each here, matching the paper's
    /// storage accounting).
    pub fn payload_bits(&self) -> usize {
        self.rows * self.cols * self.bits as usize + self.rows * self.groups() * 32
    }
}

/// Round-to-nearest uniform quantization of `w`.
///
/// # Panics
///
/// Panics if `bits` is outside `1..=8` or `group_size` does not divide the
/// column count (when nonzero).
pub fn rtn(w: &Mat<f64>, params: RtnParams) -> UniformWeight {
    assert!(
        (1..=8).contains(&params.bits),
        "bits {} outside 1..=8",
        params.bits
    );
    let (rows, cols) = w.shape();
    let group_size = if params.group_size == 0 {
        cols
    } else {
        params.group_size
    };
    assert!(
        cols % group_size == 0,
        "group size {group_size} does not divide {cols} columns"
    );
    let groups = cols / group_size;
    let levels = (1u32 << params.bits) - 1;
    let mut scale = Mat::zeros(rows, groups);
    let mut base = Mat::zeros(rows, groups);
    let mut codes = vec![0u8; rows * cols];
    for r in 0..rows {
        for g in 0..groups {
            let slice = &w.row(r)[g * group_size..(g + 1) * group_size];
            let (s, b) = if params.symmetric {
                let absmax = slice.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
                // Codes 0..=levels map to −absmax..+absmax; zero code is the
                // midpoint (levels even keeps an exact zero for odd level
                // counts).
                let s = if absmax == 0.0 {
                    0.0
                } else {
                    2.0 * absmax / levels as f64
                };
                (s, -absmax)
            } else {
                let mn = slice.iter().cloned().fold(f64::INFINITY, f64::min);
                let mx = slice.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let s = if mx > mn {
                    (mx - mn) / levels as f64
                } else {
                    0.0
                };
                (s, mn)
            };
            scale[(r, g)] = s;
            base[(r, g)] = b;
            for (j, &x) in slice.iter().enumerate() {
                let code = if s == 0.0 {
                    0
                } else {
                    ((x - b) / s).round().clamp(0.0, levels as f64) as u8
                };
                codes[r * cols + g * group_size + j] = code;
            }
        }
    }
    UniformWeight {
        rows,
        cols,
        bits: params.bits,
        group_size,
        codes,
        scale,
        base,
    }
}

/// Build a [`UniformWeight`] with the given grids and all-zero codes, for
/// quantizers (like GPTQ) that fill codes themselves.
pub fn empty_with_grid(
    rows: usize,
    cols: usize,
    bits: u32,
    group_size: usize,
    scale: Mat<f64>,
    base: Mat<f64>,
) -> UniformWeight {
    let gs = if group_size == 0 { cols } else { group_size };
    assert!(
        cols.is_multiple_of(gs),
        "group size {gs} does not divide {cols}"
    );
    assert_eq!(scale.shape(), (rows, cols / gs), "scale shape");
    assert_eq!(base.shape(), (rows, cols / gs), "base shape");
    UniformWeight {
        rows,
        cols,
        bits,
        group_size: gs,
        codes: vec![0; rows * cols],
        scale,
        base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Mat<f64> {
        Mat::from_vec(2, 4, vec![0.0, 1.0, 2.0, 3.0, -1.0, -0.5, 0.5, 1.0])
    }

    #[test]
    fn rtn_exact_on_grid_values() {
        // Row 0 is exactly the 2-bit asymmetric grid [0, 3].
        let q = rtn(&toy(), RtnParams::per_row(2));
        let d = q.dequantize();
        for c in 0..4 {
            assert_eq!(d[(0, c)], c as f64);
        }
    }

    #[test]
    fn rtn_error_bounded_by_half_step() {
        let w = Mat::from_fn(4, 16, |r, c| ((r * 16 + c) as f64 * 0.37).sin());
        for bits in 2..=8 {
            let q = rtn(&w, RtnParams::per_row(bits));
            let d = q.dequantize();
            for r in 0..4 {
                let row = w.row(r);
                let mn = row.iter().cloned().fold(f64::INFINITY, f64::min);
                let mx = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let step = (mx - mn) / ((1u32 << bits) - 1) as f64;
                for c in 0..16 {
                    assert!(
                        (d[(r, c)] - w[(r, c)]).abs() <= step / 2.0 + 1e-12,
                        "bits={bits} r={r} c={c}"
                    );
                }
            }
        }
    }

    #[test]
    fn rtn_more_bits_never_worse() {
        let w = Mat::from_fn(8, 32, |r, c| ((r + 3 * c) as f64 * 0.711).cos());
        let mut last = f64::INFINITY;
        for bits in 1..=8 {
            let q = rtn(&w, RtnParams::per_row(bits));
            let err = crate::error::weight_mse(&w, &q.dequantize());
            assert!(err <= last + 1e-15, "bits={bits}: {err} > {last}");
            last = err;
        }
    }

    #[test]
    fn grouped_scales_beat_per_row() {
        // Each half sits exactly on its own 2-bit grid, but the two grids
        // are incompatible — group-wise scales capture both exactly while a
        // single per-row grid cannot.
        let w = Mat::from_vec(1, 8, vec![0.0, 0.1, 0.2, 0.3, 10.0, 13.0, 16.0, 19.0]);
        let per_row = rtn(&w, RtnParams::per_row(2));
        let grouped = rtn(&w, RtnParams::grouped(2, 4));
        let e_row = crate::error::weight_mse(&w, &per_row.dequantize());
        let e_grp = crate::error::weight_mse(&w, &grouped.dequantize());
        assert!(e_grp < e_row, "{e_grp} !< {e_row}");
        assert_eq!(grouped.groups(), 2);
    }

    #[test]
    fn symmetric_grid_covers_negatives() {
        let w = Mat::from_vec(1, 4, vec![-2.0, -1.0, 1.0, 2.0]);
        let q = rtn(
            &w,
            RtnParams {
                bits: 4,
                group_size: 0,
                symmetric: true,
            },
        );
        let d = q.dequantize();
        for c in 0..4 {
            assert!((d[(0, c)] - w[(0, c)]).abs() <= 2.0 * 2.0 / 15.0 / 2.0 + 1e-12);
        }
    }

    #[test]
    fn constant_row_quantizes_exactly() {
        let w = Mat::from_fn(1, 6, |_, _| 0.25);
        let q = rtn(&w, RtnParams::per_row(4));
        assert_eq!(q.dequantize().row(0), &[0.25; 6]);
    }

    #[test]
    fn nearest_code_clamps() {
        let q = rtn(&toy(), RtnParams::per_row(2));
        assert_eq!(q.nearest_code(0, 0, 100.0), 3);
        assert_eq!(q.nearest_code(0, 0, -100.0), 0);
        assert_eq!(q.nearest_code(0, 0, 1.2), 1);
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn bad_group_size_rejected() {
        let _ = rtn(&toy(), RtnParams::grouped(4, 3));
    }
}
