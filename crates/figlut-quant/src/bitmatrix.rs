//! Packed binary (±1) weight planes.
//!
//! A BCQ weight of precision `q` is `q` bit-planes, each an `m × n` matrix
//! over `{−1, +1}`. We store a plane as packed `u64` words, one row at a
//! time, bit = 1 meaning `+1`. The packing order (LSB of word 0 is column 0)
//! is also the order the LUT key extractor in `figlut-lut` consumes, so a
//! row can be sliced into µ-bit keys with shifts and masks only.

use core::fmt;

/// A dense `rows × cols` matrix over `{−1, +1}`, bit-packed by row.
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    /// All-minus-one matrix (all bits clear).
    pub fn new(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        Self {
            rows,
            cols,
            words_per_row,
            data: vec![0; rows * words_per_row],
        }
    }

    /// Build from a closure returning `true` for `+1`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut m = Self::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if f(r, c) {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    /// Build from signs: positive values (and zero) become `+1`.
    pub fn from_signs(rows: usize, cols: usize, values: &[f64]) -> Self {
        assert_eq!(values.len(), rows * cols, "sign buffer length mismatch");
        Self::from_fn(rows, cols, |r, c| values[r * cols + c] >= 0.0)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` ⇔ the element is `+1`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of bounds");
        let w = self.data[r * self.words_per_row + c / 64];
        (w >> (c % 64)) & 1 == 1
    }

    /// The element as `+1.0` / `−1.0`.
    #[inline]
    pub fn sign(&self, r: usize, c: usize) -> f64 {
        if self.get(r, c) {
            1.0
        } else {
            -1.0
        }
    }

    /// The element as `+1` / `−1`.
    #[inline]
    pub fn sign_i(&self, r: usize, c: usize) -> i64 {
        if self.get(r, c) {
            1
        } else {
            -1
        }
    }

    /// Set element `(r, c)` to `+1` (`true`) or `−1` (`false`).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, plus: bool) {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of bounds");
        let w = &mut self.data[r * self.words_per_row + c / 64];
        if plus {
            *w |= 1 << (c % 64);
        } else {
            *w &= !(1 << (c % 64));
        }
    }

    /// Extract `width ≤ 16` consecutive column bits of row `r` starting at
    /// column `c0` as an integer key (bit 0 ↔ column `c0`).
    ///
    /// Columns past `cols` read as 0 (−1), so callers may ask for a full
    /// window at the ragged right edge.
    ///
    /// # Panics
    ///
    /// Panics if `width > 16` or `r`/`c0` are out of bounds.
    pub fn key(&self, r: usize, c0: usize, width: usize) -> u16 {
        assert!(width <= 16, "key width {width} > 16");
        assert!(r < self.rows && c0 < self.cols, "({r},{c0}) out of bounds");
        let row = &self.data[r * self.words_per_row..(r + 1) * self.words_per_row];
        let word = c0 / 64;
        let off = c0 % 64;
        let mut bits = row[word] >> off;
        if off + width > 64 && word + 1 < row.len() {
            bits |= row[word + 1] << (64 - off);
        }
        let in_range = (self.cols - c0).min(width);
        let mask = if in_range >= 16 {
            u16::MAX
        } else {
            (1u16 << in_range) - 1
        };
        (bits as u16) & mask & (((1u32 << width) - 1) as u16)
    }

    /// The packed words of row `r` (bit `c % 64` of word `c / 64` ↔ column
    /// `c`; padding bits beyond `cols` are always 0). This is the layout
    /// fast executors copy verbatim instead of re-reading bit by bit.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_words(&self, r: usize) -> &[u64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Count of `+1` entries.
    pub fn count_plus(&self) -> usize {
        // Padding bits beyond `cols` are always zero, so popcount is safe.
        self.data.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Storage footprint in bits (excluding padding), i.e. `rows × cols`.
    pub fn payload_bits(&self) -> usize {
        self.rows * self.cols
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix {}×{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(64) {
                write!(f, "{}", if self.get(r, c) { '+' } else { '-' })?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut m = BitMatrix::new(3, 70); // spans two words per row
        assert!(!m.get(0, 0));
        m.set(1, 65, true);
        m.set(1, 0, true);
        assert!(m.get(1, 65));
        assert!(m.get(1, 0));
        assert!(!m.get(1, 64));
        m.set(1, 65, false);
        assert!(!m.get(1, 65));
    }

    #[test]
    fn signs() {
        let m = BitMatrix::from_signs(1, 4, &[1.0, -2.0, 0.0, -0.5]);
        assert_eq!(m.sign(0, 0), 1.0);
        assert_eq!(m.sign(0, 1), -1.0);
        assert_eq!(m.sign(0, 2), 1.0, "zero maps to +1");
        assert_eq!(m.sign_i(0, 3), -1);
    }

    #[test]
    fn key_extraction_within_word() {
        // Row bits: columns 0..6 = + - - + + -  → bits 0b011001 (LSB = col 0).
        let m = BitMatrix::from_fn(1, 6, |_, c| [true, false, false, true, true, false][c]);
        assert_eq!(m.key(0, 0, 3), 0b001);
        assert_eq!(m.key(0, 3, 3), 0b011);
        assert_eq!(m.key(0, 0, 6), 0b011001);
    }

    #[test]
    fn key_extraction_across_word_boundary() {
        let mut m = BitMatrix::new(1, 130);
        m.set(0, 62, true);
        m.set(0, 63, true);
        m.set(0, 64, true);
        m.set(0, 66, true);
        // Window [62, 66): bits for 62,63,64,65 → 1,1,1,0 → 0b0111.
        assert_eq!(m.key(0, 62, 4), 0b0111);
        // Window [63, 67): 63,64,65,66 → 1,1,0,1 → 0b1011.
        assert_eq!(m.key(0, 63, 4), 0b1011);
    }

    #[test]
    fn key_at_ragged_edge_pads_with_zero() {
        let m = BitMatrix::from_fn(1, 5, |_, _| true);
        // Window starting at column 4 with width 4 covers one real column.
        assert_eq!(m.key(0, 4, 4), 0b0001);
    }

    #[test]
    fn count_plus() {
        let m = BitMatrix::from_fn(2, 100, |r, c| (r + c) % 3 == 0);
        let expect = (0..2)
            .flat_map(|r| (0..100).map(move |c| (r + c) % 3 == 0))
            .filter(|&b| b)
            .count();
        assert_eq!(m.count_plus(), expect);
    }

    #[test]
    fn row_words_match_bits() {
        let m = BitMatrix::from_fn(3, 130, |r, c| (r * 130 + c) % 5 == 0);
        for r in 0..3 {
            let words = m.row_words(r);
            assert_eq!(words.len(), 3);
            for c in 0..130 {
                let bit = (words[c / 64] >> (c % 64)) & 1 == 1;
                assert_eq!(bit, m.get(r, c), "({r},{c})");
            }
            // Padding beyond `cols` is zero.
            assert_eq!(words[2] >> (130 - 128), 0);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_bounds_checked() {
        let m = BitMatrix::new(2, 2);
        let _ = m.get(2, 0);
    }
}
