#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # figlut-quant — weight-only quantization substrate
//!
//! FIGLUT (HPCA'25) evaluates weight-only-quantized LLMs whose weights come
//! from several quantizers. This crate implements all of them from scratch:
//!
//! * [`uniform`] — round-to-nearest (RTN) uniform quantization with
//!   per-tensor / per-row / group-wise scales (the paper's Table IV setup).
//! * [`awq`] — AWQ-style activation-aware channel scaling before RTN
//!   (paper reference \[25\]), provided as a quantizer extension.
//! * [`bcq`] — **binary-coding quantization**: `w ≈ Σᵢ αᵢ·bᵢ + z` with
//!   `bᵢ ∈ {−1,+1}`, optimized by the greedy + alternating scheme of Xu et
//!   al. (2018), plus the *exact* uniform→BCQ conversion with offset from
//!   LUT-GEMM (paper Eq. 3 / Fig. 1).
//! * [`gptq`] — a GPTQ/OPTQ-style second-order quantizer (calibration
//!   Hessian, column-by-column quantize-then-compensate via Cholesky), used
//!   for the FIGNA baseline points of Fig. 17.
//! * [`shiftadd`] — ShiftAddLLM-style post-training BCQ with
//!   activation-weighted alternating optimization and sensitivity-based
//!   **mixed-precision** bit allocation (the paper's Q2.2 / Q2.4 / Q2.6
//!   configurations).
//! * [`bitmatrix`] — packed ±1 bit-planes, the storage format every engine
//!   consumes.
//! * [`error`] — weight-space and output-space error metrics.
//! * [`linalg`] — the small dense Cholesky/solve kernels the quantizers need.
//!
//! The quantized-weight containers ([`BcqWeight`], [`uniform::UniformWeight`])
//! are the interchange types consumed by `figlut-gemm`'s engine models.

pub mod awq;
pub mod bcq;
pub mod bitmatrix;
pub mod error;
pub mod gptq;
pub mod linalg;
pub mod shiftadd;
pub mod uniform;

pub use bcq::{BcqParams, BcqWeight};
pub use bitmatrix::BitMatrix;
pub use uniform::{RtnParams, UniformWeight};
