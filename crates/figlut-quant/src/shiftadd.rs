//! ShiftAddLLM-style BCQ quantization with mixed-precision allocation.
//!
//! ShiftAddLLM (You et al., 2024) produces the state-of-the-art BCQ models
//! the paper runs on FIGLUT (Fig. 17, Table VI). Its two ingredients, both
//! implemented here:
//!
//! 1. **Activation-aware BCQ**: the alternating optimizer minimizes a
//!    calibration-weighted objective, `Σ_c diag(H)_c·(w_c − ŵ_c)²`, rather
//!    than plain weight MSE. We reuse [`BcqWeight::quantize_weighted`] with
//!    the Hessian diagonal as column importance.
//! 2. **Sensitivity-based mixed precision**: each layer gets 2/3/4 planes
//!    according to how much its output error improves per extra plane,
//!    subject to a global average-bit budget. This produces the fractional
//!    precisions the paper reports (Q2.2, Q2.4, …) — only a *bit-serial*
//!    accelerator like FIGLUT can execute them on one hardware config.

use crate::bcq::{BcqParams, BcqWeight};
use crate::error::output_mse;
use figlut_num::Mat;

/// Configuration for [`quantize_layer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShiftAddParams {
    /// Binary planes for this layer.
    pub bits: u32,
    /// Columns per (α, z) group (`0` = per row).
    pub group_size: usize,
    /// Alternating refinement iterations.
    pub refine_iters: usize,
}

impl ShiftAddParams {
    /// Per-row quantization at `bits`.
    pub fn per_row(bits: u32) -> Self {
        Self {
            bits,
            group_size: 0,
            refine_iters: 12,
        }
    }
}

/// Column importance from calibration activations: `d_c = Σ_s x[c][s]²`
/// (the diagonal of the layer Hessian `X·Xᵀ`).
pub fn hessian_diag(x: &Mat<f64>) -> Vec<f64> {
    (0..x.rows())
        .map(|c| x.row(c).iter().map(|v| v * v).sum())
        .collect()
}

/// Quantize one layer with activation-weighted BCQ.
///
/// `x` is the layer's calibration activation matrix (`n × samples`); pass
/// `None` for plain weight-MSE BCQ.
pub fn quantize_layer(w: &Mat<f64>, x: Option<&Mat<f64>>, params: ShiftAddParams) -> BcqWeight {
    let bcq = BcqParams {
        bits: params.bits,
        group_size: params.group_size,
        with_offset: true,
        refine_iters: params.refine_iters,
    };
    match x {
        Some(x) => {
            assert_eq!(
                x.rows(),
                w.cols(),
                "calibration activations must be n × samples"
            );
            let d = hessian_diag(x);
            BcqWeight::quantize_weighted(w, bcq, Some(&d))
        }
        None => BcqWeight::quantize(w, bcq),
    }
}

/// One layer of a model being allocated mixed precision.
pub struct LayerInput<'a> {
    /// Display name (diagnostics only).
    pub name: &'a str,
    /// Layer weights (`m × n`).
    pub weights: &'a Mat<f64>,
    /// Calibration activations (`n × samples`), if available.
    pub calibration: Option<&'a Mat<f64>>,
}

/// Result of a mixed-precision allocation.
#[derive(Clone, Debug, PartialEq)]
pub struct MixedAllocation {
    /// Chosen plane count per layer (parallel to the input slice).
    pub bits: Vec<u32>,
    /// Parameter-weighted average bits (e.g. `2.4`).
    pub average_bits: f64,
}

/// Allocate per-layer plane counts to meet `avg_bits` on average (weighted
/// by parameter count), choosing among `candidates` (sorted ascending).
///
/// Greedy marginal-utility allocation: start every layer at the minimum
/// candidate, then repeatedly upgrade the layer with the best error
/// reduction per added bit·parameter until the budget is exhausted. This is
/// the classic sensitivity-based scheme ShiftAddLLM describes.
///
/// # Panics
///
/// Panics if `candidates` is empty/unsorted or `avg_bits` is below the
/// smallest candidate.
pub fn allocate_mixed_precision(
    layers: &[LayerInput<'_>],
    candidates: &[u32],
    avg_bits: f64,
    refine_iters: usize,
) -> MixedAllocation {
    assert!(!candidates.is_empty(), "no candidate precisions");
    assert!(
        candidates.windows(2).all(|w| w[0] < w[1]),
        "candidates must be strictly ascending"
    );
    assert!(
        avg_bits >= candidates[0] as f64,
        "average budget {avg_bits} below minimum candidate {}",
        candidates[0]
    );
    let params: Vec<f64> = layers
        .iter()
        .map(|l| (l.weights.rows() * l.weights.cols()) as f64)
        .collect();
    let total_params: f64 = params.iter().sum();
    let budget_bits = avg_bits * total_params;

    // Error of each (layer, candidate) pair.
    let mut err = vec![vec![0.0f64; candidates.len()]; layers.len()];
    for (li, layer) in layers.iter().enumerate() {
        for (ci, &b) in candidates.iter().enumerate() {
            let q = quantize_layer(
                layer.weights,
                layer.calibration,
                ShiftAddParams {
                    bits: b,
                    group_size: 0,
                    refine_iters,
                },
            );
            let dq = q.dequantize();
            err[li][ci] = match layer.calibration {
                Some(x) => output_mse(layer.weights, &dq, x) * params[li],
                None => crate::error::weight_mse(layer.weights, &dq) * params[li],
            };
        }
    }

    let mut level = vec![0usize; layers.len()];
    let mut used: f64 = layers
        .iter()
        .zip(&params)
        .map(|(_, p)| p * candidates[0] as f64)
        .sum();
    loop {
        // Best upgrade under the remaining budget.
        let mut best: Option<(usize, f64)> = None;
        for li in 0..layers.len() {
            let ci = level[li];
            if ci + 1 >= candidates.len() {
                continue;
            }
            let extra = (candidates[ci + 1] - candidates[ci]) as f64 * params[li];
            if used + extra > budget_bits + 1e-9 {
                continue;
            }
            let gain = (err[li][ci] - err[li][ci + 1]) / extra;
            if best.is_none_or(|(_, g)| gain > g) {
                best = Some((li, gain));
            }
        }
        match best {
            Some((li, _)) => {
                used += (candidates[level[li] + 1] - candidates[level[li]]) as f64 * params[li];
                level[li] += 1;
            }
            None => break,
        }
    }
    let bits: Vec<u32> = level.iter().map(|&ci| candidates[ci]).collect();
    let average_bits = bits
        .iter()
        .zip(&params)
        .map(|(&b, &p)| b as f64 * p)
        .sum::<f64>()
        / total_params;
    MixedAllocation { bits, average_bits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::weight_mse;

    fn weights(seed: usize, rows: usize, cols: usize, spread: f64) -> Mat<f64> {
        Mat::from_fn(rows, cols, |r, c| {
            let t = (seed * 7919 + r * cols + c) as f64;
            spread * ((t * 0.37).sin() + 0.3 * (t * 0.113).cos())
        })
    }

    fn calib(n: usize, samples: usize) -> Mat<f64> {
        Mat::from_fn(n, samples, |i, s| {
            // Column 0..n/4 are hot, the rest cold — a strong importance
            // signal for the weighted objective.
            let heat = if i < n / 4 { 4.0 } else { 0.25 };
            heat * (((i * 13 + s * 7) as f64) * 0.29).sin()
        })
    }

    #[test]
    fn weighted_objective_improves_output_error() {
        let w = weights(1, 8, 32, 1.0);
        let x = calib(32, 64);
        let plain = quantize_layer(&w, None, ShiftAddParams::per_row(2));
        let aware = quantize_layer(&w, Some(&x), ShiftAddParams::per_row(2));
        let e_plain = output_mse(&w, &plain.dequantize(), &x);
        let e_aware = output_mse(&w, &aware.dequantize(), &x);
        assert!(
            e_aware <= e_plain * 1.0001,
            "activation-aware {e_aware} !<= plain {e_plain}"
        );
    }

    #[test]
    fn hessian_diag_matches_definition() {
        let x = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 0.5, 0.0, -0.5]);
        let d = hessian_diag(&x);
        assert_eq!(d, vec![14.0, 0.5]);
    }

    #[test]
    fn allocation_respects_budget_and_prefers_sensitive_layers() {
        // Layer 0 has wild weights (sensitive), layer 1 is nearly constant.
        let w0 = weights(1, 8, 32, 2.0);
        let w1 = Mat::from_fn(8, 32, |_, c| 0.001 * (c as f64 * 0.1).sin());
        let layers = [
            LayerInput {
                name: "sensitive",
                weights: &w0,
                calibration: None,
            },
            LayerInput {
                name: "robust",
                weights: &w1,
                calibration: None,
            },
        ];
        let alloc = allocate_mixed_precision(&layers, &[2, 3, 4], 3.0, 4);
        assert!(
            alloc.average_bits <= 3.0 + 1e-9,
            "avg {}",
            alloc.average_bits
        );
        assert!(
            alloc.bits[0] >= alloc.bits[1],
            "sensitive layer got {} bits, robust {}",
            alloc.bits[0],
            alloc.bits[1]
        );
        assert!(alloc.bits[0] > 2, "budget should be spent");
    }

    #[test]
    fn fractional_budget_yields_fractional_average() {
        let mats: Vec<Mat<f64>> = (0..5).map(|i| weights(i, 4, 16, 1.0 + i as f64)).collect();
        let layers: Vec<LayerInput<'_>> = mats
            .iter()
            .map(|m| LayerInput {
                name: "l",
                weights: m,
                calibration: None,
            })
            .collect();
        let alloc = allocate_mixed_precision(&layers, &[2, 3, 4], 2.4, 4);
        assert!(alloc.average_bits <= 2.4 + 1e-9);
        assert!(alloc.average_bits > 2.0, "nothing was upgraded");
        // Mixed: at least two distinct precisions in use.
        let distinct: std::collections::BTreeSet<u32> = alloc.bits.iter().copied().collect();
        assert!(distinct.len() >= 2, "allocation {:?} not mixed", alloc.bits);
    }

    #[test]
    fn full_budget_upgrades_everything() {
        let mats: Vec<Mat<f64>> = (0..3).map(|i| weights(i, 4, 16, 1.0)).collect();
        let layers: Vec<LayerInput<'_>> = mats
            .iter()
            .map(|m| LayerInput {
                name: "l",
                weights: m,
                calibration: None,
            })
            .collect();
        let alloc = allocate_mixed_precision(&layers, &[2, 3, 4], 4.0, 4);
        assert_eq!(alloc.bits, vec![4, 4, 4]);
        assert_eq!(alloc.average_bits, 4.0);
    }

    #[test]
    fn more_planes_reduce_layer_error() {
        let w = weights(3, 8, 32, 1.0);
        let e2 = weight_mse(
            &w,
            &quantize_layer(&w, None, ShiftAddParams::per_row(2)).dequantize(),
        );
        let e4 = weight_mse(
            &w,
            &quantize_layer(&w, None, ShiftAddParams::per_row(4)).dequantize(),
        );
        assert!(e4 < e2);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_candidates() {
        let w = weights(0, 2, 8, 1.0);
        let layers = [LayerInput {
            name: "l",
            weights: &w,
            calibration: None,
        }];
        let _ = allocate_mixed_precision(&layers, &[3, 2], 3.0, 2);
    }
}
