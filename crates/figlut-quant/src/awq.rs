//! An AWQ-style activation-aware scaling quantizer (Lin et al., MLSys'24 —
//! the paper's reference \[25\]).
//!
//! AWQ observes that a small fraction of weight *channels* matter far more
//! than others because their activations are large. Instead of keeping
//! salient channels in FP (mixed formats complicate kernels), it scales
//! salient input channels up before RTN quantization and folds the inverse
//! scale into the preceding operation: `y = (W·diag(s)) · (diag(s)⁻¹·x)`.
//! The grid then spends its resolution where activations are hot.
//!
//! We implement the standard grid search over the scale exponent
//! `s_c = E[|x_c|]^α, α ∈ [0, 1]`, picking the α that minimizes output MSE
//! on the calibration set. The result is a plain [`UniformWeight`] over the
//! scaled weights plus the per-channel activation scales the runtime must
//! fold in; [`AwqWeight::dequantize_effective`] returns the effective
//! (unscaled-input-space) weights for engines that don't fold.

use crate::error::output_mse;
use crate::uniform::{rtn, RtnParams, UniformWeight};
use figlut_num::Mat;

/// Configuration for [`awq_quantize`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AwqParams {
    /// Weight precision in bits.
    pub bits: u32,
    /// Columns per scale group (`0` = per row).
    pub group_size: usize,
    /// Grid points for the α search (AWQ uses 20).
    pub grid: usize,
}

impl AwqParams {
    /// Per-row quantization at `bits` with the reference 20-point grid.
    pub fn per_row(bits: u32) -> Self {
        Self {
            bits,
            group_size: 0,
            grid: 20,
        }
    }
}

/// AWQ output: quantized scaled weights + per-input-channel scales.
#[derive(Clone, Debug)]
pub struct AwqWeight {
    /// RTN-quantized `W·diag(s)`.
    pub quantized: UniformWeight,
    /// Per-input-channel scales `s_c ≥ 1` the runtime folds into the
    /// producer of `x` (so the kernel sees `x_c / s_c`).
    pub channel_scale: Vec<f64>,
    /// The α chosen by the grid search.
    pub alpha: f64,
}

impl AwqWeight {
    /// Effective weights in the *original* activation space:
    /// `Ŵ_eff[r][c] = Ŵ_scaled[r][c] / s_c`.
    pub fn dequantize_effective(&self) -> Mat<f64> {
        let d = self.quantized.dequantize();
        Mat::from_fn(d.rows(), d.cols(), |r, c| d[(r, c)] / self.channel_scale[c])
    }
}

/// Quantize `w (m × n)` with activation-aware scaling against calibration
/// activations `x (n × samples)`.
///
/// # Panics
///
/// Panics if `x` has a row count different from `w`'s column count.
pub fn awq_quantize(w: &Mat<f64>, x: &Mat<f64>, params: AwqParams) -> AwqWeight {
    let (_m, n) = w.shape();
    assert_eq!(x.rows(), n, "calibration activations must be n × samples");
    // Mean absolute activation per channel, normalized so the geometric
    // mean of scales stays near 1 (AWQ's normalization).
    let mean_abs: Vec<f64> = (0..n)
        .map(|c| {
            let row = x.row(c);
            row.iter().map(|v| v.abs()).sum::<f64>() / row.len() as f64 + 1e-12
        })
        .collect();
    let log_mean = mean_abs.iter().map(|v| v.ln()).sum::<f64>() / n as f64;
    let norm: Vec<f64> = mean_abs.iter().map(|v| (v.ln() - log_mean).exp()).collect();

    let rtn_params = RtnParams {
        bits: params.bits,
        group_size: params.group_size,
        symmetric: false,
    };
    let mut best: Option<(f64, f64, UniformWeight, Vec<f64>)> = None;
    for gi in 0..params.grid {
        let alpha = gi as f64 / (params.grid - 1).max(1) as f64;
        let scale: Vec<f64> = norm.iter().map(|v| v.powf(alpha).max(1e-6)).collect();
        let scaled = Mat::from_fn(w.rows(), n, |r, c| w[(r, c)] * scale[c]);
        let q = rtn(&scaled, rtn_params);
        // Effective reconstruction in original space.
        let dq = q.dequantize();
        let eff = Mat::from_fn(w.rows(), n, |r, c| dq[(r, c)] / scale[c]);
        let err = output_mse(w, &eff, x);
        if best.as_ref().is_none_or(|(e, ..)| err < *e) {
            best = Some((err, alpha, q, scale));
        }
    }
    let (_, alpha, quantized, channel_scale) = best.expect("grid is non-empty");
    AwqWeight {
        quantized,
        channel_scale,
        alpha,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::output_mse;

    fn weights(m: usize, n: usize) -> Mat<f64> {
        Mat::from_fn(m, n, |r, c| ((r * n + c) as f64 * 0.217).sin() * 0.4)
    }

    /// Calibration with a few dominant (salient) channels.
    fn calib(n: usize, samples: usize) -> Mat<f64> {
        Mat::from_fn(n, samples, |i, s| {
            let heat = if i % 8 == 0 { 12.0 } else { 0.5 };
            heat * (((i * 13 + s * 7) as f64) * 0.29).sin()
        })
    }

    #[test]
    fn awq_beats_plain_rtn_on_output_error() {
        let w = weights(8, 32);
        let x = calib(32, 64);
        for bits in [2u32, 3] {
            let plain = rtn(&w, RtnParams::per_row(bits));
            let awq = awq_quantize(&w, &x, AwqParams::per_row(bits));
            let e_plain = output_mse(&w, &plain.dequantize(), &x);
            let e_awq = output_mse(&w, &awq.dequantize_effective(), &x);
            assert!(
                e_awq <= e_plain * 1.0001,
                "bits={bits}: AWQ {e_awq} !<= RTN {e_plain}"
            );
        }
    }

    #[test]
    fn alpha_zero_recovers_rtn() {
        // With a 1-point grid the search can only pick α = 0 → scales 1.
        let w = weights(4, 16);
        let x = calib(16, 32);
        let awq = awq_quantize(
            &w,
            &x,
            AwqParams {
                bits: 3,
                group_size: 0,
                grid: 1,
            },
        );
        assert_eq!(awq.alpha, 0.0);
        let plain = rtn(&w, RtnParams::per_row(3));
        assert!(awq.quantized.dequantize().max_abs_diff(&plain.dequantize()) < 1e-12);
    }

    #[test]
    fn salient_channels_get_larger_scales() {
        let w = weights(4, 32);
        let x = calib(32, 64);
        let awq = awq_quantize(&w, &x, AwqParams::per_row(2));
        if awq.alpha > 0.0 {
            let hot: f64 = (0..32).step_by(8).map(|c| awq.channel_scale[c]).sum();
            let cold: f64 = (1..32)
                .filter(|c| c % 8 != 0)
                .map(|c| awq.channel_scale[c])
                .sum();
            assert!(hot / 4.0 > cold / 28.0, "hot channels should scale up");
        }
    }

    #[test]
    fn scales_are_positive_finite() {
        let w = weights(3, 16);
        let x = calib(16, 24);
        let awq = awq_quantize(&w, &x, AwqParams::per_row(4));
        assert!(awq.channel_scale.iter().all(|s| s.is_finite() && *s > 0.0));
        assert!((0.0..=1.0).contains(&awq.alpha));
    }
}
