//! Binary-coding quantization (BCQ) with optional offset.
//!
//! BCQ expresses a real weight as a signed combination of binary planes:
//!
//! ```text
//! w ≈ Σᵢ αᵢ·bᵢ + z,    bᵢ ∈ {−1, +1},  αᵢ ≥ 0
//! ```
//!
//! This is the weight format FIGLUT executes natively — each plane is
//! streamed through the bit-serial MPU, the RACs look up `±x` combinations,
//! and the α/z scaling happens once per plane at the array edge.
//!
//! Two constructions are provided:
//!
//! * [`BcqWeight::quantize`] — the greedy + alternating optimizer of Xu et
//!   al. (2018) (non-uniform grids; what ShiftAddLLM builds on), optionally
//!   weighted by per-column importance ([`BcqWeight::quantize_weighted`]).
//! * [`BcqWeight::from_uniform`] — the *exact* rewrite of any uniform grid
//!   into BCQ-with-offset (LUT-GEMM / paper Eq. 3 and Fig. 1): scaling
//!   factors become `s·2^(i−1)` and the offset absorbs the grid origin.
//!   This is how FIGLUT runs uniformly quantized (RTN / GPTQ) models on
//!   BCQ-format hardware with zero additional error.

use crate::bitmatrix::BitMatrix;
use crate::linalg::solve_spd;
use figlut_num::Mat;

/// Configuration for the BCQ optimizer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BcqParams {
    /// Number of binary planes `q` (1..=8).
    pub bits: u32,
    /// Columns sharing one (α, z) set; `0` = whole row.
    pub group_size: usize,
    /// Include the offset term `z` (required to represent uniform grids).
    pub with_offset: bool,
    /// Alternating-refinement iterations after the greedy init.
    pub refine_iters: usize,
}

impl BcqParams {
    /// Per-row non-uniform BCQ with offset and a practical refinement depth.
    pub fn per_row(bits: u32) -> Self {
        Self {
            bits,
            group_size: 0,
            with_offset: true,
            refine_iters: 12,
        }
    }

    /// Group-wise variant.
    pub fn grouped(bits: u32, group_size: usize) -> Self {
        Self {
            group_size,
            ..Self::per_row(bits)
        }
    }
}

/// A BCQ-quantized `rows × cols` weight matrix.
#[derive(Clone, Debug)]
pub struct BcqWeight {
    rows: usize,
    cols: usize,
    group_size: usize,
    /// `q` sign planes, each `rows × cols`.
    planes: Vec<BitMatrix>,
    /// Per-plane scale, `rows × groups` each.
    alpha: Vec<Mat<f64>>,
    /// Offset `z`, `rows × groups` (absent for pure non-uniform BCQ).
    offset: Option<Mat<f64>>,
}

impl BcqWeight {
    /// Number of binary planes `q`.
    pub fn bits(&self) -> u32 {
        self.planes.len() as u32
    }

    /// `(rows, cols)` of the represented matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Columns per scale group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Scale groups per row.
    pub fn groups(&self) -> usize {
        self.cols / self.group_size
    }

    /// Sign plane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ bits()`.
    pub fn plane(&self, i: usize) -> &BitMatrix {
        &self.planes[i]
    }

    /// All planes, LSB-equivalent first (for uniform conversions plane `i`
    /// carries weight `2^i`).
    pub fn planes(&self) -> &[BitMatrix] {
        &self.planes
    }

    /// Scale of plane `i` for element `(r, c)`.
    #[inline]
    pub fn alpha(&self, i: usize, r: usize, c: usize) -> f64 {
        self.alpha[i][(r, c / self.group_size)]
    }

    /// Offset `z` for element `(r, c)` (0 when the format has no offset).
    #[inline]
    pub fn offset(&self, r: usize, c: usize) -> f64 {
        self.offset
            .as_ref()
            .map_or(0.0, |z| z[(r, c / self.group_size)])
    }

    /// `true` if the container carries an offset plane.
    pub fn has_offset(&self) -> bool {
        self.offset.is_some()
    }

    /// Dequantized value of one element.
    pub fn value(&self, r: usize, c: usize) -> f64 {
        let mut v = self.offset(r, c);
        for (i, plane) in self.planes.iter().enumerate() {
            v += self.alpha(i, r, c) * plane.sign(r, c);
        }
        v
    }

    /// Dequantize the whole matrix.
    pub fn dequantize(&self) -> Mat<f64> {
        Mat::from_fn(self.rows, self.cols, |r, c| self.value(r, c))
    }

    /// Storage payload in bits: `q` planes of 1 bit/weight plus 16-bit α per
    /// (plane, row, group) and 16-bit z per (row, group) — the accounting the
    /// paper uses when reporting compression (e.g. "Q2.4 compresses the
    /// model by 20% vs Q3").
    pub fn payload_bits(&self) -> usize {
        let q = self.planes.len();
        self.rows * self.cols * q
            + self.rows * self.groups() * 16 * q
            + if self.offset.is_some() {
                self.rows * self.groups() * 16
            } else {
                0
            }
    }

    /// Exact conversion of a uniform grid to BCQ-with-offset (paper Eq. 3).
    ///
    /// Plane `i` holds bit `i` of the unsigned code; its scale is
    /// `s·2^(i−1)` (i.e. `s·2^i / 2`) and the offset becomes
    /// `z = s·(2^q − 1)/2 + base`. The represented values are identical to
    /// the uniform container's, so FIGLUT can execute RTN/GPTQ models
    /// without any re-quantization error.
    pub fn from_uniform(u: &crate::uniform::UniformWeight) -> Self {
        let (rows, cols) = u.shape();
        let q = u.bits();
        let gs = u.group_size();
        let groups = cols / gs;
        let planes: Vec<BitMatrix> = (0..q)
            .map(|i| BitMatrix::from_fn(rows, cols, |r, c| (u.code(r, c) >> i) & 1 == 1))
            .collect();
        let alpha: Vec<Mat<f64>> = (0..q)
            .map(|i| {
                Mat::from_fn(rows, groups, |r, g| {
                    u.scale(r, g * gs) * (1u64 << i) as f64 / 2.0
                })
            })
            .collect();
        let levels = ((1u64 << q) - 1) as f64;
        let offset = Mat::from_fn(rows, groups, |r, g| {
            u.scale(r, g * gs) * levels / 2.0 + u.base(r, g * gs)
        });
        Self {
            rows,
            cols,
            group_size: gs,
            planes,
            alpha,
            offset: Some(offset),
        }
    }

    /// Reassemble a `BcqWeight` from raw planes and scales.
    ///
    /// This is the inverse direction of accessor-based deconstruction: an
    /// execution backend that re-packs planes into its own layout (e.g.
    /// `figlut-exec`) uses it to hand weights back to the datapath models
    /// for differential testing. The represented values are exactly
    /// `Σᵢ αᵢ·bᵢ (+ z)` per element, as for every other constructor.
    ///
    /// # Panics
    ///
    /// Panics if `planes` is empty or exceeds 8 entries, plane shapes
    /// disagree, `group_size` is 0 or does not divide the columns, or the
    /// `alpha`/`offset` matrices are not `rows × cols/group_size`.
    pub fn from_parts(
        planes: Vec<BitMatrix>,
        alpha: Vec<Mat<f64>>,
        offset: Option<Mat<f64>>,
        group_size: usize,
    ) -> Self {
        assert!(
            (1..=8).contains(&planes.len()),
            "plane count {} outside 1..=8",
            planes.len()
        );
        let rows = planes[0].rows();
        let cols = planes[0].cols();
        for p in &planes {
            assert_eq!((p.rows(), p.cols()), (rows, cols), "plane shape mismatch");
        }
        assert!(
            group_size > 0 && cols.is_multiple_of(group_size),
            "group size {group_size} does not divide {cols}"
        );
        let groups = cols / group_size;
        assert_eq!(alpha.len(), planes.len(), "one alpha matrix per plane");
        for a in &alpha {
            assert_eq!(a.shape(), (rows, groups), "alpha shape mismatch");
        }
        if let Some(z) = &offset {
            assert_eq!(z.shape(), (rows, groups), "offset shape mismatch");
        }
        Self {
            rows,
            cols,
            group_size,
            planes,
            alpha,
            offset,
        }
    }

    /// Greedy + alternating BCQ quantization of `w` (uniform column
    /// importance).
    pub fn quantize(w: &Mat<f64>, params: BcqParams) -> Self {
        Self::quantize_weighted(w, params, None)
    }

    /// BCQ quantization minimizing `Σ_c d_c·(w_c − ŵ_c)²` per (row, group).
    ///
    /// `col_importance` supplies `d_c ≥ 0` per column (e.g. the diagonal of
    /// a calibration Hessian, as ShiftAddLLM uses); `None` means uniform.
    ///
    /// # Panics
    ///
    /// Panics if `bits ∉ 1..=8`, the group size doesn't divide the columns,
    /// or the importance vector has the wrong length.
    pub fn quantize_weighted(
        w: &Mat<f64>,
        params: BcqParams,
        col_importance: Option<&[f64]>,
    ) -> Self {
        assert!(
            (1..=8).contains(&params.bits),
            "bits {} outside 1..=8",
            params.bits
        );
        let (rows, cols) = w.shape();
        let gs = if params.group_size == 0 {
            cols
        } else {
            params.group_size
        };
        assert!(cols % gs == 0, "group size {gs} does not divide {cols}");
        if let Some(d) = col_importance {
            assert_eq!(d.len(), cols, "importance length mismatch");
        }
        let q = params.bits as usize;
        let groups = cols / gs;
        let mut planes = vec![BitMatrix::new(rows, cols); q];
        let mut alpha = vec![Mat::zeros(rows, groups); q];
        let mut offset = params.with_offset.then(|| Mat::zeros(rows, groups));

        let uniform_d = vec![1.0; gs];
        for r in 0..rows {
            for g in 0..groups {
                let c0 = g * gs;
                let ws = &w.row(r)[c0..c0 + gs];
                let d: &[f64] = match col_importance {
                    Some(di) => &di[c0..c0 + gs],
                    None => &uniform_d,
                };
                let sol = fit_group(ws, d, q, params.with_offset, params.refine_iters);
                for i in 0..q {
                    alpha[i][(r, g)] = sol.alpha[i];
                    for (j, &plus) in sol.signs[i].iter().enumerate() {
                        planes[i].set(r, c0 + j, plus);
                    }
                }
                if let Some(z) = offset.as_mut() {
                    z[(r, g)] = sol.z;
                }
            }
        }
        Self {
            rows,
            cols,
            group_size: gs,
            planes,
            alpha,
            offset,
        }
    }
}

/// Per-(row, group) solution of the alternating optimizer.
struct GroupFit {
    alpha: Vec<f64>,
    z: f64,
    signs: Vec<Vec<bool>>, // [plane][col]
}

/// Fit `ws` with `q` binary planes (+ optional offset) minimizing the
/// `d`-weighted squared error.
fn fit_group(ws: &[f64], d: &[f64], q: usize, with_offset: bool, iters: usize) -> GroupFit {
    let n = ws.len();
    // --- Greedy init (Xu et al.): peel off weighted-mean-absolute residual.
    let mut alpha = vec![0.0; q];
    let mut signs = vec![vec![false; n]; q];
    let mut z = 0.0;
    let dsum: f64 = d.iter().sum();
    let mut resid: Vec<f64> = ws.to_vec();
    if with_offset {
        z = if dsum > 0.0 {
            ws.iter().zip(d).map(|(w, di)| w * di).sum::<f64>() / dsum
        } else {
            0.0
        };
        for v in &mut resid {
            *v -= z;
        }
    }
    for i in 0..q {
        let a = if dsum > 0.0 {
            resid.iter().zip(d).map(|(r, di)| r.abs() * di).sum::<f64>() / dsum
        } else {
            0.0
        };
        alpha[i] = a;
        for (j, rv) in resid.iter_mut().enumerate() {
            let s = *rv >= 0.0;
            signs[i][j] = s;
            *rv -= if s { a } else { -a };
        }
    }

    // --- Alternating refinement.
    let mut best = weighted_err(ws, d, &alpha, z, &signs);
    for _ in 0..iters {
        // (1) Fix signs, solve for α (and z) by weighted least squares.
        let dim = q + with_offset as usize;
        let mut g = Mat::zeros(dim, dim);
        let mut rhs = vec![0.0; dim];
        let basis = |i: usize, c: usize| -> f64 {
            if i < q {
                if signs[i][c] {
                    1.0
                } else {
                    -1.0
                }
            } else {
                1.0 // offset column
            }
        };
        for i in 0..dim {
            for j in i..dim {
                let mut s = 0.0;
                for (c, &dc) in d.iter().enumerate() {
                    s += dc * basis(i, c) * basis(j, c);
                }
                g[(i, j)] = s;
                g[(j, i)] = s;
            }
            let mut s = 0.0;
            for (c, (&dc, &wc)) in d.iter().zip(ws).enumerate() {
                s += dc * basis(i, c) * wc;
            }
            rhs[i] = s;
        }
        if let Some(sol) = solve_spd(&g, &rhs) {
            alpha[..q].copy_from_slice(&sol[..q]);
            if with_offset {
                z = sol[q];
            }
            // Canonicalize: negative α ≡ flipped plane.
            for i in 0..q {
                if alpha[i] < 0.0 {
                    alpha[i] = -alpha[i];
                    for s in &mut signs[i] {
                        *s = !*s;
                    }
                }
            }
        }

        // (2) Fix α/z, re-pick each column's code by exhaustive search over
        // the 2^q representable levels.
        let m = 1usize << q;
        let mut levels = vec![z; m];
        for (mask, lv) in levels.iter_mut().enumerate() {
            for (i, &a) in alpha.iter().enumerate() {
                *lv += if (mask >> i) & 1 == 1 { a } else { -a };
            }
        }
        for c in 0..n {
            let mut best_mask = 0;
            let mut best_d = f64::INFINITY;
            for (mask, &lv) in levels.iter().enumerate() {
                let e = (ws[c] - lv).abs();
                if e < best_d {
                    best_d = e;
                    best_mask = mask;
                }
            }
            for (i, sv) in signs.iter_mut().enumerate() {
                sv[c] = (best_mask >> i) & 1 == 1;
            }
        }

        let err = weighted_err(ws, d, &alpha, z, &signs);
        if err >= best - 1e-15 {
            break;
        }
        best = err;
    }
    GroupFit { alpha, z, signs }
}

#[allow(clippy::needless_range_loop)] // c indexes ws, d and every plane of signs
fn weighted_err(ws: &[f64], d: &[f64], alpha: &[f64], z: f64, signs: &[Vec<bool>]) -> f64 {
    let mut err = 0.0;
    for (c, (&w, &dc)) in ws.iter().zip(d).enumerate() {
        let mut v = z;
        for (i, &a) in alpha.iter().enumerate() {
            v += if signs[i][c] { a } else { -a };
        }
        err += dc * (w - v) * (w - v);
    }
    err
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::weight_mse;
    use crate::uniform::{rtn, RtnParams};

    fn test_weights(rows: usize, cols: usize) -> Mat<f64> {
        // Deterministic pseudo-Gaussian-ish spread.
        Mat::from_fn(rows, cols, |r, c| {
            let t = (r * cols + c) as f64;
            (t * 0.37).sin() + 0.3 * (t * 0.11).cos()
        })
    }

    #[test]
    fn from_uniform_is_exact() {
        let w = test_weights(4, 16);
        for bits in 1..=4 {
            let u = rtn(&w, RtnParams::per_row(bits));
            let b = BcqWeight::from_uniform(&u);
            assert_eq!(b.bits(), bits);
            let du = u.dequantize();
            let db = b.dequantize();
            assert!(
                du.max_abs_diff(&db) < 1e-12,
                "bits={bits}: {}",
                du.max_abs_diff(&db)
            );
        }
    }

    #[test]
    fn from_uniform_grouped_is_exact() {
        let w = test_weights(3, 24);
        let u = rtn(&w, RtnParams::grouped(3, 8));
        let b = BcqWeight::from_uniform(&u);
        assert_eq!(b.groups(), 3);
        assert!(u.dequantize().max_abs_diff(&b.dequantize()) < 1e-12);
    }

    #[test]
    fn greedy_alternating_reduces_error() {
        let w = test_weights(6, 32);
        let coarse = BcqWeight::quantize(
            &w,
            BcqParams {
                bits: 3,
                group_size: 0,
                with_offset: true,
                refine_iters: 0,
            },
        );
        let refined = BcqWeight::quantize(&w, BcqParams::per_row(3));
        let e0 = weight_mse(&w, &coarse.dequantize());
        let e1 = weight_mse(&w, &refined.dequantize());
        assert!(e1 <= e0 + 1e-15, "refined {e1} > greedy {e0}");
        assert!(
            e1 < e0 * 0.9,
            "refinement should help meaningfully: {e1} vs {e0}"
        );
    }

    #[test]
    fn more_planes_reduce_error() {
        let w = test_weights(4, 48);
        let mut last = f64::INFINITY;
        for bits in 1..=4 {
            let b = BcqWeight::quantize(&w, BcqParams::per_row(bits));
            let e = weight_mse(&w, &b.dequantize());
            assert!(e <= last + 1e-15, "bits={bits}: {e} > {last}");
            last = e;
        }
    }

    #[test]
    fn bcq_beats_rtn_at_low_bits() {
        // The key claim behind non-uniform quantization (paper Fig. 1 /
        // Table VI): at very low precision an optimized non-uniform grid has
        // lower weight error than the uniform RTN grid.
        let w = Mat::from_fn(8, 64, |r, c| {
            // Heavy-tailed distribution where non-uniform grids shine.
            let t = ((r * 64 + c) as f64 * 0.29).sin();
            t * t * t
        });
        for bits in [2u32, 3] {
            let u = rtn(&w, RtnParams::per_row(bits));
            let b = BcqWeight::quantize(&w, BcqParams::per_row(bits));
            let eu = weight_mse(&w, &u.dequantize());
            let eb = weight_mse(&w, &b.dequantize());
            assert!(eb < eu, "bits={bits}: BCQ {eb} !< RTN {eu}");
        }
    }

    #[test]
    fn offset_helps_on_shifted_data() {
        let w = Mat::from_fn(2, 32, |_, c| 5.0 + 0.1 * ((c as f64) * 0.7).sin());
        let no_off = BcqWeight::quantize(
            &w,
            BcqParams {
                bits: 2,
                group_size: 0,
                with_offset: false,
                refine_iters: 8,
            },
        );
        let with_off = BcqWeight::quantize(&w, BcqParams::per_row(2));
        let e0 = weight_mse(&w, &no_off.dequantize());
        let e1 = weight_mse(&w, &with_off.dequantize());
        assert!(e1 < e0, "offset {e1} !< no-offset {e0}");
        assert!(!no_off.has_offset());
        assert!(with_off.has_offset());
    }

    #[test]
    fn weighted_fit_prioritizes_important_columns() {
        let w = Mat::from_fn(
            1,
            16,
            |_, c| if c == 0 { 1.0 } else { -0.8 + 0.1 * c as f64 },
        );
        let mut d = vec![1.0; 16];
        d[0] = 1e4; // column 0 is critical
        let b = BcqWeight::quantize_weighted(&w, BcqParams::per_row(1), Some(&d));
        let bu = BcqWeight::quantize(&w, BcqParams::per_row(1));
        let e_w = (b.value(0, 0) - 1.0).abs();
        let e_u = (bu.value(0, 0) - 1.0).abs();
        assert!(e_w <= e_u + 1e-12, "weighted {e_w} > uniform {e_u}");
    }

    #[test]
    fn alphas_are_canonical_nonnegative() {
        let w = test_weights(3, 16);
        let b = BcqWeight::quantize(&w, BcqParams::per_row(3));
        for i in 0..3 {
            for r in 0..3 {
                assert!(b.alpha(i, r, 0) >= 0.0);
            }
        }
    }

    #[test]
    fn payload_accounting() {
        let w = test_weights(2, 64);
        let b3 = BcqWeight::quantize(&w, BcqParams::per_row(3));
        let b2 = BcqWeight::quantize(&w, BcqParams::per_row(2));
        assert!(b2.payload_bits() < b3.payload_bits());
        // Dominated by rows·cols·q.
        assert!(b3.payload_bits() >= 2 * 64 * 3);
    }

    #[test]
    fn from_parts_roundtrips() {
        let w = test_weights(4, 24);
        let b = BcqWeight::quantize(&w, BcqParams::grouped(3, 8));
        let rebuilt = BcqWeight::from_parts(
            b.planes().to_vec(),
            (0..3)
                .map(|i| Mat::from_fn(4, 3, |r, g| b.alpha(i, r, g * 8)))
                .collect(),
            Some(Mat::from_fn(4, 3, |r, g| b.offset(r, g * 8))),
            8,
        );
        assert_eq!(rebuilt.bits(), b.bits());
        assert_eq!(rebuilt.shape(), b.shape());
        assert!(b.dequantize().max_abs_diff(&rebuilt.dequantize()) == 0.0);
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn from_parts_checks_group_size() {
        let w = test_weights(2, 8);
        let b = BcqWeight::quantize(&w, BcqParams::per_row(2));
        let _ = BcqWeight::from_parts(b.planes().to_vec(), vec![Mat::zeros(2, 1); 2], None, 3);
    }

    #[test]
    #[should_panic(expected = "outside 1..=8")]
    fn rejects_zero_bits() {
        let w = test_weights(1, 8);
        let _ = BcqWeight::quantize(&w, BcqParams::per_row(0));
    }
}
