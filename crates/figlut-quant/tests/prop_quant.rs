//! Property tests for the quantization substrate.

use figlut_num::Mat;
use figlut_quant::bcq::{BcqParams, BcqWeight};
use figlut_quant::error::weight_mse;
use figlut_quant::uniform::{rtn, RtnParams};
use proptest::prelude::*;

fn weight_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Mat<f64>> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0f64..10.0, r * c).prop_map(move |v| Mat::from_vec(r, c, v))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rtn_values_stay_in_row_range(w in weight_matrix(6, 24), bits in 1u32..=8) {
        let q = rtn(&w, RtnParams::per_row(bits));
        let d = q.dequantize();
        for r in 0..w.rows() {
            let row = w.row(r);
            let mn = row.iter().cloned().fold(f64::INFINITY, f64::min);
            let mx = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for c in 0..w.cols() {
                prop_assert!(d[(r, c)] >= mn - 1e-9 && d[(r, c)] <= mx + 1e-9,
                    "r={} c={} v={} range=[{},{}]", r, c, d[(r,c)], mn, mx);
            }
        }
    }

    #[test]
    fn rtn_error_bounded_by_half_step(w in weight_matrix(4, 16), bits in 1u32..=6) {
        let q = rtn(&w, RtnParams::per_row(bits));
        let d = q.dequantize();
        for r in 0..w.rows() {
            let row = w.row(r);
            let mn = row.iter().cloned().fold(f64::INFINITY, f64::min);
            let mx = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let step = (mx - mn) / ((1u64 << bits) - 1) as f64;
            for c in 0..w.cols() {
                prop_assert!((d[(r, c)] - w[(r, c)]).abs() <= step / 2.0 + 1e-9);
            }
        }
    }

    #[test]
    fn uniform_to_bcq_roundtrip_exact(w in weight_matrix(4, 16), bits in 1u32..=6) {
        // The paper's Eq. 3 conversion must represent *identical* values.
        let u = rtn(&w, RtnParams::per_row(bits));
        let b = BcqWeight::from_uniform(&u);
        let du = u.dequantize();
        let db = b.dequantize();
        prop_assert!(du.max_abs_diff(&db) < 1e-10,
            "max diff {}", du.max_abs_diff(&db));
        prop_assert_eq!(b.bits(), bits);
    }

    #[test]
    fn bcq_not_worse_than_greedy_only(w in weight_matrix(3, 24), bits in 1u32..=4) {
        let greedy = BcqWeight::quantize(&w, BcqParams {
            bits, group_size: 0, with_offset: true, refine_iters: 0,
        });
        let refined = BcqWeight::quantize(&w, BcqParams {
            bits, group_size: 0, with_offset: true, refine_iters: 10,
        });
        let eg = weight_mse(&w, &greedy.dequantize());
        let er = weight_mse(&w, &refined.dequantize());
        prop_assert!(er <= eg + 1e-12, "refined {} > greedy {}", er, eg);
    }

    #[test]
    fn bcq_dequant_is_within_representable_span(w in weight_matrix(3, 16), bits in 1u32..=4) {
        // Every dequantized value must equal z ± α₁ ± α₂ …, so its magnitude
        // is bounded by |z| + Σ αᵢ.
        let b = BcqWeight::quantize(&w, BcqParams::per_row(bits));
        let d = b.dequantize();
        for r in 0..w.rows() {
            let span: f64 = (0..bits as usize).map(|i| b.alpha(i, r, 0)).sum::<f64>()
                + b.offset(r, 0).abs();
            for c in 0..w.cols() {
                prop_assert!(d[(r, c)].abs() <= span + 1e-9);
            }
        }
    }

    #[test]
    fn bcq_binary_expansion_matches_dequant(w in weight_matrix(2, 12), bits in 1u32..=4) {
        // value(r,c) must equal the explicit Σ αᵢ·sign + z expansion.
        let b = BcqWeight::quantize(&w, BcqParams::per_row(bits));
        for r in 0..w.rows() {
            for c in 0..w.cols() {
                let mut v = b.offset(r, c);
                for i in 0..bits as usize {
                    v += b.alpha(i, r, c) * b.plane(i).sign(r, c);
                }
                prop_assert!((v - b.value(r, c)).abs() < 1e-12);
            }
        }
    }
}
