//! Property tests: the soft-float formats must agree with IEEE-754 hardware.
//!
//! `Fp32` has a hardware oracle (the host `f32` unit, which is correctly
//! rounded for add/mul), so we drive it with arbitrary bit patterns —
//! including subnormals, infinities and NaNs — and demand bit equality.
//! `Fp16`/`Bf16` are checked for the algebraic properties that don't need an
//! oracle, plus round-trip invariants.

use figlut_num::align::{AlignMode, AlignedVector};
use figlut_num::fp::{Bf16, Fp16, Fp32, FpFormat};
use proptest::prelude::*;

fn f32_from_bits() -> impl Strategy<Value = f32> {
    any::<u32>().prop_map(f32::from_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    #[test]
    fn fp32_roundtrip_bits(bits in any::<u32>()) {
        let x = f32::from_bits(bits);
        let sf = Fp32::from_f32(x);
        if x.is_nan() {
            prop_assert!(sf.is_nan());
        } else {
            prop_assert_eq!(sf.to_bits(), bits);
        }
    }

    #[test]
    fn fp32_quantize_equals_native_cast(bits in any::<u64>()) {
        // `figlut_gemm::common::fp32` (the per-partial fold rounding of
        // every engine and of figlut-exec) uses the host's `f64 → f32`
        // cast; this pins it to the bit-accurate `Sf<8, 23>` path on
        // arbitrary f64 patterns — subnormals and infinities included.
        let x = f64::from_bits(bits);
        prop_assume!(!x.is_nan());
        let soft = FpFormat::Fp32.quantize(x);
        let native = x as f32 as f64;
        prop_assert_eq!(soft.to_bits(), native.to_bits(), "x={:e}", x);
    }

    #[test]
    fn fp32_add_matches_host(a in f32_from_bits(), b in f32_from_bits()) {
        prop_assume!(!a.is_nan() && !b.is_nan());
        let host = a + b;
        let soft = Fp32::from_f32(a) + Fp32::from_f32(b);
        if host.is_nan() {
            prop_assert!(soft.is_nan());
        } else {
            prop_assert_eq!(soft.to_bits(), host.to_bits(),
                "a={:e} b={:e} host={:e} soft={:e}", a, b, host, soft.to_f64());
        }
    }

    #[test]
    fn fp32_mul_matches_host(a in f32_from_bits(), b in f32_from_bits()) {
        prop_assume!(!a.is_nan() && !b.is_nan());
        let host = a * b;
        let soft = Fp32::from_f32(a) * Fp32::from_f32(b);
        if host.is_nan() {
            prop_assert!(soft.is_nan());
        } else {
            prop_assert_eq!(soft.to_bits(), host.to_bits(),
                "a={:e} b={:e}", a, b);
        }
    }

    #[test]
    fn fp16_roundtrip_is_idempotent(bits in any::<u16>()) {
        // from_f64(to_f64(x)) must be the identity on every encoding.
        let x = Fp16::from_bits(bits as u32);
        let back = Fp16::from_f64(x.to_f64());
        if x.is_nan() {
            prop_assert!(back.is_nan());
        } else {
            prop_assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn bf16_roundtrip_is_idempotent(bits in any::<u16>()) {
        let x = Bf16::from_bits(bits as u32);
        let back = Bf16::from_f64(x.to_f64());
        if x.is_nan() {
            prop_assert!(back.is_nan());
        } else {
            prop_assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn bf16_truncation_consistency(x in f32_from_bits()) {
        // bf16 is f32 with a shorter mantissa: rounding f32→bf16 must agree
        // with RNE on the top 16 bits of the f32 encoding.
        prop_assume!(x.is_finite());
        let soft = Bf16::from_f32(x);
        // Oracle: round the f32 bits to the nearest multiple of 2^16, ties
        // to even, then reinterpret the top half (finite cases only).
        let bits = x.to_bits();
        let lo = bits & 0xffff;
        let hi = bits >> 16;
        let rounded = if lo > 0x8000 || (lo == 0x8000 && hi & 1 == 1) { hi + 1 } else { hi };
        prop_assume!(f32::from_bits(rounded << 16).is_finite());
        prop_assert_eq!(soft.to_bits(), rounded, "x={:e}", x);
    }

    #[test]
    fn fp16_add_commutes(a in any::<u16>(), b in any::<u16>()) {
        let x = Fp16::from_bits(a as u32);
        let y = Fp16::from_bits(b as u32);
        prop_assume!(!x.is_nan() && !y.is_nan());
        let l = x + y;
        let r = y + x;
        prop_assert!(l == r || (l.is_nan() && r.is_nan()));
    }

    #[test]
    fn fp16_mul_by_one_is_identity(a in any::<u16>()) {
        let x = Fp16::from_bits(a as u32);
        prop_assume!(!x.is_nan());
        prop_assert_eq!((x * Fp16::ONE).to_bits(), x.to_bits());
    }

    #[test]
    fn fp16_add_is_exact_on_small_ints(a in -1000i32..1000, b in -1000i32..1000) {
        // Integers up to 2^11 are exactly representable in fp16 and their
        // sums within range are exact.
        prop_assume!((a + b).abs() <= 2048);
        let x = Fp16::from_f64(a as f64);
        let y = Fp16::from_f64(b as f64);
        prop_assert_eq!((x + y).to_f64(), (a + b) as f64);
    }

    #[test]
    fn alignment_error_bound(vals in prop::collection::vec(-1e4f64..1e4, 1..64)) {
        // Pre-rounding to fp16 then aligning at fp16 precision loses at most
        // half an aligned ulp per element (RNE mode).
        let rounded: Vec<f64> = vals.iter().map(|&v| Fp16::from_f64(v).to_f64()).collect();
        let a = AlignedVector::align(&rounded, FpFormat::Fp16, 0, AlignMode::RoundNearestEven);
        let bound = a.max_element_error(AlignMode::RoundNearestEven) * (1.0 + 1e-12);
        for (i, &x) in rounded.iter().enumerate() {
            prop_assert!((a.value(i) - x).abs() <= bound,
                "i={} x={} got={} bound={}", i, x, a.value(i), bound);
        }
    }

    #[test]
    fn alignment_with_guard_bits_is_lossless_for_fp16(
        vals in prop::collection::vec(-1e4f64..1e4, 1..32)
    ) {
        // fp16 exponents span at most [-24, 15]; keeping 40+10 fractional
        // bits below e_max preserves every input exactly.
        let rounded: Vec<f64> = vals.iter().map(|&v| Fp16::from_f64(v).to_f64()).collect();
        let a = AlignedVector::align(&rounded, FpFormat::Fp16, 40, AlignMode::RoundNearestEven);
        for (i, &x) in rounded.iter().enumerate() {
            prop_assert_eq!(a.value(i), x);
        }
    }

    #[test]
    fn alignment_signed_sums_match_f64(
        vals in prop::collection::vec(-100.0f64..100.0, 1..32),
        signs in prop::collection::vec(any::<bool>(), 32)
    ) {
        // With lossless alignment (guard bits), the integer signed sum times
        // the scale equals the exact f64 signed sum — the core soundness
        // property FIGLUT-I relies on.
        let rounded: Vec<f64> = vals.iter().map(|&v| Fp16::from_f64(v).to_f64()).collect();
        let a = AlignedVector::align(&rounded, FpFormat::Fp16, 40, AlignMode::RoundNearestEven);
        let sum_int: i128 = a.mantissas().iter().zip(&signs)
            .map(|(&m, &s)| if s { m as i128 } else { -(m as i128) })
            .sum();
        let exact: f64 = rounded.iter().zip(&signs)
            .map(|(&x, &s)| if s { x } else { -x })
            .sum();
        prop_assert_eq!(sum_int as f64 * a.scale(), exact);
    }
}
