//! Exponent pre-alignment (the iFPU / FIGNA technique).
//!
//! Weight-only-quantized GEMM multiplies FP activations with INT weights.
//! iFPU (ICLR'23) and FIGNA (HPCA'24) observe that if every activation in a
//! reduction vector is re-expressed as an integer mantissa relative to the
//! *maximum* exponent in the vector, the whole FP-INT dot product collapses
//! to integer arithmetic followed by one final scale by `2^(e_max − p + 1)`.
//! FIGLUT-I inherits the same front end: LUT entries become integers and the
//! RACs accumulate integers.
//!
//! [`AlignedVector::align`] performs that transform; [`AlignedVector::value`]
//! reconstructs the represented real value of any element; the scale for a
//! raw accumulated integer is [`AlignedVector::scale`].
//!
//! Alignment is lossy: an element whose exponent is far below `e_max` loses
//! its low mantissa bits to the right shift. [`AlignMode`] selects whether
//! the shifted-out bits truncate (cheap hardware, what iFPU describes) or
//! round to nearest even (what FIGNA's "preserving numerical accuracy"
//! evaluation corresponds to). `guard_bits` extends the kept mantissa to
//! bound that loss; the paper's engines keep the full precision of the input
//! format plus accumulation headroom.

use crate::fp::FpFormat;

/// How bits shifted out during alignment are disposed of.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum AlignMode {
    /// Round the shifted mantissa to nearest, ties to even.
    #[default]
    RoundNearestEven,
    /// Truncate toward zero (sign-magnitude truncation, as a bare barrel
    /// shifter on a sign-magnitude mantissa implements).
    Truncate,
}

/// A vector of activations re-expressed as integer mantissas sharing one
/// exponent.
///
/// For element `i`: `value(i) = mantissas[i] × 2^(e_max − frac_bits)`.
#[derive(Clone, Debug, PartialEq)]
pub struct AlignedVector {
    mantissas: Vec<i64>,
    e_max: i32,
    frac_bits: u32,
}

impl AlignedVector {
    /// Align `values` (finite `f64`s already rounded to `format`) to their
    /// maximum exponent.
    ///
    /// `format` fixes the significand precision `p`; `guard_bits` keeps `g`
    /// extra fractional bits below the ulp of the largest element, so the
    /// kept mantissa has up to `p + g` significant bits. The paper's
    /// integer engines use `g = 0` with the format's own precision.
    ///
    /// Zeros map to mantissa 0. An all-zero vector aligns to exponent 0.
    ///
    /// # Panics
    ///
    /// Panics if any value is NaN or infinite, or if `p + guard_bits > 61`
    /// (mantissas must fit an `i64` with sign).
    pub fn align(values: &[f64], format: FpFormat, guard_bits: u32, mode: AlignMode) -> Self {
        let mut mantissas = Vec::with_capacity(values.len());
        let (e_max, frac_bits) = align_core(values, format, guard_bits, mode, &mut mantissas);
        Self {
            mantissas,
            e_max,
            frac_bits,
        }
    }

    /// Buffer-reusing variant of [`AlignedVector::align`]: *appends* the
    /// aligned mantissas of `values` to `out` (reusing its capacity) and
    /// returns the conversion scale ([`AlignedVector::scale`]) directly.
    ///
    /// Bit-identical to `align` — both run the same core — but performs no
    /// allocation once `out` is warm, which is what lets the `figlut-exec`
    /// hot path stay allocation-free in steady state.
    ///
    /// # Panics
    ///
    /// Same conditions as [`AlignedVector::align`].
    pub fn align_into(
        values: &[f64],
        format: FpFormat,
        guard_bits: u32,
        mode: AlignMode,
        out: &mut Vec<i64>,
    ) -> f64 {
        let (e_max, frac_bits) = align_core(values, format, guard_bits, mode, out);
        pow2(e_max - frac_bits as i32)
    }

    /// The aligned integer mantissas.
    pub fn mantissas(&self) -> &[i64] {
        &self.mantissas
    }

    /// The shared (maximum) unbiased exponent.
    pub fn shared_exponent(&self) -> i32 {
        self.e_max
    }

    /// Number of fractional bits kept below `2^e_max`.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// The real value represented by element `i`.
    pub fn value(&self, i: usize) -> f64 {
        self.mantissas[i] as f64 * self.scale()
    }

    /// Scale factor that converts an accumulated integer (any signed
    /// combination of mantissas) back to the real domain.
    pub fn scale(&self) -> f64 {
        pow2(self.e_max - self.frac_bits as i32)
    }

    /// Worst-case absolute representation error of a single element.
    ///
    /// RNE loses at most half an ulp of the aligned grid; truncation a full
    /// ulp.
    pub fn max_element_error(&self, mode: AlignMode) -> f64 {
        match mode {
            AlignMode::RoundNearestEven => 0.5 * self.scale(),
            AlignMode::Truncate => self.scale(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.mantissas.len()
    }

    /// `true` if the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.mantissas.is_empty()
    }
}

/// Shared alignment core: appends the aligned mantissas of `values` to
/// `out` and returns `(e_max, frac_bits)`. Both public entry points route
/// through here so their results are bit-identical by construction.
fn align_core(
    values: &[f64],
    format: FpFormat,
    guard_bits: u32,
    mode: AlignMode,
    out: &mut Vec<i64>,
) -> (i32, u32) {
    let p = format.precision();
    assert!(
        p + guard_bits <= 61,
        "aligned mantissa width {} exceeds i64",
        p + guard_bits
    );
    let mut e_max = i32::MIN;
    for &v in values {
        assert!(v.is_finite(), "cannot align non-finite activation {v}");
        if v != 0.0 {
            e_max = e_max.max(exponent_of(v));
        }
    }
    let frac_bits = p - 1 + guard_bits;
    if e_max == i32::MIN {
        out.extend(std::iter::repeat_n(0i64, values.len()));
        return (0, frac_bits);
    }
    let scale = pow2(frac_bits as i32 - e_max);
    out.extend(values.iter().map(|&v| {
        if v == 0.0 {
            return 0;
        }
        let exact = v * scale; // exact: power-of-two scaling
        match mode {
            AlignMode::RoundNearestEven => {
                // `round_ties_even` on the exact product is precisely
                // the RNE barrel shift of the mantissa.
                round_ties_even(exact) as i64
            }
            AlignMode::Truncate => exact.trunc() as i64,
        }
    }));
    (e_max, frac_bits)
}

/// Unbiased base-2 exponent of a finite nonzero `f64`.
fn exponent_of(v: f64) -> i32 {
    debug_assert!(v.is_finite() && v != 0.0);
    let bits = v.to_bits();
    let e = ((bits >> 52) & 0x7ff) as i32;
    if e == 0 {
        // Subnormal: exponent of the leading significand bit.
        let frac = bits & ((1u64 << 52) - 1);
        -1022 - (52 - (63 - frac.leading_zeros() as i32))
    } else {
        e - 1023
    }
}

/// Exact `2^n` for |n| within f64's normal range.
fn pow2(n: i32) -> f64 {
    debug_assert!(
        (-1022..=1023).contains(&n),
        "pow2 exponent {n} out of range"
    );
    f64::from_bits(((1023 + n) as u64) << 52)
}

/// Round to nearest integer, ties to even (f64 → f64).
fn round_ties_even(x: f64) -> f64 {
    let r = x.round(); // ties away from zero
    if (x - x.trunc()).abs() == 0.5 {
        // Tie: pick the even neighbour.
        let down = x.trunc();
        let up = r;
        if (down as i64) % 2 == 0 {
            down
        } else {
            up
        }
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::Fp16;

    #[test]
    fn align_simple() {
        // fp16, p = 11. Values 1.0 and 0.5 → e_max = 0, frac_bits = 10.
        let v = [1.0, 0.5, -0.25, 0.0];
        let a = AlignedVector::align(&v, FpFormat::Fp16, 0, AlignMode::RoundNearestEven);
        assert_eq!(a.shared_exponent(), 0);
        assert_eq!(a.frac_bits(), 10);
        assert_eq!(a.mantissas(), &[1024, 512, -256, 0]);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(a.value(i), x, "element {i}");
        }
    }

    #[test]
    fn align_is_exact_within_precision_window() {
        // Any set of fp16 values whose exponents span < p positions aligns
        // losslessly.
        let vals = [1.5, 1.25, 0.75, -0.625];
        let rounded: Vec<f64> = vals.iter().map(|&x| Fp16::from_f64(x).to_f64()).collect();
        let a = AlignedVector::align(&rounded, FpFormat::Fp16, 0, AlignMode::RoundNearestEven);
        for (i, &x) in rounded.iter().enumerate() {
            assert_eq!(a.value(i), x);
        }
    }

    #[test]
    fn align_into_matches_align_and_appends() {
        let rows: [&[f64]; 3] = [
            &[1.0, 0.5, -0.25, 0.0],
            &[0.0, 0.0, 0.0],
            &[3.75, -0.125, 2.0e-5, 1.0],
        ];
        for mode in [AlignMode::RoundNearestEven, AlignMode::Truncate] {
            for guard in [0u32, 4] {
                let mut flat: Vec<i64> = Vec::new();
                for row in rows {
                    let before = flat.len();
                    let scale =
                        AlignedVector::align_into(row, FpFormat::Fp16, guard, mode, &mut flat);
                    let a = AlignedVector::align(row, FpFormat::Fp16, guard, mode);
                    assert_eq!(&flat[before..], a.mantissas(), "append must match align");
                    assert_eq!(scale, a.scale(), "scale must match align");
                }
                assert_eq!(flat.len(), rows.iter().map(|r| r.len()).sum::<usize>());
            }
        }
    }

    #[test]
    fn align_loses_low_bits_of_small_elements() {
        // 1.0 has e = 0; 2^-14 × (1 + 2^-10) needs bits 24 below e_max →
        // rounds away its fraction at fp16 precision (10 frac bits kept).
        let small = (2.0f64).powi(-14) * (1.0 + (2.0f64).powi(-10));
        let a = AlignedVector::align(
            &[1.0, small],
            FpFormat::Fp16,
            0,
            AlignMode::RoundNearestEven,
        );
        let err = (a.value(1) - small).abs();
        assert!(err > 0.0, "expected alignment loss");
        assert!(err <= a.max_element_error(AlignMode::RoundNearestEven));
    }

    #[test]
    fn guard_bits_reduce_error() {
        let small = (2.0f64).powi(-8) * 1.000976562; // odd low bits
        let coarse = AlignedVector::align(
            &[1.0, small],
            FpFormat::Bf16,
            0,
            AlignMode::RoundNearestEven,
        );
        let fine = AlignedVector::align(
            &[1.0, small],
            FpFormat::Bf16,
            8,
            AlignMode::RoundNearestEven,
        );
        let e_coarse = (coarse.value(1) - small).abs();
        let e_fine = (fine.value(1) - small).abs();
        assert!(e_fine <= e_coarse);
    }

    #[test]
    fn truncate_vs_rne() {
        let v = [1.0, 3.0 * (2.0f64).powi(-12)]; // needs shifting under fp16
        let t = AlignedVector::align(&v, FpFormat::Fp16, 0, AlignMode::Truncate);
        let r = AlignedVector::align(&v, FpFormat::Fp16, 0, AlignMode::RoundNearestEven);
        assert!((t.value(1) - v[1]).abs() >= (r.value(1) - v[1]).abs() - 1e-18);
        // Truncation is toward zero.
        assert!(t.value(1).abs() <= v[1].abs());
    }

    #[test]
    fn all_zero_vector() {
        let a = AlignedVector::align(&[0.0, 0.0], FpFormat::Fp32, 0, AlignMode::default());
        assert_eq!(a.mantissas(), &[0, 0]);
        assert_eq!(a.value(0), 0.0);
    }

    #[test]
    fn subnormal_inputs() {
        let tiny = (2.0f64).powi(-30);
        let a = AlignedVector::align(&[tiny, tiny / 2.0], FpFormat::Fp16, 0, AlignMode::default());
        assert_eq!(a.shared_exponent(), -30);
        assert_eq!(a.value(0), tiny);
        assert_eq!(a.value(1), tiny / 2.0);
    }

    #[test]
    fn dot_product_via_integers_matches_f64() {
        // The whole point: Σ ±x_i computed on mantissas × scale equals the
        // exact signed sum when no alignment loss occurs.
        let xs = [1.0, -0.5, 0.75, 0.125];
        let a = AlignedVector::align(&xs, FpFormat::Fp16, 0, AlignMode::default());
        let signs = [1i64, -1, -1, 1];
        let int_sum: i64 = a.mantissas().iter().zip(signs).map(|(&m, s)| m * s).sum();
        let exact: f64 = xs.iter().zip(signs).map(|(&x, s)| x * s as f64).sum();
        assert_eq!(int_sum as f64 * a.scale(), exact);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        let _ = AlignedVector::align(&[f64::NAN], FpFormat::Fp16, 0, AlignMode::default());
    }
}
