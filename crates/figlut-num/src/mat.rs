//! A minimal row-major matrix shared by all crates in the workspace.
//!
//! This is deliberately not a linear-algebra library: the engines need a
//! container with checked shapes, cheap row access, and a couple of `f64`
//! reference kernels to serve as oracles in tests.

use core::fmt;
use core::ops::{Index, IndexMut};

/// A dense row-major `rows × cols` matrix.
#[derive(Clone, PartialEq)]
pub struct Mat<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T> Mat<T> {
    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wrap an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}×{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[T] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row access.
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The whole backing buffer, row-major.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Consume into the backing buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Element-wise map into a new matrix.
    pub fn map<U>(&self, f: impl Fn(&T) -> U) -> Mat<U> {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(f).collect(),
        }
    }
}

impl<T: Clone> Mat<T> {
    /// A matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self[(c, r)].clone())
    }
}

impl Mat<f64> {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Reference GEMM: `self (r×k) × rhs (k×c)` in f64.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Mat<f64>) -> Mat<f64> {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dims mismatch: {}×{} by {}×{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        out
    }

    /// Max absolute difference against another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Mat<f64>) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl<T> Index<(usize, usize)> for Mat<T> {
    type Output = T;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl<T> IndexMut<(usize, usize)> for Mat<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl<T: fmt::Debug> fmt::Debug for Mat<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}×{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_index() {
        let m = Mat::from_fn(2, 3, |r, c| (r * 10 + c) as i32);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 12);
        assert_eq!(m.row(0), &[0, 1, 2]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Mat::from_fn(3, 4, |r, c| r as i64 * 4 + c as i64);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed()[(2, 1)], m[(1, 2)]);
    }

    #[test]
    fn matmul_identity() {
        let a = Mat::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        let b = Mat::from_fn(3, 2, |r, c| (r + c) as f64);
        assert_eq!(a.matmul(&b), b);
    }

    #[test]
    fn matmul_known() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Mat::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims mismatch")]
    fn matmul_shape_check() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn diff_and_norm() {
        let a = Mat::from_vec(1, 2, vec![3.0, 4.0]);
        let b = Mat::from_vec(1, 2, vec![3.0, 4.5]);
        assert_eq!(a.frob_norm(), 5.0);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }
}
