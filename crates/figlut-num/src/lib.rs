#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # figlut-num — numeric substrate for the FIGLUT reproduction
//!
//! This crate provides the bit-accurate arithmetic that every engine model in
//! the workspace is built on:
//!
//! * [`fp`] — software floating-point formats ([`Fp16`], [`Bf16`], [`Fp32`])
//!   with IEEE-754 round-to-nearest-even semantics, used to model the FP
//!   datapaths of the FPE baseline and FIGLUT-F bit-exactly.
//! * [`align`] — the *pre-alignment* transform of iFPU / FIGNA (HPCA'24):
//!   activation mantissas are aligned to the vector-maximum exponent so that
//!   subsequent arithmetic is plain integer arithmetic.
//! * [`fixed`] — wide integer accumulators with bit-width tracking, used both
//!   functionally (engine models) and by the simulator for register sizing.
//! * [`mat`] — a minimal row-major matrix container shared across crates.
//!
//! Nothing in this crate allocates per-element on hot paths, and every public
//! operation is deterministic: given the same inputs you get the same bits on
//! every platform.
//!
//! ## Quick example
//!
//! ```
//! use figlut_num::fp::Fp16;
//!
//! let a = Fp16::from_f64(1.5);
//! let b = Fp16::from_f64(0.25);
//! assert_eq!((a + b).to_f64(), 1.75);
//! ```

pub mod align;
pub mod fixed;
pub mod fp;
pub mod mat;

pub use align::{AlignMode, AlignedVector};
pub use fp::{Bf16, Fp16, Fp32, FpFormat};
pub use mat::Mat;
