//! Bit-accurate software floating point.
//!
//! The engine models in `figlut-gemm` must reproduce hardware datapaths
//! *bit-exactly* — e.g. the FPE baseline multiplies two FP16 values and
//! accumulates in FP32, and Table IV of the paper hinges on those roundings.
//! Host `f32` cannot express FP16/BF16 rounding, so we provide a generic
//! soft-float [`Sf<E, M>`] over the storage bit layout (1 sign, `E` exponent,
//! `M` mantissa bits) plus the three concrete formats the paper evaluates:
//! [`Fp16`], [`Bf16`] and [`Fp32`].
//!
//! ## Correctness strategy
//!
//! All formats here have significand precision `p = M + 1 ≤ 24`. A classic
//! result (Figueroa, *When is double rounding innocuous?*) shows that
//! rounding an exactly-computed `f64` (`p = 53`) result down to a format with
//! `p ≤ 25` is identical to directly rounding the exact result, because
//! `53 ≥ 2p + 2`. Addition and multiplication of two values from any format
//! below are computed exactly-then-rounded by the host `f64` unit, so
//! `from_f64(a.to_f64() op b.to_f64())` is the correctly-rounded soft-float
//! result. The `from_f64` conversion itself (including subnormals, overflow
//! to infinity, and ties-to-even) is implemented by hand below and verified
//! against the host in this crate's property tests.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, Div, Mul, Neg, Sub};

/// Round `sig` right by `shift` bits with round-to-nearest, ties-to-even.
///
/// `sig` must be `< 2^54`. Returns the rounded quotient (which may carry one
/// bit past the pre-shift width).
#[inline]
fn rne_shift(sig: u64, shift: u32) -> u64 {
    debug_assert!(sig < (1 << 54));
    if shift == 0 {
        return sig;
    }
    if shift >= 55 {
        // Everything is below half an ulp of the destination.
        return 0;
    }
    let q = sig >> shift;
    let rem = sig & ((1u64 << shift) - 1);
    let half = 1u64 << (shift - 1);
    let up = rem > half || (rem == half && (q & 1) == 1);
    q + up as u64
}

/// A binary floating-point value with 1 sign bit, `E` exponent bits and `M`
/// explicit mantissa bits, stored in the low `1 + E + M` bits of a `u32`.
///
/// Equality and hashing are **bitwise** (so `NaN == NaN` and `0.0 != -0.0`);
/// use [`Sf::total_cmp`] or [`Sf::to_f64`] for numeric comparisons. This is
/// deliberate: the reproduction cares about bit patterns, not IEEE equality.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sf<const E: u32, const M: u32>(u32);

/// IEEE-754 binary16: 5 exponent bits, 10 mantissa bits.
pub type Fp16 = Sf<5, 10>;
/// bfloat16: 8 exponent bits, 7 mantissa bits.
pub type Bf16 = Sf<8, 7>;
/// IEEE-754 binary32: 8 exponent bits, 23 mantissa bits.
pub type Fp32 = Sf<8, 23>;
/// FP8 E4M3 (OCP 8-bit float, extended range variant not modeled: we keep
/// the IEEE-style special encoding for simplicity). Provided as an
/// *extension* beyond the paper's FP16/BF16/FP32 sweep — a natural
/// future-work activation format for LUT-based GEMM.
pub type Fp8E4M3 = Sf<4, 3>;
/// FP8 E5M2 (OCP 8-bit float).
pub type Fp8E5M2 = Sf<5, 2>;

impl<const E: u32, const M: u32> Sf<E, M> {
    /// Exponent bias (`2^(E-1) - 1`).
    pub const BIAS: i32 = (1 << (E - 1)) - 1;
    /// All-ones biased exponent (infinity / NaN marker).
    pub const EXP_SPECIAL: u32 = (1 << E) - 1;
    const EXP_MASK: u32 = Self::EXP_SPECIAL << M;
    const MANT_MASK: u32 = (1 << M) - 1;
    const SIGN_MASK: u32 = 1 << (E + M);
    /// Significand precision in bits, including the hidden bit.
    pub const PRECISION: u32 = M + 1;
    /// Minimum normal (unbiased) exponent.
    pub const EMIN: i32 = 1 - Self::BIAS;
    /// Maximum finite (unbiased) exponent.
    pub const EMAX: i32 = (Self::EXP_SPECIAL as i32 - 1) - Self::BIAS;

    /// Positive zero.
    pub const ZERO: Self = Self(0);
    /// One.
    pub const ONE: Self = Self((Self::BIAS as u32) << M);
    /// Positive infinity.
    pub const INFINITY: Self = Self(Self::EXP_MASK);
    /// Negative infinity.
    pub const NEG_INFINITY: Self = Self(Self::SIGN_MASK | Self::EXP_MASK);
    /// A quiet NaN.
    pub const NAN: Self = Self(Self::EXP_MASK | (1 << (M - 1)));

    /// Construct from raw storage bits (low `1 + E + M` bits).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if bits above the storage width are set.
    #[inline]
    pub const fn from_bits(bits: u32) -> Self {
        debug_assert!(bits >> (1 + E + M) == 0);
        Self(bits)
    }

    /// Raw storage bits.
    #[inline]
    pub const fn to_bits(self) -> u32 {
        self.0
    }

    /// Sign bit (`true` if negative, including `-0.0` and negative NaN).
    #[inline]
    pub const fn sign(self) -> bool {
        self.0 & Self::SIGN_MASK != 0
    }

    /// Biased exponent field.
    #[inline]
    pub const fn biased_exponent(self) -> u32 {
        (self.0 & Self::EXP_MASK) >> M
    }

    /// Raw mantissa field (without the hidden bit).
    #[inline]
    pub const fn mantissa(self) -> u32 {
        self.0 & Self::MANT_MASK
    }

    /// `true` if the value is NaN.
    #[inline]
    pub const fn is_nan(self) -> bool {
        self.biased_exponent() == Self::EXP_SPECIAL && self.mantissa() != 0
    }

    /// `true` if the value is +∞ or −∞.
    #[inline]
    pub const fn is_infinite(self) -> bool {
        self.biased_exponent() == Self::EXP_SPECIAL && self.mantissa() == 0
    }

    /// `true` for zeros, subnormals and normal numbers.
    #[inline]
    pub const fn is_finite(self) -> bool {
        self.biased_exponent() != Self::EXP_SPECIAL
    }

    /// `true` for ±0.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 & !Self::SIGN_MASK == 0
    }

    /// `true` for nonzero values with a zero exponent field.
    #[inline]
    pub const fn is_subnormal(self) -> bool {
        self.biased_exponent() == 0 && self.mantissa() != 0
    }

    /// Exact conversion to `f64`.
    ///
    /// Every finite value of every format with `E ≤ 8`, `M ≤ 24` is exactly
    /// representable in `f64`, so this conversion is lossless.
    pub fn to_f64(self) -> f64 {
        let s = if self.sign() { -1.0 } else { 1.0 };
        let e = self.biased_exponent();
        let m = self.mantissa();
        if e == Self::EXP_SPECIAL {
            return if m == 0 { s * f64::INFINITY } else { f64::NAN };
        }
        if e == 0 {
            // Subnormal: m × 2^(EMIN − M).
            return s * m as f64 * (Self::EMIN - M as i32).exp2_i();
        }
        let sig = ((1u32 << M) | m) as f64;
        s * sig * (e as i32 - Self::BIAS - M as i32).exp2_i()
    }

    /// Convert from `f64` with round-to-nearest-even.
    ///
    /// Handles gradual underflow to subnormals, underflow to signed zero, and
    /// overflow to infinity, exactly as an IEEE-754 conversion would.
    pub fn from_f64(x: f64) -> Self {
        let bits = x.to_bits();
        let sign = (((bits >> 63) as u32) & 1) << (E + M);
        let aexp = ((bits >> 52) & 0x7ff) as i32;
        let frac = bits & ((1u64 << 52) - 1);
        if aexp == 0x7ff {
            return if frac == 0 {
                Self(sign | Self::EXP_MASK)
            } else {
                Self::NAN
            };
        }
        if aexp == 0 {
            // f64 subnormals are < 2^-1022, far below half the smallest
            // subnormal of any format here → round to signed zero.
            return Self(sign);
        }
        let e = aexp - 1023;
        let sig = (1u64 << 52) | frac; // value = sig × 2^(e − 52)
        let mut shift = 52 - M as i32;
        let mut e_t = e;
        if e < Self::EMIN {
            shift += Self::EMIN - e;
            e_t = Self::EMIN;
        }
        if shift >= 64 {
            return Self(sign);
        }
        let mut q = rne_shift(sig, shift as u32);
        if e < Self::EMIN {
            // Subnormal result; rounding may promote it to the smallest
            // normal, in which case q == 2^M and the encoding below (biased
            // exponent 1, mantissa 0) falls out naturally.
            debug_assert!(q <= 1 << M);
            return Self(sign | q as u32);
        }
        if q >> Self::PRECISION != 0 {
            // Rounding carried into a new binade.
            q >>= 1;
            e_t += 1;
        }
        let be = e_t + Self::BIAS;
        if be >= Self::EXP_SPECIAL as i32 {
            return Self(sign | Self::EXP_MASK);
        }
        debug_assert!(be >= 1);
        Self(sign | ((be as u32) << M) | (q as u32 & Self::MANT_MASK))
    }

    /// Convert from `f32` (round-to-nearest-even; exact for [`Fp32`]).
    #[inline]
    pub fn from_f32(x: f32) -> Self {
        // f32 → f64 is exact, so a single rounding happens here.
        Self::from_f64(x as f64)
    }

    /// Convert to the nearest `f32` (exact for every format in this crate).
    #[inline]
    pub fn to_f32(self) -> f32 {
        self.to_f64() as f32
    }

    /// Absolute value (clears the sign bit, even of NaN).
    #[inline]
    pub const fn abs(self) -> Self {
        Self(self.0 & !Self::SIGN_MASK)
    }

    /// Fused round: `self + rhs` rounded once in this format.
    ///
    /// Exactly the result an IEEE-754 adder for this format produces (see the
    /// module docs for why evaluating through `f64` is exact).
    #[inline]
    pub fn add_rne(self, rhs: Self) -> Self {
        Self::from_f64(self.to_f64() + rhs.to_f64())
    }

    /// `self × rhs` rounded once in this format.
    #[inline]
    pub fn mul_rne(self, rhs: Self) -> Self {
        Self::from_f64(self.to_f64() * rhs.to_f64())
    }

    /// IEEE-754 `totalOrder` comparison (negative NaN < −∞ < … < +∞ < NaN).
    pub fn total_cmp(&self, other: &Self) -> Ordering {
        let key = |v: &Self| -> i64 {
            let b = v.0 as i64;
            if v.sign() {
                (Self::SIGN_MASK as i64) - b - 1 - (Self::SIGN_MASK as i64)
            } else {
                b
            }
        };
        key(self).cmp(&key(other))
    }

    /// Unbiased exponent of a finite nonzero value (subnormals report the
    /// exponent of their leading set bit).
    ///
    /// # Panics
    ///
    /// Panics if the value is zero, infinite or NaN.
    pub fn exponent(self) -> i32 {
        assert!(
            self.is_finite() && !self.is_zero(),
            "exponent of zero/special"
        );
        let e = self.biased_exponent();
        if e == 0 {
            // Subnormal: leading bit position of the mantissa.
            let lead = 31 - self.mantissa().leading_zeros();
            Self::EMIN - (M as i32 - lead as i32)
        } else {
            e as i32 - Self::BIAS
        }
    }
}

/// Exact power-of-two helper: `2^self` as `f64`.
trait Exp2I {
    fn exp2_i(self) -> f64;
}

impl Exp2I for i32 {
    #[inline]
    fn exp2_i(self) -> f64 {
        // Exact for the exponent ranges used here (|n| < 300).
        debug_assert!((-1000..=1000).contains(&self));
        f64::from_bits(((1023 + self) as u64) << 52)
    }
}

impl<const E: u32, const M: u32> Neg for Sf<E, M> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self(self.0 ^ Self::SIGN_MASK)
    }
}

impl<const E: u32, const M: u32> Add for Sf<E, M> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self.add_rne(rhs)
    }
}

impl<const E: u32, const M: u32> Sub for Sf<E, M> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.add_rne(-rhs)
    }
}

impl<const E: u32, const M: u32> Mul for Sf<E, M> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self.mul_rne(rhs)
    }
}

impl<const E: u32, const M: u32> Div for Sf<E, M> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        Self::from_f64(self.to_f64() / rhs.to_f64())
    }
}

impl<const E: u32, const M: u32> Default for Sf<E, M> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const E: u32, const M: u32> fmt::Debug for Sf<E, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sf<{E},{M}>({:#x} = {})", self.0, self.to_f64())
    }
}

impl<const E: u32, const M: u32> fmt::Display for Sf<E, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f64(), f)
    }
}

impl<const E: u32, const M: u32> From<f32> for Sf<E, M> {
    fn from(x: f32) -> Self {
        Self::from_f32(x)
    }
}

impl<const E: u32, const M: u32> From<Sf<E, M>> for f64 {
    fn from(x: Sf<E, M>) -> f64 {
        x.to_f64()
    }
}

/// A dynamically chosen activation format, as swept in the paper's Figs.
/// 13–16 (FP16 / BF16 / FP32 input activations).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FpFormat {
    /// IEEE binary16.
    Fp16,
    /// bfloat16.
    Bf16,
    /// IEEE binary32.
    Fp32,
}

impl FpFormat {
    /// All supported formats, in the order the paper plots them.
    pub const ALL: [FpFormat; 3] = [FpFormat::Fp16, FpFormat::Bf16, FpFormat::Fp32];

    /// Significand precision including the hidden bit (11 / 8 / 24).
    pub const fn precision(self) -> u32 {
        match self {
            FpFormat::Fp16 => Fp16::PRECISION,
            FpFormat::Bf16 => Bf16::PRECISION,
            FpFormat::Fp32 => Fp32::PRECISION,
        }
    }

    /// Storage width in bits (16 / 16 / 32).
    pub const fn storage_bits(self) -> u32 {
        match self {
            FpFormat::Fp16 | FpFormat::Bf16 => 16,
            FpFormat::Fp32 => 32,
        }
    }

    /// Exponent field width in bits.
    pub const fn exponent_bits(self) -> u32 {
        match self {
            FpFormat::Fp16 => 5,
            FpFormat::Bf16 | FpFormat::Fp32 => 8,
        }
    }

    /// Round an `f64` to this format (RNE), returning the value as `f64`.
    ///
    /// This is the workhorse for engines that stay in the `f64` domain but
    /// must apply format rounding at specific datapath points.
    pub fn quantize(self, x: f64) -> f64 {
        match self {
            FpFormat::Fp16 => Fp16::from_f64(x).to_f64(),
            FpFormat::Bf16 => Bf16::from_f64(x).to_f64(),
            FpFormat::Fp32 => Fp32::from_f64(x).to_f64(),
        }
    }

    /// Short lowercase name (`"fp16"`, `"bf16"`, `"fp32"`).
    pub const fn name(self) -> &'static str {
        match self {
            FpFormat::Fp16 => "fp16",
            FpFormat::Bf16 => "bf16",
            FpFormat::Fp32 => "fp32",
        }
    }
}

impl fmt::Display for FpFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_fp16() {
        assert_eq!(Fp16::BIAS, 15);
        assert_eq!(Fp16::EMIN, -14);
        assert_eq!(Fp16::EMAX, 15);
        assert_eq!(Fp16::PRECISION, 11);
        assert_eq!(Fp16::ONE.to_f64(), 1.0);
        assert_eq!(Fp16::ONE.to_bits(), 0x3c00);
    }

    #[test]
    fn constants_bf16_fp32() {
        assert_eq!(Bf16::ONE.to_bits(), 0x3f80);
        assert_eq!(Fp32::ONE.to_bits(), 0x3f80_0000);
        assert_eq!(Fp32::from_f32(1.5).to_bits(), 1.5f32.to_bits());
    }

    #[test]
    fn fp16_known_values() {
        // 65504 is the largest finite fp16.
        assert_eq!(Fp16::from_f64(65504.0).to_f64(), 65504.0);
        assert_eq!(Fp16::from_f64(65520.0).to_f64(), f64::INFINITY);
        // Smallest positive subnormal: 2^-24.
        let tiny = (-24i32).exp2_i();
        assert_eq!(Fp16::from_f64(tiny).to_f64(), tiny);
    }

    #[test]
    fn fp16_subnormal_halfway_ties_to_even() {
        // 2^-25 is exactly halfway between 0 and the smallest subnormal
        // (2^-24); RNE goes to the even candidate, which is 0.
        let half_tiny = (-25i32).exp2_i();
        assert!(Fp16::from_f64(half_tiny).is_zero());
        // Just above the halfway point must round up.
        assert_eq!(
            Fp16::from_f64(half_tiny * 1.0001).to_f64(),
            (-24i32).exp2_i()
        );
    }

    #[test]
    fn rounding_ties_to_even() {
        // fp16 has 10 mantissa bits: 1 + 2^-11 is a tie between 1.0 and
        // 1 + 2^-10 → rounds to even (1.0).
        let x = 1.0 + (-11i32).exp2_i();
        assert_eq!(Fp16::from_f64(x).to_f64(), 1.0);
        // 1 + 3·2^-11 ties between 1+2^-10 and 1+2^-9 → rounds to 1+2^-10·2?
        let y = 1.0 + 3.0 * (-11i32).exp2_i();
        assert_eq!(Fp16::from_f64(y).to_f64(), 1.0 + 2.0 * (-10i32).exp2_i());
    }

    #[test]
    fn specials() {
        assert!(Fp16::NAN.is_nan());
        assert!(Fp16::INFINITY.is_infinite());
        assert!(!Fp16::INFINITY.sign());
        assert!(Fp16::NEG_INFINITY.sign());
        assert!(Fp16::from_f64(f64::NAN).is_nan());
        assert_eq!(Fp16::from_f64(f64::INFINITY), Fp16::INFINITY);
        assert!(Fp16::from_f64(-0.0).sign());
        assert!(Fp16::from_f64(-0.0).is_zero());
    }

    #[test]
    fn neg_and_abs() {
        let x = Fp16::from_f64(3.5);
        assert_eq!((-x).to_f64(), -3.5);
        assert_eq!((-x).abs().to_f64(), 3.5);
    }

    #[test]
    fn arithmetic_matches_f64_single_round() {
        let a = Fp16::from_f64(0.1); // rounded
        let b = Fp16::from_f64(0.2);
        let s = a + b;
        // Reference: exact f64 sum of the *rounded* operands, re-rounded.
        assert_eq!(s.to_f64(), Fp16::from_f64(a.to_f64() + b.to_f64()).to_f64());
    }

    #[test]
    fn fp32_matches_host_ops() {
        let cases = [
            (1.0f32, 2.5f32),
            (1e-38, 1e-38),
            (3.4e38, 3.4e38),
            (1.5e-45, 1.5e-45), // subnormals
            (-7.25, 0.1),
            (1e20, -1e20),
        ];
        for (x, y) in cases {
            let a = Fp32::from_f32(x);
            let b = Fp32::from_f32(y);
            assert_eq!((a + b).to_bits(), (x + y).to_bits(), "add {x} {y}");
            assert_eq!((a * b).to_bits(), (x * y).to_bits(), "mul {x} {y}");
        }
    }

    #[test]
    fn exponent_of_subnormal() {
        // fp16 subnormal 3 × 2^-24 has leading bit at 2^-23.
        let x = Fp16::from_f64(3.0 * (-24i32).exp2_i());
        assert_eq!(x.exponent(), -23);
        assert_eq!(Fp16::ONE.exponent(), 0);
        assert_eq!(Fp16::from_f64(0.5).exponent(), -1);
    }

    #[test]
    fn total_cmp_orders_negatives() {
        let mut v = [
            Fp16::from_f64(1.0),
            Fp16::from_f64(-2.0),
            Fp16::ZERO,
            Fp16::from_f64(-0.5),
            Fp16::INFINITY,
            Fp16::NEG_INFINITY,
        ];
        v.sort_by(Fp16::total_cmp);
        let got: Vec<f64> = v.iter().map(|x| x.to_f64()).collect();
        assert_eq!(
            got,
            vec![f64::NEG_INFINITY, -2.0, -0.5, 0.0, 1.0, f64::INFINITY]
        );
    }

    #[test]
    fn format_quantize() {
        assert_eq!(FpFormat::Fp16.quantize(0.1), Fp16::from_f64(0.1).to_f64());
        assert_eq!(FpFormat::Bf16.precision(), 8);
        assert_eq!(FpFormat::Fp32.storage_bits(), 32);
    }

    #[test]
    fn fp8_e4m3_basics() {
        assert_eq!(Fp8E4M3::BIAS, 7);
        assert_eq!(Fp8E4M3::PRECISION, 4);
        assert_eq!(Fp8E4M3::from_f64(1.0).to_f64(), 1.0);
        // Largest finite with IEEE-style specials: 1.875 × 2^7 = 240
        // (the OCP variant's 448 reuses the exponent-1111 space, which this
        // encoding reserves for Inf/NaN).
        assert_eq!(Fp8E4M3::EMAX, 7);
        assert_eq!(Fp8E4M3::from_f64(240.0).to_f64(), 240.0);
        assert!(Fp8E4M3::from_f64(1e4).is_infinite());
        // Quantization steps are coarse: 1.1 rounds to the 4-bit grid.
        let q = Fp8E4M3::from_f64(1.1).to_f64();
        assert!((q - 1.125).abs() < 1e-12, "{q}");
    }

    #[test]
    fn fp8_e5m2_trades_precision_for_range() {
        // E5M2 reaches further than E4M3 but is coarser.
        assert!(Fp8E5M2::from_f64(40000.0).is_finite());
        assert!(Fp8E4M3::from_f64(40000.0).is_infinite());
        let e4 = (Fp8E4M3::from_f64(1.1).to_f64() - 1.1).abs();
        let e5 = (Fp8E5M2::from_f64(1.1).to_f64() - 1.1).abs();
        assert!(e4 <= e5);
    }

    #[test]
    fn fp8_roundtrip_all_encodings() {
        for bits in 0..=255u32 {
            let x = Fp8E4M3::from_bits(bits);
            let back = Fp8E4M3::from_f64(x.to_f64());
            if x.is_nan() {
                assert!(back.is_nan());
            } else {
                assert_eq!(back.to_bits(), bits, "E4M3 {bits:#x}");
            }
            let y = Fp8E5M2::from_bits(bits);
            let back = Fp8E5M2::from_f64(y.to_f64());
            if y.is_nan() {
                assert!(back.is_nan());
            } else {
                assert_eq!(back.to_bits(), bits, "E5M2 {bits:#x}");
            }
        }
    }
}
