//! Wide integer accumulators with bit-width bookkeeping.
//!
//! The integer engines (iFPU, FIGNA, FIGLUT-I) accumulate aligned mantissas
//! (or mantissa × weight products) into wide registers. Functionally an
//! `i128` suffices; the simulator additionally needs to know *how wide the
//! register must be* to size flip-flop area and energy. [`WideAcc`] tracks
//! the running value and the maximum magnitude ever held, and
//! [`required_bits`] converts magnitudes to two's-complement widths.

/// Two's-complement bits required to hold any value whose magnitude is at
/// most `max_abs` (including the sign bit).
///
/// ```
/// # use figlut_num::fixed::required_bits;
/// assert_eq!(required_bits(0), 1);
/// assert_eq!(required_bits(1), 2);   // −1..1 needs 2 bits
/// assert_eq!(required_bits(127), 8);
/// assert_eq!(required_bits(128), 9);
/// ```
pub fn required_bits(max_abs: u128) -> u32 {
    // A w-bit two's-complement register holds −2^(w−1) ..= 2^(w−1)−1; to hold
    // ±max_abs symmetrically we need 2^(w−1) − 1 ≥ max_abs.
    let mut w = 1;
    while ((1u128 << (w - 1)) - 1) < max_abs {
        w += 1;
    }
    w
}

/// Closed-form accumulator width for a dot product of `n` terms of
/// `operand_bits`-wit signed operands (the worst case the simulator sizes
/// registers for).
///
/// `operand_bits` includes the sign; the result includes the sign.
pub fn accumulator_bits(operand_bits: u32, n: usize) -> u32 {
    if n == 0 {
        return 1;
    }
    let growth = usize::BITS - (n - 1).leading_zeros();
    operand_bits + growth
}

/// A signed accumulator that records the widest value it ever held.
///
/// Overflow of the underlying `i128` panics (in all build profiles): the
/// models never legitimately reach 2^127.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WideAcc {
    value: i128,
    max_abs: u128,
}

impl WideAcc {
    /// A zeroed accumulator.
    pub const fn new() -> Self {
        Self {
            value: 0,
            max_abs: 0,
        }
    }

    /// Add `v` into the accumulator.
    pub fn add(&mut self, v: i128) {
        self.value = self
            .value
            .checked_add(v)
            .expect("WideAcc overflow: accumulation exceeded i128");
        self.max_abs = self.max_abs.max(self.value.unsigned_abs());
    }

    /// Subtract `v` from the accumulator.
    pub fn sub(&mut self, v: i128) {
        self.add(v.checked_neg().expect("i128::MIN negation"));
    }

    /// Current value.
    pub fn value(&self) -> i128 {
        self.value
    }

    /// Largest magnitude the accumulator ever held.
    pub fn max_abs(&self) -> u128 {
        self.max_abs
    }

    /// Two's-complement register width needed for the observed history.
    pub fn observed_bits(&self) -> u32 {
        required_bits(self.max_abs)
    }

    /// Reset the value, keeping the observed width watermark.
    pub fn clear(&mut self) {
        self.value = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_bits_boundaries() {
        assert_eq!(required_bits(0), 1);
        assert_eq!(required_bits(1), 2);
        assert_eq!(required_bits(2), 3);
        assert_eq!(required_bits(3), 3);
        assert_eq!(required_bits(4), 4);
        assert_eq!(required_bits(u64::MAX as u128), 65);
    }

    #[test]
    fn accumulator_bits_growth() {
        // 8-bit operands: 1 term needs 8 bits, 2 terms 9, 256 terms 16.
        assert_eq!(accumulator_bits(8, 1), 8);
        assert_eq!(accumulator_bits(8, 2), 9);
        assert_eq!(accumulator_bits(8, 3), 10);
        assert_eq!(accumulator_bits(8, 256), 16);
        assert_eq!(accumulator_bits(8, 257), 17);
        assert_eq!(accumulator_bits(12, 0), 1);
    }

    #[test]
    fn acc_tracks_watermark() {
        let mut a = WideAcc::new();
        a.add(100);
        a.sub(300);
        assert_eq!(a.value(), -200);
        assert_eq!(a.max_abs(), 200);
        a.add(1000);
        assert_eq!(a.max_abs(), 800);
        assert_eq!(a.observed_bits(), required_bits(800));
        a.clear();
        assert_eq!(a.value(), 0);
        assert_eq!(a.max_abs(), 800, "watermark survives clear");
    }

    #[test]
    fn acc_bits_cover_worst_case_dot() {
        // Brute check: any n sums of b-bit operands fit accumulator_bits.
        for b in [4u32, 8, 12] {
            for n in [1usize, 2, 5, 31, 32, 33] {
                let max_operand = (1i128 << (b - 1)) - 1;
                let w = accumulator_bits(b, n);
                let worst = max_operand * n as i128;
                assert!(
                    required_bits(worst.unsigned_abs()) <= w,
                    "b={b} n={n} w={w} worst={worst}"
                );
            }
        }
    }
}
