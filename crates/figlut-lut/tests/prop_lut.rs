//! Property tests for the LUT machinery.
//!
//! The load-bearing invariant is hFFLUT ≡ FFLUT for *every* key and *any*
//! activation values — the paper's §III-D halving argument. We also check
//! generator-schedule correctness against the direct Σ± definition on random
//! inputs, and the bank model's bounds.

use figlut_lut::bank::{banked_read_phase, wavefront_cycles, GPU_BANKS};
use figlut_lut::generator::GenSchedule;
use figlut_lut::key::Key;
use figlut_lut::table::{FullLut, HalfLut, LutRead};
use proptest::prelude::*;

fn signed_sum(xs: &[f64], key: u16) -> f64 {
    xs.iter()
        .enumerate()
        .map(|(j, &x)| if (key >> j) & 1 == 1 { x } else { -x })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn half_equals_full_everywhere(
        mu in 1u32..=8,
        raw in prop::collection::vec(-1e6f64..1e6, 8),
    ) {
        let xs = &raw[..mu as usize];
        let full = FullLut::build(xs, |a, b| a + b);
        let half = HalfLut::build(xs, |a, b| a + b);
        for k in 0..(1u16 << mu) {
            let key = Key::new(k, mu);
            let f = full.read(key);
            let h = half.read(key);
            prop_assert!((f - h).abs() <= 1e-9 * (1.0 + f.abs()),
                "µ={} k={} full={} half={}", mu, k, f, h);
        }
    }

    #[test]
    fn half_symmetry_is_exact_for_integers(
        mu in 1u32..=8,
        raw in prop::collection::vec(-1_000_000i64..1_000_000, 8),
    ) {
        let xs = &raw[..mu as usize];
        let half = HalfLut::build(xs, |a, b| a + b);
        for k in 0..(1u16 << mu) {
            let key = Key::new(k, mu);
            prop_assert_eq!(half.read(key), -half.read(key.complement()));
        }
    }

    #[test]
    fn schedules_match_direct_definition(
        mu in 1u32..=8,
        raw in prop::collection::vec(-1e3f64..1e3, 8),
        half in any::<bool>(),
    ) {
        let xs = &raw[..mu as usize];
        for sched in [GenSchedule::optimized(mu, half), GenSchedule::straightforward(mu, half)] {
            let table = sched.apply(xs, |a, b| a + b);
            for (p, &v) in table.iter().enumerate() {
                let want = signed_sum(xs, p as u16);
                prop_assert!((v - want).abs() < 1e-9,
                    "µ={} half={} p={}: {} vs {}", mu, half, p, v, want);
            }
        }
    }

    #[test]
    fn integer_tables_are_bit_exact(
        mu in 1u32..=8,
        raw in prop::collection::vec(-1_000_000i64..1_000_000, 8),
    ) {
        let xs = &raw[..mu as usize];
        let full = FullLut::build(xs, |a, b| a + b);
        for (p, &v) in full.entries().iter().enumerate() {
            let want: i64 = xs.iter().enumerate()
                .map(|(j, &x)| if (p >> j) & 1 == 1 { x } else { -x })
                .sum();
            prop_assert_eq!(v, want);
        }
    }

    #[test]
    fn key_fold_is_involution_compatible(value in 0u16.., mu in 1u32..=16) {
        let value = if mu == 16 { value } else { value & ((1 << mu) - 1) };
        let key = Key::new(value, mu);
        // fold(k) and fold(~k) hit the same slot with opposite signs.
        if mu >= 2 {
            let (n1, i1) = key.fold();
            let (n2, i2) = key.complement().fold();
            prop_assert_eq!(i1, i2);
            prop_assert_ne!(n1, n2);
            prop_assert!(i1 < (1usize << (mu - 1)));
        }
    }

    #[test]
    fn wavefront_cycles_bounds(accesses in prop::collection::vec(0usize..64, 0..64)) {
        let c = wavefront_cycles(&accesses, GPU_BANKS);
        prop_assert!(c >= 1);
        prop_assert!(c as usize <= accesses.len().max(1));
    }

    #[test]
    fn banked_serialization_at_least_pigeonhole(mu in 1u32..=5, seed in any::<u64>()) {
        // 32 threads into 2^µ distinct entries: every round conflicts at
        // least ⌈32/2^µ⌉ deep.
        let s = banked_read_phase(mu, 32, 64, GPU_BANKS, seed);
        let floor = (32.0 / (1u64 << mu) as f64).ceil().max(1.0);
        prop_assert!(s.serialization() >= floor - 1e-9,
            "µ={} got {} < {}", mu, s.serialization(), floor);
    }
}
