#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # figlut-lut — look-up-table machinery (the paper's functional core)
//!
//! FIGLUT replaces the inner arithmetic of FP-INT GEMM with table reads:
//! for a group of `µ` binary weights, the partial sum `±x₁ ±x₂ … ±x_µ` can
//! take only `2^µ` values, all precomputed per input vector. This crate
//! implements that machinery exactly as the paper describes it:
//!
//! * [`key`] — µ-bit weight-pattern keys, including the MSB fold used by the
//!   half-table decoder (paper Fig. 10).
//! * [`table`] — [`FullLut`] (the FFLUT contents, paper Table II) and
//!   [`HalfLut`] (the hFFLUT exploiting vertical symmetry, §III-D).
//! * [`generator`] — the LUT-generator adder-tree scheduler (§III-E,
//!   Fig. 11): shared-subexpression schedules whose add counts reproduce the
//!   "14 additions for µ = 4, 42% fewer than straightforward" claim.
//! * [`rac`] — the read-accumulate (RAC) unit that replaces the MAC.
//! * [`bank`] — a GPU shared-memory bank-conflict model reproducing the
//!   motivation of Fig. 2 (why LUT-GEMM stalls and the FFLUT does not).
//!
//! Everything is generic over the table scalar so the same structures serve
//! FIGLUT-F (floating-point entries) and FIGLUT-I (pre-aligned integer
//! entries).

pub mod bank;
pub mod generator;
pub mod key;
pub mod rac;
pub mod table;

pub use generator::GenSchedule;
pub use key::Key;
pub use rac::Rac;
pub use table::{FullLut, HalfLut, LutRead, LutValue};
