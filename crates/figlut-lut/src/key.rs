//! µ-bit weight-pattern keys.
//!
//! A key encodes the signs of `µ` consecutive binary weights: bit `j` set
//! means weight `j` is `+1`, clear means `−1`. Bit 0 corresponds to the
//! *first* weight of the group (the lowest input index), matching the
//! packing order of `figlut_quant::BitMatrix::key`.
//!
//! The paper's Table II prints keys with x₁ as the MSB; use
//! [`Key::from_msb_first`] / [`Key::to_msb_first`] when matching its layout.
//!
//! The hFFLUT decoder (paper Fig. 10) relies on *vertical symmetry*:
//! complementing every bit of a key negates the table value. [`Key::fold`]
//! performs the decoder's index transform: the MSB selects whether to pass
//! the low `µ−1` bits through or complement them, and tells the reader to
//! flip the sign of the fetched value.

/// A weight-pattern key for a LUT over `µ` inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Key {
    value: u16,
    mu: u32,
}

impl Key {
    /// Maximum supported group size (table sizes stay ≤ 2¹⁶).
    pub const MAX_MU: u32 = 16;

    /// Create a key for a µ-input LUT.
    ///
    /// # Panics
    ///
    /// Panics if `mu` is 0 or exceeds [`Key::MAX_MU`], or if `value` has
    /// bits above `mu`.
    pub fn new(value: u16, mu: u32) -> Self {
        assert!((1..=Self::MAX_MU).contains(&mu), "µ = {mu} unsupported");
        assert!(
            mu == 16 || value < (1 << mu),
            "key {value:#b} out of range for µ = {mu}"
        );
        Self { value, mu }
    }

    /// Build from MSB-first sign flags (`true` = `+1`), as the paper's
    /// Table II lists binary patterns `{b₁, …, b_µ}`.
    ///
    /// # Panics
    ///
    /// Panics if `signs` is empty or longer than [`Key::MAX_MU`].
    pub fn from_msb_first(signs: &[bool]) -> Self {
        let mu = signs.len() as u32;
        assert!((1..=Self::MAX_MU).contains(&mu), "µ = {mu} unsupported");
        let mut v = 0u16;
        for (i, &s) in signs.iter().enumerate() {
            if s {
                v |= 1 << (mu as usize - 1 - i);
            }
        }
        Self { value: v, mu }
    }

    /// Sign flags MSB-first (Table II layout).
    pub fn to_msb_first(self) -> Vec<bool> {
        (0..self.mu)
            .rev()
            .map(|j| (self.value >> j) & 1 == 1)
            .collect()
    }

    /// The raw key value (bit `j` ↔ input `j`).
    #[inline]
    pub fn value(self) -> u16 {
        self.value
    }

    /// Group size µ.
    #[inline]
    pub fn mu(self) -> u32 {
        self.mu
    }

    /// Sign of input `j` as `±1`.
    ///
    /// # Panics
    ///
    /// Panics if `j ≥ µ`.
    #[inline]
    pub fn sign(self, j: u32) -> i32 {
        assert!(j < self.mu, "input {j} out of range for µ = {}", self.mu);
        if (self.value >> j) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// The complementary key (all bits flipped). By vertical symmetry,
    /// `lut[complement(k)] == −lut[k]`.
    #[inline]
    pub fn complement(self) -> Self {
        let mask = if self.mu == 16 {
            u16::MAX
        } else {
            (1u16 << self.mu) - 1
        };
        Self {
            value: self.value ^ mask,
            mu: self.mu,
        }
    }

    /// The key's MSB (the select signal of the hFFLUT decoder).
    #[inline]
    pub fn msb(self) -> bool {
        (self.value >> (self.mu - 1)) & 1 == 1
    }

    /// hFFLUT decoder transform: returns `(negate, index)` such that
    /// `full[k] == if negate { −half[index] } else { half[index] }`, where
    /// `half` stores the `2^(µ−1)` entries whose MSB is 0.
    ///
    /// Matches paper Fig. 10: the MSB selects the (µ−1)-bit index (possibly
    /// complemented) and drives the sign flip.
    #[inline]
    pub fn fold(self) -> (bool, usize) {
        let low_mask = (1u16 << (self.mu - 1)) - 1;
        if self.msb() {
            (true, ((self.value ^ u16::MAX) & low_mask) as usize)
        } else {
            (false, (self.value & low_mask) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signs_lsb_first() {
        let k = Key::new(0b011, 3); // inputs 0,1 = +1; input 2 = −1
        assert_eq!(k.sign(0), 1);
        assert_eq!(k.sign(1), 1);
        assert_eq!(k.sign(2), -1);
    }

    #[test]
    fn msb_first_matches_paper_table2() {
        // Paper Table II row: {−1, −1, +1} ↔ key 1 (b'001), meaning b₁ = −1
        // is the MSB.
        let k = Key::from_msb_first(&[false, false, true]);
        assert_eq!(k.value(), 0b001);
        assert_eq!(k.to_msb_first(), vec![false, false, true]);
        // {+1, +1, −1} ↔ key 6.
        let k = Key::from_msb_first(&[true, true, false]);
        assert_eq!(k.value(), 0b110);
    }

    #[test]
    fn complement_flips_all() {
        let k = Key::new(0b0101, 4);
        assert_eq!(k.complement().value(), 0b1010);
        assert_eq!(k.complement().complement(), k);
    }

    #[test]
    fn fold_low_half_passthrough() {
        for v in 0..8u16 {
            let k = Key::new(v, 4); // MSB clear
            assert_eq!(k.fold(), (false, v as usize));
        }
    }

    #[test]
    fn fold_high_half_complements() {
        // Key 0b1101 (µ=4): MSB set → negate, index = complement of low
        // bits 0b101 → 0b010.
        let k = Key::new(0b1101, 4);
        assert_eq!(k.fold(), (true, 0b010));
        // fold(k) and fold(complement(k)) address the same entry.
        let (n1, i1) = k.fold();
        let (n2, i2) = k.complement().fold();
        assert_eq!(i1, i2);
        assert_ne!(n1, n2);
    }

    #[test]
    fn mu_one_folds() {
        assert_eq!(Key::new(0, 1).fold(), (false, 0));
        assert_eq!(Key::new(1, 1).fold(), (true, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_oversized_value() {
        let _ = Key::new(0b100, 2);
    }
}
