//! The read-accumulate (RAC) unit.
//!
//! FIGLUT's PE replaces the MAC of a conventional systolic array with a RAC
//! (paper §III-C): a µ-bit key register, a read port into the PE's shared
//! LUT, and an accumulator. One RAC "operation" retrieves the partial sum
//! for its stored weight pattern and adds it to the running total —
//! covering µ weight positions per cycle without any multiplier.
//!
//! [`Mac`] is the conventional multiply-accumulate reference used in
//! equivalence tests and the RAC-vs-MAC Criterion benchmarks.

use crate::key::Key;
use crate::table::{LutRead, LutValue};

/// A read-accumulate unit over scalar `T`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rac<T> {
    key: Key,
    acc: T,
}

impl<T: LutValue + Default> Rac<T> {
    /// A fresh RAC for group size µ with a zeroed accumulator and an
    /// all-minus key.
    pub fn new(mu: u32) -> Self {
        Self {
            key: Key::new(0, mu),
            acc: T::default(),
        }
    }

    /// Load the weight-pattern key for the next read (the weight-stationary
    /// dataflow writes this once per tile/bit-plane).
    pub fn set_key(&mut self, key: Key) {
        self.key = key;
    }

    /// The currently registered key.
    pub fn key(&self) -> Key {
        self.key
    }

    /// One RAC operation: read the LUT at the stored key and fold the value
    /// into the accumulator with the datapath adder.
    ///
    /// # Panics
    ///
    /// Panics if the LUT's µ differs from the key's.
    pub fn read_accumulate(&mut self, lut: &impl LutRead<T>, add: impl FnOnce(T, T) -> T) {
        let v = lut.read(self.key);
        self.acc = add(self.acc, v);
    }

    /// Current accumulator value.
    pub fn acc(&self) -> T {
        self.acc
    }

    /// Drain the accumulator (returns the total and resets to zero).
    pub fn take(&mut self) -> T {
        core::mem::take(&mut self.acc)
    }
}

/// Conventional multiply-accumulate reference.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Mac {
    acc: f64,
}

impl Mac {
    /// A zeroed MAC.
    pub fn new() -> Self {
        Self::default()
    }

    /// `acc += w · x` with a caller-supplied rounded multiply-add pipeline.
    pub fn multiply_accumulate(
        &mut self,
        w: f64,
        x: f64,
        mul: impl FnOnce(f64, f64) -> f64,
        add: impl FnOnce(f64, f64) -> f64,
    ) {
        self.acc = add(self.acc, mul(w, x));
    }

    /// Current value.
    pub fn acc(&self) -> f64 {
        self.acc
    }

    /// Drain.
    pub fn take(&mut self) -> f64 {
        core::mem::take(&mut self.acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{FullLut, HalfLut};

    #[test]
    fn rac_accumulates_group_sums() {
        let xs = [1.0f64, 2.0, 4.0, 8.0];
        let lut = HalfLut::build(&xs, |a, b| a + b);
        let mut rac = Rac::<f64>::new(4);
        rac.set_key(Key::new(0b1111, 4)); // +1+2+4+8 = 15
        rac.read_accumulate(&lut, |a, b| a + b);
        rac.set_key(Key::new(0b0001, 4)); // +1−2−4−8 = −13
        rac.read_accumulate(&lut, |a, b| a + b);
        assert_eq!(rac.acc(), 2.0);
        assert_eq!(rac.take(), 2.0);
        assert_eq!(rac.acc(), 0.0);
    }

    #[test]
    fn rac_matches_mac_on_binary_weights() {
        // A RAC over µ=4 with key k must equal four MACs with weights ±1.
        let xs = [0.5f64, -1.25, 2.0, 0.75];
        let lut = FullLut::build(&xs, |a, b| a + b);
        for k in 0..16u16 {
            let mut rac = Rac::<f64>::new(4);
            rac.set_key(Key::new(k, 4));
            rac.read_accumulate(&lut, |a, b| a + b);
            let mut mac = Mac::new();
            for (j, &x) in xs.iter().enumerate() {
                let w = if (k >> j) & 1 == 1 { 1.0 } else { -1.0 };
                mac.multiply_accumulate(w, x, |a, b| a * b, |a, b| a + b);
            }
            assert!((rac.acc() - mac.acc()).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn integer_rac() {
        let xs = [100i64, -200, 300];
        let lut = HalfLut::build(&xs, |a, b| a + b);
        let mut rac = Rac::<i64>::new(3);
        rac.set_key(Key::new(0b110, 3)); // −100 −(−200)? bit0 clear → −100; bit1 → −200·+1? …
        rac.read_accumulate(&lut, |a, b| a + b);
        // bit0=0 → −100, bit1=1 → +(−200), bit2=1 → +300 → 0… compute: −100 −200 +300 = 0.
        assert_eq!(rac.acc(), 0);
    }
}
