//! GPU shared-memory bank-conflict model (paper §II-C, Fig. 2).
//!
//! LUT-GEMM keeps its tables in GPU shared memory, which is striped across
//! 32 banks. During the *read* phase the keys are weight bits — effectively
//! random — so several of a warp's threads regularly hit the same bank and
//! the hardware serializes them. This module quantifies that serialization,
//! reproducing the paper's motivation for a conflict-free FFLUT: the FFLUT
//! gives every reader a dedicated multiplexer, so its "serialization factor"
//! is identically 1.

/// Number of shared-memory banks on contemporary NVIDIA GPUs.
pub const GPU_BANKS: usize = 32;

/// Aggregate statistics of a simulated read phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConflictStats {
    /// Cycles actually consumed.
    pub cycles: u64,
    /// Cycles an ideal conflict-free memory would need.
    pub ideal_cycles: u64,
}

impl ConflictStats {
    /// Slowdown versus conflict-free access (≥ 1).
    pub fn serialization(&self) -> f64 {
        self.cycles as f64 / self.ideal_cycles as f64
    }
}

/// Cycles to service one wavefront of concurrent accesses: the maximum
/// number of accesses landing in any one bank (GPU semantics: conflicting
/// accesses replay serially; an idle wavefront costs one cycle).
pub fn wavefront_cycles(bank_of_access: &[usize], banks: usize) -> u64 {
    assert!(banks > 0, "need at least one bank");
    let mut load = vec![0u64; banks];
    for &b in bank_of_access {
        load[b % banks] += 1;
    }
    load.into_iter().max().unwrap_or(0).max(1)
}

/// Simulate the LUT-GEMM read phase: `threads` parallel readers issue
/// `lookups` rounds of reads with pseudo-random µ-bit keys into a table
/// striped entry-per-bank. Deterministic in `seed`.
pub fn banked_read_phase(
    mu: u32,
    threads: usize,
    lookups: usize,
    banks: usize,
    seed: u64,
) -> ConflictStats {
    assert!((1..=16).contains(&mu), "µ = {mu} unsupported");
    let entries = 1u64 << mu;
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = || {
        // xorshift64*: plenty for conflict statistics.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    let mut cycles = 0u64;
    let mut wave = vec![0usize; threads];
    for _ in 0..lookups {
        for slot in wave.iter_mut() {
            *slot = (next() % entries) as usize;
        }
        cycles += wavefront_cycles(&wave, banks);
    }
    ConflictStats {
        cycles,
        ideal_cycles: lookups as u64,
    }
}

/// The FFLUT equivalent: every reader has a dedicated multiplexer port, so
/// each round always completes in one cycle regardless of key distribution.
pub fn fflut_read_phase(lookups: usize) -> ConflictStats {
    ConflictStats {
        cycles: lookups as u64,
        ideal_cycles: lookups as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavefront_no_conflicts() {
        // All different banks → 1 cycle.
        assert_eq!(wavefront_cycles(&[0, 1, 2, 3], 32), 1);
    }

    #[test]
    fn wavefront_worst_case_serializes() {
        // Paper Fig. 2 worst case: all threads on one bank.
        assert_eq!(wavefront_cycles(&[5; 32], 32), 32);
    }

    #[test]
    fn wavefront_partial_conflict() {
        assert_eq!(wavefront_cycles(&[0, 0, 1, 2], 32), 2);
        assert_eq!(wavefront_cycles(&[], 32), 1, "idle wave still ticks");
    }

    #[test]
    fn small_tables_conflict_badly() {
        // µ=2 → 4 distinct entries across 32 threads: at least 8-way
        // conflicts every cycle.
        let s = banked_read_phase(2, 32, 500, GPU_BANKS, 7);
        assert!(s.serialization() >= 8.0, "got {}", s.serialization());
    }

    #[test]
    fn conflicts_shrink_with_table_size() {
        let s2 = banked_read_phase(2, 32, 400, GPU_BANKS, 11).serialization();
        let s4 = banked_read_phase(4, 32, 400, GPU_BANKS, 11).serialization();
        let s8 = banked_read_phase(8, 32, 400, GPU_BANKS, 11).serialization();
        assert!(s2 > s4 && s4 > s8, "{s2} {s4} {s8}");
        // Even µ=8 (256 entries over 32 banks) still conflicts noticeably
        // with random keys — the birthday effect the paper highlights.
        assert!(s8 > 1.5, "µ=8 serialization {s8}");
    }

    #[test]
    fn fflut_never_serializes() {
        let s = fflut_read_phase(1000);
        assert_eq!(s.serialization(), 1.0);
        assert_eq!(s.cycles, 1000);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = banked_read_phase(4, 32, 100, GPU_BANKS, 42);
        let b = banked_read_phase(4, 32, 100, GPU_BANKS, 42);
        assert_eq!(a, b);
    }
}
