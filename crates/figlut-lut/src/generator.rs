//! LUT-generator adder-tree scheduling (paper §III-E, Fig. 11).
//!
//! Every cycle group of the MPU needs a fresh LUT for the incoming µ
//! activations, so the generator's adder count is first-order hardware cost.
//! A *straightforward* generator computes each table entry independently
//! (`µ−1` adds per entry). The paper's generator instead computes all
//! partial patterns of a *lower* bit field once, shares them across every
//! *upper* pattern, and combines pairs with a single add — e.g. for the
//! µ = 4 half table: 2 upper sums + 4 lower sums + 8 combines = **14 adds**,
//! a **42% reduction** over the straightforward 24.
//!
//! [`GenSchedule`] materializes such a schedule as an explicit dataflow
//! (inputs, shared nodes, one output operand per table entry) so that
//!
//! * the *same* schedule both proves the adder-count claims (Fig. 11 /
//!   `repro fig11`) and *executes* table construction in the engine models
//!   (`figlut-gemm`), guaranteeing the hardware's rounding order is the one
//!   we simulate; and
//! * the simulator can price generator area/energy from `schedule.adds()`.
//!
//! The optimized builder searches all recursive splits, so its counts are
//! optimal within the upper/lower-sharing design space the paper describes.

use crate::key::Key;
use crate::table::LutValue;

/// A value source in a generator schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operand {
    /// Input activation `index`, optionally negated (sign-flip is free in
    /// sign-magnitude hardware).
    Input {
        /// Index into the µ activations.
        index: usize,
        /// `true` to take `−x[index]`.
        negate: bool,
    },
    /// Result of step `.0` of the schedule.
    Node(usize),
}

/// One two-input addition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenStep {
    /// Left addend.
    pub lhs: Operand,
    /// Right addend.
    pub rhs: Operand,
}

/// An explicit adder-tree schedule producing all LUT entries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenSchedule {
    mu: u32,
    half: bool,
    steps: Vec<GenStep>,
    outputs: Vec<Operand>,
}

impl GenSchedule {
    /// The naive generator: every entry gets its own left-to-right chain of
    /// `µ−1` adds (no sharing). This is the baseline of the paper's "42%
    /// fewer additions" comparison.
    ///
    /// # Panics
    ///
    /// Panics if `mu ∉ 1..=Key::MAX_MU`.
    pub fn straightforward(mu: u32, half: bool) -> Self {
        assert!((1..=Key::MAX_MU).contains(&mu), "µ = {mu} unsupported");
        let patterns = 1usize << (mu - half as u32);
        let mut steps = Vec::new();
        let mut outputs = Vec::with_capacity(patterns);
        for p in 0..patterns {
            // For half tables the MSB (input µ−1) is fixed to −1, which the
            // pattern range already encodes (p < 2^(µ−1) keeps bit µ−1 = 0).
            let mut acc = Operand::Input {
                index: 0,
                negate: p & 1 == 0,
            };
            for j in 1..mu as usize {
                let rhs = Operand::Input {
                    index: j,
                    negate: (p >> j) & 1 == 0,
                };
                steps.push(GenStep { lhs: acc, rhs });
                acc = Operand::Node(steps.len() - 1);
            }
            outputs.push(acc);
        }
        Self {
            mu,
            half,
            steps,
            outputs,
        }
    }

    /// The paper's shared-subexpression generator: recursively split the key
    /// bits into a lower field (computed once, shared) and an upper field,
    /// then combine each (upper, lower) pair with one add.
    ///
    /// # Panics
    ///
    /// Panics if `mu ∉ 1..=Key::MAX_MU`.
    pub fn optimized(mu: u32, half: bool) -> Self {
        assert!((1..=Key::MAX_MU).contains(&mu), "µ = {mu} unsupported");
        let mut steps = Vec::new();
        let outputs = build_block(0, mu as usize, half, &mut steps);
        Self {
            mu,
            half,
            steps,
            outputs,
        }
    }

    /// Group size µ.
    pub fn mu(&self) -> u32 {
        self.mu
    }

    /// `true` if this schedule produces only the MSB-clear half of the table
    /// (hFFLUT generation).
    pub fn is_half(&self) -> bool {
        self.half
    }

    /// Number of two-input additions (= adder instances in a fully parallel
    /// generator).
    pub fn adds(&self) -> usize {
        self.steps.len()
    }

    /// Number of table entries produced.
    pub fn entries(&self) -> usize {
        self.outputs.len()
    }

    /// The addition steps, in dependency order.
    pub fn steps(&self) -> &[GenStep] {
        &self.steps
    }

    /// Evaluate the schedule on concrete activations.
    ///
    /// `add` is the datapath adder (exact for integers, format-rounding for
    /// floats); negation is exact (a sign flip) in both datapaths.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() != µ`.
    pub fn apply<T: LutValue>(&self, xs: &[T], mut add: impl FnMut(T, T) -> T) -> Vec<T> {
        assert_eq!(xs.len(), self.mu as usize, "need µ = {} inputs", self.mu);
        let fetch = |nodes: &[T], op: Operand| -> T {
            match op {
                Operand::Input { index, negate } => {
                    if negate {
                        xs[index].neg()
                    } else {
                        xs[index]
                    }
                }
                Operand::Node(i) => nodes[i],
            }
        };
        let mut nodes: Vec<T> = Vec::with_capacity(self.steps.len());
        for step in &self.steps {
            let v = add(fetch(&nodes, step.lhs), fetch(&nodes, step.rhs));
            nodes.push(v);
        }
        self.outputs.iter().map(|&op| fetch(&nodes, op)).collect()
    }

    /// Critical path length in adder stages (depth of the deepest output).
    pub fn depth(&self) -> usize {
        let mut node_depth = Vec::with_capacity(self.steps.len());
        let depth_of = |nd: &[usize], op: Operand| -> usize {
            match op {
                Operand::Input { .. } => 0,
                Operand::Node(i) => nd[i],
            }
        };
        for step in &self.steps {
            let d = 1 + depth_of(&node_depth, step.lhs).max(depth_of(&node_depth, step.rhs));
            node_depth.push(d);
        }
        self.outputs
            .iter()
            .map(|&op| depth_of(&node_depth, op))
            .max()
            .unwrap_or(0)
    }
}

/// Minimum add count achievable by recursive upper/lower sharing for a
/// `width`-bit field (`fixed_msb` pins the top bit, as the half table does).
///
/// Closed recursion:
/// `cost(1, _) = 0`;
/// `cost(w, f) = min over split s of cost(s, false) + cost(w−s, f) + 2^(w−f)`.
pub fn optimal_adds(width: u32, fixed_msb: bool) -> usize {
    fn go(w: u32, f: bool, memo: &mut [[usize; 2]; 17]) -> usize {
        if w == 1 {
            return 0;
        }
        let cached = memo[w as usize][f as usize];
        if cached != usize::MAX {
            return cached;
        }
        let combines = 1usize << (w - f as u32);
        let mut best = usize::MAX;
        for s in 1..w {
            let c = go(s, false, memo) + go(w - s, f, memo) + combines;
            best = best.min(c);
        }
        memo[w as usize][f as usize] = best;
        best
    }
    assert!((1..=Key::MAX_MU).contains(&width));
    go(width, fixed_msb, &mut [[usize::MAX; 2]; 17])
}

/// Recursively emit the optimized schedule for key bits
/// `[lo, lo + width)`; returns one operand per pattern (LSB-first within the
/// field). `fixed_msb` pins the field's top bit to 0 (sign −1).
fn build_block(lo: usize, width: usize, fixed_msb: bool, steps: &mut Vec<GenStep>) -> Vec<Operand> {
    if width == 1 {
        let neg_entry = Operand::Input {
            index: lo,
            negate: true,
        };
        return if fixed_msb {
            vec![neg_entry]
        } else {
            vec![
                neg_entry,
                Operand::Input {
                    index: lo,
                    negate: false,
                },
            ]
        };
    }
    // Pick the split minimizing total adds; tie-break toward a balanced
    // split (the layout the paper's Fig. 11 shows for µ = 4).
    let mut best_s = 1;
    let mut best_cost = usize::MAX;
    for s in 1..width {
        let c = optimal_adds(s as u32, false)
            + optimal_adds((width - s) as u32, fixed_msb)
            + (1usize << (width - fixed_msb as usize));
        let better = c < best_cost
            || (c == best_cost
                && (s as i64 - width as i64 / 2).abs() < (best_s as i64 - width as i64 / 2).abs());
        if better {
            best_cost = c;
            best_s = s;
        }
    }
    let s = best_s;
    let lower = build_block(lo, s, false, steps);
    let upper = build_block(lo + s, width - s, fixed_msb, steps);
    let patterns = 1usize << (width - fixed_msb as usize);
    let mut out = Vec::with_capacity(patterns);
    for p in 0..patterns {
        let lp = p & ((1 << s) - 1);
        let up = p >> s;
        steps.push(GenStep {
            lhs: upper[up],
            rhs: lower[lp],
        });
        out.push(Operand::Node(steps.len() - 1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct definition: entry p = Σ_j (bit j of p ? +x_j : −x_j).
    fn direct(mu: u32, half: bool, xs: &[f64]) -> Vec<f64> {
        let patterns = 1usize << (mu - half as u32);
        (0..patterns)
            .map(|p| {
                (0..mu as usize)
                    .map(|j| if (p >> j) & 1 == 1 { xs[j] } else { -xs[j] })
                    .sum()
            })
            .collect()
    }

    fn xs(mu: u32) -> Vec<f64> {
        (0..mu).map(|i| (i as f64 + 1.0) * 1.25).collect()
    }

    #[test]
    fn paper_counts_mu4_half() {
        // The headline claim: 14 adds vs 24 straightforward (42% fewer).
        let opt = GenSchedule::optimized(4, true);
        let naive = GenSchedule::straightforward(4, true);
        assert_eq!(opt.adds(), 14);
        assert_eq!(naive.adds(), 24);
        let saving = 1.0 - opt.adds() as f64 / naive.adds() as f64;
        assert!((saving - 0.4167).abs() < 0.01, "saving {saving}");
    }

    #[test]
    fn straightforward_counts_formula() {
        for mu in 1..=8u32 {
            for half in [false, true] {
                let s = GenSchedule::straightforward(mu, half);
                let entries = 1usize << (mu - half as u32);
                assert_eq!(s.adds(), entries * (mu as usize - 1));
                assert_eq!(s.entries(), entries);
            }
        }
    }

    #[test]
    fn optimized_never_more_adds() {
        for mu in 1..=8u32 {
            for half in [false, true] {
                let o = GenSchedule::optimized(mu, half);
                let s = GenSchedule::straightforward(mu, half);
                assert!(o.adds() <= s.adds(), "µ={mu} half={half}");
                assert_eq!(o.adds(), optimal_adds(mu, half), "µ={mu} half={half}");
            }
        }
    }

    #[test]
    fn schedules_compute_correct_tables() {
        for mu in 1..=8u32 {
            for half in [false, true] {
                let x = xs(mu);
                let want = direct(mu, half, &x);
                for sched in [
                    GenSchedule::optimized(mu, half),
                    GenSchedule::straightforward(mu, half),
                ] {
                    let got = sched.apply(&x, |a, b| a + b);
                    assert_eq!(got.len(), want.len());
                    for (g, w) in got.iter().zip(&want) {
                        assert!((g - w).abs() < 1e-12, "µ={mu} half={half}");
                    }
                }
            }
        }
    }

    #[test]
    fn integer_apply() {
        let sched = GenSchedule::optimized(4, true);
        let xs = [3i64, -5, 7, 11];
        let got = sched.apply(&xs, |a, b| a + b);
        // Entry 0 = −3 + 5 − 7 − 11 = −16.
        assert_eq!(got[0], -16);
        // Entry 0b0101 = +3 + 5... wait: bit0=1→+3, bit1=0→+5? bit1 clear → −(−5)=? Inputs
        // are used as-is: bit1 clear means −x₁ = −(−5) = 5.
        assert_eq!(got[0b0101], 3 + 5 + 7 - 11);
    }

    #[test]
    fn depth_is_logarithmic_for_optimized() {
        let o = GenSchedule::optimized(8, true);
        let s = GenSchedule::straightforward(8, true);
        assert!(o.depth() <= 3, "depth {}", o.depth()); // two-step tree + combine
        assert_eq!(s.depth(), 7);
    }

    #[test]
    fn savings_grow_with_mu() {
        let mut last = 0.0;
        for mu in 3..=8u32 {
            let o = GenSchedule::optimized(mu, true).adds() as f64;
            let s = GenSchedule::straightforward(mu, true).adds() as f64;
            let saving = 1.0 - o / s;
            assert!(saving >= last - 1e-12, "µ={mu}: {saving} < {last}");
            last = saving;
        }
    }

    #[test]
    fn mu4_full_table_generator() {
        // Full (non-half) µ=4 table: shared generation needs 4+4+16 = 24
        // adds vs 48 straightforward.
        let o = GenSchedule::optimized(4, false);
        assert_eq!(o.adds(), 24);
        assert_eq!(o.entries(), 16);
    }
}
