//! LUT containers: the FFLUT ([`FullLut`]) and the hFFLUT ([`HalfLut`]).
//!
//! A µ-input LUT holds all `2^µ` signed combinations `±x₀ ±x₁ … ±x_{µ−1}`
//! of the current activation group (paper Table II). The hFFLUT stores only
//! the `2^(µ−1)` entries whose key MSB is 0; vertical symmetry
//! (`lut[~k] = −lut[k]`) recovers the rest through the decoder of paper
//! Fig. 10 — halving flip-flop count and power for a trivial
//! complement-and-negate cost.
//!
//! Tables are built by executing a `GenSchedule` (see [`crate::generator`]),
//! so entry values carry exactly the rounding order of the hardware
//! generator's adder tree (this matters for the FP datapath of FIGLUT-F).

use crate::generator::GenSchedule;
use crate::key::Key;

/// Scalars that can live in a LUT: negation must be exact (a sign flip).
pub trait LutValue: Copy {
    /// Exact negation.
    fn neg(self) -> Self;
}

impl LutValue for f64 {
    #[inline]
    fn neg(self) -> Self {
        -self
    }
}

impl LutValue for i64 {
    #[inline]
    fn neg(self) -> Self {
        -self
    }
}

/// Read access shared by full and half tables (and by the RAC unit).
pub trait LutRead<T> {
    /// Group size µ.
    fn mu(&self) -> u32;
    /// The partial sum stored for `key`.
    ///
    /// # Panics
    ///
    /// Panics if the key's µ differs from the table's.
    fn read(&self, key: Key) -> T;
}

/// The full `2^µ`-entry FFLUT.
#[derive(Clone, Debug, PartialEq)]
pub struct FullLut<T> {
    mu: u32,
    entries: Vec<T>,
}

impl<T: LutValue> FullLut<T> {
    /// Build from the µ activations of the current group using the
    /// optimized generator schedule and the supplied datapath adder.
    pub fn build(xs: &[T], add: impl FnMut(T, T) -> T) -> Self {
        let mu = xs.len() as u32;
        let sched = GenSchedule::optimized(mu, false);
        Self {
            mu,
            entries: sched.apply(xs, add),
        }
    }

    /// Build with a caller-provided schedule (must be a full-table schedule
    /// of matching µ).
    ///
    /// # Panics
    ///
    /// Panics if the schedule is a half schedule or µ mismatches.
    pub fn build_with(sched: &GenSchedule, xs: &[T], add: impl FnMut(T, T) -> T) -> Self {
        assert!(!sched.is_half(), "half schedule used for a full table");
        assert_eq!(sched.mu() as usize, xs.len(), "µ mismatch");
        Self {
            mu: sched.mu(),
            entries: sched.apply(xs, add),
        }
    }

    /// Raw entries, indexed by key value.
    pub fn entries(&self) -> &[T] {
        &self.entries
    }
}

impl<T: LutValue> LutRead<T> for FullLut<T> {
    fn mu(&self) -> u32 {
        self.mu
    }

    #[inline]
    fn read(&self, key: Key) -> T {
        assert_eq!(key.mu(), self.mu, "key µ mismatch");
        self.entries[key.value() as usize]
    }
}

/// The half-size hFFLUT: `2^(µ−1)` stored entries plus the MSB decoder.
#[derive(Clone, Debug, PartialEq)]
pub struct HalfLut<T> {
    mu: u32,
    entries: Vec<T>,
}

impl<T: LutValue> HalfLut<T> {
    /// Build the stored half (keys with MSB = 0) from the µ activations.
    pub fn build(xs: &[T], add: impl FnMut(T, T) -> T) -> Self {
        let mu = xs.len() as u32;
        let sched = GenSchedule::optimized(mu, true);
        Self {
            mu,
            entries: sched.apply(xs, add),
        }
    }

    /// Build with a caller-provided half schedule.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is not a half schedule or µ mismatches.
    pub fn build_with(sched: &GenSchedule, xs: &[T], add: impl FnMut(T, T) -> T) -> Self {
        assert!(sched.is_half(), "full schedule used for a half table");
        assert_eq!(sched.mu() as usize, xs.len(), "µ mismatch");
        Self {
            mu: sched.mu(),
            entries: sched.apply(xs, add),
        }
    }

    /// Derive the half table from a full table (hardware never does this —
    /// it is a test/verification convenience).
    pub fn from_full(full: &FullLut<T>) -> Self {
        Self {
            mu: full.mu,
            entries: full.entries[..full.entries.len() / 2].to_vec(),
        }
    }

    /// The stored (MSB-clear) entries.
    pub fn entries(&self) -> &[T] {
        &self.entries
    }

    /// Stored flip-flop payload relative to a full table: exactly half.
    pub fn stored_entries(&self) -> usize {
        self.entries.len()
    }
}

impl<T: LutValue> LutRead<T> for HalfLut<T> {
    fn mu(&self) -> u32 {
        self.mu
    }

    /// Decoder of paper Fig. 10: MSB selects pass-through vs complemented
    /// index and drives the output sign flip.
    #[inline]
    fn read(&self, key: Key) -> T {
        assert_eq!(key.mu(), self.mu, "key µ mismatch");
        let (negate, index) = key.fold();
        let v = self.entries[index];
        if negate {
            v.neg()
        } else {
            v
        }
    }
}

/// Render the symbolic LUT contents for µ inputs named `x1 … xµ`, one row
/// per key in paper Table II order (x₁ is the key MSB). Used by the `repro
/// table2` harness.
pub fn symbolic_table(mu: u32) -> Vec<(u16, String)> {
    assert!((1..=8).contains(&mu), "symbolic table for µ = {mu}");
    (0..(1u16 << mu))
        .map(|k| {
            let mut s = String::new();
            for i in 0..mu {
                // Paper order: x1 is the MSB of the displayed key.
                let plus = (k >> (mu - 1 - i)) & 1 == 1;
                s.push_str(if plus { "+x" } else { "-x" });
                s.push_str(&(i + 1).to_string());
                if i + 1 < mu {
                    s.push(' ');
                }
            }
            (k, s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acts(mu: u32) -> Vec<f64> {
        (0..mu).map(|i| 0.5 + i as f64).collect()
    }

    /// Direct reference: Σ ±x by key bits (LSB-first).
    fn reference(xs: &[f64], key: u16) -> f64 {
        xs.iter()
            .enumerate()
            .map(|(j, &x)| if (key >> j) & 1 == 1 { x } else { -x })
            .sum()
    }

    #[test]
    fn full_table_matches_definition() {
        for mu in 1..=6u32 {
            let xs = acts(mu);
            let lut = FullLut::build(&xs, |a, b| a + b);
            for k in 0..(1u16 << mu) {
                let want = reference(&xs, k);
                let got = lut.read(Key::new(k, mu));
                assert!((got - want).abs() < 1e-12, "µ={mu} k={k}");
            }
        }
    }

    #[test]
    fn half_table_equals_full_for_every_key() {
        for mu in 1..=6u32 {
            let xs = acts(mu);
            let full = FullLut::build(&xs, |a, b| a + b);
            let half = HalfLut::build(&xs, |a, b| a + b);
            assert_eq!(half.stored_entries() * 2, full.entries().len());
            for k in 0..(1u16 << mu) {
                let key = Key::new(k, mu);
                assert!(
                    (half.read(key) - full.read(key)).abs() < 1e-12,
                    "µ={mu} k={k}: half {} vs full {}",
                    half.read(key),
                    full.read(key)
                );
            }
        }
    }

    #[test]
    fn half_table_integer_is_exact() {
        let xs = [13i64, -7, 29, 5];
        let full = FullLut::build(&xs, |a, b| a + b);
        let half = HalfLut::build(&xs, |a, b| a + b);
        for k in 0..16u16 {
            let key = Key::new(k, 4);
            assert_eq!(half.read(key), full.read(key), "k={k}");
        }
    }

    #[test]
    fn vertical_symmetry_holds_even_with_rounded_adds() {
        // With a lossy adder (fp16-ish rounding) the absolute values differ
        // from exact, but read(k) == −read(~k) holds *by construction*.
        let xs = [0.1f64, 0.2, 0.3, 0.4];
        let round = |v: f64| (v * 64.0).round() / 64.0;
        let half = HalfLut::build(&xs, |a, b| round(a + b));
        for k in 0..16u16 {
            let key = Key::new(k, 4);
            assert_eq!(half.read(key), -half.read(key.complement()), "k={k}");
        }
    }

    #[test]
    fn from_full_matches_built_half() {
        let xs = acts(5);
        let full = FullLut::build(&xs, |a, b| a + b);
        let derived = HalfLut::from_full(&full);
        let built = HalfLut::build(&xs, |a, b| a + b);
        for k in 0..32u16 {
            let key = Key::new(k, 5);
            assert!((derived.read(key) - built.read(key)).abs() < 1e-12);
        }
    }

    #[test]
    fn symbolic_table_mu3_matches_paper() {
        // Paper Table II: key 0 → −x1 −x2 −x3; key 5 → +x1 −x2 +x3.
        let t = symbolic_table(3);
        assert_eq!(t.len(), 8);
        assert_eq!(t[0].1, "-x1 -x2 -x3");
        assert_eq!(t[5].1, "+x1 -x2 +x3");
        assert_eq!(t[7].1, "+x1 +x2 +x3");
    }

    #[test]
    #[should_panic(expected = "key µ mismatch")]
    fn read_checks_mu() {
        let lut = FullLut::build(&[1.0, 2.0], |a, b| a + b);
        let _ = lut.read(Key::new(0, 3));
    }
}
