//! Trace sinks: in-memory collection, JSONL event logs, and Chrome
//! trace-event JSON (Perfetto-loadable), plus the Chrome-trace validator
//! `repro --trace` and CI run over emitted files.

use crate::json::{escape, Json};
use crate::{Event, TraceSink};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// An owned copy of one recorded [`Event`], tagged with its run index —
/// what [`CollectSink`] stores and tests assert against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OwnedEvent {
    /// See [`Event::Span`].
    Span {
        /// Serve-run index within the session.
        run: u64,
        /// Event name.
        name: &'static str,
        /// Start tick (global — already run-offset).
        ts: u64,
        /// Duration in virtual ticks.
        dur: u64,
        /// Numeric payload.
        args: Vec<(&'static str, u64)>,
    },
    /// See [`Event::Instant`].
    Instant {
        /// Serve-run index within the session.
        run: u64,
        /// Event name.
        name: &'static str,
        /// Tick (global — already run-offset).
        ts: u64,
        /// Numeric payload.
        args: Vec<(&'static str, u64)>,
    },
    /// See [`Event::Counter`].
    Counter {
        /// Serve-run index within the session.
        run: u64,
        /// Track name.
        name: &'static str,
        /// Tick (global — already run-offset).
        ts: u64,
        /// Sampled value.
        value: u64,
    },
}

impl OwnedEvent {
    fn from_event(run: u64, e: &Event<'_>) -> Self {
        match *e {
            Event::Span {
                name,
                ts,
                dur,
                args,
            } => OwnedEvent::Span {
                run,
                name,
                ts,
                dur,
                args: args.to_vec(),
            },
            Event::Instant { name, ts, args } => OwnedEvent::Instant {
                run,
                name,
                ts,
                args: args.to_vec(),
            },
            Event::Counter { name, ts, value } => OwnedEvent::Counter {
                run,
                name,
                ts,
                value,
            },
        }
    }

    /// The event's run index.
    pub fn run(&self) -> u64 {
        match *self {
            OwnedEvent::Span { run, .. }
            | OwnedEvent::Instant { run, .. }
            | OwnedEvent::Counter { run, .. } => run,
        }
    }

    /// The event's name.
    pub fn name(&self) -> &'static str {
        match *self {
            OwnedEvent::Span { name, .. }
            | OwnedEvent::Instant { name, .. }
            | OwnedEvent::Counter { name, .. } => name,
        }
    }

    /// The event's (global) timestamp in virtual ticks.
    pub fn ts(&self) -> u64 {
        match *self {
            OwnedEvent::Span { ts, .. }
            | OwnedEvent::Instant { ts, .. }
            | OwnedEvent::Counter { ts, .. } => ts,
        }
    }

    /// Look up a payload entry by name (`None` for counters).
    pub fn arg(&self, key: &str) -> Option<u64> {
        match self {
            OwnedEvent::Span { args, .. } | OwnedEvent::Instant { args, .. } => {
                args.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
            }
            OwnedEvent::Counter { .. } => None,
        }
    }
}

/// Collects every event into a shared in-memory vector — the sink tests
/// install. Keep a clone of [`CollectSink::events`] before handing the sink
/// to [`crate::install`]; the events stay readable after the session ends.
#[derive(Clone, Debug, Default)]
pub struct CollectSink {
    events: Arc<Mutex<Vec<OwnedEvent>>>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared event buffer.
    pub fn events(&self) -> Arc<Mutex<Vec<OwnedEvent>>> {
        Arc::clone(&self.events)
    }
}

impl TraceSink for CollectSink {
    fn record(&mut self, run: u64, event: &Event<'_>) {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(OwnedEvent::from_event(run, event));
    }
}

fn write_args(out: &mut String, args: &[(&'static str, u64)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{v}", escape(k)));
    }
    out.push('}');
}

/// Newline-delimited JSON: one self-describing object per event, streamed
/// to the writer as it arrives (constant memory; grep- and jq-friendly).
pub struct JsonlSink {
    out: BufWriter<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Stream events to `path` (truncating it).
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self::new(Box::new(File::create(path)?)))
    }

    /// Stream events to an arbitrary writer.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        Self {
            out: BufWriter::new(writer),
        }
    }

    fn line(run: u64, event: &Event<'_>) -> String {
        let mut s = String::new();
        match *event {
            Event::Span {
                name,
                ts,
                dur,
                args,
            } => {
                s.push_str(&format!(
                    "{{\"type\":\"span\",\"name\":\"{}\",\"run\":{run},\"ts\":{ts},\"dur\":{dur},\"args\":",
                    escape(name)
                ));
                write_args(&mut s, args);
                s.push('}');
            }
            Event::Instant { name, ts, args } => {
                s.push_str(&format!(
                    "{{\"type\":\"instant\",\"name\":\"{}\",\"run\":{run},\"ts\":{ts},\"args\":",
                    escape(name)
                ));
                write_args(&mut s, args);
                s.push('}');
            }
            Event::Counter { name, ts, value } => {
                s.push_str(&format!(
                    "{{\"type\":\"counter\",\"name\":\"{}\",\"run\":{run},\"ts\":{ts},\"value\":{value}}}",
                    escape(name)
                ));
            }
        }
        s
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, run: u64, event: &Event<'_>) {
        // I/O errors surface at close() via the buffered writer's flush.
        let _ = writeln!(self.out, "{}", Self::line(run, event));
    }

    fn close(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

/// Chrome trace-event JSON (the `{"traceEvents":[...]}` object form):
/// load the file in Perfetto or `chrome://tracing`. Spans map to complete
/// (`ph:"X"`) events, instants to `ph:"i"`, counter samples to `ph:"C"`;
/// `ts`/`dur` are **virtual ticks** (rendered as microseconds), `pid` is
/// always 1, and each serve run gets its own `tid` lane (`run + 1`).
///
/// Events buffer in memory and are written as one JSON document by
/// [`TraceSink::close`].
pub struct ChromeTraceSink {
    events: Vec<OwnedEvent>,
    out: Option<BufWriter<Box<dyn Write + Send>>>,
}

impl ChromeTraceSink {
    /// Buffer events and write the trace document to `path` on close.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self::new(Box::new(File::create(path)?)))
    }

    /// Buffer events and write the trace document to `writer` on close.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        Self {
            events: Vec::new(),
            out: Some(BufWriter::new(writer)),
        }
    }

    fn render_one(e: &OwnedEvent) -> String {
        let (tid, ts) = (e.run() + 1, e.ts());
        let name = escape(e.name());
        match e {
            OwnedEvent::Span { dur, args, .. } => {
                let mut s = format!(
                    "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"args\":"
                );
                write_args(&mut s, args);
                s.push('}');
                s
            }
            OwnedEvent::Instant { args, .. } => {
                let mut s = format!(
                    "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"args\":"
                );
                write_args(&mut s, args);
                s.push('}');
                s
            }
            OwnedEvent::Counter { value, .. } => format!(
                "{{\"name\":\"{name}\",\"ph\":\"C\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"args\":{{\"value\":{value}}}}}"
            ),
        }
    }

    /// Render the buffered events as the complete trace document (what
    /// `close` writes).
    pub fn render(&self) -> String {
        let mut s = String::from("{\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            s.push_str(&Self::render_one(e));
            if i + 1 < self.events.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("]}\n");
        s
    }
}

impl TraceSink for ChromeTraceSink {
    fn record(&mut self, run: u64, event: &Event<'_>) {
        self.events.push(OwnedEvent::from_event(run, event));
    }

    fn close(&mut self) -> std::io::Result<()> {
        let Some(mut out) = self.out.take() else {
            return Ok(());
        };
        out.write_all(self.render().as_bytes())?;
        out.flush()
    }
}

/// Validate `text` as a well-formed Chrome trace-event document of the
/// shape this crate emits: a root object with a non-empty `traceEvents`
/// array whose entries all carry `name`/`ph`/`ts`/`pid`/`tid` (and a
/// numeric `dur` on `ph:"X"` spans), with `ts` non-decreasing in file
/// order (the deterministic virtual clock never goes backwards). Returns
/// the event count.
///
/// # Errors
///
/// Returns a description of the first malformed construct.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = Json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing \"traceEvents\" key")?
        .as_arr()
        .ok_or("\"traceEvents\" is not an array")?;
    if events.is_empty() {
        return Err("empty traceEvents array".into());
    }
    let mut last_ts = f64::NEG_INFINITY;
    for (i, e) in events.iter().enumerate() {
        let field = |key: &str| {
            e.get(key)
                .ok_or_else(|| format!("event {i}: missing \"{key}\""))
        };
        field("name")?
            .as_str()
            .ok_or_else(|| format!("event {i}: \"name\" is not a string"))?;
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event {i}: \"ph\" is not a string"))?;
        for key in ["ts", "pid", "tid"] {
            field(key)?
                .as_num()
                .ok_or_else(|| format!("event {i}: \"{key}\" is not a number"))?;
        }
        if ph == "X" {
            field("dur")?
                .as_num()
                .ok_or_else(|| format!("event {i}: span \"dur\" is not a number"))?;
        }
        let ts = e.get("ts").unwrap().as_num().unwrap();
        if ts < last_ts {
            return Err(format!(
                "event {i}: ts {ts} goes backwards (previous {last_ts})"
            ));
        }
        last_ts = ts;
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_events(sink: &mut dyn TraceSink) {
        sink.record(
            0,
            &Event::Span {
                name: "Prefill",
                ts: 0,
                dur: 16,
                args: &[("rows", 4), ("queue", 2)],
            },
        );
        sink.record(
            0,
            &Event::Instant {
                name: "admit",
                ts: 0,
                args: &[("id", 3)],
            },
        );
        sink.record(
            1,
            &Event::Counter {
                name: "queue_depth",
                ts: 16,
                value: 1,
            },
        );
    }

    #[test]
    fn collect_sink_preserves_order_and_payloads() {
        let mut sink = CollectSink::new();
        let events = sink.events();
        demo_events(&mut sink);
        let evs = events.lock().unwrap();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].name(), "Prefill");
        assert_eq!(evs[0].arg("rows"), Some(4));
        assert_eq!(evs[2].run(), 1);
        assert_eq!(evs[2].ts(), 16);
        assert_eq!(evs[1].arg("missing"), None);
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let line = JsonlSink::line(
            2,
            &Event::Span {
                name: "Mixed",
                ts: 7,
                dur: 3,
                args: &[("decode_rows", 2)],
            },
        );
        let j = Json::parse(&line).unwrap();
        assert_eq!(j.get("type").unwrap().as_str(), Some("span"));
        assert_eq!(j.get("run").unwrap().as_num(), Some(2.0));
        assert_eq!(j.get("dur").unwrap().as_num(), Some(3.0));
        assert_eq!(
            j.get("args").unwrap().get("decode_rows").unwrap().as_num(),
            Some(2.0)
        );
    }

    #[test]
    fn chrome_trace_renders_valid_and_validator_accepts() {
        let mut sink = ChromeTraceSink::new(Box::new(Vec::new()));
        demo_events(&mut sink);
        let doc = sink.render();
        assert_eq!(validate_chrome_trace(&doc), Ok(3));
        // Runs land on distinct thread lanes.
        let j = Json::parse(&doc).unwrap();
        let evs = j.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(evs[0].get("tid").unwrap().as_num(), Some(1.0));
        assert_eq!(evs[2].get("tid").unwrap().as_num(), Some(2.0));
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("{}").is_err(), "missing array");
        assert!(
            validate_chrome_trace("{\"traceEvents\":[]}").is_err(),
            "empty array"
        );
        assert!(
            validate_chrome_trace(
                "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"i\",\"ts\":0,\"pid\":1}]}"
            )
            .is_err(),
            "missing tid"
        );
        assert!(
            validate_chrome_trace(
                "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"pid\":1,\"tid\":1}]}"
            )
            .is_err(),
            "span without dur"
        );
        let backwards = concat!(
            "{\"traceEvents\":[",
            "{\"name\":\"a\",\"ph\":\"i\",\"ts\":5,\"pid\":1,\"tid\":1},",
            "{\"name\":\"b\",\"ph\":\"i\",\"ts\":4,\"pid\":1,\"tid\":1}",
            "]}"
        );
        assert!(validate_chrome_trace(backwards).is_err(), "non-monotone ts");
    }

    #[test]
    fn file_sinks_write_on_close() {
        let dir = std::env::temp_dir().join("figlut-trace-sink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let chrome = dir.join("t.json");
        let jsonl = dir.join("t.jsonl");
        {
            let mut sink = ChromeTraceSink::create(&chrome).unwrap();
            demo_events(&mut sink);
            sink.close().unwrap();
        }
        {
            let mut sink = JsonlSink::create(&jsonl).unwrap();
            demo_events(&mut sink);
            sink.close().unwrap();
        }
        let doc = std::fs::read_to_string(&chrome).unwrap();
        assert_eq!(validate_chrome_trace(&doc), Ok(3));
        let lines = std::fs::read_to_string(&jsonl).unwrap();
        assert_eq!(lines.lines().count(), 3);
        for line in lines.lines() {
            assert!(Json::parse(line).is_ok());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
