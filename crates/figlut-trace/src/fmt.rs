//! Text-table rendering and CSV output.
//!
//! Shared by the reproduction harness (`figlut-bench` re-exports this
//! module as `figlut_bench::fmt`, its historical home) and by
//! `figlut-serve`'s human-readable `Display for ServeReport` — living here
//! keeps the serving crate free of a bench dependency while both render
//! through one table engine.

use std::fs;
use std::path::Path;

/// A rendered experiment table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Title line (e.g. `"Table IV — perplexity parity"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
    /// Free-text notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n=== {} ===\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Write the table as CSV under `dir`. Notes are appended as trailing
    /// `# note:` comment lines so the CSV carries the same caveats as the
    /// printed table (a committed CSV must be self-describing).
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut s = String::new();
        s.push_str(&self.headers.join(","));
        s.push('\n');
        for row in &self.rows {
            let esc: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') {
                        format!("\"{c}\"")
                    } else {
                        c.clone()
                    }
                })
                .collect();
            s.push_str(&esc.join(","));
            s.push('\n');
        }
        for n in &self.notes {
            s.push_str(&format!("# note: {n}\n"));
        }
        fs::write(dir.join(format!("{name}.csv")), s)
    }
}

/// Format a float with 3 significant-ish decimals.
pub fn f3(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

/// Format a ratio like `1.62×`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let r = t.render();
        assert!(r.contains("demo"));
        assert!(r.contains("long-header"));
        assert!(r.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_carries_notes_as_comment_lines() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "x,y".into()]);
        t.note("measured at batch 2, extrapolated");
        let dir = std::env::temp_dir().join("figlut-fmt-test");
        t.write_csv(&dir, "demo").unwrap();
        let s = fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert_eq!(
            s,
            "a,b\n1,\"x,y\"\n# note: measured at batch 2, extrapolated\n"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f3(0.0), "0");
        assert_eq!(f3(1234.5), "1234.5");
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f3(0.012345), "0.0123");
        assert_eq!(ratio(1.618), "1.62x");
    }
}
