//! Deterministic, mergeable log-bucketed streaming histograms.
//!
//! The serving layer reports latency *distributions* (TTFT, per-token
//! latency, inter-token stalls, queue wait), and the repo's reproducibility
//! contract extends to them: a reported quantile must never depend on
//! merge order, thread count, or recording interleaving. [`Hist`] gets
//! there the same way the batch-invariance gates do — by construction, not
//! by tolerance. Bucket boundaries are **fixed at compile time** (a
//! log-linear HDR-style scheme), `record` is a single array increment, and
//! `merge` is element-wise addition of bucket counts. Addition of `u64`
//! counts is associative and commutative, so any partition of a value
//! stream into sub-histograms, merged in any order on any number of
//! threads, yields a histogram *bit-identical* to sequential recording —
//! pinned by property tests in this module.
//!
//! ## Bucketing scheme
//!
//! Values `0..=63` land in their own exact bucket. Above that, each
//! power-of-two range `[2^e, 2^(e+1))` is split into 32 linear sub-buckets,
//! so the relative width of any bucket is at most `1/32` (≈ 3.1%): a
//! quantile read from bucket upper bounds overstates the true value by at
//! most 3.2%. With 64-bit values the index space tops out below
//! [`Hist::BUCKETS`], so counts live in a plain fixed-size array — `record`
//! and `merge` never allocate (pinned by `tests/alloc.rs`).

/// Sub-bucket resolution: each power-of-two range is split into
/// `2^SUB_BITS` linear buckets.
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS; // 32

/// A deterministic streaming histogram over `u64` values (virtual ticks).
///
/// See the module docs for the bucketing scheme and the merge-invariance
/// argument. Quantiles use the same nearest-rank convention as
/// `ServeReport`'s exact percentiles: `quantile(p)` with `p ∈ (0, 100]`
/// returns the upper bound of the bucket holding the value of rank
/// `ceil(p/100 · count)` (clamped to the exact recorded maximum), and an
/// empty histogram reports 0.
#[derive(Clone)]
pub struct Hist {
    counts: [u64; Hist::BUCKETS],
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Hist {
    /// Number of buckets: 64 exact unit buckets (`0..=63`), then 32 linear
    /// sub-buckets per power-of-two range `[2^e, 2^(e+1))` for
    /// `e ∈ 6..=63`.
    pub const BUCKETS: usize = 2 * SUB + (64 - SUB_BITS as usize - 1) * SUB;

    /// An empty histogram. `const`, so warm statics and stack construction
    /// are allocation-free.
    pub const fn new() -> Self {
        Hist {
            counts: [0; Hist::BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The fixed bucket index of `value`. Pure arithmetic on the value's
    /// bit pattern — the same value always lands in the same bucket,
    /// independent of everything else ever recorded.
    pub fn bucket_of(value: u64) -> usize {
        if value < (2 * SUB) as u64 {
            return value as usize;
        }
        let e = 63 - value.leading_zeros(); // value >= 64 so e >= 6
        let m = (value >> (e - SUB_BITS)) as usize; // in [SUB, 2*SUB)
        (e as usize - SUB_BITS as usize) * SUB + m
    }

    /// `(lo, width)` of bucket `index`.
    fn bucket_lo_width(index: usize) -> (u64, u64) {
        assert!(index < Hist::BUCKETS, "bucket index out of range");
        if index < 2 * SUB {
            return (index as u64, 1);
        }
        // index = (e − SUB_BITS)·SUB + m with m ∈ [SUB, 2·SUB), so
        // index / SUB = e − SUB_BITS + 1.
        let e = (index / SUB) as u32 + SUB_BITS - 1;
        let m = (index - (e - SUB_BITS) as usize * SUB) as u64;
        (m << (e - SUB_BITS), 1u64 << (e - SUB_BITS))
    }

    /// The half-open value range `[lo, hi)` covered by bucket `index`
    /// (inverse of [`Hist::bucket_of`]). The topmost bucket's true upper
    /// bound is 2^64, which saturates to `u64::MAX` here — that bucket
    /// alone is effectively inclusive of `u64::MAX`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        let (lo, width) = Self::bucket_lo_width(index);
        (lo, lo.saturating_add(width))
    }

    /// Largest value bucket `index` can hold (`lo + width − 1`, exact even
    /// for the topmost bucket).
    fn bucket_hi_inclusive(index: usize) -> u64 {
        let (lo, width) = Self::bucket_lo_width(index);
        lo + (width - 1)
    }

    /// Record one value. One array increment plus scalar bookkeeping — no
    /// allocation, no data-dependent control flow beyond the bucket index.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold `other` into `self` by element-wise addition of bucket counts.
    /// Because the boundaries are fixed and addition commutes, any merge
    /// tree over any partition of a value stream produces the same
    /// histogram as sequential recording.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean of the recorded values (0.0 when empty) —
    /// `sum` accumulates true values, not bucket midpoints.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Nearest-rank quantile from bucket upper bounds, clamped to the
    /// recorded maximum. Same edge behavior as the exact percentile in
    /// `figlut-serve`: empty histograms report 0, and `p` outside
    /// `(0, 100]` panics.
    pub fn quantile(&self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 100.0, "quantile {p} out of range (0, 100]");
        if self.total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil() as u64;
        let rank = rank.clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_hi_inclusive(i).min(self.max);
            }
        }
        self.max
    }

    /// Iterate `(lo, hi, count)` over non-empty buckets, in value order —
    /// what `repro analyze` renders as a distribution table.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
    }
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new()
    }
}

impl PartialEq for Hist {
    fn eq(&self, other: &Self) -> bool {
        self.total == other.total
            && self.sum == other.sum
            && self.min == other.min
            && self.max == other.max
            && self.counts[..] == other.counts[..]
    }
}

impl Eq for Hist {}

impl std::fmt::Debug for Hist {
    /// Compact form listing only non-empty buckets — the full 1920-slot
    /// array would drown every assertion message.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Hist {{ count: {}, min: {}, max: {}, buckets: [",
            self.total,
            self.min(),
            self.max
        )?;
        for (k, (lo, hi, c)) in self.nonzero_buckets().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{lo}..{hi}: {c}")?;
        }
        write!(f, "] }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Hist::new();
        for v in 0..64u64 {
            h.record(v);
        }
        for v in 0..64u64 {
            let (lo, hi) = Hist::bucket_bounds(Hist::bucket_of(v));
            assert_eq!((lo, hi), (v, v + 1), "value {v} must be exact");
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.quantile(50.0), 31);
        assert_eq!(h.quantile(100.0), 63);
    }

    #[test]
    fn bounds_invert_bucket_of_across_the_range() {
        // Every bucket's bounds round-trip, and boundary values (powers of
        // two and their neighbours) land inside their claimed bucket.
        for e in 0..64u32 {
            let v = 1u64 << e;
            for probe in [
                v.saturating_sub(1),
                v,
                v.saturating_add(1),
                v.saturating_add(v >> 1),
            ] {
                let i = Hist::bucket_of(probe);
                let (lo, _) = Hist::bucket_bounds(i);
                let hi = Hist::bucket_hi_inclusive(i);
                assert!(
                    lo <= probe && probe <= hi,
                    "value {probe} mapped to bucket {i} = [{lo}, {hi}]"
                );
            }
        }
        assert!(Hist::bucket_of(u64::MAX) < Hist::BUCKETS);
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        for i in 2 * SUB..Hist::BUCKETS {
            let (lo, hi) = Hist::bucket_bounds(i);
            let width = hi - lo;
            assert!(
                (width as f64) / (lo as f64) <= 1.0 / SUB as f64 + 1e-12,
                "bucket {i} = [{lo}, {hi}) too wide"
            );
        }
    }

    #[test]
    fn empty_histogram_edge_behavior() {
        let h = Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        for p in [1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.quantile(p), 0);
        }
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_range_checked() {
        Hist::new().quantile(0.0);
    }

    #[test]
    fn quantile_clamps_to_recorded_max() {
        // 1000 lands in a bucket wider than 1; the p100 must still report
        // the exact max, not the bucket's upper bound.
        let mut h = Hist::new();
        h.record(1000);
        let (lo, hi) = Hist::bucket_bounds(Hist::bucket_of(1000));
        assert!(hi - lo > 1, "test premise: 1000 is in a coarse bucket");
        for p in [1.0, 50.0, 100.0] {
            assert_eq!(h.quantile(p), 1000);
        }
    }

    #[test]
    fn quantile_error_is_within_one_bucket() {
        let mut h = Hist::new();
        let mut exact: Vec<u64> = Vec::new();
        let mut x = 1u64;
        for i in 0..200u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i) % 100_000;
            h.record(x);
            exact.push(x);
        }
        exact.sort_unstable();
        for p in [25.0, 50.0, 90.0, 99.0] {
            let rank = ((p / 100.0) * exact.len() as f64).ceil() as usize;
            let truth = exact[rank - 1];
            let got = h.quantile(p);
            assert!(got >= truth, "quantile must not understate ({p}%)");
            assert!(
                got as f64 <= truth as f64 * (1.0 + 1.0 / SUB as f64) + 1.0,
                "quantile {p}%: got {got}, exact {truth}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Splitting a value stream into chunks, recording each chunk into
        /// its own histogram, and merging in a seed-chosen order yields a
        /// histogram bit-identical to sequential recording.
        #[test]
        fn merge_order_cannot_change_any_quantile(
            values in prop::collection::vec(any::<u64>(), 0..200),
            chunks in 1usize..8,
            perm_seed in any::<u64>(),
        ) {
            let mut sequential = Hist::new();
            for &v in &values {
                sequential.record(v);
            }

            let n = chunks.min(values.len().max(1));
            let mut parts: Vec<Hist> = (0..n).map(|_| Hist::new()).collect();
            for (i, &v) in values.iter().enumerate() {
                parts[i % n].record(v);
            }
            // Deterministic permutation of merge order from the seed.
            let mut order: Vec<usize> = (0..n).collect();
            let mut s = perm_seed;
            for i in (1..n).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (s >> 33) as usize % (i + 1);
                order.swap(i, j);
            }
            let mut merged = Hist::new();
            for &k in &order {
                merged.merge(&parts[k]);
            }

            prop_assert_eq!(&merged, &sequential);
            for p in [1.0, 50.0, 99.0, 100.0] {
                prop_assert_eq!(merged.quantile(p), sequential.quantile(p));
            }
            prop_assert_eq!(merged.count(), values.len() as u64);
        }

        /// Recording the same partition on real spawned threads (any
        /// thread count) merges to the same histogram as one thread.
        #[test]
        fn thread_count_cannot_change_any_quantile(
            values in prop::collection::vec(any::<u64>(), 0..120),
            threads in 1usize..5,
        ) {
            let mut sequential = Hist::new();
            for &v in &values {
                sequential.record(v);
            }

            let n = threads;
            let handles: Vec<_> = (0..n)
                .map(|t| {
                    let mine: Vec<u64> = values
                        .iter()
                        .copied()
                        .skip(t)
                        .step_by(n)
                        .collect();
                    std::thread::spawn(move || {
                        let mut h = Hist::new();
                        for v in mine {
                            h.record(v);
                        }
                        h
                    })
                })
                .collect();
            let mut merged = Hist::new();
            for handle in handles {
                merged.merge(&handle.join().expect("recorder thread"));
            }

            prop_assert_eq!(&merged, &sequential);
            for p in [1.0, 50.0, 99.0, 100.0] {
                prop_assert_eq!(merged.quantile(p), sequential.quantile(p));
            }
        }
    }
}
