//! The process-wide counter registry.
//!
//! Each counter is a relaxed `AtomicU64` bumped by an instrumentation site
//! in `figlut-exec`, `figlut-model`, or `figlut-serve`. Bumps are dropped
//! while no trace session is installed ([`crate::enabled`] is the gate), so
//! the disabled path costs one relaxed load per site and the counters of a
//! session always start from zero ([`crate::install`] resets them).
//!
//! Every counter reconciles against an analytical formula the workspace
//! already commits to — that is the design contract, asserted by the
//! `trace_reconcile` test binaries in `figlut-exec` and `figlut-serve`:
//!
//! | counter group | reconciles with |
//! |---|---|
//! | `exec_streamed_words` | `ExecPlan::streamed_words` (the tile-walk formula) |
//! | `exec_calls` / `exec_lut_builds` / tier counters | one LUT build + one tier pick per non-empty call |
//! | `model_*_rows` | `Σ StepRecord::rows()` over a serve run |
//! | `kv_swap_*_rows` | `Σ StepRecord.swapped_rows` = `PagingStats.swapped_rows` |
//! | `serve_steps` / `serve_admissions` / … | `ServeReport.steps.len()`, request count, `PagingStats.swaps_out/in` |
//! | `serve_step_retries` / `serve_sheds` / … | `ServeReport.resilience` (injected-fault recoveries and shed requests) |

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! registry {
    ($($(#[$m:meta])* $STATIC:ident, $bump:ident, $field:ident;)+) => {
        $( static $STATIC: AtomicU64 = AtomicU64::new(0); )+

        $(
            $(#[$m])*
            ///
            /// Adds `n` while a trace session is installed; dropped otherwise.
            #[inline]
            pub fn $bump(n: u64) {
                if crate::enabled() {
                    $STATIC.fetch_add(n, Ordering::Relaxed);
                }
            }
        )+

        /// A point-in-time copy of every counter (see the module table for
        /// what each group reconciles against).
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        #[allow(missing_docs)] // each field documents itself via its bump fn
        pub struct Counters {
            $( pub $field: u64, )+
        }

        /// Snapshot the registry.
        pub fn snapshot() -> Counters {
            Counters { $( $field: $STATIC.load(Ordering::Relaxed), )+ }
        }

        /// Zero every counter (done by [`crate::install`]).
        pub fn reset() {
            $( $STATIC.store(0, Ordering::Relaxed); )+
        }

        impl Counters {
            /// Per-field difference `self − earlier` — the activity between
            /// two snapshots of the same session.
            ///
            /// # Panics
            ///
            /// Panics (in debug builds, via arithmetic overflow) if
            /// `earlier` is not actually an earlier snapshot.
            #[must_use]
            pub fn since(&self, earlier: &Counters) -> Counters {
                Counters { $( $field: self.$field - earlier.$field, )+ }
            }
        }
    };
}

registry! {
    /// Integer exec kernel calls (`ExecPlan::exec_i_into` with a non-empty batch).
    EXEC_CALLS, bump_exec_calls, exec_calls;
    /// Float exec kernel calls (`ExecPlan::exec_f_into` with a non-empty batch).
    EXEC_F_CALLS, bump_exec_f_calls, exec_f_calls;
    /// `ExecPlan` constructions (calls minus builds = plan reuse).
    EXEC_PLAN_BUILDS, bump_exec_plan_builds, exec_plan_builds;
    /// Batched FFLUT (re)builds — one per non-empty exec call, at exactly one tier.
    EXEC_LUT_BUILDS, bump_exec_lut_builds, exec_lut_builds;
    /// Packed weight words streamed by the tile walk, summed over every
    /// (k-tile, bit-plane, output row). Reconciles with
    /// `ExecPlan::streamed_words` per call.
    EXEC_STREAMED_WORDS, bump_exec_streamed_words, exec_streamed_words;
    /// K-tile walks: one per (k-tile, output row) of each panel pass.
    EXEC_KTILES, bump_exec_ktiles, exec_ktiles;
    /// Calls running the narrowest tier (i32 tables, i32 accumulators).
    EXEC_TIER_I32_I32, bump_exec_tier_i32_i32, exec_tier_i32_i32;
    /// Calls running the middle tier (i32 tables, i64 accumulators).
    EXEC_TIER_I32_I64, bump_exec_tier_i32_i64, exec_tier_i32_i64;
    /// Calls running the widest tier (i64 tables and accumulators).
    EXEC_TIER_I64_I64, bump_exec_tier_i64_i64, exec_tier_i64_i64;
    /// `Transformer::forward_batch` invocations.
    MODEL_FORWARD_CALLS, bump_model_forward_calls, model_forward_calls;
    /// Token rows from multi-token chunks (prefill-phase rows).
    MODEL_PREFILL_ROWS, bump_model_prefill_rows, model_prefill_rows;
    /// Token rows from single-token chunks (decode-phase rows).
    MODEL_DECODE_ROWS, bump_model_decode_rows, model_decode_rows;
    /// Copy-on-write block copies actually performed by the paged KV cache.
    KV_COW_COPIES, bump_kv_cow_copies, kv_cow_copies;
    /// KV positions copied to host by preemption swap-outs.
    KV_SWAP_OUT_ROWS, bump_kv_swap_out_rows, kv_swap_out_rows;
    /// KV positions copied back from host by restores.
    KV_SWAP_IN_ROWS, bump_kv_swap_in_rows, kv_swap_in_rows;
    /// Scheduler steps executed (= emitted `StepRecord`s).
    SERVE_STEPS, bump_serve_steps, serve_steps;
    /// Requests admitted out of the pending queue.
    SERVE_ADMISSIONS, bump_serve_admissions, serve_admissions;
    /// Sessions preempted to host under pool pressure.
    SERVE_PREEMPTIONS, bump_serve_preemptions, serve_preemptions;
    /// Preempted sessions restored into the running set.
    SERVE_RESTORES, bump_serve_restores, serve_restores;
    /// KV block checksum mismatches detected by the verify pass.
    KV_CHECKSUM_FAULTS, bump_kv_checksum_faults, kv_checksum_faults;
    /// Scheduler steps retried after an injected transient failure.
    SERVE_STEP_RETRIES, bump_serve_step_retries, serve_step_retries;
    /// Restore attempts retried after an injected swap-in failure.
    SERVE_SWAP_IN_RETRIES, bump_serve_swap_in_retries, serve_swap_in_retries;
    /// Sessions preempted by injected pool-exhaustion spikes.
    SERVE_POOL_SPIKES, bump_serve_pool_spikes, serve_pool_spikes;
    /// Requests shed by the admission policy (`FinishReason::Shed`).
    SERVE_SHEDS, bump_serve_sheds, serve_sheds;
    /// Scheduler checkpoints captured at tick boundaries.
    SERVE_CHECKPOINTS, bump_serve_checkpoints, serve_checkpoints;
    /// Serve runs resumed from a checkpoint.
    SERVE_RESUMES, bump_serve_resumes, serve_resumes;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_fieldwise() {
        let a = Counters {
            exec_calls: 5,
            serve_steps: 2,
            ..Counters::default()
        };
        let b = Counters {
            exec_calls: 9,
            serve_steps: 7,
            ..Counters::default()
        };
        let d = b.since(&a);
        assert_eq!(d.exec_calls, 4);
        assert_eq!(d.serve_steps, 5);
        assert_eq!(d.kv_cow_copies, 0);
    }
}
