//! # figlut-trace — deterministic observability for the FIGLUT workspace
//!
//! A structured event/span/counter layer threaded through the execution
//! (`figlut-exec`), model (`figlut-model`), and serving (`figlut-serve`)
//! hot paths. Because the serving layer runs on a *virtual* clock and every
//! layer below it is bit-deterministic, the traces this crate records are
//! themselves bit-reproducible: the same run always emits the same events
//! with the same timestamps, so a trace diff is a regression signal, not
//! noise (DESIGN.md §8).
//!
//! Three pieces:
//!
//! * **A counter registry** ([`counters`]): process-wide atomic counters
//!   bumped by the instrumented layers (packed words streamed, k-tiles
//!   walked, LUT builds, KV copy-on-writes, swap rows, scheduler steps, …).
//!   Counters only advance while a trace session is installed, and every
//!   counter *reconciles* against an analytical formula the repo already
//!   commits to (`ExecPlan::streamed_words`, `StepRecord.swapped_rows`,
//!   `ServeReport.steps`) — the trace cross-checks the cost model instead
//!   of keeping parallel books that can drift.
//! * **Trace sinks** ([`sink`]): the [`TraceSink`] trait with two file
//!   sinks — newline-delimited JSON ([`JsonlSink`]) and Chrome trace-event
//!   JSON ([`ChromeTraceSink`], loadable in Perfetto / `chrome://tracing`,
//!   with `ts` measured in virtual ticks) — plus an in-memory
//!   [`CollectSink`] for tests.
//! * **Zero-cost disablement**: with no session installed (the default),
//!   every instrumentation site reduces to one relaxed atomic load and
//!   performs **zero heap allocations** (pinned by `tests/alloc.rs` with a
//!   counting global allocator), and instrumented code paths compute
//!   nothing they would not compute anyway — serving output is
//!   byte-identical to the pre-instrumentation golden traces.
//!
//! ```
//! use figlut_trace::{install, CollectSink, Event};
//!
//! let sink = CollectSink::new();
//! let events = sink.events();
//! let guard = install(Box::new(sink));
//! figlut_trace::emit(&Event::Instant { name: "demo", ts: 3, args: &[("k", 7)] });
//! guard.finish().unwrap();
//! assert_eq!(events.lock().unwrap().len(), 1);
//! ```
//!
//! Sessions are process-global (the instrumented hot paths cannot thread a
//! sink handle through `Copy` configs and per-layer call chains), so
//! [`install`] serializes: a second session blocks until the first guard
//! drops. That is what keeps concurrently running tests from polluting each
//! other's counters.
#![warn(missing_docs)]

pub mod counters;
pub mod fmt;
pub mod hist;
pub mod json;
pub mod sink;

pub use counters::{snapshot, Counters};
pub use hist::Hist;
pub use sink::{validate_chrome_trace, ChromeTraceSink, CollectSink, JsonlSink, OwnedEvent};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// One structured trace event, built on the caller's stack — no allocation
/// is required to construct one, so instrumentation sites can assemble
/// events inside `if figlut_trace::enabled()` blocks without touching the
/// heap when tracing is off.
#[derive(Clone, Copy, Debug)]
pub enum Event<'a> {
    /// A closed interval on the virtual clock (one scheduler step).
    Span {
        /// Static event name (e.g. the step kind).
        name: &'static str,
        /// Start tick (already offset by [`run_base`]).
        ts: u64,
        /// Duration in virtual ticks (the step's cost).
        dur: u64,
        /// Numeric payload, e.g. queue depth or row counts.
        args: &'a [(&'static str, u64)],
    },
    /// A point event (admission, preemption, restore).
    Instant {
        /// Static event name.
        name: &'static str,
        /// Tick (already offset by [`run_base`]).
        ts: u64,
        /// Numeric payload, e.g. the request id.
        args: &'a [(&'static str, u64)],
    },
    /// A sampled counter track (queue depth, live KV blocks).
    Counter {
        /// Static track name.
        name: &'static str,
        /// Tick (already offset by [`run_base`]).
        ts: u64,
        /// The sampled value.
        value: u64,
    },
}

impl Event<'_> {
    /// The event's timestamp in global virtual ticks.
    pub fn ts(&self) -> u64 {
        match *self {
            Event::Span { ts, .. } | Event::Instant { ts, .. } | Event::Counter { ts, .. } => ts,
        }
    }
}

/// Where recorded events go. Implementations receive every event of a
/// session in emission order, tagged with the 0-based serve-run index
/// (Chrome sinks map it to a thread lane).
pub trait TraceSink: Send {
    /// Record one event.
    fn record(&mut self, run: u64, event: &Event<'_>);

    /// Flush buffered output; called once by [`TraceGuard::finish`] (or on
    /// guard drop, with the result discarded).
    fn close(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static TS_BASE: AtomicU64 = AtomicU64::new(0);
static RUN: AtomicU64 = AtomicU64::new(0);
static SINK: Mutex<Option<Box<dyn TraceSink>>> = Mutex::new(None);
/// Serializes whole trace sessions (held by [`TraceGuard`]); see the
/// module docs for why sessions are process-global.
static SESSION: Mutex<()> = Mutex::new(());

fn lock_sink() -> MutexGuard<'static, Option<Box<dyn TraceSink>>> {
    SINK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// `true` while a trace session is installed. Instrumentation sites gate
/// on this: one relaxed load, and when `false` nothing else runs — the
/// whole zero-overhead-when-disabled argument.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Keeps a trace session alive; dropping (or [`TraceGuard::finish`]ing)
/// it uninstalls the sink and re-disables all instrumentation.
#[must_use = "dropping the guard ends the trace session"]
pub struct TraceGuard {
    _session: MutexGuard<'static, ()>,
}

/// Install `sink` as the process-wide trace destination: resets the
/// counter registry and run/timestamp bases, then enables every
/// instrumentation site. Blocks until any other live session's guard
/// drops (sessions are serialized — see the module docs).
pub fn install(sink: Box<dyn TraceSink>) -> TraceGuard {
    let session = SESSION
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    counters::reset();
    TS_BASE.store(0, Ordering::SeqCst);
    RUN.store(0, Ordering::SeqCst);
    *lock_sink() = Some(sink);
    ENABLED.store(true, Ordering::SeqCst);
    TraceGuard { _session: session }
}

impl TraceGuard {
    /// End the session: disable instrumentation, flush and drop the sink,
    /// and return the sink's flush result (file sinks surface I/O errors
    /// here instead of silently on drop).
    pub fn finish(self) -> std::io::Result<()> {
        ENABLED.store(false, Ordering::SeqCst);
        match lock_sink().take() {
            Some(mut sink) => sink.close(),
            None => Ok(()),
        }
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        if let Some(mut sink) = lock_sink().take() {
            let _ = sink.close();
        }
    }
}

/// Send one event to the installed sink. A no-op (one relaxed load, no
/// allocation, no lock) when no session is installed.
pub fn emit(event: &Event<'_>) {
    if !enabled() {
        return;
    }
    if let Some(sink) = lock_sink().as_mut() {
        sink.record(RUN.load(Ordering::Relaxed), event);
    }
}

/// The virtual-tick offset of the current run. A serve run stamps its
/// events `run_base() + local clock`, which keeps `ts` globally monotone
/// across the multiple runs a process records into one trace (each run's
/// local clock restarts at 0).
pub fn run_base() -> u64 {
    TS_BASE.load(Ordering::Relaxed)
}

/// Close the current run, whose virtual clock ended at `ticks`: advances
/// the global timestamp base past the run and bumps the run index (the
/// Chrome sink's thread lane). No-op while disabled.
pub fn end_run(ticks: u64) {
    if !enabled() {
        return;
    }
    TS_BASE.fetch_add(ticks, Ordering::Relaxed);
    RUN.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_emit_is_dropped_and_session_scopes_events() {
        assert!(!enabled());
        emit(&Event::Counter {
            name: "ghost",
            ts: 0,
            value: 1,
        });
        let sink = CollectSink::new();
        let events = sink.events();
        let guard = install(Box::new(sink));
        assert!(enabled());
        emit(&Event::Instant {
            name: "a",
            ts: 1,
            args: &[],
        });
        assert_eq!(run_base(), 0);
        end_run(10);
        assert_eq!(run_base(), 10);
        emit(&Event::Instant {
            name: "b",
            ts: run_base() + 2,
            args: &[],
        });
        guard.finish().unwrap();
        assert!(!enabled());
        emit(&Event::Instant {
            name: "after",
            ts: 99,
            args: &[],
        });
        let evs = events.lock().unwrap();
        assert_eq!(evs.len(), 2);
        let (runs, ts): (Vec<u64>, Vec<u64>) = evs.iter().map(|e| (e.run(), e.ts())).unzip();
        assert_eq!(runs, [0, 1], "end_run advances the run index");
        assert_eq!(ts, [1, 12], "second run's ts offset by the first's ticks");
    }

    #[test]
    fn install_resets_counters() {
        let guard = install(Box::new(CollectSink::new()));
        counters::bump_serve_steps(3);
        assert_eq!(snapshot().serve_steps, 3);
        guard.finish().unwrap();
        // Disabled: bumps are dropped.
        counters::bump_serve_steps(5);
        assert_eq!(snapshot().serve_steps, 3);
        // A fresh session starts from zero.
        let guard = install(Box::new(CollectSink::new()));
        assert_eq!(snapshot().serve_steps, 0);
        guard.finish().unwrap();
    }
}
