//! A minimal dependency-free JSON reader/writer.
//!
//! The workspace vendors no serialization crates (it builds fully offline),
//! and the trace layer needs JSON in two narrow places: *writing* events
//! (flat objects of static names and `u64`s — trivial) and *reading back*
//! a Chrome trace file to validate it ([`crate::validate_chrome_trace`],
//! run by `repro --trace` and CI). This module is the reader: a small
//! recursive-descent parser covering the full JSON grammar, returning a
//! [`Json`] tree. It favors clarity over speed — validation parses a trace
//! once, off every hot path.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`, like browsers do).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are kept).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Escape `s` for embedding inside a JSON string literal (quotes not
/// included) — the writer-side helper the sinks use.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not reassembled — trace
                            // names are ASCII; lone surrogates map to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // SAFETY: `self.bytes` is the byte view of the `&str`
                    // the parser was constructed from, and `self.pos` only
                    // ever advances by whole scalars (ASCII matches above,
                    // `len_utf8` below), so the suffix is valid UTF-8.
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{s}' at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"traceEvents":[{"name":"Prefill","ph":"X","ts":0,"dur":16,
            "args":{"rows":4}},{"name":"q","ph":"C","ts":16,"args":{"value":2}}],
            "meta":null,"ok":true,"neg":-1.5e2}"#;
        let j = Json::parse(doc).unwrap();
        let evs = j.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].get("name").unwrap().as_str(), Some("Prefill"));
        assert_eq!(evs[0].get("dur").unwrap().as_num(), Some(16.0));
        assert_eq!(
            evs[0].get("args").unwrap().get("rows").unwrap().as_num(),
            Some(4.0)
        );
        assert_eq!(j.get("meta"), Some(&Json::Null));
        assert_eq!(j.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(j.get("neg").unwrap().as_num(), Some(-150.0));
    }

    #[test]
    fn escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}";
        let doc = format!("{{\"k\":\"{}\"}}", escape(s));
        let j = Json::parse(&doc).unwrap();
        assert_eq!(j.get("k").unwrap().as_str(), Some(s));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nulL",
            "{} trailing",
            "\"unterminated",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_containers_parse() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse(" { } ").unwrap(), Json::Obj(vec![]));
    }
}
