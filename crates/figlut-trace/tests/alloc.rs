//! Heap audit of the *disabled* trace path.
//!
//! The layer's contract (DESIGN.md §8) is that with no session installed —
//! the default for every production run — each instrumentation site costs
//! one relaxed atomic load and performs **zero** heap allocations. This
//! pins it with a counting global allocator over every disabled entry
//! point an instrumented hot path can reach: the `enabled()` gate, each
//! counter bump, event emission, and run scoping. [`Hist`] shares the
//! contract's spirit: once constructed, `record`, `merge`, and `quantile`
//! run on a fixed-size counts array and never touch the heap, so a live
//! histogram inside a metrics hot loop is also allocation-free.
//!
//! This lives in its own integration-test binary on purpose — a global
//! allocator is per-process, and a sibling `#[test]` allocating on another
//! thread while the counter is armed would make the count meaningless.
//! Keep this file at exactly one test.

use figlut_trace::{counters, Event, Hist};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts allocations (alloc / alloc_zeroed / realloc) while armed.
///
/// The armed flag is thread-local (const-initialized, so reading it never
/// allocates): only the test thread's own allocations count, and a
/// harness thread allocating concurrently cannot fail the audit.
struct CountingAlloc;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
}
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

fn armed() -> bool {
    // try_with: the allocator can run during TLS teardown.
    ARMED.try_with(Cell::get).unwrap_or(false)
}

// SAFETY: every method bumps a lock-free counter and then defers to
// `System` with the caller's layout/pointer arguments unchanged, so
// `System`'s allocator contract is upheld verbatim.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwards the caller's contract to `System` unchanged.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: forwards the caller's contract to `System` unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: forwards the caller's contract to `System` unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: forwards the caller's contract to `System` unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_trace_path_is_allocation_free() {
    assert!(
        !figlut_trace::enabled(),
        "no session installed in this test"
    );

    // Histograms are constructed (and warmed) before arming: `Hist` holds
    // its buckets inline, so everything past construction must be free.
    let mut hist = Hist::new();
    let mut other = Hist::new();
    hist.record(7);
    other.record(1 << 40);

    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.with(|a| a.set(true));

    // Exactly what an instrumented hot path can execute while disabled.
    for i in 0..100u64 {
        if figlut_trace::enabled() {
            unreachable!("tracing must stay disabled here");
        }
        counters::bump_exec_calls(1);
        counters::bump_exec_streamed_words(i);
        counters::bump_exec_ktiles(3);
        counters::bump_model_decode_rows(1);
        counters::bump_kv_swap_out_rows(i);
        counters::bump_serve_steps(1);
        let args = [("rows", i), ("queue", 2)];
        figlut_trace::emit(&Event::Span {
            name: "Decode",
            ts: i,
            dur: 1,
            args: &args,
        });
        figlut_trace::emit(&Event::Instant {
            name: "admit",
            ts: i,
            args: &args[..1],
        });
        figlut_trace::emit(&Event::Counter {
            name: "queue_depth",
            ts: i,
            value: 2,
        });
        let _ = figlut_trace::run_base();
        figlut_trace::end_run(i);
        // A warm histogram in the same loop: record across the exact and
        // log-bucketed ranges, merge, and query — all heap-free.
        hist.record(i);
        hist.record(i << 20);
        hist.merge(&other);
        let _ = hist.quantile(50.0);
        let _ = hist.quantile(99.0);
        let _ = (hist.count(), hist.min(), hist.max(), hist.mean());
    }

    ARMED.with(|a| a.set(false));
    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(allocs, 0, "disabled trace path allocated {allocs} times");

    // And nothing leaked into the registry either.
    assert_eq!(counters::snapshot(), counters::Counters::default());
}
