//! Heap audit of the *disabled* trace path.
//!
//! The layer's contract (DESIGN.md §8) is that with no session installed —
//! the default for every production run — each instrumentation site costs
//! one relaxed atomic load and performs **zero** heap allocations. This
//! pins it with a counting global allocator over every disabled entry
//! point an instrumented hot path can reach: the `enabled()` gate, each
//! counter bump, event emission, and run scoping.
//!
//! This lives in its own integration-test binary on purpose — a global
//! allocator is per-process, and a sibling `#[test]` allocating on another
//! thread while the counter is armed would make the count meaningless.
//! Keep this file at exactly one test.

use figlut_trace::{counters, Event};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Counts allocations (alloc / alloc_zeroed / realloc) while armed.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_trace_path_is_allocation_free() {
    assert!(
        !figlut_trace::enabled(),
        "no session installed in this test"
    );

    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);

    // Exactly what an instrumented hot path can execute while disabled.
    for i in 0..100u64 {
        if figlut_trace::enabled() {
            unreachable!("tracing must stay disabled here");
        }
        counters::bump_exec_calls(1);
        counters::bump_exec_streamed_words(i);
        counters::bump_exec_ktiles(3);
        counters::bump_model_decode_rows(1);
        counters::bump_kv_swap_out_rows(i);
        counters::bump_serve_steps(1);
        let args = [("rows", i), ("queue", 2)];
        figlut_trace::emit(&Event::Span {
            name: "Decode",
            ts: i,
            dur: 1,
            args: &args,
        });
        figlut_trace::emit(&Event::Instant {
            name: "admit",
            ts: i,
            args: &args[..1],
        });
        figlut_trace::emit(&Event::Counter {
            name: "queue_depth",
            ts: i,
            value: 2,
        });
        let _ = figlut_trace::run_base();
        figlut_trace::end_run(i);
    }

    ARMED.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(allocs, 0, "disabled trace path allocated {allocs} times");

    // And nothing leaked into the registry either.
    assert_eq!(counters::snapshot(), counters::Counters::default());
}
