//! Deterministic random number generation for synthetic models.
//!
//! Everything the reproduction randomizes (weights, corpus sampling) flows
//! through this splitmix64-based generator so results are identical on
//! every platform and run.

/// A small, fast, deterministic RNG (splitmix64 core).
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeded construction.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        let u1 = self.uniform().max(1e-300);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.uniform() * n as f64) as usize % n
    }

    /// Sample an index from unnormalized non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if the weights sum to zero or are empty.
    pub fn categorical(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "degenerate categorical distribution");
        let mut u = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            u -= w;
            if u <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_in_range_and_spread() {
        let mut r = Rng::new(1);
        let mut mean = 0.0;
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            mean += u;
        }
        mean /= 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(2);
        let n = 20_000;
        let (mut m1, mut m2) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.normal();
            m1 += x;
            m2 += x * x;
        }
        m1 /= n as f64;
        m2 /= n as f64;
        assert!(m1.abs() < 0.05, "mean {m1}");
        assert!((m2 - 1.0).abs() < 0.08, "var {m2}");
    }

    #[test]
    fn categorical_respects_weights() {
        let mut r = Rng::new(3);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[r.categorical(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 2);
    }
}
