//! OPT GEMM inventories as simulator workloads.
//!
//! The paper's TOPS/W and TOPS/mm² figures are computed on the GEMM
//! workload of OPT decoding at batch 32 (Table V, Figs. 13/15/16). Each
//! decoder layer contributes four `d × d` projections and two `d × 4d` FFN
//! matmuls per token; non-GEMM work (LayerNorm, softmax, residuals) goes to
//! the VPU and is a rounding error at these shapes — exactly the paper's
//! "non-GEMM operations … impact is minimal".

use crate::config::OptConfig;
use figlut_sim::{GemmShape, Workload};

/// The GEMM workload of decoding one token-batch through every layer.
///
/// `batch` is the number of concurrent sequences (the paper uses 32; each
/// generated token costs one pass at that batch).
pub fn decode_workload(cfg: &OptConfig, batch: usize) -> Workload {
    let d = cfg.d_model;
    let layers = cfg.layers as f64;
    let gemms = vec![
        // Q, K, V, and output projections: four d×d GEMMs per layer.
        GemmShape {
            m: d,
            n: d,
            batch,
            repeat: 4.0 * layers,
        },
        // FFN up-projection.
        GemmShape {
            m: cfg.ffn,
            n: d,
            batch,
            repeat: layers,
        },
        // FFN down-projection.
        GemmShape {
            m: d,
            n: cfg.ffn,
            batch,
            repeat: layers,
        },
    ];
    // Non-GEMM per layer per token: 2 LayerNorms (~8d), softmax+attention
    // bookkeeping (~4d at decode), residuals (~2d), GELU (~4·4d).
    let nongemm_flops = layers * batch as f64 * (8.0 + 4.0 + 2.0 + 16.0) * d as f64;
    Workload {
        gemms,
        nongemm_flops,
    }
}

/// The GEMM workload of *prefilling* a prompt of `prompt_len` tokens for
/// `batch` sequences: identical weight matrices, but every token position
/// is a batch row, so arithmetic intensity is `prompt_len×` higher than
/// decode — the regime where even GPUs become compute-bound. (Attention's
/// activation-activation GEMMs are FP-FP and go to the VPU bucket here;
/// weight-only quantization does not touch them.)
pub fn prefill_workload(cfg: &OptConfig, batch: usize, prompt_len: usize) -> Workload {
    let d = cfg.d_model;
    let layers = cfg.layers as f64;
    let rows = batch * prompt_len;
    let gemms = vec![
        GemmShape {
            m: d,
            n: d,
            batch: rows,
            repeat: 4.0 * layers,
        },
        GemmShape {
            m: cfg.ffn,
            n: d,
            batch: rows,
            repeat: layers,
        },
        GemmShape {
            m: d,
            n: cfg.ffn,
            batch: rows,
            repeat: layers,
        },
    ];
    // Attention score/context products: 2 × L² × d per layer per sequence,
    // plus the elementwise work.
    let attn_flops = layers * batch as f64 * 2.0 * (prompt_len * prompt_len * d) as f64;
    let elementwise = layers * rows as f64 * 30.0 * d as f64;
    Workload {
        gemms,
        nongemm_flops: attn_flops + elementwise,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{by_name, OPT_FAMILY};

    #[test]
    fn ops_match_parameter_count() {
        // Decode GEMM ops = 2 × GEMM-params × batch.
        for cfg in &OPT_FAMILY {
            let wl = decode_workload(cfg, 32);
            let want = 2.0 * cfg.gemm_params() * 32.0;
            assert!(
                (wl.ops() / want - 1.0).abs() < 1e-12,
                "{}: {} vs {}",
                cfg.name,
                wl.ops(),
                want
            );
        }
    }

    #[test]
    fn nongemm_is_negligible() {
        let cfg = by_name("OPT-6.7B").unwrap();
        let wl = decode_workload(cfg, 32);
        assert!(wl.nongemm_flops < 0.01 * wl.ops());
    }

    #[test]
    fn prefill_scales_with_prompt_length() {
        let cfg = by_name("OPT-1.3B").unwrap();
        let decode = decode_workload(cfg, 32);
        let prefill = prefill_workload(cfg, 32, 128);
        assert!((prefill.ops() / decode.ops() - 128.0).abs() < 1e-9);
        // Attention grows quadratically, so non-GEMM share rises with L but
        // stays minor at these lengths.
        assert!(prefill.nongemm_flops > decode.nongemm_flops * 128.0);
        assert!(prefill.nongemm_flops < 0.2 * prefill.ops());
    }

    #[test]
    fn larger_models_more_ops() {
        let mut last = 0.0;
        for cfg in &OPT_FAMILY {
            let ops = decode_workload(cfg, 32).ops();
            assert!(ops > last, "{}", cfg.name);
            last = ops;
        }
    }
}
