//! The OPT model family (Zhang et al., 2022) architecture table.
//!
//! These are the *real* configurations of the models the paper evaluates;
//! they drive the GEMM shape inventories behind Figs. 13/15/16 and Table V.
//! (The synthetic transformer in [`crate::transformer`] uses scaled-down
//! instances of the same architecture.)

/// One OPT model configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptConfig {
    /// Model name, e.g. `"OPT-6.7B"`.
    pub name: &'static str,
    /// Decoder layers.
    pub layers: usize,
    /// Hidden width.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// FFN inner width (4 × d_model for OPT).
    pub ffn: usize,
    /// Vocabulary size (GPT-2 BPE).
    pub vocab: usize,
}

impl OptConfig {
    /// Decoder-only parameter count (embeddings + per-layer weights),
    /// ignoring biases/LayerNorm (sub-percent).
    pub fn params(&self) -> f64 {
        let per_layer =
            4.0 * (self.d_model * self.d_model) as f64 + 2.0 * (self.d_model * self.ffn) as f64;
        self.layers as f64 * per_layer + (self.vocab * self.d_model) as f64
    }

    /// GEMM-weight parameter count only (what weight-only quantization
    /// compresses).
    pub fn gemm_params(&self) -> f64 {
        let per_layer =
            4.0 * (self.d_model * self.d_model) as f64 + 2.0 * (self.d_model * self.ffn) as f64;
        self.layers as f64 * per_layer
    }
}

/// The OPT sizes the paper evaluates (Figs. 13/16, Tables IV/VI).
pub const OPT_FAMILY: [OptConfig; 7] = [
    OptConfig {
        name: "OPT-125M",
        layers: 12,
        d_model: 768,
        heads: 12,
        ffn: 3072,
        vocab: 50272,
    },
    OptConfig {
        name: "OPT-350M",
        layers: 24,
        d_model: 1024,
        heads: 16,
        ffn: 4096,
        vocab: 50272,
    },
    OptConfig {
        name: "OPT-1.3B",
        layers: 24,
        d_model: 2048,
        heads: 32,
        ffn: 8192,
        vocab: 50272,
    },
    OptConfig {
        name: "OPT-2.7B",
        layers: 32,
        d_model: 2560,
        heads: 32,
        ffn: 10240,
        vocab: 50272,
    },
    OptConfig {
        name: "OPT-6.7B",
        layers: 32,
        d_model: 4096,
        heads: 32,
        ffn: 16384,
        vocab: 50272,
    },
    OptConfig {
        name: "OPT-13B",
        layers: 40,
        d_model: 5120,
        heads: 40,
        ffn: 20480,
        vocab: 50272,
    },
    OptConfig {
        name: "OPT-30B",
        layers: 48,
        d_model: 7168,
        heads: 56,
        ffn: 28672,
        vocab: 50272,
    },
];

/// Look up a family member by name.
pub fn by_name(name: &str) -> Option<&'static OptConfig> {
    OPT_FAMILY
        .iter()
        .find(|c| c.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_counts_match_billing_names() {
        // Within 20% of the nominal size (embeddings and rounding account
        // for the slack).
        let expect = [
            ("OPT-125M", 0.125e9),
            ("OPT-350M", 0.35e9),
            ("OPT-1.3B", 1.3e9),
            ("OPT-2.7B", 2.7e9),
            ("OPT-6.7B", 6.7e9),
            ("OPT-13B", 13e9),
            ("OPT-30B", 30e9),
        ];
        for (name, want) in expect {
            let cfg = by_name(name).unwrap();
            let got = cfg.params();
            assert!(
                (got / want - 1.0).abs() < 0.20,
                "{name}: {got:.3e} vs {want:.3e}"
            );
        }
    }

    #[test]
    fn ffn_is_4x() {
        for c in OPT_FAMILY {
            assert_eq!(c.ffn, 4 * c.d_model, "{}", c.name);
            assert_eq!(c.d_model % c.heads, 0, "{}", c.name);
        }
    }

    #[test]
    fn lookup() {
        assert!(by_name("opt-6.7b").is_some());
        assert!(by_name("OPT-66B").is_none());
    }
}
