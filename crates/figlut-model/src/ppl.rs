//! Teacher-forced perplexity evaluation (the paper's accuracy metric).

use crate::corpus::Corpus;
use crate::transformer::{Backend, Transformer};

/// Perplexity of `model` on `corpus` with linear layers executed by
/// `backend`: `exp(mean NLL)` over all next-token predictions.
///
/// # Panics
///
/// Panics if the corpus is empty.
pub fn perplexity(model: &Transformer, corpus: &Corpus, backend: &Backend) -> f64 {
    let mut nll = 0.0;
    let mut count = 0usize;
    for seq in &corpus.sequences {
        let logits = model.logits(&seq[..seq.len() - 1], backend);
        for t in 0..seq.len() - 1 {
            let target = seq[t + 1];
            let row = logits.row(t);
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let logsum: f64 = row.iter().map(|&l| (l - max).exp()).sum::<f64>().ln() + max;
            nll += logsum - row[target];
            count += 1;
        }
    }
    assert!(count > 0, "empty corpus");
    (nll / count as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::generate;
    use crate::transformer::ModelConfig;

    #[test]
    fn teacher_beats_chance_on_own_text() {
        let t = Transformer::teacher(ModelConfig::tiny(), 3);
        let c = generate(&t, 4, 12, 7);
        let ppl = perplexity(&t, &c, &Backend::Exact);
        assert!(ppl.is_finite() && ppl > 1.0);
        assert!(
            ppl < 96.0 / 2.0,
            "teacher ppl {ppl} should be far below chance (96)"
        );
    }

    #[test]
    fn perturbed_model_has_higher_ppl() {
        // Any weight damage must raise perplexity on teacher-generated text.
        let t = Transformer::teacher(ModelConfig::tiny(), 3);
        let c = generate(&t, 4, 12, 7);
        let base = perplexity(&t, &c, &Backend::Exact);
        let mut hurt = t.clone();
        hurt.map_linears(|_, lin| {
            if let crate::transformer::LinearWeights::Fp(w) = &mut lin.weights {
                // Crude 1-bit-style damage: keep sign × mean magnitude.
                let mean = w.as_slice().iter().map(|v| v.abs()).sum::<f64>()
                    / (w.rows() * w.cols()) as f64;
                *w = w.map(|&v| v.signum() * mean);
            }
        });
        let damaged = perplexity(&hurt, &c, &Backend::Exact);
        assert!(damaged > base * 1.05, "damaged {damaged} vs base {base}");
    }

    #[test]
    fn deterministic() {
        let t = Transformer::teacher(ModelConfig::tiny(), 9);
        let c = generate(&t, 2, 10, 1);
        let a = perplexity(&t, &c, &Backend::Exact);
        let b = perplexity(&t, &c, &Backend::Exact);
        assert_eq!(a, b);
    }
}
