//! A working decoder-only transformer with engine-dispatched linear layers.
//!
//! This is a faithful (if small) OPT-style decoder: token + learned position
//! embeddings, pre-LayerNorm blocks with causal multi-head attention and a
//! GELU FFN, and a weight-tied LM head. Weight-only quantization applies to
//! the six linear projections per block — exactly the layers the paper's
//! engines accelerate — while attention arithmetic, normalization and the
//! head stay in floating point, as in every weight-only-quantized serving
//! stack.
//!
//! The [`Backend`] decides how those linear layers execute: exact `f64`
//! (the "GPU" rows of Tables IV/VI) or any `figlut-gemm` engine model
//! (FIGLUT-F, FIGLUT-I, FIGNA, …). Swapping backends under an identical
//! model is how the reproduction demonstrates Table IV's numerical-parity
//! claim.

use crate::rng::Rng;
use figlut_exec::{exec_i, ExecPlan, PackedBcq};
use figlut_gemm::{Engine, EngineConfig, Weights};
use figlut_num::Mat;
use figlut_quant::{BcqWeight, UniformWeight};

/// Scaled-down OPT-style architecture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Hidden width.
    pub d_model: usize,
    /// Decoder layers.
    pub layers: usize,
    /// Attention heads (must divide `d_model`).
    pub heads: usize,
    /// FFN inner width.
    pub ffn: usize,
    /// Maximum sequence length (position table size).
    pub max_seq: usize,
}

impl ModelConfig {
    /// A small test-scale model with OPT proportions.
    pub fn tiny() -> Self {
        Self {
            vocab: 96,
            d_model: 48,
            layers: 2,
            heads: 4,
            ffn: 192,
            max_seq: 40,
        }
    }

    /// Scaled-down stand-in for an OPT family member: same layer count
    /// ratio flavor, widths divided to stay laptop-runnable.
    pub fn scaled(layers: usize, d_model: usize, heads: usize) -> Self {
        Self {
            vocab: 96,
            d_model,
            layers,
            heads,
            ffn: 4 * d_model,
            max_seq: 40,
        }
    }
}

/// Weight storage of one linear layer.
#[derive(Clone, Debug)]
pub enum LinearWeights {
    /// Unquantized.
    Fp(Mat<f64>),
    /// Uniform INT (RTN / GPTQ output).
    Uniform(UniformWeight),
    /// Binary-coding quantization (ShiftAddLLM output or Eq. 3 conversion).
    Bcq(BcqWeight),
    /// BCQ re-packed for the `figlut-exec` fast kernels, with the
    /// [`ExecPlan`] built once at packing time (see
    /// [`crate::calibrate::to_packed`]): the window decomposition and all
    /// kernel scratch are cached here, so steady-state decode runs the
    /// exec hot path without recomputing the plan or allocating — once
    /// per layer, not once per token per layer. Represents exactly the
    /// same values as the [`LinearWeights::Bcq`] it was packed from.
    Packed(PackedBcq, ExecPlan),
}

impl LinearWeights {
    /// `(out_features, in_features)`.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            LinearWeights::Fp(w) => w.shape(),
            LinearWeights::Uniform(u) => u.shape(),
            LinearWeights::Bcq(b) => b.shape(),
            LinearWeights::Packed(p, _) => p.shape(),
        }
    }

    /// Average bits per weight (16 for FP).
    pub fn bits(&self) -> f64 {
        match self {
            LinearWeights::Fp(_) => 16.0,
            LinearWeights::Uniform(u) => u.bits() as f64,
            LinearWeights::Bcq(b) => b.bits() as f64,
            LinearWeights::Packed(p, _) => p.bits() as f64,
        }
    }
}

/// A linear layer `y = x·Wᵀ + b`.
#[derive(Clone, Debug)]
pub struct Linear {
    /// Weights (`out × in`).
    pub weights: LinearWeights,
    /// Bias (`out`), kept FP as in weight-only quantization practice.
    pub bias: Vec<f64>,
}

/// How linear layers execute.
#[derive(Clone, Copy, Debug)]
pub enum Backend {
    /// Exact f64 arithmetic (dequantizing quantized weights) — the paper's
    /// GPU reference rows.
    Exact,
    /// A `figlut-gemm` hardware datapath model.
    Engine(Engine, EngineConfig),
    /// The `figlut-exec` packed fast path: **bit-identical** logits to
    /// `Backend::Engine(Engine::FiglutI, cfg)` on quantized layers (the
    /// exec kernel reproduces the FIGLUT-I datapath exactly; DESIGN.md
    /// §6), at host-GEMM speed. Pre-pack the model with
    /// [`crate::calibrate::to_packed`] to avoid re-packing per forward
    /// call.
    Exec(EngineConfig),
}

impl Linear {
    fn forward(&self, x: &Mat<f64>, backend: &Backend) -> Mat<f64> {
        let mut y = match (backend, &self.weights) {
            (Backend::Exact, LinearWeights::Fp(w)) => x.matmul(&w.transposed()),
            (Backend::Exact, LinearWeights::Uniform(u)) => x.matmul(&u.dequantize().transposed()),
            (Backend::Exact, LinearWeights::Bcq(b)) => x.matmul(&b.dequantize().transposed()),
            (Backend::Exact, LinearWeights::Packed(p, _)) => x.matmul(&p.dequantize().transposed()),
            // FP weights under an engine/exec backend: the engine only
            // handles quantized layers; FP layers run on the reference
            // datapath (GPU-style FP16 tensor ops modeled exactly).
            (Backend::Engine(_, cfg) | Backend::Exec(cfg), LinearWeights::Fp(w)) => {
                let xa = x.map(|&v| cfg.act.quantize(v));
                xa.matmul(&w.map(|&v| cfg.act.quantize(v)).transposed())
            }
            (Backend::Engine(e, cfg), LinearWeights::Uniform(u)) => {
                e.run(x, &Weights::Uniform(u), cfg)
            }
            (Backend::Engine(e, cfg), LinearWeights::Bcq(b)) => e.run(x, &Weights::Bcq(b), cfg),
            // Datapath models don't consume the packed layout directly;
            // unpack (slow path — kept for differential testing).
            (Backend::Engine(e, cfg), LinearWeights::Packed(p, _)) => {
                e.run(x, &Weights::Bcq(&p.unpack()), cfg)
            }
            // Exec fast path. A pre-packed layer carries its ExecPlan, so
            // the steady-state call reuses the cached window plan and
            // scratch pools; if the call-site config is incompatible with
            // the cached plan (a different effective µ), fall back to a
            // throwaway plan — same bits, per-call setup cost. Non-packed
            // quantized weights are packed on the fly (correct, but pay
            // the packing cost per call — use `to_packed` for repeated
            // evaluation).
            (Backend::Exec(cfg), LinearWeights::Packed(p, plan)) => {
                if plan.matches(p, cfg) {
                    plan.exec_i(x, p, cfg)
                } else {
                    exec_i(x, p, cfg)
                }
            }
            (Backend::Exec(cfg), LinearWeights::Bcq(b)) => exec_i(x, &PackedBcq::pack(b), cfg),
            (Backend::Exec(cfg), LinearWeights::Uniform(u)) => {
                exec_i(x, &PackedBcq::pack(&BcqWeight::from_uniform(u)), cfg)
            }
        };
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v += self.bias[c];
            }
        }
        y
    }
}

/// LayerNorm parameters.
#[derive(Clone, Debug)]
pub struct LayerNorm {
    gamma: Vec<f64>,
    beta: Vec<f64>,
}

impl LayerNorm {
    fn identity(d: usize) -> Self {
        Self {
            gamma: vec![1.0; d],
            beta: vec![0.0; d],
        }
    }

    fn forward(&self, x: &Mat<f64>) -> Mat<f64> {
        let d = x.cols();
        Mat::from_fn(x.rows(), d, |r, c| {
            let row = x.row(r);
            let mean: f64 = row.iter().sum::<f64>() / d as f64;
            let var: f64 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / d as f64;
            (x[(r, c)] - mean) / (var + 1e-5).sqrt() * self.gamma[c] + self.beta[c]
        })
    }
}

/// One decoder block.
#[derive(Clone, Debug)]
pub struct Block {
    /// Pre-attention LayerNorm.
    pub ln1: LayerNorm,
    /// Q/K/V/output projections.
    pub wq: Linear,
    /// Key projection.
    pub wk: Linear,
    /// Value projection.
    pub wv: Linear,
    /// Output projection.
    pub wo: Linear,
    /// Pre-FFN LayerNorm.
    pub ln2: LayerNorm,
    /// FFN up-projection.
    pub fc1: Linear,
    /// FFN down-projection.
    pub fc2: Linear,
}

impl Block {
    /// The six quantizable linears in a fixed order (the order `calibrate`
    /// captures activations in).
    pub fn linears(&self) -> [&Linear; 6] {
        [&self.wq, &self.wk, &self.wv, &self.wo, &self.fc1, &self.fc2]
    }

    /// Mutable access in the same order.
    pub fn linears_mut(&mut self) -> [&mut Linear; 6] {
        [
            &mut self.wq,
            &mut self.wk,
            &mut self.wv,
            &mut self.wo,
            &mut self.fc1,
            &mut self.fc2,
        ]
    }
}

pub use crate::kv::KvCache;
use crate::kv::{BlockPool, LayerView};

/// A decoder-only transformer.
#[derive(Clone, Debug)]
pub struct Transformer {
    /// Architecture.
    pub cfg: ModelConfig,
    /// Token embedding (`vocab × d`), tied with the LM head.
    pub embed: Mat<f64>,
    /// Learned positional embedding (`max_seq × d`).
    pub pos: Mat<f64>,
    /// Decoder blocks.
    pub blocks: Vec<Block>,
    /// Final LayerNorm.
    pub ln_f: LayerNorm,
}

/// Exact GELU.
fn gelu(x: f64) -> f64 {
    0.5 * x * (1.0 + erf(x / core::f64::consts::SQRT_2))
}

/// Abramowitz–Stegun 7.1.26 erf approximation (|ε| < 1.5e-7).
fn erf(x: f64) -> f64 {
    let s = x.signum();
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    s * y
}

fn softmax_row(row: &mut [f64]) {
    let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
}

impl Transformer {
    /// A deterministic synthetic "teacher": weights are Gaussian with a
    /// scale chosen so the model's output distribution is peaked (low
    /// entropy), giving it genuinely low perplexity on text it generates —
    /// the stand-in for a trained OPT checkpoint (DESIGN.md §2).
    pub fn teacher(cfg: ModelConfig, seed: u64) -> Self {
        assert!(
            cfg.d_model.is_multiple_of(cfg.heads),
            "heads must divide d_model"
        );
        let mut rng = Rng::new(seed);
        let g = |rng: &mut Rng, rows: usize, cols: usize, scale: f64| {
            Mat::from_fn(rows, cols, |_, _| rng.normal() * scale)
        };
        // Residual-stream scales ≈ 1/sqrt(d) keep activations O(1);
        // the embedding is boosted so logits (tied head) are peaked.
        let d = cfg.d_model;
        let s = 1.0 / (d as f64).sqrt();
        let lin = |rng: &mut Rng, out: usize, inp: usize| Linear {
            weights: LinearWeights::Fp(g(rng, out, inp, s)),
            bias: (0..out).map(|_| rng.normal() * 0.01).collect(),
        };
        let blocks = (0..cfg.layers)
            .map(|_| Block {
                ln1: LayerNorm::identity(d),
                wq: lin(&mut rng, d, d),
                wk: lin(&mut rng, d, d),
                wv: lin(&mut rng, d, d),
                wo: lin(&mut rng, d, d),
                ln2: LayerNorm::identity(d),
                fc1: lin(&mut rng, cfg.ffn, d),
                fc2: lin(&mut rng, d, cfg.ffn),
            })
            .collect();
        Self {
            cfg,
            embed: g(&mut rng, cfg.vocab, d, 3.0 * s),
            pos: g(&mut rng, cfg.max_seq, d, 0.5 * s),
            blocks,
            ln_f: LayerNorm::identity(d),
        }
    }

    /// Hidden states after the final LayerNorm for a token sequence
    /// (`seq × d`), with optional capture of every linear layer's input.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty, exceeds `max_seq`, or contains
    /// out-of-vocabulary ids.
    fn hidden(
        &self,
        tokens: &[usize],
        backend: &Backend,
        mut capture: Option<&mut Vec<Vec<Mat<f64>>>>,
    ) -> Mat<f64> {
        let cfg = &self.cfg;
        assert!(!tokens.is_empty(), "empty sequence");
        assert!(
            tokens.len() <= cfg.max_seq,
            "sequence {} exceeds max_seq {}",
            tokens.len(),
            cfg.max_seq
        );
        let seq = tokens.len();
        let d = cfg.d_model;
        let mut x = Mat::from_fn(seq, d, |t, c| {
            let tok = tokens[t];
            assert!(tok < cfg.vocab, "token {tok} out of vocabulary");
            self.embed[(tok, c)] + self.pos[(t, c)]
        });
        let dh = d / cfg.heads;
        let scale = 1.0 / (dh as f64).sqrt();
        for (li, block) in self.blocks.iter().enumerate() {
            // --- attention sublayer ---
            let h = block.ln1.forward(&x);
            if let Some(cap) = capture.as_deref_mut() {
                // wq, wk, wv share the same input.
                cap[li * 6].push(h.clone());
                cap[li * 6 + 1].push(h.clone());
                cap[li * 6 + 2].push(h.clone());
            }
            let q = block.wq.forward(&h, backend);
            let k = block.wk.forward(&h, backend);
            let v = block.wv.forward(&h, backend);
            let mut ctx = Mat::zeros(seq, d);
            for head in 0..cfg.heads {
                let off = head * dh;
                for t in 0..seq {
                    // Causal scores for position t.
                    let mut scores: Vec<f64> = (0..=t)
                        .map(|u| {
                            let mut s = 0.0;
                            for j in 0..dh {
                                s += q[(t, off + j)] * k[(u, off + j)];
                            }
                            s * scale
                        })
                        .collect();
                    softmax_row(&mut scores);
                    for (u, &a) in scores.iter().enumerate() {
                        for j in 0..dh {
                            ctx[(t, off + j)] += a * v[(u, off + j)];
                        }
                    }
                }
            }
            if let Some(cap) = capture.as_deref_mut() {
                cap[li * 6 + 3].push(ctx.clone());
            }
            let attn_out = block.wo.forward(&ctx, backend);
            x = Mat::from_fn(seq, d, |t, c| x[(t, c)] + attn_out[(t, c)]);
            // --- FFN sublayer ---
            let h = block.ln2.forward(&x);
            if let Some(cap) = capture.as_deref_mut() {
                cap[li * 6 + 4].push(h.clone());
            }
            let up = block.fc1.forward(&h, backend);
            let act = up.map(|&v| gelu(v));
            if let Some(cap) = capture.as_deref_mut() {
                cap[li * 6 + 5].push(act.clone());
            }
            let down = block.fc2.forward(&act, backend);
            x = Mat::from_fn(seq, d, |t, c| x[(t, c)] + down[(t, c)]);
        }
        self.ln_f.forward(&x)
    }

    /// Next-token logits for every position (`seq × vocab`), via the tied
    /// LM head.
    pub fn logits(&self, tokens: &[usize], backend: &Backend) -> Mat<f64> {
        let h = self.hidden(tokens, backend, None);
        h.matmul(&self.embed.transposed())
    }

    /// Forward pass that also captures each linear layer's input
    /// activations, indexed `layer·6 + {wq,wk,wv,wo,fc1,fc2}`. Each entry
    /// is a list of `seq × in_features` matrices (one per call).
    pub fn logits_with_capture(
        &self,
        tokens: &[usize],
        backend: &Backend,
        capture: &mut Vec<Vec<Mat<f64>>>,
    ) -> Mat<f64> {
        assert_eq!(capture.len(), self.blocks.len() * 6, "capture slots");
        let h = self.hidden(tokens, backend, Some(capture));
        h.matmul(&self.embed.transposed())
    }

    /// Create an empty KV cache for incremental decoding — the contiguous
    /// per-session representation, byte-for-byte the pre-paging layout.
    pub fn new_cache(&self) -> KvCache {
        KvCache::contiguous(self.cfg.layers)
    }

    /// Create an empty *paged* KV cache drawing blocks from `pool`.
    /// Numerically indistinguishable from [`Transformer::new_cache`]: the
    /// attention gather reads rows by logical position through either
    /// representation, so logits and sampled tokens are bit-identical
    /// (pinned by this crate's tests and `figlut-serve`'s property suite).
    ///
    /// # Panics
    ///
    /// Panics if the pool's layer count or width disagree with the model.
    pub fn new_paged_cache(&self, pool: &BlockPool) -> KvCache {
        assert_eq!(
            pool.layers(),
            self.cfg.layers,
            "pool layer count disagrees with the model"
        );
        assert_eq!(
            pool.d_model(),
            self.cfg.d_model,
            "pool row width disagrees with the model"
        );
        KvCache::paged(pool)
    }

    /// One incremental decoding step: consume `token` at the cache's
    /// current position and return the next-token logits.
    ///
    /// Mathematically identical to recomputing the full sequence (the
    /// per-position attention is unchanged; only K/V recomputation is
    /// avoided) — asserted bit-tightly in tests. This is the serving-style
    /// execution mode whose GEMV shapes (`batch × d` with batch = sequences
    /// in flight) the paper's Table V evaluates.
    ///
    /// # Panics
    ///
    /// Panics if the cache is full (`max_seq`) or the token is out of
    /// vocabulary.
    pub fn decode_step(&self, token: usize, cache: &mut KvCache, backend: &Backend) -> Vec<f64> {
        self.prefill(&[token], cache, backend).row(0).to_vec()
    }

    /// Consume a chunk of tokens starting at the cache's current position
    /// and return the next-token logits for every consumed position
    /// (`chunk × vocab`).
    ///
    /// This is the serving *prefill* path: the whole prompt flows through
    /// each linear layer as one `chunk × d` GEMM over the shared weights —
    /// the amortized-weight-traffic regime the paper's batched evaluation
    /// targets — while attention stays causal over cache + earlier chunk
    /// rows. Every per-row operation is performed in exactly the order
    /// [`Transformer::decode_step`] performs it, so feeding a prompt as one
    /// chunk, token by token, or any split in between yields bit-identical
    /// logits and cache contents (pinned by `tests/prop_decode.rs`).
    ///
    /// Thin wrapper over [`Transformer::forward_batch`] with a single
    /// session contributing the whole chunk.
    ///
    /// # Panics
    ///
    /// Panics if the chunk is empty, overflows `max_seq`, or contains
    /// out-of-vocabulary ids.
    pub fn prefill(&self, tokens: &[usize], cache: &mut KvCache, backend: &Backend) -> Mat<f64> {
        self.forward_batch(&[tokens], std::slice::from_mut(cache), backend)
    }

    /// One fused **mixed step** over independent sessions: session `i`
    /// consumes `chunks[i]` (≥ 1 token-rows) starting at its own cache
    /// position, and the `total-rows × vocab` next-token logits come back
    /// session-major (session 0's chunk rows first, then session 1's, …).
    ///
    /// This is the general forward path the serving layer schedules:
    /// decode steps are chunks of length 1, prefill chunks are longer, and
    /// any mix of the two rides one `rows × d` GEMM per linear layer over
    /// the shared (packed) weights — one traversal of each layer's weights
    /// serves every token-row in flight, prefill and decode alike (the
    /// paper's weight-traffic amortization, now without segregating the
    /// phases). Attention stays strictly per-session: a decode row attends
    /// to its own full cache, a chunk row attends causally to its session's
    /// cache plus the earlier rows of its own chunk.
    ///
    /// **Bit-identity.** Every per-row operation (LayerNorm, attention over
    /// the session's own cache, GELU, residuals) reads only that row, and
    /// every backend computes GEMM output rows independently in a fixed
    /// per-row order, so each returned row is bit-identical to running its
    /// session alone — any chunking, any co-scheduled mix (pinned for
    /// arbitrary mixes by `tests/prop_decode.rs` and `figlut-serve`'s
    /// property suite). [`Transformer::prefill`],
    /// [`Transformer::decode_batch`], and [`Transformer::decode_step`] are
    /// thin wrappers over this method.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch, a `chunks`/`caches` length mismatch, an
    /// empty chunk, a chunk that overflows its session's `max_seq` cache,
    /// or an out-of-vocabulary token.
    pub fn forward_batch(
        &self,
        chunks: &[&[usize]],
        caches: &mut [KvCache],
        backend: &Backend,
    ) -> Mat<f64> {
        let cfg = &self.cfg;
        assert!(!chunks.is_empty(), "empty batch");
        assert_eq!(chunks.len(), caches.len(), "chunks/caches length mismatch");
        let p0: Vec<usize> = caches.iter().map(KvCache::len).collect();
        // (session, offset-in-chunk) of every fused row, session-major.
        let mut row_of: Vec<(usize, usize)> = Vec::new();
        for (i, (chunk, &p)) in chunks.iter().zip(&p0).enumerate() {
            assert!(!chunk.is_empty(), "session {i}: empty chunk");
            assert!(
                p + chunk.len() <= cfg.max_seq,
                "session {i}: KV cache full ({p} + {} > {})",
                chunk.len(),
                cfg.max_seq
            );
            for &tok in *chunk {
                assert!(
                    tok < cfg.vocab,
                    "session {i}: token {tok} out of vocabulary"
                );
            }
            row_of.extend((0..chunk.len()).map(|t| (i, t)));
        }
        // Phase accounting for the trace layer: a single-token chunk is a
        // decode row, a longer chunk contributes prefill rows (the serving
        // scheduler's phase definition, so the counters reconcile with
        // `Σ StepRecord::rows()`).
        if figlut_trace::enabled() {
            figlut_trace::counters::bump_model_forward_calls(1);
            for chunk in chunks {
                if chunk.len() == 1 {
                    figlut_trace::counters::bump_model_decode_rows(1);
                } else {
                    figlut_trace::counters::bump_model_prefill_rows(chunk.len() as u64);
                }
            }
        }
        let rows = row_of.len();
        let d = cfg.d_model;
        let dh = d / cfg.heads;
        let scale = 1.0 / (dh as f64).sqrt();
        let mut x = Mat::from_fn(rows, d, |r, c| {
            let (i, t) = row_of[r];
            self.embed[(chunks[i][t], c)] + self.pos[(p0[i] + t, c)]
        });
        for (li, block) in self.blocks.iter().enumerate() {
            let h = block.ln1.forward(&x);
            let q = block.wq.forward(&h, backend);
            let k = block.wk.forward(&h, backend);
            let v = block.wv.forward(&h, backend);
            for (r, &(i, _)) in row_of.iter().enumerate() {
                caches[i].push_row(li, k.row(r), v.row(r));
            }
            let mut ctx = Mat::zeros(rows, d);
            {
                // One view per session for the whole layer: rows read by
                // logical position, so a paged cache yields the identical
                // f64 rows in the identical order as a contiguous one.
                let views: Vec<LayerView<'_>> = caches.iter().map(|c| c.layer_view(li)).collect();
                for head in 0..cfg.heads {
                    let off = head * dh;
                    for (r, &(i, t)) in row_of.iter().enumerate() {
                        // Causal: row t of session i sees that session's
                        // pre-existing cache plus its own chunk rows 0..=t
                        // (all already pushed above) — never another session.
                        let view = &views[i];
                        let mut scores: Vec<f64> = (0..=p0[i] + t)
                            .map(|u| {
                                let krow = view.key(u);
                                let mut s = 0.0;
                                for j in 0..dh {
                                    s += q[(r, off + j)] * krow[off + j];
                                }
                                s * scale
                            })
                            .collect();
                        softmax_row(&mut scores);
                        for (u, &a) in scores.iter().enumerate() {
                            let vrow = view.value(u);
                            for j in 0..dh {
                                ctx[(r, off + j)] += a * vrow[off + j];
                            }
                        }
                    }
                }
            }
            let attn_out = block.wo.forward(&ctx, backend);
            x = Mat::from_fn(rows, d, |r, c| x[(r, c)] + attn_out[(r, c)]);
            let h = block.ln2.forward(&x);
            let up = block.fc1.forward(&h, backend);
            let act = up.map(|&v| gelu(v));
            let down = block.fc2.forward(&act, backend);
            x = Mat::from_fn(rows, d, |r, c| x[(r, c)] + down[(r, c)]);
        }
        let h = self.ln_f.forward(&x);
        h.matmul(&self.embed.transposed())
    }

    /// One decoding step for a *batch of independent sessions*: consume
    /// `tokens[i]` at session `i`'s current position (which may differ per
    /// session) and return the `batch × vocab` next-token logits.
    ///
    /// This is the continuous-batching step `figlut-serve` runs: the six
    /// linear projections execute as one `batch × d` GEMM over the shared
    /// (packed) weights. Under `Backend::Exec` with a pre-packed model
    /// that is now literally one weight fetch per layer: the batch-blocked
    /// kernels stream each packed plane word once and index every
    /// session's look-up tables with it (`figlut-exec`'s batch-column
    /// blocking), the software realization of the paper's weight-traffic
    /// amortization — while attention, LayerNorm, and the residual stream
    /// remain strictly per-row against each session's own [`KvCache`].
    ///
    /// Because every backend computes GEMM outputs row by row in a fixed
    /// per-row order, row `i` is **bit-identical** to running
    /// [`Transformer::decode_step`] alone on session `i` — batching can
    /// change *when* a token is produced, never *which* token (pinned by
    /// `tests/prop_decode.rs` and `figlut-serve`'s property suite).
    ///
    /// Thin wrapper over [`Transformer::forward_batch`] with every session
    /// contributing a chunk of exactly one token.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty, `tokens` and `caches` disagree in
    /// length, any session's cache is full, or any token is out of
    /// vocabulary.
    pub fn decode_batch(
        &self,
        tokens: &[usize],
        caches: &mut [KvCache],
        backend: &Backend,
    ) -> Mat<f64> {
        assert!(!tokens.is_empty(), "empty batch");
        assert_eq!(tokens.len(), caches.len(), "tokens/caches length mismatch");
        let chunks: Vec<&[usize]> = tokens.chunks(1).collect();
        self.forward_batch(&chunks, caches, backend)
    }

    /// Autoregressively sample `len` tokens after a BOS token (id 0) at the
    /// given softmax temperature. Deterministic in `rng`.
    pub fn sample(&self, len: usize, temperature: f64, rng: &mut Rng) -> Vec<usize> {
        assert!(len < self.cfg.max_seq, "sample length exceeds max_seq");
        let mut toks = vec![0usize];
        for _ in 0..len {
            let logits = self.logits(&toks, &Backend::Exact);
            let last = logits.row(logits.rows() - 1);
            let max = last.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let weights: Vec<f64> = last
                .iter()
                .map(|&l| ((l - max) / temperature).exp())
                .collect();
            toks.push(rng.categorical(&weights));
        }
        toks
    }

    /// Apply `f` to every quantizable linear (layer-major order).
    pub fn map_linears(&mut self, mut f: impl FnMut(usize, &mut Linear)) {
        let mut idx = 0;
        for block in &mut self.blocks {
            for lin in block.linears_mut() {
                f(idx, lin);
                idx += 1;
            }
        }
    }

    /// The weights of every quantizable linear, layer-major.
    pub fn linear_weights(&self) -> Vec<&LinearWeights> {
        self.blocks
            .iter()
            .flat_map(|b| b.linears().map(|l| &l.weights))
            .collect()
    }

    /// Parameter-weighted average bits across quantizable linears.
    pub fn average_bits(&self) -> f64 {
        let mut bits = 0.0;
        let mut params = 0.0;
        for w in self.linear_weights() {
            let (m, n) = w.shape();
            let p = (m * n) as f64;
            bits += w.bits() * p;
            params += p;
        }
        bits / params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let m = Transformer::teacher(ModelConfig::tiny(), 1);
        let logits = m.logits(&[0, 5, 9], &Backend::Exact);
        assert_eq!(logits.shape(), (3, 96));
    }

    #[test]
    fn deterministic_construction_and_forward() {
        let a = Transformer::teacher(ModelConfig::tiny(), 42);
        let b = Transformer::teacher(ModelConfig::tiny(), 42);
        let la = a.logits(&[0, 1, 2, 3], &Backend::Exact);
        let lb = b.logits(&[0, 1, 2, 3], &Backend::Exact);
        assert_eq!(la.as_slice(), lb.as_slice());
        let c = Transformer::teacher(ModelConfig::tiny(), 43);
        let lc = c.logits(&[0, 1, 2, 3], &Backend::Exact);
        assert_ne!(la.as_slice(), lc.as_slice());
    }

    #[test]
    fn causality() {
        // Changing a future token must not change past logits.
        let m = Transformer::teacher(ModelConfig::tiny(), 7);
        let l1 = m.logits(&[0, 4, 8, 15], &Backend::Exact);
        let l2 = m.logits(&[0, 4, 8, 16], &Backend::Exact);
        for t in 0..3 {
            for v in 0..96 {
                assert_eq!(l1[(t, v)], l2[(t, v)], "t={t} v={v}");
            }
        }
        // …but the logits at the changed position do differ upstream of it.
        assert_ne!(l1.row(3), l2.row(3));
    }

    #[test]
    fn teacher_is_peaked() {
        // The synthetic teacher must produce low-entropy next-token
        // distributions (otherwise perplexity experiments are vacuous).
        let m = Transformer::teacher(ModelConfig::tiny(), 11);
        let logits = m.logits(&[0, 3, 17, 40, 2], &Backend::Exact);
        let mut mean_entropy = 0.0;
        for t in 0..logits.rows() {
            let mut row = logits.row(t).to_vec();
            softmax_row(&mut row);
            let h: f64 = row.iter().filter(|&&p| p > 0.0).map(|&p| -p * p.ln()).sum();
            mean_entropy += h;
        }
        mean_entropy /= logits.rows() as f64;
        let uniform_entropy = (96f64).ln();
        assert!(
            mean_entropy < 0.8 * uniform_entropy,
            "entropy {mean_entropy} vs uniform {uniform_entropy}"
        );
    }

    #[test]
    fn sampling_is_deterministic_and_in_vocab() {
        let m = Transformer::teacher(ModelConfig::tiny(), 5);
        let mut r1 = Rng::new(9);
        let mut r2 = Rng::new(9);
        let s1 = m.sample(12, 1.0, &mut r1);
        let s2 = m.sample(12, 1.0, &mut r2);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 13);
        assert!(s1.iter().all(|&t| t < 96));
    }

    #[test]
    fn capture_collects_all_slots() {
        let m = Transformer::teacher(ModelConfig::tiny(), 3);
        let mut cap: Vec<Vec<Mat<f64>>> = vec![Vec::new(); 2 * 6];
        let _ = m.logits_with_capture(&[0, 1, 2, 3, 4], &Backend::Exact, &mut cap);
        for (i, slot) in cap.iter().enumerate() {
            assert_eq!(slot.len(), 1, "slot {i}");
            let expect_cols = if i % 6 == 5 { 192 } else { 48 };
            assert_eq!(slot[0].shape(), (5, expect_cols), "slot {i}");
        }
    }

    #[test]
    fn average_bits_fp_is_16() {
        let m = Transformer::teacher(ModelConfig::tiny(), 2);
        assert_eq!(m.average_bits(), 16.0);
    }

    #[test]
    fn kv_cache_decoding_matches_full_forward() {
        // Incremental decoding must reproduce the teacher-forced logits at
        // every position, near-exactly (same f64 operations, same order).
        let m = Transformer::teacher(ModelConfig::tiny(), 13);
        let toks = [0usize, 7, 19, 3, 88, 42];
        let full = m.logits(&toks, &Backend::Exact);
        let mut cache = m.new_cache();
        assert!(cache.is_empty());
        for (t, &tok) in toks.iter().enumerate() {
            let step = m.decode_step(tok, &mut cache, &Backend::Exact);
            for v in 0..96 {
                assert!(
                    (step[v] - full[(t, v)]).abs() < 1e-9,
                    "t={t} v={v}: {} vs {}",
                    step[v],
                    full[(t, v)]
                );
            }
        }
        assert_eq!(cache.len(), toks.len());
    }

    #[test]
    fn prefill_chunk_bit_matches_step_by_step() {
        // Any chunking of the prompt must produce bit-identical logits and
        // cache contents (the per-row operation order is the same).
        let m = Transformer::teacher(ModelConfig::tiny(), 21);
        let toks = [0usize, 7, 19, 3, 88, 42, 11];
        let mut by_step = m.new_cache();
        let mut step_logits: Vec<Vec<f64>> = Vec::new();
        for &tok in &toks {
            step_logits.push(m.decode_step(tok, &mut by_step, &Backend::Exact));
        }
        for split in [1usize, 2, 3, 7] {
            let mut cache = m.new_cache();
            let mut rows: Vec<Vec<f64>> = Vec::new();
            for chunk in toks.chunks(split) {
                let l = m.prefill(chunk, &mut cache, &Backend::Exact);
                for t in 0..l.rows() {
                    rows.push(l.row(t).to_vec());
                }
            }
            assert_eq!(rows, step_logits, "split={split}");
            assert_eq!(cache.len(), by_step.len());
            assert_eq!(cache.snapshot(), by_step.snapshot(), "split={split}");
        }
    }

    #[test]
    fn decode_batch_rows_bit_match_solo_steps() {
        // Sessions at *different* positions, decoded together: each row must
        // equal the solo decode of that session, bit for bit.
        let m = Transformer::teacher(ModelConfig::tiny(), 23);
        let prompts: [&[usize]; 3] = [&[0, 5], &[0, 9, 33, 2], &[0, 61]];
        let steps: [usize; 3] = [4, 2, 3];
        // Solo reference: prefill + decode each session alone.
        let mut solo_logits: Vec<Vec<Vec<f64>>> = Vec::new();
        for (p, &n) in prompts.iter().zip(&steps) {
            let mut cache = m.new_cache();
            let _ = m.prefill(p, &mut cache, &Backend::Exact);
            let mut out = Vec::new();
            for s in 0..n {
                out.push(m.decode_step(40 + s, &mut cache, &Backend::Exact));
            }
            solo_logits.push(out);
        }
        // Batched: same sessions advance together while any has steps left.
        let mut caches: Vec<KvCache> = Vec::new();
        for p in prompts {
            let mut cache = m.new_cache();
            let _ = m.prefill(p, &mut cache, &Backend::Exact);
            caches.push(cache);
        }
        let mut s = 0usize;
        loop {
            let live: Vec<usize> = (0..3).filter(|&i| s < steps[i]).collect();
            if live.is_empty() {
                break;
            }
            let tokens: Vec<usize> = live.iter().map(|_| 40 + s).collect();
            let mut batch_caches: Vec<KvCache> = live.iter().map(|&i| caches[i].clone()).collect();
            let l = m.decode_batch(&tokens, &mut batch_caches, &Backend::Exact);
            for (row, &i) in live.iter().enumerate() {
                assert_eq!(l.row(row), &solo_logits[i][s][..], "session {i} step {s}");
                caches[i] = batch_caches[row].clone();
            }
            s += 1;
        }
    }

    #[test]
    fn forward_batch_mixed_chunks_bit_match_solo_runs() {
        // One fused step mixing a decode row, a mid-prompt chunk, and a
        // fresh prefill chunk: every returned row must equal the same row
        // computed with the session running alone, bit for bit.
        let m = Transformer::teacher(ModelConfig::tiny(), 29);
        let histories: [&[usize]; 3] = [&[0, 5, 9, 2], &[0, 7, 19, 3, 88], &[0, 61, 4]];
        let splits: [usize; 3] = [3, 2, 0]; // tokens already consumed
                                            // Solo reference: prefill the consumed part, then the rest alone.
        let mut solo_rows: Vec<Vec<Vec<f64>>> = Vec::new();
        let mut caches: Vec<KvCache> = Vec::new();
        for (h, &s) in histories.iter().zip(&splits) {
            let mut cache = m.new_cache();
            if s > 0 {
                let _ = m.prefill(&h[..s], &mut cache, &Backend::Exact);
            }
            let mut solo_cache = cache.clone();
            let l = m.prefill(&h[s..], &mut solo_cache, &Backend::Exact);
            solo_rows.push((0..l.rows()).map(|t| l.row(t).to_vec()).collect());
            caches.push(cache);
        }
        // Fused: all three remainders in one forward_batch call.
        let chunks: Vec<&[usize]> = histories
            .iter()
            .zip(&splits)
            .map(|(h, &s)| &h[s..])
            .collect();
        let logits = m.forward_batch(&chunks, &mut caches, &Backend::Exact);
        let mut row = 0usize;
        for (i, rows) in solo_rows.iter().enumerate() {
            for (t, want) in rows.iter().enumerate() {
                assert_eq!(logits.row(row), &want[..], "session {i} chunk row {t}");
                row += 1;
            }
        }
        assert_eq!(row, logits.rows());
        // The fused call advanced every cache to its full history length.
        for (cache, h) in caches.iter().zip(&histories) {
            assert_eq!(cache.len(), h.len());
        }
    }

    #[test]
    fn paged_cache_bit_matches_contiguous_for_all_block_sizes() {
        // The tentpole's numerics claim: paging is storage-only. Logits and
        // cache contents are bit-identical to the contiguous layout for
        // any block size.
        let m = Transformer::teacher(ModelConfig::tiny(), 31);
        let toks = [0usize, 7, 19, 3, 88, 42, 11, 5];
        let mut reference = m.new_cache();
        let mut ref_logits = Vec::new();
        for &tok in &toks {
            ref_logits.push(m.decode_step(tok, &mut reference, &Backend::Exact));
        }
        for bs in [1usize, 2, 7, 16, 64] {
            let pool = BlockPool::for_model(&m.cfg, bs, None);
            let mut cache = m.new_paged_cache(&pool);
            for (t, &tok) in toks.iter().enumerate() {
                let l = m.decode_step(tok, &mut cache, &Backend::Exact);
                assert_eq!(l, ref_logits[t], "bs={bs} t={t}");
            }
            assert_eq!(cache.snapshot(), reference.snapshot(), "bs={bs}");
            drop(cache);
            assert_eq!(pool.live_blocks(), 0, "bs={bs}: blocks leaked");
        }
    }

    #[test]
    fn swap_restore_mid_decode_is_invisible_to_logits() {
        // Preempt a session between any two decode steps; the remaining
        // steps must be bit-identical to never having been preempted.
        let m = Transformer::teacher(ModelConfig::tiny(), 37);
        let toks = [0usize, 7, 19, 3, 88, 42];
        let mut reference = m.new_cache();
        let mut ref_logits = Vec::new();
        for &tok in &toks {
            ref_logits.push(m.decode_step(tok, &mut reference, &Backend::Exact));
        }
        for preempt_at in 1..toks.len() {
            let pool = BlockPool::for_model(&m.cfg, 2, None);
            let mut cache = m.new_paged_cache(&pool);
            for (t, &tok) in toks.iter().enumerate() {
                if t == preempt_at {
                    let out = cache.swap_out();
                    assert_eq!(pool.live_blocks(), 0, "swap-out frees the blocks");
                    assert_eq!(cache.restore(), out);
                }
                let l = m.decode_step(tok, &mut cache, &Backend::Exact);
                assert_eq!(l, ref_logits[t], "preempt_at={preempt_at} t={t}");
            }
        }
    }

    #[test]
    fn adopted_prefix_prefill_bit_matches_private_storage() {
        // Prefix sharing is storage-level: an adopter recomputes its whole
        // prompt (identical logits) while writing nothing below the shared
        // length.
        let m = Transformer::teacher(ModelConfig::tiny(), 41);
        let shared: Vec<usize> = vec![0, 7, 19, 3, 88, 42, 11, 5];
        let pool = BlockPool::for_model(&m.cfg, 4, None);
        let mut registry = crate::kv::PrefixRegistry::new(&pool);
        let mut first = m.new_paged_cache(&pool);
        let _ = m.prefill(&shared, &mut first, &Backend::Exact);
        registry.register(&shared, &first);

        let mut prompt = shared.clone();
        prompt.extend([9usize, 2]);
        let mut solo = m.new_cache();
        let solo_logits = m.prefill(&prompt, &mut solo, &Backend::Exact);

        let mut adopted = m.new_paged_cache(&pool);
        assert_eq!(registry.adopt_into(&prompt, &mut adopted), 8);
        let live_before = pool.live_blocks();
        let adopted_logits = m.prefill(&prompt, &mut adopted, &Backend::Exact);
        assert_eq!(adopted_logits.as_slice(), solo_logits.as_slice());
        assert_eq!(adopted.snapshot(), solo.snapshot());
        assert_eq!(
            pool.live_blocks(),
            live_before + 1,
            "only the private tail allocates"
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn decode_batch_checks_lengths() {
        let m = Transformer::teacher(ModelConfig::tiny(), 1);
        let mut caches = vec![m.new_cache()];
        let _ = m.decode_batch(&[0, 1], &mut caches, &Backend::Exact);
    }

    #[test]
    #[should_panic(expected = "KV cache full")]
    fn prefill_overflow_panics() {
        let m = Transformer::teacher(ModelConfig::tiny(), 13);
        let mut cache = m.new_cache();
        let toks: Vec<usize> = vec![0; m.cfg.max_seq + 1];
        let _ = m.prefill(&toks, &mut cache, &Backend::Exact);
    }

    #[test]
    #[should_panic(expected = "KV cache full")]
    fn kv_cache_overflow_panics() {
        let m = Transformer::teacher(ModelConfig::tiny(), 13);
        let mut cache = m.new_cache();
        for _ in 0..=m.cfg.max_seq {
            let _ = m.decode_step(0, &mut cache, &Backend::Exact);
        }
    }

    #[test]
    fn gelu_sane() {
        assert!((gelu(0.0)).abs() < 1e-12);
        assert!((gelu(3.0) - 3.0).abs() < 0.01);
        assert!(gelu(-3.0).abs() < 0.01);
    }
}
