//! Whole-model quantization pipelines.
//!
//! The paper's accuracy points come from three quantization stacks:
//! RTN (Table IV), OPTQ/GPTQ (the FIGNA points of Fig. 17) and
//! ShiftAddLLM-style BCQ with optional mixed precision (the FIGLUT points
//! of Fig. 17 and Table VI). This module drives all three over a
//! [`Transformer`], using activation capture on a calibration corpus for
//! the second-order methods.

use crate::corpus::Corpus;
use crate::transformer::{Backend, LinearWeights, Transformer};
use figlut_num::Mat;
use figlut_quant::awq::{awq_quantize, AwqParams};
use figlut_quant::bcq::BcqWeight;
use figlut_quant::gptq::{gptq_quantize, GptqParams};
use figlut_quant::shiftadd::{
    allocate_mixed_precision, quantize_layer, LayerInput, ShiftAddParams,
};
use figlut_quant::uniform::{rtn, RtnParams};

/// Quantization method selector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Method {
    /// Round-to-nearest uniform (the paper's Table IV setting).
    Rtn {
        /// Weight bits.
        bits: u32,
    },
    /// GPTQ/OPTQ-style second-order uniform quantization.
    Gptq {
        /// Weight bits.
        bits: u32,
    },
    /// AWQ-style activation-aware channel scaling + RTN (extension).
    ///
    /// The quantized model stores the *effective* (descaled) weights, which
    /// is numerically exactly what a deployed AWQ model computes after the
    /// scales are folded into the preceding operation.
    Awq {
        /// Weight bits.
        bits: u32,
    },
    /// ShiftAddLLM-style activation-aware BCQ.
    ShiftAdd {
        /// Binary planes.
        bits: u32,
    },
    /// ShiftAddLLM with sensitivity-based mixed precision.
    ShiftAddMixed {
        /// Parameter-weighted average plane budget (e.g. 2.4).
        avg_bits: f64,
    },
}

impl Method {
    /// Human-readable label, e.g. `"RTN-Q4"`.
    pub fn label(&self) -> String {
        match self {
            Method::Rtn { bits } => format!("RTN-Q{bits}"),
            Method::Gptq { bits } => format!("OPTQ-Q{bits}"),
            Method::Awq { bits } => format!("AWQ-Q{bits}"),
            Method::ShiftAdd { bits } => format!("ShiftAdd-Q{bits}"),
            Method::ShiftAddMixed { avg_bits } => format!("ShiftAdd-Q{avg_bits}"),
        }
    }
}

/// Capture each linear layer's input activations on the calibration
/// corpus, as `in_features × samples` matrices (the orientation the
/// quantizers expect).
pub fn capture_activations(model: &Transformer, calib: &Corpus) -> Vec<Mat<f64>> {
    let slots = model.blocks.len() * 6;
    let mut raw: Vec<Vec<Mat<f64>>> = vec![Vec::new(); slots];
    for seq in &calib.sequences {
        let _ = model.logits_with_capture(&seq[..seq.len() - 1], &Backend::Exact, &mut raw);
    }
    raw.into_iter()
        .map(|mats| {
            let cols = mats.iter().map(|m| m.rows()).sum::<usize>();
            let n = mats[0].cols();
            let mut out = Mat::zeros(n, cols);
            let mut c0 = 0;
            for m in &mats {
                for t in 0..m.rows() {
                    for f in 0..n {
                        out[(f, c0 + t)] = m[(t, f)];
                    }
                }
                c0 += m.rows();
            }
            out
        })
        .collect()
}

/// Quantize every linear layer of `model` with `method`, calibrating on
/// `calib` where the method needs activations. Returns the quantized model
/// (the input is untouched) and the per-layer bit allocation.
pub fn quantize_model(
    model: &Transformer,
    calib: &Corpus,
    method: Method,
) -> (Transformer, Vec<u32>) {
    let acts = match method {
        Method::Rtn { .. } => None,
        _ => Some(capture_activations(model, calib)),
    };
    let fp_weights: Vec<Mat<f64>> = model
        .linear_weights()
        .iter()
        .map(|w| match w {
            LinearWeights::Fp(m) => m.clone(),
            _ => panic!("quantize_model expects an FP teacher"),
        })
        .collect();

    let bits_per_layer: Vec<u32> = match method {
        Method::Rtn { bits }
        | Method::Gptq { bits }
        | Method::Awq { bits }
        | Method::ShiftAdd { bits } => {
            vec![bits; fp_weights.len()]
        }
        Method::ShiftAddMixed { avg_bits } => {
            let acts = acts.as_ref().expect("mixed precision needs calibration");
            let layers: Vec<LayerInput<'_>> = fp_weights
                .iter()
                .zip(acts)
                .map(|(w, x)| LayerInput {
                    name: "linear",
                    weights: w,
                    calibration: Some(x),
                })
                .collect();
            allocate_mixed_precision(&layers, &[2, 3, 4], avg_bits, 6).bits
        }
    };

    let mut out = model.clone();
    out.map_linears(|idx, lin| {
        let w = &fp_weights[idx];
        let bits = bits_per_layer[idx];
        lin.weights = match method {
            Method::Rtn { .. } => LinearWeights::Uniform(rtn(w, RtnParams::per_row(bits))),
            Method::Gptq { .. } => {
                let x = &acts.as_ref().unwrap()[idx];
                LinearWeights::Uniform(gptq_quantize(w, x, GptqParams::per_row(bits)))
            }
            Method::Awq { .. } => {
                let x = &acts.as_ref().unwrap()[idx];
                let a = awq_quantize(w, x, AwqParams::per_row(bits));
                LinearWeights::Fp(a.dequantize_effective())
            }
            Method::ShiftAdd { .. } | Method::ShiftAddMixed { .. } => {
                let x = &acts.as_ref().unwrap()[idx];
                LinearWeights::Bcq(quantize_layer(w, Some(x), ShiftAddParams::per_row(bits)))
            }
        };
    });
    (out, bits_per_layer)
}

/// Convert every uniform-quantized linear to BCQ-with-offset (paper Eq. 3),
/// so uniform models can run on the BCQ-format engines (iFPU / FIGLUT)
/// without any value change.
pub fn to_bcq(model: &Transformer) -> Transformer {
    let mut out = model.clone();
    out.map_linears(|_, lin| {
        if let LinearWeights::Uniform(u) = &lin.weights {
            lin.weights = LinearWeights::Bcq(BcqWeight::from_uniform(u));
        }
    });
    out
}

/// Re-pack every quantized linear for the `figlut-exec` fast kernels
/// (`Backend::Exec`): BCQ layers are packed directly, uniform layers go
/// through the lossless Eq. 3 conversion first, and each packed layer
/// gets its [`figlut_exec::ExecPlan`] built once here — so repeated
/// forward passes reuse the cached window plan and kernel scratch instead
/// of recomputing them per token per layer. Values are unchanged, so
/// perplexity under `Backend::Exec` is bit-identical to
/// `Backend::Engine(Engine::FiglutI, cfg)` on the source model.
///
/// The plans are built for `cfg`; `Backend::Exec` falls back to a
/// throwaway plan (same bits) if invoked with a config whose effective µ
/// differs.
pub fn to_packed_with(model: &Transformer, cfg: &figlut_gemm::EngineConfig) -> Transformer {
    use figlut_exec::PackedBcq;
    let mut out = model.clone();
    let pack = |b: &BcqWeight| {
        let p = PackedBcq::pack(b);
        let plan = p.plan(cfg);
        LinearWeights::Packed(p, plan)
    };
    out.map_linears(|_, lin| match &lin.weights {
        LinearWeights::Bcq(b) => lin.weights = pack(b),
        LinearWeights::Uniform(u) => lin.weights = pack(&BcqWeight::from_uniform(u)),
        LinearWeights::Fp(_) | LinearWeights::Packed(..) => {}
    });
    out
}

/// [`to_packed_with`] at the paper's default operating point (the config
/// every experiment and test in this repo executes `Backend::Exec` with).
pub fn to_packed(model: &Transformer) -> Transformer {
    to_packed_with(model, &figlut_gemm::EngineConfig::paper_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::generate;
    use crate::ppl::perplexity;
    use crate::transformer::ModelConfig;

    fn setup() -> (Transformer, Corpus, Corpus) {
        let t = Transformer::teacher(ModelConfig::tiny(), 21);
        let calib = generate(&t, 2, 10, 100);
        let eval = generate(&t, 3, 10, 200);
        (t, calib, eval)
    }

    #[test]
    fn rtn_q4_ppl_close_to_fp() {
        let (t, calib, eval) = setup();
        let base = perplexity(&t, &eval, &Backend::Exact);
        let (q, bits) = quantize_model(&t, &calib, Method::Rtn { bits: 4 });
        assert!(bits.iter().all(|&b| b == 4));
        let qp = perplexity(&q, &eval, &Backend::Exact);
        assert!(qp >= base * 0.99, "quantized {qp} below FP {base}?");
        assert!(qp < base * 1.6, "Q4 RTN ppl {qp} blew up vs {base}");
    }

    #[test]
    fn lower_bits_higher_ppl() {
        // Table VI ordering: FP < Q4 < Q3 < Q2 for the same method.
        let (t, calib, eval) = setup();
        let base = perplexity(&t, &eval, &Backend::Exact);
        let mut last = base;
        for bits in [4u32, 3, 2] {
            let (q, _) = quantize_model(&t, &calib, Method::ShiftAdd { bits });
            let p = perplexity(&q, &eval, &Backend::Exact);
            assert!(p >= last * 0.98, "bits={bits}: {p} < previous {last}");
            last = p;
        }
        assert!(last > base, "Q2 should be measurably worse than FP");
    }

    #[test]
    fn shiftadd_beats_rtn_at_2_bits() {
        // Non-uniform, activation-aware BCQ holds up much better at 2 bits
        // (the Fig. 17 story).
        let (t, calib, eval) = setup();
        let (q_rtn, _) = quantize_model(&t, &calib, Method::Rtn { bits: 2 });
        let (q_sa, _) = quantize_model(&t, &calib, Method::ShiftAdd { bits: 2 });
        let p_rtn = perplexity(&q_rtn, &eval, &Backend::Exact);
        let p_sa = perplexity(&q_sa, &eval, &Backend::Exact);
        assert!(p_sa < p_rtn, "ShiftAdd {p_sa} !< RTN {p_rtn}");
    }

    #[test]
    fn awq_not_worse_than_rtn_at_low_bits() {
        let (t, calib, eval) = setup();
        let (q_rtn, _) = quantize_model(&t, &calib, Method::Rtn { bits: 3 });
        let (q_awq, bits) = quantize_model(&t, &calib, Method::Awq { bits: 3 });
        assert!(bits.iter().all(|&b| b == 3));
        let p_rtn = perplexity(&q_rtn, &eval, &Backend::Exact);
        let p_awq = perplexity(&q_awq, &eval, &Backend::Exact);
        assert!(
            p_awq < p_rtn * 1.05,
            "AWQ {p_awq} much worse than RTN {p_rtn}"
        );
        assert_eq!(Method::Awq { bits: 3 }.label(), "AWQ-Q3");
    }

    #[test]
    fn gptq_not_worse_than_rtn() {
        let (t, calib, eval) = setup();
        let (q_rtn, _) = quantize_model(&t, &calib, Method::Rtn { bits: 3 });
        let (q_gptq, _) = quantize_model(&t, &calib, Method::Gptq { bits: 3 });
        let p_rtn = perplexity(&q_rtn, &eval, &Backend::Exact);
        let p_gptq = perplexity(&q_gptq, &eval, &Backend::Exact);
        assert!(
            p_gptq < p_rtn * 1.10,
            "GPTQ {p_gptq} much worse than RTN {p_rtn}"
        );
    }

    #[test]
    fn mixed_precision_budget_honored() {
        let (t, calib, _) = setup();
        let (q, bits) = quantize_model(&t, &calib, Method::ShiftAddMixed { avg_bits: 2.5 });
        assert!(q.average_bits() <= 2.5 + 1e-9, "avg {}", q.average_bits());
        assert!(bits.iter().any(|&b| b > 2), "budget unused: {bits:?}");
    }

    #[test]
    fn to_bcq_preserves_values() {
        let (t, calib, eval) = setup();
        let (q, _) = quantize_model(&t, &calib, Method::Rtn { bits: 3 });
        let b = to_bcq(&q);
        let pq = perplexity(&q, &eval, &Backend::Exact);
        let pb = perplexity(&b, &eval, &Backend::Exact);
        assert!((pq - pb).abs() < 1e-9, "{pq} vs {pb}");
    }

    #[test]
    fn capture_orientation() {
        let (t, calib, _) = setup();
        let acts = capture_activations(&t, &calib);
        assert_eq!(acts.len(), 12);
        // wq input: d × samples.
        assert_eq!(acts[0].rows(), 48);
        assert_eq!(acts[0].cols(), 2 * 10);
        // fc2 input: ffn × samples.
        assert_eq!(acts[5].rows(), 192);
    }
}
