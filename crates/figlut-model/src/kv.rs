//! Paged KV storage: a refcounted [`BlockPool`], per-session block tables,
//! copy-on-write prefix sharing, and preempt-to-host swap images.
//!
//! The serving layer's original [`KvCache`] stored each session's K/V rows
//! contiguously, so N sessions sharing a system-prompt prefix stored N full
//! copies and the only memory-pressure valve was killing a session. This
//! module replaces the representation with vLLM-style block-table paging
//! while keeping the *numerics* untouched:
//!
//! * **Blocks.** A [`BlockPool`] owns fixed-size blocks (`block_size`
//!   positions × all layers × K and V rows), refcounted and recycled
//!   through a free list. Allocation order is deterministic (LIFO free
//!   list), so every run is bit-reproducible.
//! * **Block tables.** A paged [`KvCache`] maps logical positions to
//!   blocks. The attention gather in
//!   [`crate::transformer::Transformer::forward_batch`] reads K/V rows
//!   *by logical position* through a crate-internal `LayerView`, so the stored `f64`
//!   values and the read order — and therefore every downstream bit — are
//!   identical to the contiguous layout.
//! * **Prefix sharing (storage-level, copy-on-write).** A
//!   [`PrefixRegistry`] maps prompt prefixes (keyed by an FNV-1a hash,
//!   verified by exact token comparison so collisions are harmless) to the
//!   blocks holding their K/V rows. A new session *adopts* the longest
//!   matching prefix: its table references the shared blocks and its
//!   writes below the adopted length become no-ops — sound because K/V
//!   rows are a deterministic function of the token prefix, so the session
//!   would write bit-identical data (debug builds assert exactly that).
//!   The first write *past* the shared prefix into a still-shared block
//!   triggers copy-on-write. Compute is **not** deduplicated: the adopter
//!   still runs every prompt row through the model, so step sequences,
//!   virtual-clock costs, and energy pricing are unchanged — sharing is a
//!   resident-bytes win only.
//! * **Swap images.** [`KvCache::swap_out`] copies a session's rows to a
//!   host-side [`SwappedKv`] image and frees its blocks;
//!   [`KvCache::restore`] re-allocates and copies back. Contents round-trip
//!   bit-exactly, which is what makes scheduler preemption invisible to
//!   the token stream.
//! * **Checksums (gated).** When [`set_kv_checksums`] turns the pass on,
//!   every block write re-stamps an FNV-1a checksum of the block's K/V
//!   bits and [`KvCache::verify_checksums`] detects silent corruption
//!   (injected through [`KvCache::corrupt_row`] by the serving layer's
//!   fault plans). Off by default; the disabled path is one relaxed atomic
//!   load per site, exactly like the `figlut-trace` counter gate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Global gate for the per-block checksum pass (off by default).
static CHECKSUMS: AtomicBool = AtomicBool::new(false);

/// Turn the per-block KV checksum pass on or off (process-wide).
///
/// Disabled (the default), block writes skip checksum maintenance and
/// [`KvCache::verify_checksums`] vacuously passes — the cost is one relaxed
/// atomic load per site, mirroring the `figlut-trace` counter gate, so the
/// zero-overhead pins and every committed result stay byte-identical.
pub fn set_kv_checksums(enabled: bool) {
    CHECKSUMS.store(enabled, Ordering::Relaxed);
}

/// `true` while the per-block checksum pass is enabled.
#[inline]
pub fn kv_checksums_enabled() -> bool {
    CHECKSUMS.load(Ordering::Relaxed)
}

/// FNV-1a over raw `f64` bit patterns — the per-block checksum kernel.
fn fnv1a_f64(h: &mut u64, data: &[f64]) {
    for &x in data {
        for byte in x.to_bits().to_le_bytes() {
            *h ^= u64::from(byte);
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// One pool block: refcount plus K and V storage for `block_size`
/// positions across every layer (`layers × block_size × d_model` each).
#[derive(Debug)]
struct Block {
    refs: usize,
    keys: Vec<f64>,
    values: Vec<f64>,
    /// FNV-1a over the block's K/V bits, maintained only while
    /// [`kv_checksums_enabled`] — stale (and never read) otherwise.
    sum: u64,
}

#[derive(Debug)]
struct PoolInner {
    block_size: usize,
    layers: usize,
    d_model: usize,
    /// Maximum live (allocated, unfreed) blocks; `None` = unbounded.
    capacity: Option<usize>,
    blocks: Vec<Block>,
    /// Freed slab indices, reused LIFO (deterministic).
    free: Vec<usize>,
    live: usize,
    peak_live: usize,
}

impl PoolInner {
    fn alloc(&mut self) -> usize {
        if let Some(cap) = self.capacity {
            assert!(
                self.live < cap,
                "block pool exhausted ({cap} blocks) — the scheduler must preempt before stepping"
            );
        }
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        match self.free.pop() {
            Some(id) => {
                debug_assert_eq!(self.blocks[id].refs, 0);
                self.blocks[id].refs = 1;
                id
            }
            None => {
                let elems = self.layers * self.block_size * self.d_model;
                self.blocks.push(Block {
                    refs: 1,
                    keys: vec![0.0; elems],
                    values: vec![0.0; elems],
                    sum: 0,
                });
                self.blocks.len() - 1
            }
        }
    }

    /// Recompute block `id`'s checksum over its current contents.
    fn restamp(&mut self, id: usize) {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let b = &self.blocks[id];
        fnv1a_f64(&mut h, &b.keys);
        fnv1a_f64(&mut h, &b.values);
        self.blocks[id].sum = h;
    }

    /// Recompute block `id`'s checksum without storing it.
    fn current_sum(&self, id: usize) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let b = &self.blocks[id];
        fnv1a_f64(&mut h, &b.keys);
        fnv1a_f64(&mut h, &b.values);
        h
    }

    fn ref_inc(&mut self, id: usize) {
        assert!(self.blocks[id].refs > 0, "ref_inc on a freed block");
        self.blocks[id].refs += 1;
    }

    fn ref_dec(&mut self, id: usize) {
        let b = &mut self.blocks[id];
        assert!(b.refs > 0, "double free of KV block {id}");
        b.refs -= 1;
        if b.refs == 0 {
            self.live -= 1;
            self.free.push(id);
        }
    }

    /// Flat offset of `(layer, position-in-block)` row starts.
    fn row_off(&self, li: usize, off: usize) -> usize {
        (li * self.block_size + off) * self.d_model
    }
}

/// A shared, refcounted pool of fixed-size KV blocks.
///
/// Cloning the handle is cheap (it shares the pool). All operations are
/// deterministic: the free list is LIFO, so identical operation sequences
/// produce identical block placements — and block placement never affects
/// values anyway, since reads go by logical position.
#[derive(Clone, Debug)]
pub struct BlockPool {
    inner: Arc<Mutex<PoolInner>>,
}

impl BlockPool {
    /// A pool of blocks holding `block_size` positions for a model with
    /// `layers` layers of width `d_model`, optionally capped at `capacity`
    /// live blocks.
    ///
    /// # Panics
    ///
    /// Panics on a zero `block_size`, `layers`, `d_model`, or capacity.
    pub fn new(block_size: usize, layers: usize, d_model: usize, capacity: Option<usize>) -> Self {
        assert!(block_size >= 1, "block_size must be at least 1");
        assert!(layers >= 1 && d_model >= 1, "degenerate model shape");
        if let Some(cap) = capacity {
            assert!(cap >= 1, "pool capacity must be at least 1");
        }
        Self {
            inner: Arc::new(Mutex::new(PoolInner {
                block_size,
                layers,
                d_model,
                capacity,
                blocks: Vec::new(),
                free: Vec::new(),
                live: 0,
                peak_live: 0,
            })),
        }
    }

    /// A pool shaped for `cfg` (its layer count and hidden width).
    pub fn for_model(
        cfg: &crate::transformer::ModelConfig,
        block_size: usize,
        capacity: Option<usize>,
    ) -> Self {
        Self::new(block_size, cfg.layers, cfg.d_model, capacity)
    }

    fn lock(&self) -> MutexGuard<'_, PoolInner> {
        // Recover from poisoning: a panic mid-operation (e.g. the capacity
        // assert) must not cascade into aborts when caches drop during
        // unwinding. Pool bookkeeping is updated before any panic point.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Positions per block.
    pub fn block_size(&self) -> usize {
        self.lock().block_size
    }

    /// Decoder layers the pool stores rows for.
    pub fn layers(&self) -> usize {
        self.lock().layers
    }

    /// Hidden width of a cached row.
    pub fn d_model(&self) -> usize {
        self.lock().d_model
    }

    /// Live (allocated, unfreed) blocks right now.
    pub fn live_blocks(&self) -> usize {
        self.lock().live
    }

    /// High-water mark of live blocks over the pool's lifetime.
    pub fn peak_live_blocks(&self) -> usize {
        self.lock().peak_live
    }

    /// The live-block cap, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.lock().capacity
    }

    /// Live blocks that can still be allocated (`usize::MAX` when
    /// unbounded).
    pub fn available_blocks(&self) -> usize {
        let p = self.lock();
        p.capacity.map_or(usize::MAX, |c| c - p.live)
    }

    /// Host bytes of one block's K+V storage (`2 × layers × block_size ×
    /// d_model` f64 values).
    pub fn bytes_per_block(&self) -> usize {
        let p = self.lock();
        2 * p.layers * p.block_size * p.d_model * std::mem::size_of::<f64>()
    }
}

/// A paged KV cache: a block table into a [`BlockPool`].
///
/// `lens[li]` counts the rows layer `li` has written (layers advance in
/// order within one forward step, so lengths differ by at most one row
/// mid-step and are equal between steps). `shared_len` marks the adopted
/// prefix: writes below it are no-ops against already-shared data.
#[derive(Debug)]
pub struct PagedKv {
    pool: BlockPool,
    table: Vec<usize>,
    lens: Vec<usize>,
    shared_len: usize,
}

impl PagedKv {
    fn block_size(&self) -> usize {
        // Cached nowhere: one lock per query keeps the struct minimal and
        // these paths are far from hot.
        self.pool.block_size()
    }

    fn len(&self) -> usize {
        self.lens.first().copied().unwrap_or(0)
    }

    /// Copy-on-write: give this table a private copy of block `b`,
    /// carrying over every row a layer has validly written into it.
    fn cow(&mut self, b: usize) {
        let mut p = self.pool.lock();
        let old = self.table[b];
        if p.blocks[old].refs == 1 {
            return;
        }
        figlut_trace::counters::bump_kv_cow_copies(1);
        let new = p.alloc();
        let bs = p.block_size;
        let d = p.d_model;
        for (li, &len) in self.lens.iter().enumerate() {
            // Rows below `shared_len` are valid in *every* layer (the
            // prefix owner wrote them all), even while this session's own
            // per-layer cursors still lag behind mid-step.
            let rows = len.max(self.shared_len).saturating_sub(b * bs).min(bs);
            if rows == 0 {
                continue;
            }
            let lo = p.row_off(li, 0);
            let hi = lo + rows * d;
            let (keys, values) = {
                let src = &p.blocks[old];
                (src.keys[lo..hi].to_vec(), src.values[lo..hi].to_vec())
            };
            let dst = &mut p.blocks[new];
            dst.keys[lo..hi].copy_from_slice(&keys);
            dst.values[lo..hi].copy_from_slice(&values);
        }
        if kv_checksums_enabled() {
            p.restamp(new);
        }
        p.ref_dec(old);
        self.table[b] = new;
    }

    fn push_row(&mut self, li: usize, k: &[f64], v: &[f64]) {
        let pos = self.lens[li];
        if pos < self.shared_len {
            // Adopted prefix: the row is already stored (bit-identical by
            // determinism — the adopter computes the same K/V from the
            // same token prefix). Debug builds verify the claim.
            #[cfg(debug_assertions)]
            {
                let p = self.pool.lock();
                let (b, off) = (pos / p.block_size, pos % p.block_size);
                let lo = p.row_off(li, off);
                let blk = &p.blocks[self.table[b]];
                debug_assert_eq!(
                    &blk.keys[lo..lo + p.d_model],
                    k,
                    "shared-prefix K row diverged at layer {li} pos {pos}"
                );
                debug_assert_eq!(
                    &blk.values[lo..lo + p.d_model],
                    v,
                    "shared-prefix V row diverged at layer {li} pos {pos}"
                );
            }
            self.lens[li] += 1;
            return;
        }
        let bs = self.block_size();
        let (b, off) = (pos / bs, pos % bs);
        if b == self.table.len() {
            let id = self.pool.lock().alloc();
            self.table.push(id);
        } else {
            self.cow(b);
        }
        let mut p = self.pool.lock();
        let lo = p.row_off(li, off);
        let d = p.d_model;
        let blk = &mut p.blocks[self.table[b]];
        blk.keys[lo..lo + d].copy_from_slice(k);
        blk.values[lo..lo + d].copy_from_slice(v);
        if kv_checksums_enabled() {
            p.restamp(self.table[b]);
        }
        drop(p);
        self.lens[li] += 1;
    }

    /// Materialize layer `li`'s rows (bounded by that layer's length) into
    /// flat owned storage for the attention gather.
    fn gather_layer(&self, li: usize) -> (Vec<f64>, Vec<f64>, usize) {
        let p = self.pool.lock();
        let (bs, d) = (p.block_size, p.d_model);
        let len = self.lens[li];
        let mut keys = Vec::with_capacity(len * d);
        let mut values = Vec::with_capacity(len * d);
        for pos in 0..len {
            let lo = p.row_off(li, pos % bs);
            let blk = &p.blocks[self.table[pos / bs]];
            keys.extend_from_slice(&blk.keys[lo..lo + d]);
            values.extend_from_slice(&blk.values[lo..lo + d]);
        }
        (keys, values, d)
    }

    fn release(&mut self) {
        let mut p = self.pool.lock();
        for &id in &self.table {
            p.ref_dec(id);
        }
        drop(p);
        self.table.clear();
    }
}

impl Clone for PagedKv {
    fn clone(&self) -> Self {
        let mut p = self.pool.lock();
        for &id in &self.table {
            p.ref_inc(id);
        }
        drop(p);
        Self {
            pool: self.pool.clone(),
            table: self.table.clone(),
            lens: self.lens.clone(),
            shared_len: self.shared_len,
        }
    }
}

impl Drop for PagedKv {
    fn drop(&mut self) {
        self.release();
    }
}

/// A preempted session's KV contents, copied to host memory. Restoring
/// copies the same bits back into freshly allocated blocks, so a
/// preempt/restore round trip is invisible to the session's numerics.
#[derive(Clone, Debug)]
pub struct SwappedKv {
    pool: BlockPool,
    len: usize,
    /// `[layer][position][d_model]`, flattened.
    keys: Vec<f64>,
    values: Vec<f64>,
}

/// One side (K or V) of a materialized cache: `[layer][position][d_model]`.
pub type KvSnapshot = Vec<Vec<Vec<f64>>>;

/// Per-layer cached key/value rows for incremental decoding.
///
/// Three representations share one interface: the original contiguous
/// per-session storage (the default — byte-for-byte the pre-paging
/// behavior), a paged block table into a shared [`BlockPool`], and a
/// host-side swap image of a preempted session. All three expose logical
/// positions; the transformer's attention never sees which one it reads.
#[derive(Clone, Debug)]
pub enum KvCache {
    /// Contiguous per-session storage (`[layer][position][d_model]`).
    Contiguous {
        /// Cached key rows.
        keys: Vec<Vec<Vec<f64>>>,
        /// Cached value rows.
        values: Vec<Vec<Vec<f64>>>,
    },
    /// A block table into a shared [`BlockPool`].
    Paged(PagedKv),
    /// Swapped out to host: contents preserved, no blocks held. Stepping a
    /// session in this state is a scheduler bug and panics.
    Swapped(SwappedKv),
}

impl Default for KvCache {
    fn default() -> Self {
        KvCache::Contiguous {
            keys: Vec::new(),
            values: Vec::new(),
        }
    }
}

/// Read-only view of one layer's K/V rows for the attention gather —
/// borrowed in place for contiguous caches, materialized for paged ones.
/// Either way, `key(pos)`/`value(pos)` return the identical `f64` rows in
/// the identical order, which is the whole bit-identity argument.
pub(crate) enum LayerView<'a> {
    Borrowed {
        keys: &'a [Vec<f64>],
        values: &'a [Vec<f64>],
    },
    Owned {
        keys: Vec<f64>,
        values: Vec<f64>,
        d: usize,
    },
}

impl LayerView<'_> {
    #[inline]
    pub(crate) fn key(&self, pos: usize) -> &[f64] {
        match self {
            LayerView::Borrowed { keys, .. } => &keys[pos],
            LayerView::Owned { keys, d, .. } => &keys[pos * d..(pos + 1) * d],
        }
    }

    #[inline]
    pub(crate) fn value(&self, pos: usize) -> &[f64] {
        match self {
            LayerView::Borrowed { values, .. } => &values[pos],
            LayerView::Owned { values, d, .. } => &values[pos * d..(pos + 1) * d],
        }
    }
}

impl KvCache {
    /// An empty contiguous cache for a `layers`-layer model.
    pub fn contiguous(layers: usize) -> Self {
        KvCache::Contiguous {
            keys: vec![Vec::new(); layers],
            values: vec![Vec::new(); layers],
        }
    }

    /// An empty paged cache drawing blocks from `pool`.
    pub fn paged(pool: &BlockPool) -> Self {
        let layers = pool.layers();
        KvCache::Paged(PagedKv {
            pool: pool.clone(),
            table: Vec::new(),
            lens: vec![0; layers],
            shared_len: 0,
        })
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        match self {
            KvCache::Contiguous { keys, .. } => keys.first().map_or(0, Vec::len),
            KvCache::Paged(p) => p.len(),
            KvCache::Swapped(s) => s.len,
        }
    }

    /// `true` if nothing has been decoded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` for a preempted (host-resident) cache.
    pub fn is_swapped(&self) -> bool {
        matches!(self, KvCache::Swapped(_))
    }

    /// Blocks this cache currently holds in its pool (0 for contiguous and
    /// swapped caches).
    pub fn resident_blocks(&self) -> usize {
        match self {
            KvCache::Paged(p) => p.table.len(),
            _ => 0,
        }
    }

    /// Pool blocks that appending `rows` more positions will allocate
    /// (fresh tail blocks plus a copy-on-write of a still-shared block the
    /// first private write lands in). Contiguous caches never allocate; a
    /// swapped cache cannot append (see [`KvCache::restore_blocks`]).
    ///
    /// The estimate is exact at call time and can only over-count later
    /// (a shared block's refcount may drop before the write, skipping the
    /// copy) — safe for capacity planning, never under-reserving.
    pub fn blocks_needed(&self, rows: usize) -> usize {
        let KvCache::Paged(p) = self else { return 0 };
        let start = p.len().max(p.shared_len);
        let end = p.len() + rows;
        if start >= end {
            return 0;
        }
        let bs = p.block_size();
        let pool = p.pool.lock();
        (start / bs..=(end - 1) / bs)
            .filter(|&b| b >= p.table.len() || pool.blocks[p.table[b]].refs > 1)
            .count()
    }

    /// Blocks a swapped cache needs to [`restore`](KvCache::restore)
    /// (0 for resident caches).
    pub fn restore_blocks(&self) -> usize {
        match self {
            KvCache::Swapped(s) => s.len.div_ceil(self.block_size_of()),
            _ => 0,
        }
    }

    fn block_size_of(&self) -> usize {
        match self {
            KvCache::Paged(p) => p.block_size(),
            KvCache::Swapped(s) => s.pool.block_size(),
            KvCache::Contiguous { .. } => panic!("contiguous cache has no block size"),
        }
    }

    /// Preempt: copy every cached row to a host-side image and free the
    /// blocks. Returns the number of positions copied (the swap traffic,
    /// in KV rows).
    ///
    /// # Panics
    ///
    /// Panics on a contiguous or already-swapped cache, or mid-step (when
    /// layers disagree on length).
    pub fn swap_out(&mut self) -> usize {
        let KvCache::Paged(p) = self else {
            panic!("swap_out on a non-paged cache");
        };
        let len = p.len();
        assert!(
            p.lens.iter().all(|&l| l == len),
            "swap_out mid-step: layer lengths disagree"
        );
        let (layers, d) = {
            let pool = p.pool.lock();
            (pool.layers, pool.d_model)
        };
        let mut keys = Vec::with_capacity(layers * len * d);
        let mut values = Vec::with_capacity(layers * len * d);
        for li in 0..layers {
            let (k, v, _) = p.gather_layer(li);
            keys.extend_from_slice(&k);
            values.extend_from_slice(&v);
        }
        let image = SwappedKv {
            pool: p.pool.clone(),
            len,
            keys,
            values,
        };
        p.release();
        *self = KvCache::Swapped(image);
        figlut_trace::counters::bump_kv_swap_out_rows(len as u64);
        len
    }

    /// Re-admit a preempted cache: allocate fresh blocks and copy the host
    /// image back, bit-exactly. Any prefix sharing the session had before
    /// preemption is not re-established (its blocks are private now).
    /// Returns the number of positions copied.
    ///
    /// # Panics
    ///
    /// Panics on a cache that is not swapped out.
    pub fn restore(&mut self) -> usize {
        let KvCache::Swapped(s) = self else {
            panic!("restore on a cache that is not swapped out");
        };
        let len = s.len;
        let mut paged = PagedKv {
            pool: s.pool.clone(),
            table: Vec::new(),
            lens: vec![0; s.pool.layers()],
            shared_len: 0,
        };
        {
            let mut pool = paged.pool.lock();
            let (bs, d, layers) = (pool.block_size, pool.d_model, pool.layers);
            for _ in 0..len.div_ceil(bs) {
                let id = pool.alloc();
                paged.table.push(id);
            }
            for li in 0..layers {
                for pos in 0..len {
                    let src = (li * len + pos) * d;
                    let lo = pool.row_off(li, pos % bs);
                    let (keys, values) = (
                        s.keys[src..src + d].to_vec(),
                        s.values[src..src + d].to_vec(),
                    );
                    let blk = &mut pool.blocks[paged.table[pos / bs]];
                    blk.keys[lo..lo + d].copy_from_slice(&keys);
                    blk.values[lo..lo + d].copy_from_slice(&values);
                }
            }
            if kv_checksums_enabled() {
                for &id in &paged.table {
                    pool.restamp(id);
                }
            }
        }
        paged.lens = vec![len; paged.lens.len()];
        *self = KvCache::Paged(paged);
        figlut_trace::counters::bump_kv_swap_in_rows(len as u64);
        len
    }

    /// Append layer `li`'s K/V row at that layer's current position.
    pub(crate) fn push_row(&mut self, li: usize, k: &[f64], v: &[f64]) {
        match self {
            KvCache::Contiguous { keys, values } => {
                keys[li].push(k.to_vec());
                values[li].push(v.to_vec());
            }
            KvCache::Paged(p) => p.push_row(li, k, v),
            KvCache::Swapped(_) => {
                panic!("KV write to a swapped-out cache — restore before stepping")
            }
        }
    }

    /// The attention gather's view of layer `li`.
    pub(crate) fn layer_view(&self, li: usize) -> LayerView<'_> {
        match self {
            KvCache::Contiguous { keys, values } => LayerView::Borrowed {
                keys: &keys[li],
                values: &values[li],
            },
            KvCache::Paged(p) => {
                let (keys, values, d) = p.gather_layer(li);
                LayerView::Owned { keys, values, d }
            }
            KvCache::Swapped(_) => {
                panic!("KV read from a swapped-out cache — restore before stepping")
            }
        }
    }

    /// Verify every resident block's stored checksum against its current
    /// contents: `Err(table_index)` names the first corrupted block.
    ///
    /// Vacuously `Ok` while the pass is disabled (see [`set_kv_checksums`])
    /// and for contiguous or swapped caches (host images are never silently
    /// mutated in this model). A detected mismatch bumps the
    /// `kv_checksum_faults` trace counter.
    pub fn verify_checksums(&self) -> Result<(), usize> {
        if !kv_checksums_enabled() {
            return Ok(());
        }
        let KvCache::Paged(p) = self else {
            return Ok(());
        };
        let pool = p.pool.lock();
        for (b, &id) in p.table.iter().enumerate() {
            if pool.current_sum(id) != pool.blocks[id].sum {
                figlut_trace::counters::bump_kv_checksum_faults(1);
                return Err(b);
            }
        }
        Ok(())
    }

    /// Fault-injection support: silently flip one stored bit (the mantissa
    /// LSB of one cached `f64`, chosen deterministically from `salt`)
    /// *without* re-stamping the block's checksum — modelling a device-side
    /// upset that only [`KvCache::verify_checksums`] can catch. Returns
    /// `false` (and injects nothing) on non-paged or empty caches.
    ///
    /// Callers must only corrupt caches whose blocks are private (e.g. a
    /// freshly restored session); corrupting a shared block would alias the
    /// fault into innocent sessions.
    pub fn corrupt_row(&mut self, salt: u64) -> bool {
        let KvCache::Paged(p) = self else {
            return false;
        };
        let len = p.len();
        if len == 0 {
            return false;
        }
        let mut pool = p.pool.lock();
        let (bs, d, layers) = (pool.block_size, pool.d_model, pool.layers);
        let pos = salt as usize % len;
        let li = (salt >> 16) as usize % layers;
        let j = (salt >> 32) as usize % d;
        let lo = pool.row_off(li, pos % bs);
        let blk = &mut pool.blocks[p.table[pos / bs]];
        let bits = blk.keys[lo + j].to_bits();
        blk.keys[lo + j] = f64::from_bits(bits ^ 1);
        true
    }

    /// Re-target a swapped-out cache at `pool`, so a checkpointed host
    /// image can be restored into a fresh pool after the pool that wrote
    /// it died with a crashed run.
    ///
    /// # Panics
    ///
    /// Panics on a resident cache or when `pool`'s shape (block size,
    /// layers, width) differs from the image's original pool.
    pub fn rebind_pool(&mut self, pool: &BlockPool) {
        let KvCache::Swapped(s) = self else {
            panic!("rebind_pool on a cache that is not swapped out");
        };
        assert!(
            s.pool.block_size() == pool.block_size()
                && s.pool.layers() == pool.layers()
                && s.pool.d_model() == pool.d_model(),
            "rebind_pool across differently shaped pools"
        );
        s.pool = pool.clone();
    }

    /// Materialize the full contents as `([layer][pos][d] keys, values)` —
    /// representation-independent, for tests and differential checks.
    pub fn snapshot(&self) -> (KvSnapshot, KvSnapshot) {
        match self {
            KvCache::Contiguous { keys, values } => (keys.clone(), values.clone()),
            KvCache::Paged(p) => {
                let layers = p.lens.len();
                let mut keys = Vec::with_capacity(layers);
                let mut values = Vec::with_capacity(layers);
                for li in 0..layers {
                    let (k, v, d) = p.gather_layer(li);
                    keys.push(k.chunks(d).map(<[f64]>::to_vec).collect());
                    values.push(v.chunks(d).map(<[f64]>::to_vec).collect());
                }
                (keys, values)
            }
            KvCache::Swapped(s) => {
                let d = {
                    let pool = s.pool.lock();
                    pool.d_model
                };
                let layers = s.keys.len() / (s.len * d).max(1);
                let per_layer = s.len * d;
                let split = |flat: &[f64]| {
                    (0..layers)
                        .map(|li| {
                            flat[li * per_layer..(li + 1) * per_layer]
                                .chunks(d)
                                .map(<[f64]>::to_vec)
                                .collect()
                        })
                        .collect()
                };
                (split(&s.keys), split(&s.values))
            }
        }
    }
}

/// FNV-1a over token ids — a stable, dependency-free prefix key. Entries
/// are verified by exact token comparison, so a collision can never alias
/// two different prefixes.
fn fnv1a(tokens: &[usize]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &t in tokens {
        for byte in (t as u64).to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[derive(Debug)]
struct PrefixEntry {
    hash: u64,
    tokens: Vec<usize>,
    blocks: Vec<usize>,
}

/// Registered prompt prefixes and the blocks that hold their K/V rows.
///
/// The registry holds its own references on registered blocks, so a prefix
/// outlives the session that computed it and later sessions can adopt it.
/// Registration keeps only *whole* blocks (`⌊len/block_size⌋·block_size`
/// tokens), so a registered block is never written again and adopters'
/// first private append lands in a fresh block, not a copy-on-write.
/// Under pool pressure the scheduler evicts entries oldest-first.
#[derive(Debug)]
pub struct PrefixRegistry {
    pool: BlockPool,
    entries: Vec<PrefixEntry>,
}

impl PrefixRegistry {
    /// An empty registry over `pool`.
    pub fn new(pool: &BlockPool) -> Self {
        Self {
            pool: pool.clone(),
            entries: Vec::new(),
        }
    }

    /// Registered prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Register the whole-block prefix of `tokens` as stored in `cache`
    /// (a paged cache that has consumed at least that many positions).
    /// No-ops on contiguous/swapped caches, prefixes shorter than one
    /// block, and exact duplicates.
    pub fn register(&mut self, tokens: &[usize], cache: &KvCache) {
        let KvCache::Paged(p) = cache else { return };
        let bs = p.block_size();
        let keep = tokens.len() / bs * bs;
        if keep == 0 || p.len() < keep {
            return;
        }
        let tokens = &tokens[..keep];
        let hash = fnv1a(tokens);
        if self
            .entries
            .iter()
            .any(|e| e.hash == hash && e.tokens == tokens)
        {
            return;
        }
        let blocks = p.table[..keep / bs].to_vec();
        let mut pool = self.pool.lock();
        for &id in &blocks {
            pool.ref_inc(id);
        }
        drop(pool);
        self.entries.push(PrefixEntry {
            hash,
            tokens: tokens.to_vec(),
            blocks,
        });
    }

    /// The longest registered prefix of `tokens`: `(entry, matched
    /// positions)`, ties broken toward the oldest entry. `None` when no
    /// entry shares even one leading token.
    fn lookup(&self, tokens: &[usize]) -> Option<(usize, usize)> {
        let mut best: Option<(usize, usize)> = None;
        for (i, e) in self.entries.iter().enumerate() {
            let m = e
                .tokens
                .iter()
                .zip(tokens)
                .take_while(|(a, b)| a == b)
                .count();
            if m >= 1 && best.is_none_or(|(_, bm)| m > bm) {
                best = Some((i, m));
            }
        }
        best
    }

    /// Adopt the longest registered prefix of `prompt` into a fresh paged
    /// `cache`: the table references the shared blocks and writes below
    /// the adopted length become no-ops. Returns the adopted positions
    /// (0 when nothing matched).
    ///
    /// # Panics
    ///
    /// Panics if `cache` is not an empty paged cache.
    pub fn adopt_into(&self, prompt: &[usize], cache: &mut KvCache) -> usize {
        let KvCache::Paged(p) = cache else {
            panic!("prefix adoption into a non-paged cache");
        };
        assert!(
            p.table.is_empty() && p.len() == 0,
            "prefix adoption into a non-empty cache"
        );
        let Some((idx, m)) = self.lookup(prompt) else {
            return 0;
        };
        let bs = p.block_size();
        let blocks = &self.entries[idx].blocks[..m.div_ceil(bs)];
        let mut pool = self.pool.lock();
        for &id in blocks {
            pool.ref_inc(id);
        }
        drop(pool);
        p.table = blocks.to_vec();
        p.shared_len = m;
        m
    }

    /// Drop the oldest entry, releasing its block references (blocks no
    /// session still shares return to the free list). Returns `false`
    /// when the registry was already empty.
    pub fn evict_oldest(&mut self) -> bool {
        if self.entries.is_empty() {
            return false;
        }
        let e = self.entries.remove(0);
        let mut pool = self.pool.lock();
        for &id in &e.blocks {
            pool.ref_dec(id);
        }
        true
    }

    /// Release every entry.
    pub fn clear(&mut self) {
        while self.evict_oldest() {}
    }
}

impl Drop for PrefixRegistry {
    fn drop(&mut self) {
        self.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(bs: usize) -> BlockPool {
        BlockPool::new(bs, 2, 4, None)
    }

    fn krow(li: usize, pos: usize) -> Vec<f64> {
        (0..4).map(|j| (li * 1000 + pos * 10 + j) as f64).collect()
    }

    fn vrow(li: usize, pos: usize) -> Vec<f64> {
        krow(li, pos).iter().map(|x| -x).collect()
    }

    /// Push `n` positions (both layers) into `c`.
    fn fill(c: &mut KvCache, from: usize, n: usize) {
        for li in 0..2 {
            for pos in from..from + n {
                c.push_row(li, &krow(li, pos), &vrow(li, pos));
            }
        }
    }

    #[test]
    fn paged_rows_read_back_identically_across_block_sizes() {
        let mut reference = KvCache::contiguous(2);
        fill(&mut reference, 0, 11);
        for bs in [1usize, 2, 3, 7, 16] {
            let p = pool(bs);
            let mut c = KvCache::paged(&p);
            fill(&mut c, 0, 11);
            assert_eq!(c.len(), 11);
            assert_eq!(c.snapshot(), reference.snapshot(), "bs={bs}");
            assert_eq!(c.resident_blocks(), 11usize.div_ceil(bs));
        }
    }

    #[test]
    fn clone_shares_blocks_and_cow_diverges_privately() {
        let p = pool(4);
        let mut a = KvCache::paged(&p);
        fill(&mut a, 0, 6); // blocks: [0..4), [4..6)
        let base = p.live_blocks();
        let mut b = a.clone();
        assert_eq!(p.live_blocks(), base, "clone must not allocate");
        // Appending through the clone copies the shared tail block first.
        fill(&mut b, 6, 1);
        assert_eq!(p.live_blocks(), base + 1, "COW of the shared tail block");
        let (ak, _) = a.snapshot();
        let (bk, _) = b.snapshot();
        assert_eq!(ak[0].len(), 6);
        assert_eq!(bk[0].len(), 7);
        assert_eq!(ak[0], bk[0][..6], "shared prefix contents preserved");
        // Divergent appends stay private.
        fill(&mut a, 6, 1);
        let (ak2, _) = a.snapshot();
        assert_eq!(ak2[0][6], krow(0, 6));
        drop(a);
        drop(b);
        assert_eq!(p.live_blocks(), 0, "all blocks returned");
    }

    #[test]
    fn swap_roundtrip_is_bit_exact_and_frees_blocks() {
        let p = pool(3);
        let mut c = KvCache::paged(&p);
        fill(&mut c, 0, 8);
        let snap = c.snapshot();
        let rows = c.swap_out();
        assert_eq!(rows, 8);
        assert!(c.is_swapped());
        assert_eq!(p.live_blocks(), 0, "swap-out frees every block");
        assert_eq!(c.len(), 8, "logical length survives the swap");
        assert_eq!(c.restore_blocks(), 3);
        let back = c.restore();
        assert_eq!(back, 8);
        assert!(!c.is_swapped());
        assert_eq!(c.snapshot(), snap, "restore must be bit-exact");
        // The restored session keeps decoding normally.
        fill(&mut c, 8, 1);
        assert_eq!(c.len(), 9);
    }

    #[test]
    fn capacity_is_enforced_and_peak_tracked() {
        let p = BlockPool::new(2, 2, 4, Some(3));
        let mut c = KvCache::paged(&p);
        fill(&mut c, 0, 6); // exactly 3 blocks
        assert_eq!(p.available_blocks(), 0);
        assert_eq!(p.peak_live_blocks(), 3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut d = KvCache::paged(&p);
            d.push_row(0, &krow(0, 0), &vrow(0, 0));
        }));
        assert!(result.is_err(), "allocation beyond capacity must panic");
    }

    #[test]
    fn registry_shares_whole_block_prefixes_and_conserves_refs() {
        let p = pool(4);
        let mut reg = PrefixRegistry::new(&p);
        let prompt: Vec<usize> = (0..10).collect();
        let mut a = KvCache::paged(&p);
        fill(&mut a, 0, 10);
        reg.register(&prompt, &a);
        assert_eq!(reg.len(), 1);
        // Re-registering the same prefix is a no-op.
        reg.register(&prompt, &a);
        assert_eq!(reg.len(), 1);
        // An adopter sharing 10 prompt tokens adopts the 8 whole-block
        // positions and stores nothing new below them.
        let mut b = KvCache::paged(&p);
        let adopted = reg.adopt_into(&prompt, &mut b);
        assert_eq!(adopted, 8);
        let before = p.live_blocks();
        fill(&mut b, 0, 10); // rows 0..8 are no-op writes; 8..10 allocate
        assert_eq!(
            p.live_blocks(),
            before + 1,
            "only the private tail allocates"
        );
        assert_eq!(a.snapshot(), b.snapshot(), "adopted contents identical");
        // Dropping sessions leaves only the registry's references.
        drop(a);
        drop(b);
        assert_eq!(p.live_blocks(), 2);
        reg.clear();
        assert_eq!(p.live_blocks(), 0, "registry eviction frees the prefix");
    }

    #[test]
    fn adoption_prefers_the_longest_match() {
        let p = pool(2);
        let mut reg = PrefixRegistry::new(&p);
        let short: Vec<usize> = vec![1, 2];
        let long: Vec<usize> = vec![1, 2, 3, 4, 5, 6];
        for prompt in [&short, &long] {
            let mut c = KvCache::paged(&p);
            fill(&mut c, 0, prompt.len());
            reg.register(prompt, &c);
        }
        let mut c = KvCache::paged(&p);
        assert_eq!(reg.adopt_into(&[1, 2, 3, 4, 9], &mut c), 4);
        // A diverging prompt still shares its common head.
        let mut d = KvCache::paged(&p);
        assert_eq!(reg.adopt_into(&[1, 2, 9], &mut d), 2);
        // No shared head, no adoption.
        let mut e = KvCache::paged(&p);
        assert_eq!(reg.adopt_into(&[7, 7], &mut e), 0);
    }

    #[test]
    fn blocks_needed_is_exact_for_fresh_shared_and_adopted_tables() {
        let p = pool(4);
        let mut a = KvCache::paged(&p);
        assert_eq!(a.blocks_needed(9), 3);
        fill(&mut a, 0, 9);
        assert_eq!(a.blocks_needed(3), 0, "room left in the tail block");
        assert_eq!(a.blocks_needed(4), 1);
        let b = a.clone();
        // The tail block is shared now: the next append must COW it.
        assert_eq!(a.blocks_needed(1), 1, "COW counts as an allocation");
        drop(b);
        assert_eq!(a.blocks_needed(1), 0, "sole owner again");
        assert_eq!(KvCache::contiguous(2).blocks_needed(100), 0);
    }

    #[test]
    fn cow_mid_step_preserves_shared_rows_for_lagging_layers() {
        // The model writes layer 0's rows before layer 1 touches anything,
        // so the copy-on-write a partial-block adoption triggers fires
        // while layer 1's cursor is still 0 — the shared rows must survive
        // for every layer regardless.
        let p = pool(3);
        let mut owner = KvCache::paged(&p);
        fill(&mut owner, 0, 4);
        let mut reg = PrefixRegistry::new(&p);
        reg.register(&[7, 8, 9, 1], &owner); // whole-block prefix: 3 rows
        let mut adopter = KvCache::paged(&p);
        assert_eq!(reg.adopt_into(&[7, 5], &mut adopter), 1);
        // Layer 0 in full, like a prefill pass: the shared no-op at pos 0,
        // then the private write at pos 1 that forces the COW.
        adopter.push_row(0, &krow(0, 0), &vrow(0, 0));
        adopter.push_row(0, &krow(0, 9), &vrow(0, 9));
        // Now layer 1 reaches pos 0: the copied block must still hold the
        // owner's layer-1 row (the shared-prefix debug assert checks it).
        adopter.push_row(1, &krow(1, 0), &vrow(1, 0));
        adopter.push_row(1, &krow(1, 9), &vrow(1, 9));
        let (k, v) = adopter.snapshot();
        assert_eq!(k[1][0], krow(1, 0));
        assert_eq!(v[1][0], vrow(1, 0));
        assert_eq!(k[0][1], krow(0, 9));
    }

    #[test]
    fn pool_mutex_poison_recovers_and_refcounts_conserve() {
        let p = BlockPool::new(2, 2, 4, Some(2));
        let mut keep = KvCache::paged(&p);
        fill(&mut keep, 0, 4); // pool full: 2 blocks live
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut d = KvCache::paged(&p);
            // The capacity assert fires while the pool mutex is held, so
            // the unwind leaves it poisoned.
            d.push_row(0, &krow(0, 0), &vrow(0, 0));
        }));
        assert!(poisoned.is_err(), "over-capacity alloc must panic");
        // Every subsequent operation recovers the poisoned lock.
        assert_eq!(p.live_blocks(), 2, "accounting intact after the panic");
        drop(keep);
        assert_eq!(p.live_blocks(), 0, "frees succeed and refcounts conserve");
        let mut c = KvCache::paged(&p);
        fill(&mut c, 0, 4);
        assert_eq!(p.live_blocks(), 2, "allocs succeed after poisoning");
        drop(c);
        assert_eq!(p.live_blocks(), 0);
    }

    #[test]
    fn checksums_detect_injected_corruption_when_enabled() {
        let p = pool(3);
        // Disabled (the default): verify is vacuous even on corrupted data.
        let mut c = KvCache::paged(&p);
        fill(&mut c, 0, 7);
        assert!(c.corrupt_row(99));
        assert_eq!(c.verify_checksums(), Ok(()), "disabled pass never fires");
        drop(c);
        set_kv_checksums(true);
        let mut c = KvCache::paged(&p);
        fill(&mut c, 0, 7);
        assert_eq!(c.verify_checksums(), Ok(()), "clean writes stamp validly");
        // A swap round trip re-stamps the restored blocks.
        let _ = c.swap_out();
        let _ = c.restore();
        assert_eq!(c.verify_checksums(), Ok(()));
        assert!(c.corrupt_row(42));
        assert!(
            c.verify_checksums().is_err(),
            "silent bit flip must be detected"
        );
        set_kv_checksums(false);
        assert_eq!(c.verify_checksums(), Ok(()), "gate turns the pass back off");
    }

    #[test]
    fn swap_images_rebind_and_restore_into_a_fresh_pool() {
        let p = pool(3);
        let mut c = KvCache::paged(&p);
        fill(&mut c, 0, 8);
        let snap = c.snapshot();
        let _ = c.swap_out();
        let fresh = pool(3);
        c.rebind_pool(&fresh);
        let _ = c.restore();
        assert_eq!(p.live_blocks(), 0, "original pool untouched");
        assert_eq!(fresh.live_blocks(), 3, "blocks drawn from the new pool");
        assert_eq!(c.snapshot(), snap, "contents survive the rebind");
    }

    #[test]
    #[should_panic(expected = "differently shaped pools")]
    fn rebind_rejects_mismatched_pool_shapes() {
        let p = pool(3);
        let mut c = KvCache::paged(&p);
        fill(&mut c, 0, 4);
        let _ = c.swap_out();
        c.rebind_pool(&pool(2));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn pool_double_free_panics() {
        let p = pool(2);
        let id = p.lock().alloc();
        p.lock().ref_dec(id);
        p.lock().ref_dec(id);
    }

    #[test]
    #[should_panic(expected = "swapped-out cache")]
    fn writing_a_swapped_cache_panics() {
        let p = pool(2);
        let mut c = KvCache::paged(&p);
        fill(&mut c, 0, 2);
        let _ = c.swap_out();
        c.push_row(0, &krow(0, 2), &vrow(0, 2));
    }
}
