//! Evaluation corpora for the synthetic models.
//!
//! WikiText-2 cannot ship with this reproduction, so the corpus is
//! *self-generated*: the FP teacher model samples its own text. On such a
//! corpus the teacher's perplexity is genuinely low (it is evaluating its
//! own distribution), and any weight perturbation — quantization included —
//! raises it. That is precisely the property the paper's perplexity tables
//! need: a model/dataset pair where quantization damage is measurable and
//! ordered (FP16 < BCQ4 < BCQ3, Table VI).

use crate::rng::Rng;
use crate::transformer::Transformer;

/// A tokenized evaluation set: independent sequences.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Corpus {
    /// Token sequences (each starts with the BOS token 0).
    pub sequences: Vec<Vec<usize>>,
}

impl Corpus {
    /// Total predicted positions (sequence lengths minus the BOS).
    pub fn positions(&self) -> usize {
        self.sequences.iter().map(|s| s.len() - 1).sum()
    }
}

/// Sample `n_seqs` sequences of `len` tokens from the teacher at the given
/// temperature. Deterministic in `seed`.
pub fn generate(teacher: &Transformer, n_seqs: usize, len: usize, seed: u64) -> Corpus {
    let mut rng = Rng::new(seed);
    let sequences = (0..n_seqs)
        .map(|_| teacher.sample(len, 1.0, &mut rng))
        .collect();
    Corpus { sequences }
}

/// Split a corpus into calibration and evaluation halves (GPTQ and
/// ShiftAddLLM calibrate on held-out data).
pub fn split(corpus: &Corpus) -> (Corpus, Corpus) {
    let mid = corpus.sequences.len() / 2;
    (
        Corpus {
            sequences: corpus.sequences[..mid].to_vec(),
        },
        Corpus {
            sequences: corpus.sequences[mid..].to_vec(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transformer::ModelConfig;

    #[test]
    fn generate_is_deterministic() {
        let t = Transformer::teacher(ModelConfig::tiny(), 1);
        let a = generate(&t, 3, 8, 5);
        let b = generate(&t, 3, 8, 5);
        assert_eq!(a, b);
        assert_eq!(a.sequences.len(), 3);
        assert_eq!(a.sequences[0].len(), 9);
        assert_eq!(a.positions(), 24);
    }

    #[test]
    fn split_halves() {
        let t = Transformer::teacher(ModelConfig::tiny(), 1);
        let c = generate(&t, 4, 6, 2);
        let (cal, eval) = split(&c);
        assert_eq!(cal.sequences.len(), 2);
        assert_eq!(eval.sequences.len(), 2);
        assert_ne!(cal.sequences, eval.sequences);
    }
}
