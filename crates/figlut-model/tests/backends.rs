//! Backend-consistency tests: the transformer must produce equivalent
//! results whichever execution backend carries its linear layers.

use figlut_gemm::{Engine, EngineConfig};
use figlut_model::calibrate::{quantize_model, to_bcq, to_packed, Method};
use figlut_model::corpus::generate;
use figlut_model::ppl::perplexity;
use figlut_model::transformer::{Backend, ModelConfig, Transformer};

fn setup() -> (
    Transformer,
    figlut_model::corpus::Corpus,
    figlut_model::corpus::Corpus,
) {
    let t = Transformer::teacher(ModelConfig::tiny(), 55);
    let calib = generate(&t, 2, 10, 3);
    let eval = generate(&t, 3, 12, 4);
    (t, calib, eval)
}

#[test]
fn reference_engine_backend_equals_exact() {
    // Backend::Engine(Reference) rounds activations to the format but does
    // exact math — with FP32 activations it must match Backend::Exact to
    // fp32-rounding precision.
    let (t, calib, eval) = setup();
    let (q, _) = quantize_model(&t, &calib, Method::Rtn { bits: 4 });
    let cfg = EngineConfig::with_act(figlut_num::fp::FpFormat::Fp32);
    let exact = perplexity(&q, &eval, &Backend::Exact);
    let via_engine = perplexity(&q, &eval, &Backend::Engine(Engine::Reference, cfg));
    assert!(
        (via_engine / exact - 1.0).abs() < 1e-4,
        "{via_engine} vs {exact}"
    );
}

#[test]
fn all_bcq_engines_agree_on_quantized_model() {
    let (t, calib, eval) = setup();
    let (q, _) = quantize_model(&t, &calib, Method::ShiftAdd { bits: 3 });
    let cfg = EngineConfig::paper_default();
    let ppls: Vec<f64> = [Engine::Ifpu, Engine::FiglutF, Engine::FiglutI]
        .iter()
        .map(|&e| perplexity(&q, &eval, &Backend::Engine(e, cfg)))
        .collect();
    let exact = perplexity(&q, &eval, &Backend::Exact);
    for (i, p) in ppls.iter().enumerate() {
        assert!(
            (p / exact - 1.0).abs() < 5e-3,
            "engine {i}: ppl {p} vs exact {exact}"
        );
    }
    // iFPU and FIGLUT-I are bit-identical, so their perplexities are equal
    // to the last bit.
    assert_eq!(ppls[0], ppls[2], "iFPU vs FIGLUT-I perplexity");
}

#[test]
fn uniform_engines_agree_on_rtn_model() {
    let (t, calib, eval) = setup();
    let (q, _) = quantize_model(&t, &calib, Method::Rtn { bits: 4 });
    let qb = to_bcq(&q);
    let cfg = EngineConfig::paper_default();
    let p_fpe = perplexity(&q, &eval, &Backend::Engine(Engine::Fpe, cfg));
    let p_figna = perplexity(&q, &eval, &Backend::Engine(Engine::Figna, cfg));
    let p_lut = perplexity(&qb, &eval, &Backend::Engine(Engine::FiglutI, cfg));
    let exact = perplexity(&q, &eval, &Backend::Exact);
    for (name, p) in [("FPE", p_fpe), ("FIGNA", p_figna), ("FIGLUT-I", p_lut)] {
        assert!(
            (p / exact - 1.0).abs() < 5e-3,
            "{name}: {p} vs exact {exact}"
        );
    }
}

#[test]
fn kv_cache_decoding_with_engine_backend() {
    // Incremental decoding must also hold under a hardware-engine backend
    // (the serving path FIGLUT actually runs).
    let (t, calib, _) = setup();
    let (q, _) = quantize_model(&t, &calib, Method::Rtn { bits: 4 });
    let qb = to_bcq(&q);
    let backend = Backend::Engine(Engine::FiglutI, EngineConfig::paper_default());
    let toks = [0usize, 9, 33, 5];
    let full = qb.logits(&toks, &backend);
    let mut cache = qb.new_cache();
    for (pos, &tok) in toks.iter().enumerate() {
        let step = qb.decode_step(tok, &mut cache, &backend);
        for v in 0..step.len() {
            assert!((step[v] - full[(pos, v)]).abs() < 1e-6, "pos={pos} v={v}");
        }
    }
}

#[test]
fn exec_backend_bit_matches_figlut_i_engine() {
    // The packed fast path is the same datapath: perplexity under
    // Backend::Exec equals Backend::Engine(FiglutI) to the last bit, both
    // on a pre-packed model and when packing on the fly.
    let (t, calib, eval) = setup();
    let (q, _) = quantize_model(&t, &calib, Method::ShiftAdd { bits: 3 });
    let cfg = EngineConfig::paper_default();
    let p_model = perplexity(&q, &eval, &Backend::Engine(Engine::FiglutI, cfg));
    let p_exec_fly = perplexity(&q, &eval, &Backend::Exec(cfg));
    let p_exec_packed = perplexity(&to_packed(&q), &eval, &Backend::Exec(cfg));
    assert_eq!(p_model, p_exec_fly, "on-the-fly packing diverged");
    assert_eq!(p_model, p_exec_packed, "pre-packed model diverged");
}

#[test]
fn exec_backend_runs_uniform_models_via_eq3() {
    // Uniform layers go through the lossless Eq. 3 conversion, exactly as
    // to_bcq + FIGLUT-I would.
    let (t, calib, eval) = setup();
    let (q, _) = quantize_model(&t, &calib, Method::Rtn { bits: 4 });
    let cfg = EngineConfig::paper_default();
    let p_engine = perplexity(&to_bcq(&q), &eval, &Backend::Engine(Engine::FiglutI, cfg));
    let p_exec = perplexity(&to_packed(&q), &eval, &Backend::Exec(cfg));
    assert_eq!(p_engine, p_exec);
}

#[test]
fn packed_model_still_serves_every_backend() {
    // A packed model remains usable under Exact (dequantize) and under the
    // datapath models (unpack): same values everywhere.
    let (t, calib, eval) = setup();
    let (q, _) = quantize_model(&t, &calib, Method::ShiftAdd { bits: 3 });
    let qp = to_packed(&q);
    let cfg = EngineConfig::paper_default();
    let exact = perplexity(&q, &eval, &Backend::Exact);
    let exact_packed = perplexity(&qp, &eval, &Backend::Exact);
    assert!((exact_packed / exact - 1.0).abs() < 1e-12);
    let via_model = perplexity(&qp, &eval, &Backend::Engine(Engine::FiglutI, cfg));
    let via_exec = perplexity(&qp, &eval, &Backend::Exec(cfg));
    assert_eq!(via_model, via_exec, "unpacked engine diverged from exec");
}

#[test]
fn exec_backend_decodes_with_kv_cache() {
    let (t, calib, _) = setup();
    let (q, _) = quantize_model(&t, &calib, Method::ShiftAdd { bits: 3 });
    let qp = to_packed(&q);
    let cfg = EngineConfig::paper_default();
    let toks = [0usize, 9, 33, 5];
    let full = qp.logits(&toks, &Backend::Exec(cfg));
    let mut cache = qp.new_cache();
    for (pos, &tok) in toks.iter().enumerate() {
        let step = qp.decode_step(tok, &mut cache, &Backend::Exec(cfg));
        for v in 0..step.len() {
            assert!((step[v] - full[(pos, v)]).abs() < 1e-6, "pos={pos} v={v}");
        }
    }
}

#[test]
fn mixed_precision_model_serves_on_figlut() {
    let (t, calib, eval) = setup();
    let (q, bits) = quantize_model(&t, &calib, Method::ShiftAddMixed { avg_bits: 2.5 });
    assert!(bits.iter().any(|&b| b != bits[0]) || bits[0] != 4);
    let backend = Backend::Engine(Engine::FiglutI, EngineConfig::paper_default());
    let p = perplexity(&q, &eval, &backend);
    assert!(p.is_finite() && p > 1.0);
    // FIGNA cannot serve this model at all: its layers are BCQ.
    let err = std::panic::catch_unwind(|| {
        perplexity(
            &q,
            &eval,
            &Backend::Engine(Engine::Figna, EngineConfig::paper_default()),
        )
    });
    assert!(err.is_err(), "FIGNA must reject BCQ layers (Table I)");
}
