//! Property tests for the serving execution paths: incremental decoding
//! with a KV cache, chunked prefill, and multi-session batched decode must
//! all be **bit-identical** to the teacher-forced full forward pass, for
//! the quantized backends the serving layer actually runs
//! (`Backend::Exec` and `Backend::Engine(FiglutI)`).
//!
//! These equalities are what make `figlut-serve`'s batch-invariance
//! argument a proof rather than a hope: every path below computes each
//! output row with the same per-row operation sequence, so scheduling and
//! batching cannot change a single bit of any session's logits.

use figlut_gemm::{Engine, EngineConfig};
use figlut_model::calibrate::{quantize_model, to_packed, Method};
use figlut_model::corpus::generate;
use figlut_model::transformer::KvCache;
use figlut_model::{Backend, ModelConfig, Transformer};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One quantized + packed tiny model, shared across cases (quantization is
/// the expensive part; the properties only need a fixed model).
fn packed_model() -> &'static Transformer {
    static MODEL: OnceLock<Transformer> = OnceLock::new();
    MODEL.get_or_init(|| {
        let teacher = Transformer::teacher(ModelConfig::tiny(), 55);
        let calib = generate(&teacher, 2, 10, 3);
        let (q, _) = quantize_model(&teacher, &calib, Method::ShiftAdd { bits: 3 });
        to_packed(&q)
    })
}

fn prompt_strategy(max_len: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..96, 1..=max_len)
}

/// Step through `tokens` with a KV cache and assert every logits row is
/// bit-equal to the full teacher-forced forward pass.
fn assert_steps_match_full(model: &Transformer, tokens: &[usize], backend: &Backend) {
    let full = model.logits(tokens, backend);
    let mut cache = model.new_cache();
    for (t, &tok) in tokens.iter().enumerate() {
        let step = model.decode_step(tok, &mut cache, backend);
        assert_eq!(
            step,
            full.row(t),
            "position {t} of {tokens:?} diverged from the full forward"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `decode_step` ≡ full `logits` recompute, bit for bit, on the packed
    /// exec backend — over arbitrary prompts, not the fixed spot-checks of
    /// `tests/backends.rs`.
    #[test]
    fn decode_step_bit_matches_full_logits_exec(prompt in prompt_strategy(10)) {
        let model = packed_model();
        assert_steps_match_full(model, &prompt, &Backend::Exec(EngineConfig::paper_default()));
    }

    /// Any chunking of a prompt through `prefill` produces the same bits
    /// as token-by-token decoding (prefill/decode interleaving is
    /// invisible to the output).
    #[test]
    fn prefill_chunking_bit_invariant(
        prompt in prompt_strategy(10),
        split in 1usize..=10,
    ) {
        let model = packed_model();
        let backend = Backend::Exec(EngineConfig::paper_default());
        let full = model.logits(&prompt, &backend);
        let mut cache = model.new_cache();
        let mut row = 0usize;
        for chunk in prompt.chunks(split) {
            let l = model.prefill(chunk, &mut cache, &backend);
            for t in 0..l.rows() {
                prop_assert_eq!(l.row(t), full.row(row), "row {}", row);
                row += 1;
            }
        }
        prop_assert_eq!(cache.len(), prompt.len());
    }

    /// Arbitrary **mixed-step compositions**: sessions at different
    /// positions each contribute a chunk of arbitrary size to one fused
    /// `forward_batch` call, repeatedly, until every prompt is consumed —
    /// and every returned row is bit-equal to the session's teacher-forced
    /// full forward pass. This is the exact shape `figlut-serve`'s chunked
    /// prefill schedules (decode rows are chunks of 1).
    #[test]
    fn forward_batch_mixed_compositions_bit_match_full_exec(
        prompts in prop::collection::vec(prompt_strategy(8), 1..=3),
        schedule in any::<u64>(),
    ) {
        let model = packed_model();
        let backend = Backend::Exec(EngineConfig::paper_default());
        let full: Vec<_> = prompts.iter().map(|p| model.logits(p, &backend)).collect();
        let mut caches: Vec<KvCache> = prompts.iter().map(|_| model.new_cache()).collect();
        let mut consumed = vec![0usize; prompts.len()];
        let mut mix = schedule;
        while consumed.iter().zip(&prompts).any(|(&c, p)| c < p.len()) {
            // Sessions with tokens left contribute a pseudo-random chunk of
            // 1..=3 rows each; order and sizes vary with `schedule`.
            let mut live: Vec<usize> = Vec::new();
            let mut chunks: Vec<&[usize]> = Vec::new();
            let mut takes: Vec<usize> = Vec::new();
            for (i, p) in prompts.iter().enumerate() {
                if consumed[i] < p.len() {
                    mix = mix.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let take = (1 + (mix >> 33) as usize % 3).min(p.len() - consumed[i]);
                    live.push(i);
                    takes.push(take);
                    chunks.push(&p[consumed[i]..consumed[i] + take]);
                }
            }
            let mut live_caches: Vec<KvCache> =
                live.iter().map(|&i| std::mem::take(&mut caches[i])).collect();
            let logits = model.forward_batch(&chunks, &mut live_caches, &backend);
            let mut row = 0usize;
            for ((&i, &take), cache) in live.iter().zip(&takes).zip(live_caches) {
                for t in 0..take {
                    prop_assert_eq!(
                        logits.row(row),
                        full[i].row(consumed[i] + t),
                        "session {} position {}",
                        i,
                        consumed[i] + t
                    );
                    row += 1;
                }
                consumed[i] += take;
                caches[i] = cache;
            }
        }
        for (cache, p) in caches.iter().zip(&prompts) {
            prop_assert_eq!(cache.len(), p.len());
        }
    }

    /// Multi-session `decode_batch` rows are bit-equal to each session's
    /// solo `decode_step`, with sessions at *different* positions.
    #[test]
    fn decode_batch_rows_bit_match_solo_exec(
        prompts in prop::collection::vec(prompt_strategy(8), 1..=3),
        next in 0usize..96,
    ) {
        let model = packed_model();
        let backend = Backend::Exec(EngineConfig::paper_default());
        // Solo: prefill each prompt, then decode `next` alone.
        let mut solo_rows: Vec<Vec<f64>> = Vec::new();
        let mut caches: Vec<KvCache> = Vec::new();
        for p in &prompts {
            let mut cache = model.new_cache();
            let _ = model.prefill(p, &mut cache, &backend);
            let mut solo_cache = cache.clone();
            solo_rows.push(model.decode_step(next, &mut solo_cache, &backend));
            caches.push(cache);
        }
        // Batched: the same decode across all sessions in one step.
        let tokens = vec![next; prompts.len()];
        let logits = model.decode_batch(&tokens, &mut caches, &backend);
        for (i, want) in solo_rows.iter().enumerate() {
            prop_assert_eq!(logits.row(i), &want[..], "session {}", i);
        }
    }
}

proptest! {
    // The scalar datapath model is orders of magnitude slower than the
    // packed kernels; fewer cases keep the suite quick while still
    // covering arbitrary prompts.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `decode_step` ≡ full `logits`, bit for bit, on the FIGLUT-I datapath
    /// model backend (the second serving-capable backend).
    #[test]
    fn decode_step_bit_matches_full_logits_figlut_i(prompt in prompt_strategy(6)) {
        let model = packed_model();
        let backend = Backend::Engine(Engine::FiglutI, EngineConfig::paper_default());
        assert_steps_match_full(model, &prompt, &backend);
    }
}
