//! [`PackedBcq`] — BCQ weights re-packed for the execution kernels.
//!
//! `figlut_quant::BcqWeight` is organized for *construction* (one
//! `BitMatrix` per plane, one scale matrix per plane). The kernels instead
//! want the memory walked by the inner loop to be contiguous:
//!
//! * **Sign planes** stay bit-packed `u64` words (bit = `+1`), but are laid
//!   out plane-major → row-major in one flat buffer, so streaming one
//!   plane of one output row is a single sequential slice — the software
//!   analogue of FIGLUT streaming a weight bit-plane through the MPU.
//! * **Scales** are transposed to `[row][group][plane]` order, which is
//!   exactly the order the final per-row fold visits them, and the offsets
//!   to `[row][group]`.
//!
//! Packing is lossless and cheap (a `memcpy` per plane row via
//! [`figlut_quant::BitMatrix::row_words`]); [`PackedBcq::unpack`] hands the
//! weights back to the bit-accurate engines for differential testing.

use figlut_num::Mat;
use figlut_quant::{BcqWeight, BitMatrix};

/// A BCQ weight matrix packed for the `figlut-exec` kernels.
#[derive(Clone, Debug)]
pub struct PackedBcq {
    rows: usize,
    cols: usize,
    group_size: usize,
    bits: usize,
    words_per_row: usize,
    /// Flat plane bits: `planes[(i·rows + r)·words_per_row ..]` is plane
    /// `i`, row `r`.
    planes: Vec<u64>,
    /// Flat scales in fold order: `scales[(r·groups + g)·bits + i]` is
    /// `αᵢ(r, g)`.
    scales: Vec<f64>,
    /// Flat offsets: `offsets[r·groups + g]` (empty when the source format
    /// carries no offset).
    offsets: Vec<f64>,
}

impl PackedBcq {
    /// Pack `w` for execution.
    pub fn pack(w: &BcqWeight) -> Self {
        let (rows, cols) = w.shape();
        let q = w.bits() as usize;
        let gs = w.group_size();
        let groups = w.groups();
        let words_per_row = cols.div_ceil(64);
        let mut planes = Vec::with_capacity(q * rows * words_per_row);
        for plane in w.planes() {
            for r in 0..rows {
                planes.extend_from_slice(plane.row_words(r));
            }
        }
        let mut scales = Vec::with_capacity(rows * groups * q);
        for r in 0..rows {
            for g in 0..groups {
                for i in 0..q {
                    scales.push(w.alpha(i, r, g * gs));
                }
            }
        }
        let offsets = if w.has_offset() {
            let mut z = Vec::with_capacity(rows * groups);
            for r in 0..rows {
                for g in 0..groups {
                    z.push(w.offset(r, g * gs));
                }
            }
            z
        } else {
            Vec::new()
        };
        Self {
            rows,
            cols,
            group_size: gs,
            bits: q,
            words_per_row,
            planes,
            scales,
            offsets,
        }
    }

    /// `(rows, cols)` of the represented matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Output rows `m`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Reduction width `n`.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of binary planes `q`.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Columns per scale group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Scale groups per row.
    pub fn groups(&self) -> usize {
        self.cols / self.group_size
    }

    /// `true` if the format carries an offset plane.
    pub fn has_offset(&self) -> bool {
        !self.offsets.is_empty()
    }

    /// Packed `u64` words of plane `i`, row `r` (bit `c % 64` of word
    /// `c / 64` ↔ column `c`; bits beyond `cols` are 0).
    #[inline]
    pub fn plane_row(&self, i: usize, r: usize) -> &[u64] {
        let base = (i * self.rows + r) * self.words_per_row;
        &self.planes[base..base + self.words_per_row]
    }

    /// The `groups × bits` scale slice of row `r`, in `[group][plane]`
    /// (fold) order.
    #[inline]
    pub fn row_scales(&self, r: usize) -> &[f64] {
        let gq = self.groups() * self.bits;
        &self.scales[r * gq..(r + 1) * gq]
    }

    /// The `groups` offsets of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if the format has no offset.
    #[inline]
    pub fn row_offsets(&self, r: usize) -> &[f64] {
        assert!(self.has_offset(), "format has no offset plane");
        let groups = self.groups();
        &self.offsets[r * groups..(r + 1) * groups]
    }

    /// Sign of plane `i` at `(r, c)` as a bool (`true` = `+1`).
    #[inline]
    pub fn get(&self, i: usize, r: usize, c: usize) -> bool {
        let w = self.plane_row(i, r)[c / 64];
        (w >> (c % 64)) & 1 == 1
    }

    /// Dequantized value of one element.
    pub fn value(&self, r: usize, c: usize) -> f64 {
        let g = c / self.group_size;
        let scales = &self.row_scales(r)[g * self.bits..(g + 1) * self.bits];
        let mut v = if self.has_offset() {
            self.offsets[r * self.groups() + g]
        } else {
            0.0
        };
        for (i, &a) in scales.iter().enumerate() {
            v += if self.get(i, r, c) { a } else { -a };
        }
        v
    }

    /// Dequantize the whole matrix.
    pub fn dequantize(&self) -> Mat<f64> {
        Mat::from_fn(self.rows, self.cols, |r, c| self.value(r, c))
    }

    /// Build a reusable [`crate::plan::ExecPlan`] for these weights under
    /// `cfg` (shorthand for [`crate::plan::ExecPlan::new`]). Hold the plan
    /// wherever the same weights execute more than once — it caches the
    /// window decomposition and recycles every kernel scratch buffer.
    pub fn plan(&self, cfg: &figlut_gemm::EngineConfig) -> crate::plan::ExecPlan {
        crate::plan::ExecPlan::new(self, cfg)
    }

    /// Convert back to the construction-oriented container (for running the
    /// bit-accurate `figlut-gemm` engines on the same weights).
    pub fn unpack(&self) -> BcqWeight {
        let groups = self.groups();
        let q = self.bits;
        let planes: Vec<BitMatrix> = (0..q)
            .map(|i| BitMatrix::from_fn(self.rows, self.cols, |r, c| self.get(i, r, c)))
            .collect();
        let alpha: Vec<Mat<f64>> = (0..q)
            .map(|i| {
                Mat::from_fn(self.rows, groups, |r, g| {
                    self.scales[(r * groups + g) * q + i]
                })
            })
            .collect();
        let offset = self
            .has_offset()
            .then(|| Mat::from_fn(self.rows, groups, |r, g| self.offsets[r * groups + g]));
        BcqWeight::from_parts(planes, alpha, offset, self.group_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use figlut_quant::bcq::BcqParams;
    use figlut_quant::uniform::{rtn, RtnParams};

    fn weights(rows: usize, cols: usize) -> Mat<f64> {
        Mat::from_fn(rows, cols, |r, c| ((r * cols + c) as f64 * 0.217).sin())
    }

    #[test]
    fn pack_preserves_values() {
        let w = weights(5, 70); // spans two words per row
        let b = BcqWeight::quantize(&w, BcqParams::per_row(3));
        let p = PackedBcq::pack(&b);
        assert_eq!(p.shape(), (5, 70));
        assert_eq!(p.bits(), 3);
        assert_eq!(p.groups(), 1);
        assert!(p.has_offset());
        assert_eq!(b.dequantize().max_abs_diff(&p.dequantize()), 0.0);
    }

    #[test]
    fn pack_grouped_and_offsetless() {
        let w = weights(3, 24);
        let b = BcqWeight::quantize(
            &w,
            BcqParams {
                bits: 2,
                group_size: 8,
                with_offset: false,
                refine_iters: 4,
            },
        );
        let p = PackedBcq::pack(&b);
        assert_eq!(p.groups(), 3);
        assert!(!p.has_offset());
        assert_eq!(b.dequantize().max_abs_diff(&p.dequantize()), 0.0);
    }

    #[test]
    fn unpack_roundtrips_exactly() {
        let w = weights(4, 40);
        let u = rtn(&w, RtnParams::grouped(4, 10));
        let b = BcqWeight::from_uniform(&u);
        let p = PackedBcq::pack(&b);
        let back = p.unpack();
        assert_eq!(back.bits(), b.bits());
        assert_eq!(back.group_size(), b.group_size());
        assert_eq!(b.dequantize().max_abs_diff(&back.dequantize()), 0.0);
    }

    #[test]
    fn plane_rows_match_bitmatrix() {
        let w = weights(2, 130);
        let b = BcqWeight::quantize(&w, BcqParams::per_row(2));
        let p = PackedBcq::pack(&b);
        for i in 0..2 {
            for r in 0..2 {
                assert_eq!(p.plane_row(i, r), b.plane(i).row_words(r));
            }
        }
    }
}
