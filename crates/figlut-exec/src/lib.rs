#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # figlut-exec — high-throughput packed LUT-GEMM execution backend
//!
//! The engines in `figlut-gemm` are *datapath models*: scalar,
//! allocation-heavy, built to pin the paper's arithmetic rounding point by
//! rounding point. This crate is the second implementation of the same
//! pipeline, built for speed — a software analogue of the FIGLUT hardware
//! (DESIGN.md §6):
//!
//! | Module | Hardware analogue | Contents |
//! |---|---|---|
//! | [`packed`] | weight SRAM layout | [`PackedBcq`]: bit-planes as `u64` words, scales in fold order |
//! | [`lut`] | FFLUT generators | flat per-window `2^µ` tables, batch-stacked across activation rows, built half + mirrored (Fig. 10) |
//! | [`kernel`] | RAC arrays | cache-blocked, batch-blocked [`exec_f`] / [`exec_i`] read-accumulate kernels |
//! | [`plan`] | weight-stationary scheduling | [`ExecPlan`]: per-weight window plan + pooled scratch, allocation-free steady-state calls |
//! | [`parallel`] | MPU tiling | row-panel `std::thread::scope` workers, `FIGLUT_EXEC_THREADS` |
//!
//! The correctness story is *differential*: [`exec_i`] is **bit-identical**
//! to `figlut_gemm::figlut::gemm_i` (same pre-alignment, exact integer
//! window sums, same FP32-rounded fold sequence — integer associativity
//! makes the blocking invisible), and [`exec_f`] tracks
//! `figlut_gemm::figlut::gemm_f` within scale-aware tolerance. Both hold
//! for every thread count: each output element is computed by one thread in
//! a fixed order, so results are deterministic and
//! thread-count-independent. A batched call streams each packed weight
//! word once for *all* batch columns (the paper's weight-traffic
//! amortization, executed on the host) and every batch row is
//! bit-identical to its batch-1 run. The property tests in `tests/`
//! enforce all of this over arbitrary shapes, µ, group sizes, batch
//! sizes, and ragged tails.
//!
//! ```
//! use figlut_exec::{exec_i, PackedBcq};
//! use figlut_gemm::{figlut, EngineConfig};
//! use figlut_num::Mat;
//! use figlut_quant::bcq::{BcqParams, BcqWeight};
//!
//! let w = Mat::from_fn(8, 64, |r, c| ((r * 64 + c) as f64 * 0.1).sin());
//! let bcq = BcqWeight::quantize(&w, BcqParams::per_row(3));
//! let x = Mat::from_fn(2, 64, |b, c| ((b + c) as f64 * 0.05).cos());
//! let cfg = EngineConfig::paper_default();
//! let fast = exec_i(&x, &PackedBcq::pack(&bcq), &cfg);
//! let model = figlut::gemm_i(&x, &bcq, &cfg);
//! assert_eq!(fast.as_slice(), model.as_slice()); // bit-identical
//! ```

pub mod kernel;
pub mod lut;
pub mod packed;
pub mod parallel;
pub mod plan;

pub use kernel::{exec_f, exec_f_threads, exec_i, exec_i_threads};
pub use packed::PackedBcq;
pub use plan::ExecPlan;
