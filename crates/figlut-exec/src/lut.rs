//! Flat per-window FFLUT precomputation.
//!
//! The datapath models in `figlut-gemm` rebuild a boxed
//! [`figlut_lut::table::HalfLut`] per window per activation row and decode
//! every read through [`figlut_lut::key::Key::fold`]. That is the right
//! shape for proving the hardware's MSB-fold decoder transparent; it is the
//! wrong shape for throughput. This module precomputes, per activation
//! tile, the *full* `2^µ`-entry table of every window into one flat buffer
//! with a constant power-of-two stride, so the kernel's inner loop is
//! `table[base | key]` with no branches. For a batched call the tables of
//! all `B` activation rows are *batch-stacked at key granularity* — the
//! `B` entries of one `(window, key)` adjacent — so a weight key decoded
//! once reads one contiguous, line-sharing run covering every batch column
//! (see [`crate::kernel`]'s batch-column blocking).
//!
//! The build still uses the hFFLUT semantics (DESIGN.md §3, paper Fig. 10):
//! only the MSB-clear half is computed with additions; the MSB-set half is
//! mirrored by exact negation (vertical symmetry `lut[~k] = −lut[k]`).
//! For integer tables every entry is the exact signed sum
//! `Σ ±mantissa`, so any build order yields bit-identical tables — which is
//! what makes [`crate::kernel::exec_i`] bit-exact against
//! `figlut_gemm::figlut::gemm_i` (integer addition is associative). The
//! unit tests pin the tables against `figlut-lut` reads key by key.

/// One µ-wide column window of a scale group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Window {
    /// Scale-group index.
    pub group: u32,
    /// First column.
    pub start: u32,
    /// Width in columns (`≤ µ`; narrower at a ragged group tail).
    pub width: u32,
}

/// The window decomposition the FIGLUT engines use: each scale group is cut
/// into `⌈gs/µ⌉` windows; windows never straddle a group boundary, and the
/// last window of a group may be narrower than µ. Identical to the
/// decomposition inside `figlut_gemm::figlut` (asserted by the differential
/// tests).
pub fn windows(cols: usize, group_size: usize, mu: usize) -> Vec<Window> {
    assert!(
        group_size > 0 && cols.is_multiple_of(group_size),
        "bad group size"
    );
    let groups = cols / group_size;
    let mut out = Vec::with_capacity(groups * group_size.div_ceil(mu));
    for g in 0..groups {
        let c0 = g * group_size;
        let mut start = c0;
        while start < c0 + group_size {
            let width = mu.min(c0 + group_size - start);
            out.push(Window {
                group: g as u32,
                start: start as u32,
                width: width as u32,
            });
            start += width;
        }
    }
    out
}

/// Flat full tables for every window of a *batch* of activation rows, in
/// the batch-stacked layout the blocked kernels stream.
///
/// Entry `k` of window `w` for batch column `b` lives at
/// `entries[((w << mu) | k)·batch + b]`: the entries of one `(window,
/// key)` across batch columns are *adjacent*. That granularity is the
/// point — the kernel decodes each weight key once and reads it for every
/// batch column, and with per-key stacking those `batch` reads are one
/// contiguous run sharing cache lines (16 narrowed-i32 columns per 64-byte
/// line), instead of `batch` scattered lines from `batch` separate tables.
/// Table-line traffic per column falls almost `batch`-fold, which is what
/// makes the batched kernel faster than `batch` solo calls on a
/// line-bandwidth-bound shape. Windows of width `< µ` only populate their
/// first `2^width` key slots (keys never address beyond them, because the
/// kernel masks to the window width). `batch = 1` degenerates to the
/// classic one-table-per-window layout.
#[derive(Clone, Debug)]
pub struct FlatLuts<T> {
    mu: u32,
    batch: usize,
    entries: Vec<T>,
}

impl<T> Default for FlatLuts<T> {
    /// An empty table set (no windows, batch 1) — a placeholder to
    /// [`FlatLuts::rebuild`] into.
    fn default() -> Self {
        Self {
            mu: 1,
            batch: 1,
            entries: Vec::new(),
        }
    }
}

impl<T: Copy + Default + core::ops::Add<Output = T> + core::ops::Neg<Output = T>> FlatLuts<T> {
    /// Precompute the tables for one activation row `values` (aligned
    /// mantissas or rounded activations) under the given window
    /// decomposition.
    ///
    /// # Panics
    ///
    /// Panics if `µ ∉ 1..=8`.
    pub fn build(values: &[T], wins: &[Window], mu: u32) -> Self {
        Self::build_batched(values, values.len(), wins, mu, 1)
    }

    /// Precompute the batch-stacked tables for `batch` activation rows.
    /// `values` is row-major (`values[b·cols + c]` is column `c` of batch
    /// row `b`); every window's start/width indexes within one row.
    ///
    /// # Panics
    ///
    /// Panics if `µ ∉ 1..=8` or `values.len() ≠ batch·cols`.
    pub fn build_batched(
        values: &[T],
        cols: usize,
        wins: &[Window],
        mu: u32,
        batch: usize,
    ) -> Self {
        let mut luts = Self::default();
        luts.rebuild(values, cols, wins, mu, batch);
        luts
    }

    /// [`FlatLuts::build_batched`] into `self`, reusing the entry buffer —
    /// allocation-free once the buffer has seen the shape (the
    /// `figlut-exec` steady-state contract).
    ///
    /// # Panics
    ///
    /// Panics if `µ ∉ 1..=8` or `values.len() ≠ batch·cols`.
    pub fn rebuild(&mut self, values: &[T], cols: usize, wins: &[Window], mu: u32, batch: usize) {
        assert!((1..=8).contains(&mu), "µ = {mu} unsupported");
        assert_eq!(values.len(), batch * cols, "values are not batch × cols");
        let stride = 1usize << mu;
        self.mu = mu;
        self.batch = batch;
        self.entries.clear();
        self.entries
            .resize(wins.len() * batch * stride, T::default());
        for (wi, win) in wins.iter().enumerate() {
            let t0 = wi * batch * stride;
            let table = &mut self.entries[t0..t0 + batch * stride];
            for b in 0..batch {
                let x0 = b * cols + win.start as usize;
                let xs = &values[x0..x0 + win.width as usize];
                fill_window(table, xs, batch, b);
            }
        }
    }
}

impl<T: Copy> FlatLuts<T> {
    /// Table stride shift (the configured µ).
    #[inline]
    pub fn mu(&self) -> u32 {
        self.mu
    }

    /// Number of stacked batch columns.
    #[inline]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The flat entry buffer (`windows × batch × 2^µ`).
    #[inline]
    pub fn entries(&self) -> &[T] {
        &self.entries
    }

    /// Read entry `key` of window `wi` for batch column 0.
    #[inline]
    pub fn read(&self, wi: usize, key: usize) -> T {
        self.read_batched(wi, 0, key)
    }

    /// Read entry `key` of window `wi` for batch column `b`.
    #[inline]
    pub fn read_batched(&self, wi: usize, b: usize, key: usize) -> T {
        self.entries[((wi << self.mu) | key) * self.batch + b]
    }
}

/// Fill one window's `2^width` entries for one batch column: compute the
/// MSB-clear half with additions, mirror the MSB-set half by negation
/// (hFFLUT vertical symmetry). Key `k` lands at `table[k·stride + offset]`
/// — `stride = batch`, `offset = b` in the per-key-stacked layout
/// ([`FlatLuts`] docs); `(1, 0)` is the classic dense table.
fn fill_window<T: Copy + core::ops::Add<Output = T> + core::ops::Neg<Output = T>>(
    table: &mut [T],
    xs: &[T],
    stride: usize,
    offset: usize,
) {
    let width = xs.len();
    let idx = |k: usize| k * stride + offset;
    // Key 0 = −x₀ −x₁ … ; then each remaining MSB-clear key flips exactly
    // one sign relative to an already-computed key: k with lowest set bit b
    // equals (k without b) + 2·x_b.
    let mut all_minus = -xs[0];
    for &x in &xs[1..] {
        all_minus = all_minus + (-x);
    }
    table[idx(0)] = all_minus;
    let half = 1usize << (width - 1);
    for k in 1..half {
        let b = k.trailing_zeros() as usize;
        table[idx(k)] = table[idx(k & (k - 1))] + xs[b] + xs[b];
    }
    // MSB-set half: lut[k] = −lut[~k] (exact negation, Fig. 10 decoder).
    let mask = (1usize << width) - 1;
    for k in half..=mask {
        table[idx(k)] = -table[idx(k ^ mask)];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use figlut_lut::key::Key;
    use figlut_lut::table::{FullLut, HalfLut, LutRead};

    #[test]
    fn windows_match_engine_decomposition() {
        // cols 30, gs 15, µ 4 → per group: widths 4,4,4,3.
        let w = windows(30, 15, 4);
        assert_eq!(w.len(), 8);
        assert_eq!(
            w[3],
            Window {
                group: 0,
                start: 12,
                width: 3
            }
        );
        assert_eq!(
            w[4],
            Window {
                group: 1,
                start: 15,
                width: 4
            }
        );
        let total: u32 = w.iter().map(|w| w.width).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn float_tables_match_figlut_lut_definition() {
        let xs: Vec<f64> = (0..11).map(|i| 0.3 * (i as f64) - 1.1).collect();
        let wins = windows(11, 11, 4); // widths 4,4,3
        let luts = FlatLuts::build(&xs, &wins, 4);
        for (wi, win) in wins.iter().enumerate() {
            let slice = &xs[win.start as usize..(win.start + win.width) as usize];
            let oracle = FullLut::build(slice, |a, b| a + b);
            for k in 0..(1u16 << win.width) {
                let want = oracle.read(Key::new(k, win.width));
                let got = luts.read(wi, k as usize);
                assert!((got - want).abs() < 1e-12, "win {wi} key {k}");
            }
        }
    }

    #[test]
    fn integer_tables_are_exact_and_match_half_lut() {
        let mant: Vec<i64> = vec![13, -7, 29, 5, -3, 11, 2];
        let wins = windows(7, 7, 3); // widths 3,3,1
        let luts = FlatLuts::build(&mant, &wins, 3);
        for (wi, win) in wins.iter().enumerate() {
            let slice = &mant[win.start as usize..(win.start + win.width) as usize];
            let half = HalfLut::build(slice, |a, b| a + b);
            for k in 0..(1u16 << win.width) {
                assert_eq!(
                    luts.read(wi, k as usize),
                    half.read(Key::new(k, win.width)),
                    "win {wi} key {k}"
                );
            }
        }
    }

    #[test]
    fn mirror_half_is_exact_negation() {
        let xs = [0.1f64, 0.25, -0.5, 0.75];
        let wins = windows(4, 4, 4);
        let luts = FlatLuts::build(&xs, &wins, 4);
        for k in 0..16usize {
            assert_eq!(luts.read(0, k), -luts.read(0, k ^ 0xf), "k={k}");
        }
    }

    #[test]
    fn batched_tables_stack_per_window_and_match_per_row_builds() {
        // 2 rows × 11 cols, µ = 4 → per-row windows of widths 4, 4, 3.
        let cols = 11usize;
        let flat: Vec<f64> = (0..2 * cols).map(|i| 0.17 * (i as f64) - 1.3).collect();
        let wins = windows(cols, cols, 4);
        let batched = FlatLuts::build_batched(&flat, cols, &wins, 4, 2);
        assert_eq!(batched.batch(), 2);
        assert_eq!(batched.entries().len(), wins.len() * 2 * 16);
        for b in 0..2usize {
            let solo = FlatLuts::build(&flat[b * cols..(b + 1) * cols], &wins, 4);
            for (wi, win) in wins.iter().enumerate() {
                for k in 0..(1usize << win.width) {
                    assert_eq!(
                        batched.read_batched(wi, b, k),
                        solo.read(wi, k),
                        "b={b} win={wi} key={k}"
                    );
                }
            }
        }
        // Same (window, key), consecutive columns: adjacent entries — the
        // line-sharing property the batched kernel depends on.
        let e = batched.entries();
        assert_eq!(batched.read_batched(1, 0, 3), e[((1 << 4) | 3) * 2]);
        assert_eq!(batched.read_batched(1, 1, 3), e[((1 << 4) | 3) * 2 + 1]);
        // Rebuild at a new batch reuses the buffer and relabels the layout.
        let mut reb = batched.clone();
        reb.rebuild(&flat[..cols], cols, &wins, 4, 1);
        assert_eq!(reb.batch(), 1);
        let solo = FlatLuts::build(&flat[..cols], &wins, 4);
        assert_eq!(reb.entries(), solo.entries());
    }

    #[test]
    fn mu_one_windows() {
        let xs = [3i64, -4];
        let wins = windows(2, 2, 1);
        let luts = FlatLuts::build(&xs, &wins, 1);
        assert_eq!(luts.read(0, 0), -3);
        assert_eq!(luts.read(0, 1), 3);
        assert_eq!(luts.read(1, 0), 4);
        assert_eq!(luts.read(1, 1), -4);
    }
}
