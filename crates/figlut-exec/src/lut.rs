//! Flat per-window FFLUT precomputation.
//!
//! The datapath models in `figlut-gemm` rebuild a boxed
//! [`figlut_lut::table::HalfLut`] per window per activation row and decode
//! every read through [`figlut_lut::key::Key::fold`]. That is the right
//! shape for proving the hardware's MSB-fold decoder transparent; it is the
//! wrong shape for throughput. This module precomputes, per activation
//! tile, the *full* `2^µ`-entry table of every window into one flat buffer
//! with a constant power-of-two stride, so the kernel's inner loop is
//! `table[base | key]` with no branches.
//!
//! The build still uses the hFFLUT semantics (DESIGN.md §3, paper Fig. 10):
//! only the MSB-clear half is computed with additions; the MSB-set half is
//! mirrored by exact negation (vertical symmetry `lut[~k] = −lut[k]`).
//! For integer tables every entry is the exact signed sum
//! `Σ ±mantissa`, so any build order yields bit-identical tables — which is
//! what makes [`crate::kernel::exec_i`] bit-exact against
//! `figlut_gemm::figlut::gemm_i` (integer addition is associative). The
//! unit tests pin the tables against `figlut-lut` reads key by key.

/// One µ-wide column window of a scale group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Window {
    /// Scale-group index.
    pub group: u32,
    /// First column.
    pub start: u32,
    /// Width in columns (`≤ µ`; narrower at a ragged group tail).
    pub width: u32,
}

/// The window decomposition the FIGLUT engines use: each scale group is cut
/// into `⌈gs/µ⌉` windows; windows never straddle a group boundary, and the
/// last window of a group may be narrower than µ. Identical to the
/// decomposition inside `figlut_gemm::figlut` (asserted by the differential
/// tests).
pub fn windows(cols: usize, group_size: usize, mu: usize) -> Vec<Window> {
    assert!(
        group_size > 0 && cols.is_multiple_of(group_size),
        "bad group size"
    );
    let groups = cols / group_size;
    let mut out = Vec::with_capacity(groups * group_size.div_ceil(mu));
    for g in 0..groups {
        let c0 = g * group_size;
        let mut start = c0;
        while start < c0 + group_size {
            let width = mu.min(c0 + group_size - start);
            out.push(Window {
                group: g as u32,
                start: start as u32,
                width: width as u32,
            });
            start += width;
        }
    }
    out
}

/// Flat full tables for every window of one activation row.
///
/// Entry `k` of window `w` lives at `entries[(w << mu) | k]`; windows of
/// width `< µ` only populate their first `2^width` slots (keys never
/// address beyond them, because the kernel masks to the window width).
#[derive(Clone, Debug)]
pub struct FlatLuts<T> {
    mu: u32,
    entries: Vec<T>,
}

impl<T: Copy + Default + core::ops::Add<Output = T> + core::ops::Neg<Output = T>> FlatLuts<T> {
    /// Precompute the tables for `values` (aligned mantissas or rounded
    /// activations) under the given window decomposition.
    ///
    /// # Panics
    ///
    /// Panics if `µ ∉ 1..=8`.
    pub fn build(values: &[T], wins: &[Window], mu: u32) -> Self {
        assert!((1..=8).contains(&mu), "µ = {mu} unsupported");
        let stride = 1usize << mu;
        let mut entries = vec![T::default(); wins.len() * stride];
        for (wi, win) in wins.iter().enumerate() {
            let xs = &values[win.start as usize..(win.start + win.width) as usize];
            let table = &mut entries[wi * stride..(wi + 1) * stride];
            fill_window(table, xs);
        }
        Self { mu, entries }
    }
}

impl<T: Copy> FlatLuts<T> {
    /// Table stride shift (the configured µ).
    #[inline]
    pub fn mu(&self) -> u32 {
        self.mu
    }

    /// The flat entry buffer (`windows × 2^µ`).
    #[inline]
    pub fn entries(&self) -> &[T] {
        &self.entries
    }

    /// Read entry `key` of window `wi`.
    #[inline]
    pub fn read(&self, wi: usize, key: usize) -> T {
        self.entries[(wi << self.mu) | key]
    }
}

/// Fill one window's `2^width` entries: compute the MSB-clear half with
/// additions, mirror the MSB-set half by negation (hFFLUT vertical
/// symmetry).
fn fill_window<T: Copy + core::ops::Add<Output = T> + core::ops::Neg<Output = T>>(
    table: &mut [T],
    xs: &[T],
) {
    let width = xs.len();
    // Key 0 = −x₀ −x₁ … ; then each remaining MSB-clear key flips exactly
    // one sign relative to an already-computed key: k with lowest set bit b
    // equals (k without b) + 2·x_b.
    let mut all_minus = -xs[0];
    for &x in &xs[1..] {
        all_minus = all_minus + (-x);
    }
    table[0] = all_minus;
    let half = 1usize << (width - 1);
    for k in 1..half {
        let b = k.trailing_zeros() as usize;
        table[k] = table[k & (k - 1)] + xs[b] + xs[b];
    }
    // MSB-set half: lut[k] = −lut[~k] (exact negation, Fig. 10 decoder).
    let mask = (1usize << width) - 1;
    for k in half..=mask {
        table[k] = -table[k ^ mask];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use figlut_lut::key::Key;
    use figlut_lut::table::{FullLut, HalfLut, LutRead};

    #[test]
    fn windows_match_engine_decomposition() {
        // cols 30, gs 15, µ 4 → per group: widths 4,4,4,3.
        let w = windows(30, 15, 4);
        assert_eq!(w.len(), 8);
        assert_eq!(
            w[3],
            Window {
                group: 0,
                start: 12,
                width: 3
            }
        );
        assert_eq!(
            w[4],
            Window {
                group: 1,
                start: 15,
                width: 4
            }
        );
        let total: u32 = w.iter().map(|w| w.width).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn float_tables_match_figlut_lut_definition() {
        let xs: Vec<f64> = (0..11).map(|i| 0.3 * (i as f64) - 1.1).collect();
        let wins = windows(11, 11, 4); // widths 4,4,3
        let luts = FlatLuts::build(&xs, &wins, 4);
        for (wi, win) in wins.iter().enumerate() {
            let slice = &xs[win.start as usize..(win.start + win.width) as usize];
            let oracle = FullLut::build(slice, |a, b| a + b);
            for k in 0..(1u16 << win.width) {
                let want = oracle.read(Key::new(k, win.width));
                let got = luts.read(wi, k as usize);
                assert!((got - want).abs() < 1e-12, "win {wi} key {k}");
            }
        }
    }

    #[test]
    fn integer_tables_are_exact_and_match_half_lut() {
        let mant: Vec<i64> = vec![13, -7, 29, 5, -3, 11, 2];
        let wins = windows(7, 7, 3); // widths 3,3,1
        let luts = FlatLuts::build(&mant, &wins, 3);
        for (wi, win) in wins.iter().enumerate() {
            let slice = &mant[win.start as usize..(win.start + win.width) as usize];
            let half = HalfLut::build(slice, |a, b| a + b);
            for k in 0..(1u16 << win.width) {
                assert_eq!(
                    luts.read(wi, k as usize),
                    half.read(Key::new(k, win.width)),
                    "win {wi} key {k}"
                );
            }
        }
    }

    #[test]
    fn mirror_half_is_exact_negation() {
        let xs = [0.1f64, 0.25, -0.5, 0.75];
        let wins = windows(4, 4, 4);
        let luts = FlatLuts::build(&xs, &wins, 4);
        for k in 0..16usize {
            assert_eq!(luts.read(0, k), -luts.read(0, k ^ 0xf), "k={k}");
        }
    }

    #[test]
    fn mu_one_windows() {
        let xs = [3i64, -4];
        let wins = windows(2, 2, 1);
        let luts = FlatLuts::build(&xs, &wins, 1);
        assert_eq!(luts.read(0, 0), -3);
        assert_eq!(luts.read(0, 1), 3);
        assert_eq!(luts.read(1, 0), 4);
        assert_eq!(luts.read(1, 1), -4);
    }
}
