//! [`ExecPlan`] — a reusable execution handle for one [`PackedBcq`].
//!
//! The kernels' per-call preamble is not free: the window decomposition,
//! the effective-µ decision, the quantize/align/Σx staging buffers, the
//! batch-stacked FFLUTs, and every worker's partial-accumulator slab. The
//! original backend recomputed the windows and reallocated every buffer on
//! *every* call — once per token per layer under `figlut-serve` decode
//! traffic. An `ExecPlan` hoists all of it:
//!
//! * the window plan and effective µ are computed once at construction;
//! * every per-call buffer lives in pooled call scratch, checked out
//!   at call entry and returned at exit, so a steady-state call performs
//!   **zero heap allocations** in the exec hot path (asserted by
//!   `tests/alloc.rs` with a counting global allocator);
//! * worker threads check their accumulation slabs (partials)
//!   out of a second pool, so the multi-threaded path reuses slabs
//!   across calls too.
//!
//! The pools are `Mutex`-guarded free lists: concurrent calls on one plan
//! are correct (each checks out its own scratch) and steady-state serial
//! calls are allocation-free. `Clone` clones the plan's *decisions* (shape,
//! windows, µ) but starts with empty pools — scratch is never shared
//! between clones — which is what lets `figlut-model` keep a plan inside
//! its `Clone`-able `LinearWeights::Packed` variant.
//!
//! The free functions [`crate::exec_i`] / [`crate::exec_f`] build a
//! throwaway plan per call, which preserves their historical semantics;
//! anything that executes the same weights twice should hold a plan.

use crate::kernel::{check, effective_mu, panel_f, panel_i, tile_span_words, tile_windows};
use crate::lut::{windows, FlatLuts, Window};
use crate::packed::PackedBcq;
use crate::parallel::{run_strided_panels, thread_count};
use figlut_gemm::common::mul32;
use figlut_gemm::EngineConfig;
use figlut_num::align::AlignedVector;
use figlut_num::Mat;
use std::sync::Mutex;

/// Per-call staging buffers (one checkout per `exec_*` call).
#[derive(Debug, Default)]
struct CallScratch {
    /// Quantized activations, `batch × n`.
    xa: Vec<f64>,
    /// Aligned integer mantissas, `batch × n`.
    mant: Vec<i64>,
    /// Narrowed mantissas (i32 table path), `batch × n`.
    m32: Vec<i32>,
    /// Per-batch-row alignment scales λ.
    lambdas: Vec<f64>,
    /// Pre-folded offset terms `mul32(Σx·λ)`, `batch × groups`.
    gsum_folds: Vec<f64>,
    /// Batch-stacked integer tables (wide path).
    luts64: FlatLuts<i64>,
    /// Batch-stacked integer tables (narrowed path).
    luts32: FlatLuts<i32>,
    /// Batch-stacked float tables (`exec_f`).
    lutsf: FlatLuts<f64>,
    /// Per-group activation sums (`exec_f`), `batch × groups`.
    gsums: Vec<f64>,
    /// Transposed output `m × batch` the row panels write into.
    yt: Vec<f64>,
}

/// Per-worker accumulation buffers (one checkout per row panel).
#[derive(Debug, Default)]
struct WorkerScratch {
    partials_i32: Vec<i32>,
    partials_i64: Vec<i64>,
    partials_f: Vec<f64>,
}

/// Selects the worker-scratch partial buffer matching an integer
/// accumulator type (lets `run_i` stay generic over the narrowing tier).
trait PartialScratch: Sized {
    fn buffer(ws: &mut WorkerScratch) -> &mut Vec<Self>;
}
impl PartialScratch for i32 {
    fn buffer(ws: &mut WorkerScratch) -> &mut Vec<i32> {
        &mut ws.partials_i32
    }
}
impl PartialScratch for i64 {
    fn buffer(ws: &mut WorkerScratch) -> &mut Vec<i64> {
        &mut ws.partials_i64
    }
}

/// A reusable execution plan for one [`PackedBcq`] under one engine
/// config: precomputed windows, the effective-µ decision, and pooled
/// scratch for allocation-free steady-state calls (module docs).
///
/// ```
/// use figlut_exec::{exec_i, ExecPlan, PackedBcq};
/// use figlut_gemm::EngineConfig;
/// use figlut_num::Mat;
/// use figlut_quant::bcq::{BcqParams, BcqWeight};
///
/// let w = Mat::from_fn(8, 64, |r, c| ((r * 64 + c) as f64 * 0.1).sin());
/// let bcq = BcqWeight::quantize(&w, BcqParams::per_row(3));
/// let packed = PackedBcq::pack(&bcq);
/// let cfg = EngineConfig::paper_default();
/// let plan = ExecPlan::new(&packed, &cfg);
/// let x = Mat::from_fn(4, 64, |b, c| ((b + c) as f64 * 0.05).cos());
/// // Same bits as the plan-free entry point, without its per-call setup.
/// assert_eq!(
///     plan.exec_i(&x, &packed, &cfg).as_slice(),
///     exec_i(&x, &packed, &cfg).as_slice()
/// );
/// ```
#[derive(Debug)]
pub struct ExecPlan {
    rows: usize,
    cols: usize,
    group_size: usize,
    bits: usize,
    /// The window width actually executed (`effective_mu`; [`ExecPlan::matches`]
    /// re-derives it from a call-site config to decide compatibility).
    mu: usize,
    wins: Vec<Window>,
    calls: Mutex<Vec<CallScratch>>,
    workers: Mutex<Vec<WorkerScratch>>,
}

impl Clone for ExecPlan {
    /// Clones the plan's decisions; the scratch pools start empty (never
    /// shared between clones).
    fn clone(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            group_size: self.group_size,
            bits: self.bits,
            mu: self.mu,
            wins: self.wins.clone(),
            calls: Mutex::new(Vec::new()),
            workers: Mutex::new(Vec::new()),
        }
    }
}

impl ExecPlan {
    /// Build the plan for `w` under `cfg`: effective-µ decision + window
    /// decomposition, and empty scratch pools that warm up on first use.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.mu ∉ 1..=8`.
    pub fn new(w: &PackedBcq, cfg: &EngineConfig) -> Self {
        assert!((1..=8).contains(&cfg.mu), "µ = {} unsupported", cfg.mu);
        figlut_trace::counters::bump_exec_plan_builds(1);
        let (rows, cols) = w.shape();
        let gs = w.group_size();
        let mu = effective_mu(gs, cfg.mu);
        Self {
            rows,
            cols,
            group_size: gs,
            bits: w.bits(),
            mu,
            wins: windows(cols, gs, mu),
            calls: Mutex::new(Vec::new()),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// `true` if this plan was built for exactly this weight shape and an
    /// equivalent config (same effective µ, hence the same window plan).
    /// Callers holding a plan next to interchangeable configs (e.g.
    /// `figlut-model`'s `Backend::Exec`) use this to decide between the
    /// cached plan and a throwaway one.
    pub fn matches(&self, w: &PackedBcq, cfg: &EngineConfig) -> bool {
        (1..=8).contains(&cfg.mu)
            && w.shape() == (self.rows, self.cols)
            && w.group_size() == self.group_size
            && w.bits() == self.bits
            && effective_mu(self.group_size, cfg.mu) == self.mu
    }

    /// Packed weight words one non-empty `exec_*` call at this batch size
    /// streams through the tile walk: the per-tile word spans of the
    /// window plan (tile size depends on `batch` — tables are batch-
    /// stacked, so wider batches shrink the k-tile to hold the cache
    /// budget), times one pass per (bit-plane, output row).
    ///
    /// This is the analytical model of the kernel's weight traffic; the
    /// `exec_streamed_words` trace counter reconciles against it exactly
    /// (asserted by `tests/trace_reconcile.rs`), which is what makes the
    /// traced number trustworthy as a bandwidth proxy.
    pub fn streamed_words(&self, batch: usize) -> u64 {
        let tile = tile_windows(self.mu as u32, batch);
        let span: u64 = self
            .wins
            .chunks(tile)
            .map(|t| tile_span_words(t) as u64)
            .sum();
        span * (self.bits * self.rows) as u64
    }

    fn assert_matches(&self, w: &PackedBcq, cfg: &EngineConfig) {
        assert!(
            self.matches(w, cfg),
            "ExecPlan built for {}x{} (gs {}, q {}, µ {}) used with {:?}-shaped weights / µ {}",
            self.rows,
            self.cols,
            self.group_size,
            self.bits,
            self.mu,
            w.shape(),
            cfg.mu,
        );
    }

    fn pop_call(&self) -> CallScratch {
        self.calls
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default()
    }

    fn push_call(&self, s: CallScratch) {
        self.calls.lock().unwrap_or_else(|e| e.into_inner()).push(s);
    }

    fn pop_worker(&self) -> WorkerScratch {
        self.workers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default()
    }

    fn push_worker(&self, s: WorkerScratch) {
        self.workers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(s);
    }

    /// [`ExecPlan::exec_i_threads`] writing into a caller-owned
    /// `batch × m` output — the zero-allocation steady-state entry point
    /// (the convenience wrappers only add the output allocation).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, `µ ∉ 1..=8`, a plan/weight mismatch
    /// ([`ExecPlan::matches`]), or an `out` shape other than `batch × m`.
    pub fn exec_i_into(
        &self,
        x: &Mat<f64>,
        w: &PackedBcq,
        cfg: &EngineConfig,
        threads: usize,
        out: &mut Mat<f64>,
    ) {
        let (batch, m, n) = check(x, w, cfg);
        self.assert_matches(w, cfg);
        assert_eq!(out.shape(), (batch, m), "output shape mismatch");
        if batch == 0 {
            return; // empty activation matrix: nothing to compute
        }
        figlut_trace::counters::bump_exec_calls(1);
        let groups = w.groups();
        let gs = self.group_size;
        let mut s = self.pop_call();
        // Stage all batch rows: quantize, align (per row — λ is a per-row
        // max-exponent decision, exactly as in a batch-1 call), pre-fold
        // the per-group offset terms mul32(Σx·λ).
        s.xa.clear();
        for b in 0..batch {
            s.xa.extend(x.row(b).iter().map(|&v| cfg.act.quantize(v)));
        }
        s.mant.clear();
        s.lambdas.clear();
        for b in 0..batch {
            let row = &s.xa[b * n..(b + 1) * n];
            let lambda =
                AlignedVector::align_into(row, cfg.act, cfg.guard_bits, cfg.align, &mut s.mant);
            s.lambdas.push(lambda);
        }
        s.gsum_folds.clear();
        for b in 0..batch {
            let mant = &s.mant[b * n..(b + 1) * n];
            for g in 0..groups {
                let p: i128 = mant[g * gs..(g + 1) * gs].iter().map(|&v| v as i128).sum();
                s.gsum_folds.push(mul32(p as f64, s.lambdas[b]));
            }
        }
        s.yt.clear();
        s.yt.resize(m * batch, 0.0);
        // Narrowing tiers, decided over the whole batch (one entry type
        // per batched table set). Every tier is exact, so they all return
        // bit-identical results — narrower is just faster:
        //
        // * `gs·max|mantissa| ≤ i32::MAX` — i32 tables *and* i32 group
        //   accumulators: a scale group spans `gs` columns, so every
        //   window sum, hFFLUT build intermediate, and running group
        //   partial is a signed sum of at most `gs` mantissas and provably
        //   fits. This is the whole FP16 operating point, and it makes the
        //   batched pass's contiguous per-key column reads vectorize on
        //   plain SSE2 (32-bit lanes).
        // * `µ·max|mantissa| ≤ i32::MAX` — i32 tables (half the table-read
        //   bytes), i64 accumulators (group partials may exceed i32).
        // * otherwise — full i64 tables and accumulators (extreme
        //   activation ranges).
        let maxm = s.mant.iter().map(|&v| v.unsigned_abs()).max().unwrap_or(0);
        let fits = |terms: usize| (terms as u64).saturating_mul(maxm) <= i32::MAX as u64;
        if fits(self.mu) || fits(self.group_size) {
            s.m32.clear();
            s.m32.extend(s.mant.iter().map(|&v| v as i32));
            s.luts32
                .rebuild(&s.m32, n, &self.wins, self.mu as u32, batch);
            figlut_trace::counters::bump_exec_lut_builds(1);
            if fits(self.group_size) {
                figlut_trace::counters::bump_exec_tier_i32_i32(1);
                self.run_i::<i32, i32>(w, &s.luts32, &s.gsum_folds, &s.lambdas, threads, &mut s.yt);
            } else {
                figlut_trace::counters::bump_exec_tier_i32_i64(1);
                self.run_i::<i32, i64>(w, &s.luts32, &s.gsum_folds, &s.lambdas, threads, &mut s.yt);
            }
        } else {
            s.luts64
                .rebuild(&s.mant, n, &self.wins, self.mu as u32, batch);
            figlut_trace::counters::bump_exec_lut_builds(1);
            figlut_trace::counters::bump_exec_tier_i64_i64(1);
            self.run_i::<i64, i64>(w, &s.luts64, &s.gsum_folds, &s.lambdas, threads, &mut s.yt);
        }
        scatter(&s.yt, batch, out);
        self.push_call(s);
    }

    /// Fan the transposed output across row panels and run the integer
    /// kernel at one narrowing tier `(E, A)`, each worker checking
    /// accumulation scratch out of the pool.
    fn run_i<E, A>(
        &self,
        w: &PackedBcq,
        luts: &FlatLuts<E>,
        gsum_folds: &[f64],
        lambdas: &[f64],
        threads: usize,
        yt: &mut [f64],
    ) where
        E: Copy + Sync,
        A: crate::kernel::Accum<E> + PartialScratch + Send,
    {
        let batch = luts.batch();
        run_strided_panels(yt, batch, threads, |r0, panel| {
            let mut ws = self.pop_worker();
            panel_i(
                w,
                &self.wins,
                luts,
                gsum_folds,
                lambdas,
                r0,
                panel,
                A::buffer(&mut ws),
            );
            self.push_worker(ws);
        });
    }

    /// FIGLUT-I fast path over this plan: `y = x·Wᵀ`, bit-identical to
    /// `figlut_gemm::figlut::gemm_i` at every batch size, with every batch
    /// row bit-identical to its batch-1 run.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, `µ ∉ 1..=8`, or a plan/weight mismatch.
    pub fn exec_i_threads(
        &self,
        x: &Mat<f64>,
        w: &PackedBcq,
        cfg: &EngineConfig,
        threads: usize,
    ) -> Mat<f64> {
        let mut y = Mat::zeros(x.rows(), w.rows());
        self.exec_i_into(x, w, cfg, threads, &mut y);
        y
    }

    /// [`ExecPlan::exec_i_threads`] with the default worker count
    /// ([`crate::parallel::thread_count`]).
    pub fn exec_i(&self, x: &Mat<f64>, w: &PackedBcq, cfg: &EngineConfig) -> Mat<f64> {
        self.exec_i_threads(x, w, cfg, thread_count())
    }

    /// [`ExecPlan::exec_f_threads`] writing into a caller-owned
    /// `batch × m` output (allocation-free in steady state).
    ///
    /// # Panics
    ///
    /// Same conditions as [`ExecPlan::exec_i_into`].
    pub fn exec_f_into(
        &self,
        x: &Mat<f64>,
        w: &PackedBcq,
        cfg: &EngineConfig,
        threads: usize,
        out: &mut Mat<f64>,
    ) {
        let (batch, m, n) = check(x, w, cfg);
        self.assert_matches(w, cfg);
        assert_eq!(out.shape(), (batch, m), "output shape mismatch");
        if batch == 0 {
            return; // empty activation matrix: nothing to compute
        }
        figlut_trace::counters::bump_exec_f_calls(1);
        let groups = w.groups();
        let gs = self.group_size;
        let mut s = self.pop_call();
        s.xa.clear();
        for b in 0..batch {
            s.xa.extend(x.row(b).iter().map(|&v| cfg.act.quantize(v)));
        }
        s.gsums.clear();
        for b in 0..batch {
            let row = &s.xa[b * n..(b + 1) * n];
            for g in 0..groups {
                s.gsums.push(row[g * gs..(g + 1) * gs].iter().sum());
            }
        }
        s.lutsf.rebuild(&s.xa, n, &self.wins, self.mu as u32, batch);
        figlut_trace::counters::bump_exec_lut_builds(1);
        s.yt.clear();
        s.yt.resize(m * batch, 0.0);
        {
            let lutsf = &s.lutsf;
            let gsums = &s.gsums;
            run_strided_panels(&mut s.yt, batch, threads, |r0, panel| {
                let mut ws = self.pop_worker();
                panel_f(w, &self.wins, lutsf, gsums, r0, panel, &mut ws.partials_f);
                self.push_worker(ws);
            });
        }
        scatter(&s.yt, batch, out);
        self.push_call(s);
    }

    /// FIGLUT-F fast path over this plan: `y = x·Wᵀ` with `f64`
    /// accumulation, tracking `figlut_gemm::figlut::gemm_f` within the
    /// scale-aware tolerance the property tests assert.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, `µ ∉ 1..=8`, or a plan/weight mismatch.
    pub fn exec_f_threads(
        &self,
        x: &Mat<f64>,
        w: &PackedBcq,
        cfg: &EngineConfig,
        threads: usize,
    ) -> Mat<f64> {
        let mut y = Mat::zeros(x.rows(), w.rows());
        self.exec_f_into(x, w, cfg, threads, &mut y);
        y
    }

    /// [`ExecPlan::exec_f_threads`] with the default worker count
    /// ([`crate::parallel::thread_count`]).
    pub fn exec_f(&self, x: &Mat<f64>, w: &PackedBcq, cfg: &EngineConfig) -> Mat<f64> {
        self.exec_f_threads(x, w, cfg, thread_count())
    }
}

/// Transpose the `m × batch` panel output back into the `batch × m`
/// result (no allocation; every element written exactly once).
fn scatter(yt: &[f64], batch: usize, out: &mut Mat<f64>) {
    for b in 0..batch {
        for (r, o) in out.row_mut(b).iter_mut().enumerate() {
            *o = yt[r * batch + b];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use figlut_gemm::figlut::gemm_i;
    use figlut_quant::bcq::{BcqParams, BcqWeight};

    fn setup(m: usize, n: usize, gs: usize, bits: u32) -> (Mat<f64>, BcqWeight) {
        let w = Mat::from_fn(m, n, |r, c| ((r * n + c) as f64 * 0.171).sin() * 0.4);
        let params = if gs == 0 {
            BcqParams::per_row(bits)
        } else {
            BcqParams::grouped(bits, gs)
        };
        let b = BcqWeight::quantize(&w, params);
        let x = Mat::from_fn(5, n, |bb, c| ((bb * n + c) as f64 * 0.057).cos());
        (x, b)
    }

    #[test]
    fn plan_reuse_across_batches_matches_model() {
        let (x, b) = setup(10, 96, 24, 3);
        let p = PackedBcq::pack(&b);
        let cfg = EngineConfig::paper_default();
        let plan = ExecPlan::new(&p, &cfg);
        // Same plan, shrinking and growing batch sizes: pools must resize
        // correctly and results stay bit-exact.
        for batch in [5usize, 1, 3, 5, 2] {
            let xb = Mat::from_fn(batch, 96, |bb, c| x[(bb, c)]);
            let y = plan.exec_i_threads(&xb, &p, &cfg, 2);
            let ym = gemm_i(&xb, &b, &cfg);
            assert_eq!(y.as_slice(), ym.as_slice(), "batch={batch}");
        }
    }

    #[test]
    fn zero_row_activations_return_empty() {
        let (_, b) = setup(5, 32, 16, 2);
        let p = PackedBcq::pack(&b);
        let cfg = EngineConfig::paper_default();
        let plan = ExecPlan::new(&p, &cfg);
        let x = Mat::from_fn(0, 32, |_, _| 0.0);
        let y = plan.exec_i(&x, &p, &cfg);
        assert_eq!(y.shape(), (0, 5));
        let yf = plan.exec_f(&x, &p, &cfg);
        assert_eq!(yf.shape(), (0, 5));
    }

    #[test]
    fn exec_into_writes_every_element() {
        let (x, b) = setup(7, 48, 0, 2);
        let p = PackedBcq::pack(&b);
        let cfg = EngineConfig::paper_default();
        let plan = ExecPlan::new(&p, &cfg);
        let mut y = Mat::from_fn(5, 7, |_, _| f64::NAN); // must be overwritten
        plan.exec_i_into(&x, &p, &cfg, 1, &mut y);
        assert_eq!(y.as_slice(), gemm_i(&x, &b, &cfg).as_slice());
    }

    #[test]
    fn matches_tracks_shape_and_effective_mu() {
        let (_, b) = setup(4, 30, 15, 2); // gs 15: no even divisor
        let p = PackedBcq::pack(&b);
        let cfg3 = EngineConfig {
            mu: 3,
            ..EngineConfig::paper_default()
        };
        let plan = ExecPlan::new(&p, &cfg3);
        assert!(plan.matches(&p, &cfg3));
        // Different configured µ on an odd group size changes the window
        // plan → incompatible.
        let cfg4 = EngineConfig {
            mu: 4,
            ..EngineConfig::paper_default()
        };
        assert!(!plan.matches(&p, &cfg4));
        // Even group size: every configured µ widens to 8 → compatible.
        let (_, be) = setup(4, 32, 16, 2);
        let pe = PackedBcq::pack(&be);
        let plan_e = ExecPlan::new(&pe, &cfg3);
        assert!(plan_e.matches(&pe, &cfg4));
        // Wrong weights for the plan.
        assert!(!plan.matches(&pe, &cfg3));
    }

    #[test]
    #[should_panic(expected = "ExecPlan built for")]
    fn mismatched_weights_panic() {
        let (x, b) = setup(4, 32, 16, 2);
        let p = PackedBcq::pack(&b);
        let cfg = EngineConfig::paper_default();
        let (_, b2) = setup(6, 32, 16, 2);
        let p2 = PackedBcq::pack(&b2);
        let plan = ExecPlan::new(&p2, &cfg);
        let _ = plan.exec_i(&x, &p, &cfg);
    }

    #[test]
    fn clone_starts_with_fresh_pools_and_same_bits() {
        let (x, b) = setup(6, 64, 32, 3);
        let p = PackedBcq::pack(&b);
        let cfg = EngineConfig::paper_default();
        let plan = ExecPlan::new(&p, &cfg);
        let y1 = plan.exec_i(&x, &p, &cfg);
        let clone = plan.clone();
        assert!(clone.calls.lock().unwrap().is_empty());
        let y2 = clone.exec_i(&x, &p, &cfg);
        assert_eq!(y1.as_slice(), y2.as_slice());
    }
}
