//! Cache-blocked, batch-blocked LUT-GEMM kernels over [`PackedBcq`] weights.
//!
//! Both kernels follow the FIGLUT pipeline: per activation row, precompute
//! one flat FFLUT per µ-column window ([`crate::lut`]); then every output
//! row *reads* its µ-bit weight keys out of the packed bit-planes instead
//! of multiplying. Work is blocked four ways:
//!
//! * **row panels** — output rows are split into contiguous panels, one per
//!   worker thread ([`crate::parallel`]);
//! * **sub-panels** — each worker walks its rows in fixed
//!   `PANEL_ROWS`-row blocks so the per-row partial accumulators stay
//!   resident while a table tile streams through them;
//! * **k-tiles** — windows are visited in cache-sized tiles
//!   (`tile_windows`), swept across the whole sub-panel before moving
//!   on, so table reads stay cache-resident while plane bits stream
//!   sequentially;
//! * **batch columns** — a batched call processes *all* B activation rows
//!   per streamed weight word: each µ-bit key is decoded once and read out
//!   of the per-key-stacked FFLUTs ([`crate::lut::FlatLuts`]) for every
//!   batch column before the next word loads, so the packed planes — the
//!   kernel's only non-resident traffic — are swept once per call instead
//!   of once per batch row, and the B reads of one key land on contiguous,
//!   line-sharing entries. The k-tile size is rescaled by B so the stacked
//!   tables stay L2-resident. Two column engines cover the batch range:
//!   below `WIDE_MIN` columns, `COL_BLOCK`-wide *register* blocks (a
//!   const-generic `[A; CB]` per row — up to `2·COL_BLOCK` independent
//!   read chains per row pair, hiding table-read latency); from
//!   `WIDE_MIN` up, *memory-backed* full-batch accumulator rows whose
//!   per-key column zips auto-vectorize into packed adds
//!   (`tile_pass_fast*_wide`).
//!
//! The final per-(row, column) fold interleaves four batch columns in
//! lockstep — the FP32-rounded accumulator chain is serial per column, so
//! independent columns hide its latency without reordering any single
//! column's operations — and the integer path narrows tables *and*
//! accumulators to i32 whenever the plan proves the group-partial bound
//! (see `Accum`), which is what lets the wide pass vectorize on plain
//! SSE2-class lanes.
//!
//! When µ divides both 64 and the scale-group size — which covers the
//! paper's operating point (µ = 4) and every power-of-two config — windows
//! are contiguous µ-bit fields of the packed words, and a monomorphized
//! fast path (`tile_pass_fast*`) extracts keys by shifting one `u64` at a
//! time, with no per-window descriptors, branches, or bounds checks in the
//! lookup loop. Ragged group tails and odd µ fall back to the generic
//! descriptor walk (`tile_pass_generic`).
//!
//! [`exec_i`] reproduces the *exact* arithmetic of the FIGLUT-I datapath
//! model: the same pre-alignment ([`AlignedVector`]), exact integer window
//! sums (associativity makes the blocking — including the batch and
//! column-block splits — invisible), and the same FP32-rounded fold
//! sequence (`figlut_gemm::ifpu::fold_partial`) per `(group, plane)` in
//! the same order — so its output is bit-identical to
//! `figlut_gemm::figlut::gemm_i` (and therefore to iFPU; DESIGN.md §3),
//! *and* each batch row is bit-identical to a batch-1 call on that row
//! alone (the invariance `figlut-serve` builds on, pinned by
//! `tests/prop_exec.rs`). [`exec_f`] accumulates window partials in native
//! `f64` in a fixed (window-order) sequence, so it tracks
//! `figlut_gemm::figlut::gemm_f` to within the scale-aware tolerance the
//! property tests assert, at much higher throughput.
//!
//! The entry points here build a throwaway [`ExecPlan`] per call; repeated
//! execution over the same weights should build the plan once and call its
//! methods instead ([`crate::plan`]).
//!
//! [`AlignedVector`]: figlut_num::align::AlignedVector

use crate::lut::{FlatLuts, Window};
use crate::packed::PackedBcq;
use crate::parallel::thread_count;
use crate::plan::ExecPlan;
use figlut_gemm::common::{add32, mul32};
use figlut_gemm::EngineConfig;
use figlut_num::Mat;

/// Rows per sub-panel: bounds the live partial-accumulator footprint
/// (`PANEL_ROWS × batch × groups × q` scalars) independently of the thread
/// count.
pub(crate) const PANEL_ROWS: usize = 64;

/// Batch columns processed per register-blocked fast-path pass (batches
/// below `WIDE_MIN`). The per-column accumulators are a `[A; CB]` with
/// `CB ≤ COL_BLOCK` monomorphized, so they live in registers — the row
/// pair then carries `2·CB` independent `acc += table[key]` chains,
/// hiding the table-read latency that serializes a batch-1 pass. 4 is the
/// sweet spot on x86-64: the pair pass holds 8 accumulator registers plus
/// keys/pointers without spilling.
const COL_BLOCK: usize = 4;

/// Batch threshold for the *wide* fast passes (`tile_pass_fast*_wide`):
/// memory-backed full-batch accumulator rows whose per-key column zips
/// auto-vectorize into packed adds. Below this, register-chain column
/// blocks win (a vector round-trip through the stack costs more than it
/// saves on a handful of lanes); from 8 columns up — one or two full
/// vectors per key — the wide pass wins and keeps widening with the
/// batch. Measured on the OPT-1.3B decode shapes (`ext-batch-scaling`).
const WIDE_MIN: usize = 8;

/// Upper bound on the wide passes' stack-resident accumulator rows;
/// larger batches fall back to `COL_BLOCK`-at-a-time register blocks
/// (correct at any batch, just not the fastest shape for 8..=64).
const WIDE_MAX: usize = 64;

/// Windows per k-tile, sized so one tile's tables stay around 256 KiB
/// (assuming 8-byte entries; half that on the narrowed integer path) —
/// comfortably L2-resident next to the streaming plane words, and each
/// tile is reused across the whole sub-panel (`PANEL_ROWS × q` passes)
/// before the next tile streams in. Measured on the OPT decode shapes,
/// smaller (L1-sized) tiles lose to per-pass loop overhead and larger
/// ones thrash L2 once k·2^µ tables outgrow it. A batched call stacks
/// `batch` tables per window, so the window count is rescaled by `batch`
/// to hold the byte budget. Always a multiple of the windows-per-word
/// count for every µ dividing 64 (the fast path needs word-aligned tile
/// boundaries).
pub(crate) fn tile_windows(mu: u32, batch: usize) -> usize {
    let kpw = if 64 % mu == 0 { (64 / mu) as usize } else { 1 };
    let t = ((262144usize >> (mu + 3)) / batch.max(1)).max(4);
    t.next_multiple_of(kpw)
}

/// Packed words one tile walk streams per (bit-plane, output row): the
/// contiguous word range covering the tile's windows. Windows cover the
/// columns gap-free and tile boundaries are word-aligned on the fast path,
/// so first-to-last word span is exactly what both the fast and generic
/// passes read. This is the unit of the `exec_streamed_words` trace
/// counter and of [`crate::ExecPlan::streamed_words`] — keeping the two on
/// one formula is what makes them reconcile exactly.
pub(crate) fn tile_span_words(tile_wins: &[Window]) -> usize {
    let first = &tile_wins[0];
    let last = &tile_wins[tile_wins.len() - 1];
    (last.start as usize + last.width as usize - 1) / 64 - first.start as usize / 64 + 1
}

/// Accumulator `Self` absorbing table entries of type `E`. Decoupling the
/// two lets `exec_i` keep exact `i64` group partials while reading *narrow*
/// `i32` tables — half the bytes per lookup, which matters because large-k
/// shapes are bound by table-read bandwidth, not arithmetic. Sign extension
/// is exact, so narrowing never changes a result (the build site proves the
/// no-overflow bound first).
pub(crate) trait Accum<E: Copy>: Copy + Default {
    /// Fold one table entry into the accumulator.
    fn absorb(&mut self, e: E);
    /// Fold another accumulator (a completed window sum) into this one.
    fn merge(&mut self, other: Self);
    /// The accumulated value as `f64`, for the final fold. Converting the
    /// native-width integer directly is bit-identical to the datapath
    /// API's `i128 as f64` (same integer value, same round-to-nearest) but
    /// is one hardware instruction instead of a softfloat libcall — this
    /// sits on the per-(row, column) fold path.
    fn to_f64(self) -> f64;
}
impl Accum<i64> for i64 {
    #[inline(always)]
    fn absorb(&mut self, e: i64) {
        *self += e;
    }
    #[inline(always)]
    fn merge(&mut self, other: i64) {
        *self += other;
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
}
impl Accum<i32> for i64 {
    #[inline(always)]
    fn absorb(&mut self, e: i32) {
        *self += e as i64;
    }
    #[inline(always)]
    fn merge(&mut self, other: i64) {
        *self += other;
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
}
/// The fully-narrow tier: i32 entries into i32 accumulators. Exact only
/// when every group partial provably fits — the plan proves
/// `group_size·max|mantissa| ≤ i32::MAX` first, which bounds every window
/// sum, build intermediate, and running group partial (a group spans
/// `group_size` columns, so any partial sum of its ±mantissa terms is
/// within that bound). The payoff over `i32 → i64`: the batched pass's
/// contiguous per-key column reads and its accumulators are both 32-bit
/// lanes, so the column block vectorizes on plain SSE2 (`paddd`) instead
/// of needing widening loads.
impl Accum<i32> for i32 {
    #[inline(always)]
    fn absorb(&mut self, e: i32) {
        *self += e;
    }
    #[inline(always)]
    fn merge(&mut self, other: i32) {
        *self += other;
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
}
impl Accum<f64> for f64 {
    #[inline(always)]
    fn absorb(&mut self, e: f64) {
        *self += e;
    }
    #[inline(always)]
    fn merge(&mut self, other: f64) {
        *self += other;
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
}

/// Fast tile pass for contiguous full-width windows (`µ | 64` and
/// `µ | group_size`) over one output row and the `CB` batch columns
/// starting at `col0`: walk the packed words of one plane row, peel µ-bit
/// keys by shifting, read each key's `CB` contiguous per-key-stacked
/// entries, and accumulate each scale group's reads in `CB` register
/// accumulators before spilling to
/// `prow[(group·q + plane)·batch + col0 + j]`.
///
/// `win_lo` must be word-aligned (a multiple of `64/MU`), which
/// [`tile_windows`] guarantees for tile boundaries. A batch-1 call is the
/// `CB = 1` instantiation with `col0 = 0` — the classic scalar pass.
#[allow(clippy::too_many_arguments)]
fn tile_pass_fast<E: Copy, A: Accum<E>, const MU: usize, const CB: usize>(
    words: &[u64],
    entries: &[E],
    batch: usize,
    col0: usize,
    win_lo: usize,
    win_hi: usize,
    wpg: usize,
    plane: usize,
    q: usize,
    prow: &mut [A],
) {
    if win_hi == win_lo {
        return;
    }
    let kpw = 64 / MU; // windows (keys) per packed word
    let stride = 1usize << MU;
    let mask = stride - 1;
    let bstride = batch * stride;
    let mut tables = entries[win_lo * bstride..win_hi * bstride].chunks_exact(bstride);
    let mut g = win_lo / wpg;
    let mut left = wpg - (win_lo % wpg);
    let mut acc = [A::default(); CB];
    let mut remaining = win_hi - win_lo;
    for &wordv in &words[win_lo / kpw..(win_hi).div_ceil(kpw)] {
        let mut bits = wordv;
        for table in tables.by_ref().take(kpw.min(remaining)) {
            let key = (bits as usize) & mask;
            bits >>= MU;
            // Per-key column stacking: the CB reads are contiguous (they
            // share cache lines — see `FlatLuts`).
            let sub = &table[key * batch + col0..key * batch + col0 + CB];
            for j in 0..CB {
                acc[j].absorb(sub[j]);
            }
            left -= 1;
            if left == 0 {
                let d0 = (g * q + plane) * batch + col0;
                for (j, a) in acc.iter_mut().enumerate() {
                    prow[d0 + j].merge(*a);
                    *a = A::default();
                }
                g += 1;
                left = wpg;
            }
        }
        remaining = remaining.saturating_sub(kpw);
    }
    // Tile ended mid-group: spill the partial group sums.
    if left != wpg {
        let d0 = (g * q + plane) * batch + col0;
        for (j, a) in acc.iter().enumerate() {
            prow[d0 + j].merge(*a);
        }
    }
}

/// [`tile_pass_fast`] over a *pair* of output rows sharing one table
/// walk: `2·CB` independent accumulator chains keep that many table loads
/// in flight — a single-row single-column pass is bound by its serial
/// `acc += table[key]` dependency chain, not by arithmetic — and each
/// streamed table line is reused by both rows while resident.
#[allow(clippy::too_many_arguments)]
fn tile_pass_fast2<E: Copy, A: Accum<E>, const MU: usize, const CB: usize>(
    words0: &[u64],
    words1: &[u64],
    entries: &[E],
    batch: usize,
    col0: usize,
    win_lo: usize,
    win_hi: usize,
    wpg: usize,
    plane: usize,
    q: usize,
    prow0: &mut [A],
    prow1: &mut [A],
) {
    if win_hi == win_lo {
        return;
    }
    let kpw = 64 / MU;
    let stride = 1usize << MU;
    let mask = stride - 1;
    let bstride = batch * stride;
    let mut tables = entries[win_lo * bstride..win_hi * bstride].chunks_exact(bstride);
    let mut g = win_lo / wpg;
    let mut left = wpg - (win_lo % wpg);
    let mut acc0 = [A::default(); CB];
    let mut acc1 = [A::default(); CB];
    let mut remaining = win_hi - win_lo;
    let lo = win_lo / kpw;
    let hi = win_hi.div_ceil(kpw);
    for (&w0, &w1) in words0[lo..hi].iter().zip(&words1[lo..hi]) {
        let mut bits0 = w0;
        let mut bits1 = w1;
        for table in tables.by_ref().take(kpw.min(remaining)) {
            let k0 = (bits0 as usize) & mask;
            let k1 = (bits1 as usize) & mask;
            bits0 >>= MU;
            bits1 >>= MU;
            // Per-key column stacking: each row's CB reads are contiguous
            // (they share cache lines — see `FlatLuts`).
            let sub0 = &table[k0 * batch + col0..k0 * batch + col0 + CB];
            let sub1 = &table[k1 * batch + col0..k1 * batch + col0 + CB];
            for j in 0..CB {
                acc0[j].absorb(sub0[j]);
                acc1[j].absorb(sub1[j]);
            }
            left -= 1;
            if left == 0 {
                let d0 = (g * q + plane) * batch + col0;
                for j in 0..CB {
                    prow0[d0 + j].merge(acc0[j]);
                    prow1[d0 + j].merge(acc1[j]);
                    acc0[j] = A::default();
                    acc1[j] = A::default();
                }
                g += 1;
                left = wpg;
            }
        }
        remaining = remaining.saturating_sub(kpw);
    }
    if left != wpg {
        let d0 = (g * q + plane) * batch + col0;
        for j in 0..CB {
            prow0[d0 + j].merge(acc0[j]);
            prow1[d0 + j].merge(acc1[j]);
        }
    }
}

/// Single-row variant of [`tile_pass_fast2_wide`] (ragged last row).
#[allow(clippy::too_many_arguments)]
fn tile_pass_fast_wide<E: Copy, A: Accum<E>, const MU: usize>(
    words: &[u64],
    entries: &[E],
    batch: usize,
    win_lo: usize,
    win_hi: usize,
    wpg: usize,
    plane: usize,
    q: usize,
    prow: &mut [A],
    accs: &mut [A],
) {
    if win_hi == win_lo {
        return;
    }
    let kpw = 64 / MU;
    let stride = 1usize << MU;
    let mask = stride - 1;
    let bstride = batch * stride;
    let mut tables = entries[win_lo * bstride..win_hi * bstride].chunks_exact(bstride);
    let mut g = win_lo / wpg;
    let mut left = wpg - (win_lo % wpg);
    accs.fill(A::default());
    let mut remaining = win_hi - win_lo;
    for &wordv in &words[win_lo / kpw..win_hi.div_ceil(kpw)] {
        let mut bits = wordv;
        for table in tables.by_ref().take(kpw.min(remaining)) {
            let key = (bits as usize) & mask;
            bits >>= MU;
            let sub = &table[key * batch..key * batch + batch];
            let r4 = batch & !3;
            for (ac, sc) in accs[..r4]
                .chunks_exact_mut(4)
                .zip(sub[..r4].chunks_exact(4))
            {
                for j in 0..4 {
                    ac[j].absorb(sc[j]);
                }
            }
            for (a, &e) in accs[r4..].iter_mut().zip(&sub[r4..]) {
                a.absorb(e);
            }
            left -= 1;
            if left == 0 {
                let d0 = (g * q + plane) * batch;
                for (j, a) in accs.iter_mut().enumerate() {
                    prow[d0 + j].merge(*a);
                    *a = A::default();
                }
                g += 1;
                left = wpg;
            }
        }
        remaining = remaining.saturating_sub(kpw);
    }
    if left != wpg {
        let d0 = (g * q + plane) * batch;
        for (j, a) in accs.iter().enumerate() {
            prow[d0 + j].merge(*a);
        }
    }
}

/// Full-batch-width [`tile_pass_fast2`]: the per-row accumulators are
/// *memory-backed* `batch`-wide arrays and every per-key operation is a
/// contiguous `accs[j] += sub[j]` zip over the whole batch, which the loop
/// vectorizer lowers to packed adds (the register-array passes stay scalar
/// — LLVM's SLP pass does not form vector PHIs for loop-carried register
/// accumulators). Used when the batch is wide enough that the vectorized
/// zip beats `COL_BLOCK`-at-a-time register chains.
#[allow(clippy::too_many_arguments)]
fn tile_pass_fast2_wide<E: Copy, A: Accum<E>, const MU: usize>(
    words0: &[u64],
    words1: &[u64],
    entries: &[E],
    batch: usize,
    win_lo: usize,
    win_hi: usize,
    wpg: usize,
    plane: usize,
    q: usize,
    prow0: &mut [A],
    prow1: &mut [A],
    accs0: &mut [A],
    accs1: &mut [A],
) {
    if win_hi == win_lo {
        return;
    }
    let kpw = 64 / MU;
    let stride = 1usize << MU;
    let mask = stride - 1;
    let bstride = batch * stride;
    let mut tables = entries[win_lo * bstride..win_hi * bstride].chunks_exact(bstride);
    let mut g = win_lo / wpg;
    let mut left = wpg - (win_lo % wpg);
    accs0.fill(A::default());
    accs1.fill(A::default());
    let mut remaining = win_hi - win_lo;
    let lo = win_lo / kpw;
    let hi = win_hi.div_ceil(kpw);
    for (&w0, &w1) in words0[lo..hi].iter().zip(&words1[lo..hi]) {
        let mut bits0 = w0;
        let mut bits1 = w1;
        for table in tables.by_ref().take(kpw.min(remaining)) {
            let k0 = (bits0 as usize) & mask;
            let k1 = (bits1 as usize) & mask;
            bits0 >>= MU;
            bits1 >>= MU;
            let sub0 = &table[k0 * batch..k0 * batch + batch];
            let sub1 = &table[k1 * batch..k1 * batch + batch];
            // Exact-4 chunks: straight-line column adds with contiguous
            // loads and memory-backed accumulators — the shape SLP lowers
            // to packed adds without a runtime-checked vector preamble.
            let r4 = batch & !3;
            for (ac, sc) in accs0[..r4]
                .chunks_exact_mut(4)
                .zip(sub0[..r4].chunks_exact(4))
            {
                for j in 0..4 {
                    ac[j].absorb(sc[j]);
                }
            }
            for (a, &e) in accs0[r4..].iter_mut().zip(&sub0[r4..]) {
                a.absorb(e);
            }
            for (ac, sc) in accs1[..r4]
                .chunks_exact_mut(4)
                .zip(sub1[..r4].chunks_exact(4))
            {
                for j in 0..4 {
                    ac[j].absorb(sc[j]);
                }
            }
            for (a, &e) in accs1[r4..].iter_mut().zip(&sub1[r4..]) {
                a.absorb(e);
            }
            left -= 1;
            if left == 0 {
                let d0 = (g * q + plane) * batch;
                for (j, (a0, a1)) in accs0.iter_mut().zip(accs1.iter_mut()).enumerate() {
                    prow0[d0 + j].merge(*a0);
                    prow1[d0 + j].merge(*a1);
                    *a0 = A::default();
                    *a1 = A::default();
                }
                g += 1;
                left = wpg;
            }
        }
        remaining = remaining.saturating_sub(kpw);
    }
    if left != wpg {
        let d0 = (g * q + plane) * batch;
        for (j, (a0, a1)) in accs0.iter().zip(accs1.iter()).enumerate() {
            prow0[d0 + j].merge(*a0);
            prow1[d0 + j].merge(*a1);
        }
    }
}

/// Generic tile pass: per-window descriptors, arbitrary widths/starts
/// (ragged group tails, µ ∤ 64). The key of each descriptor window is
/// decoded from the weight bits once, then read for every batch column.
#[allow(clippy::too_many_arguments)]
fn tile_pass_generic<E: Copy, A: Accum<E>>(
    words: &[u64],
    entries: &[E],
    batch: usize,
    shift: u32,
    tile: &[Window],
    win_lo: usize,
    plane: usize,
    q: usize,
    prow: &mut [A],
) {
    for (wo, win) in tile.iter().enumerate() {
        let start = win.start as usize;
        let wi = start >> 6;
        let off = (start & 63) as u32;
        let mut bits = words[wi] >> off;
        if off + win.width > 64 {
            // width ≤ 8 ⇒ off ≥ 57 here, so the shift below is < 64.
            bits |= words[wi + 1] << (64 - off);
        }
        let key = (bits as usize) & ((1usize << win.width) - 1);
        let d0 = (win.group as usize * q + plane) * batch;
        let base = ((win_lo + wo) << shift | key) * batch;
        for b in 0..batch {
            prow[d0 + b].absorb(entries[base + b]);
        }
    }
}

/// Invoke `$mac!(MU, CB)` for the runtime `(mu, cb)` pair — the fast-path
/// monomorphization grid (µ ∈ {1,2,4,8} are the divisors of 64 in range,
/// cb ∈ 1..=[`COL_BLOCK`]).
macro_rules! dispatch_mu_cb {
    ($mu:expr, $cb:expr, $mac:ident) => {
        match ($mu, $cb) {
            (1, 1) => $mac!(1, 1),
            (1, 2) => $mac!(1, 2),
            (1, 3) => $mac!(1, 3),
            (1, 4) => $mac!(1, 4),
            (2, 1) => $mac!(2, 1),
            (2, 2) => $mac!(2, 2),
            (2, 3) => $mac!(2, 3),
            (2, 4) => $mac!(2, 4),
            (4, 1) => $mac!(4, 1),
            (4, 2) => $mac!(4, 2),
            (4, 3) => $mac!(4, 3),
            (4, 4) => $mac!(4, 4),
            (8, 1) => $mac!(8, 1),
            (8, 2) => $mac!(8, 2),
            (8, 3) => $mac!(8, 3),
            (8, 4) => $mac!(8, 4),
            _ => unreachable!("64 % µ == 0 with µ ∈ 1..=8, 1 ≤ cb ≤ COL_BLOCK"),
        }
    };
}

/// Accumulate all window partials of rows `r0..r0+rows` for every batch
/// column: the shared tile walk of both kernels. `partials` is
/// `rows × groups × q × batch` in `[row][group][plane][column]` order —
/// columns innermost, so both the kernel's per-key spills and the final
/// fold's column-interleaved reads are contiguous.
pub(crate) fn accumulate_panel<E: Copy, A: Accum<E>>(
    w: &PackedBcq,
    wins: &[Window],
    luts: &FlatLuts<E>,
    r0: usize,
    rows: usize,
    partials: &mut [A],
) {
    let batch = luts.batch();
    let q = w.bits();
    let gq = w.groups() * q;
    let prow_len = batch * gq;
    let shift = luts.mu();
    let mu = shift as usize;
    let entries = luts.entries();
    let gs = w.group_size();
    let fast = 64 % mu == 0 && gs.is_multiple_of(mu);
    let wpg = gs / mu; // windows per group (fast path only)
    let tile = tile_windows(shift, batch);
    let wide = (WIDE_MIN..=WIDE_MAX).contains(&batch);
    // Traffic accounting, off the walk itself: the words a panel pass
    // streams are fully determined by the window plan, so tally them in
    // one cheap pre-pass (guarded so the disabled path costs one load).
    if figlut_trace::enabled() {
        let span: u64 = wins.chunks(tile).map(|t| tile_span_words(t) as u64).sum();
        let tiles = wins.chunks(tile).len() as u64;
        figlut_trace::counters::bump_exec_streamed_words(span * (q * rows) as u64);
        figlut_trace::counters::bump_exec_ktiles(tiles * rows as u64);
    }
    let mut wacc0 = [A::default(); WIDE_MAX];
    let mut wacc1 = [A::default(); WIDE_MAX];
    for (t, tile_wins) in wins.chunks(tile).enumerate() {
        let win_lo = t * tile;
        let win_hi = win_lo + tile_wins.len();
        if fast && wide {
            let (a0, a1) = (&mut wacc0[..batch], &mut wacc1[..batch]);
            let mut pairs = partials[..rows * prow_len].chunks_mut(2 * prow_len);
            let mut ri = 0;
            for chunk in pairs.by_ref() {
                if chunk.len() == 2 * prow_len {
                    let (p0, p1) = chunk.split_at_mut(prow_len);
                    let (ra, rb) = (r0 + ri, r0 + ri + 1);
                    for i in 0..q {
                        let (w0, w1) = (w.plane_row(i, ra), w.plane_row(i, rb));
                        macro_rules! pass2w {
                            ($m:literal) => {
                                tile_pass_fast2_wide::<E, A, $m>(
                                    w0, w1, entries, batch, win_lo, win_hi, wpg, i, q, p0, p1, a0,
                                    a1,
                                )
                            };
                        }
                        match mu {
                            1 => pass2w!(1),
                            2 => pass2w!(2),
                            4 => pass2w!(4),
                            8 => pass2w!(8),
                            _ => unreachable!("64 % µ == 0 with µ ∈ 1..=8"),
                        }
                    }
                } else {
                    let prow = &mut chunk[..prow_len];
                    let r = r0 + ri;
                    for i in 0..q {
                        let words = w.plane_row(i, r);
                        macro_rules! pass1w {
                            ($m:literal) => {
                                tile_pass_fast_wide::<E, A, $m>(
                                    words, entries, batch, win_lo, win_hi, wpg, i, q, prow, a0,
                                )
                            };
                        }
                        match mu {
                            1 => pass1w!(1),
                            2 => pass1w!(2),
                            4 => pass1w!(4),
                            8 => pass1w!(8),
                            _ => unreachable!("64 % µ == 0 with µ ∈ 1..=8"),
                        }
                    }
                }
                ri += 2;
            }
        } else if fast {
            // Row pairs × column blocks: up to 2·COL_BLOCK independent
            // accumulator chains per pass hide table-read latency (see
            // [`tile_pass_fast2`]); a ragged last row falls back to the
            // single-row pass, a ragged column tail to a narrower block.
            let mut pairs = partials[..rows * prow_len].chunks_mut(2 * prow_len);
            let mut ri = 0;
            for chunk in pairs.by_ref() {
                if chunk.len() == 2 * prow_len {
                    let (p0, p1) = chunk.split_at_mut(prow_len);
                    let (ra, rb) = (r0 + ri, r0 + ri + 1);
                    for i in 0..q {
                        let (w0, w1) = (w.plane_row(i, ra), w.plane_row(i, rb));
                        let mut col0 = 0;
                        while col0 < batch {
                            let cb = (batch - col0).min(COL_BLOCK);
                            macro_rules! pass2 {
                                ($m:literal, $c:literal) => {
                                    tile_pass_fast2::<E, A, $m, $c>(
                                        w0, w1, entries, batch, col0, win_lo, win_hi, wpg, i, q,
                                        p0, p1,
                                    )
                                };
                            }
                            dispatch_mu_cb!(mu, cb, pass2);
                            col0 += cb;
                        }
                    }
                } else {
                    // Odd tail row.
                    let prow = &mut chunk[..prow_len];
                    let r = r0 + ri;
                    for i in 0..q {
                        let words = w.plane_row(i, r);
                        let mut col0 = 0;
                        while col0 < batch {
                            let cb = (batch - col0).min(COL_BLOCK);
                            macro_rules! pass1 {
                                ($m:literal, $c:literal) => {
                                    tile_pass_fast::<E, A, $m, $c>(
                                        words, entries, batch, col0, win_lo, win_hi, wpg, i, q,
                                        prow,
                                    )
                                };
                            }
                            dispatch_mu_cb!(mu, cb, pass1);
                            col0 += cb;
                        }
                    }
                }
                ri += 2;
            }
        } else {
            for (ri, prow) in partials.chunks_mut(prow_len).take(rows).enumerate() {
                let r = r0 + ri;
                for i in 0..q {
                    let words = w.plane_row(i, r);
                    tile_pass_generic(words, entries, batch, shift, tile_wins, win_lo, i, q, prow);
                }
            }
        }
    }
}

/// One worker's share of `exec_i`: sub-panel blocks of integer partials,
/// then the datapath model's exact FP32-rounded fold per (output row,
/// batch column). `panel` is the worker's `rows × batch` slice of the
/// transposed output; `gsum_folds` is `batch × groups`; `partials` is
/// caller-owned scratch (reused allocation-free across calls).
#[allow(clippy::too_many_arguments)]
pub(crate) fn panel_i<E: Copy, A: Accum<E>>(
    w: &PackedBcq,
    wins: &[Window],
    luts: &FlatLuts<E>,
    gsum_folds: &[f64],
    lambdas: &[f64],
    r0: usize,
    panel: &mut [f64],
    partials: &mut Vec<A>,
) {
    let batch = luts.batch();
    debug_assert_eq!(lambdas.len(), batch);
    let q = w.bits();
    let groups = w.groups();
    let gq = groups * q;
    let prow_len = batch * gq;
    let rows = panel.len() / batch;
    let pr = PANEL_ROWS;
    partials.clear();
    partials.resize(pr.min(rows) * prow_len, A::default());
    for (s, sub) in panel.chunks_mut(pr * batch).enumerate() {
        let sr0 = r0 + s * pr;
        let sub_rows = sub.len() / batch;
        let partials = &mut partials[..sub_rows * prow_len];
        partials.fill(A::default());
        accumulate_panel(w, wins, luts, sr0, sub_rows, partials);
        // Fold in exactly the datapath model's order — per group, plane
        // partials then the offset term, via the model's own
        // `fold_partial`; the row-invariant `mul32(Σx, λ)` of the offset
        // term arrives pre-folded in `gsum_folds`, so its fold stays
        // open-coded. Each batch column folds with its own λ and Σx, so
        // every (row, column) result is bit-identical to a batch-1 call.
        for (ri, out_row) in sub.chunks_mut(batch).enumerate() {
            let r = sr0 + ri;
            let scales = w.row_scales(r);
            let prow = &partials[ri * prow_len..(ri + 1) * prow_len];
            // Partials are `[group][plane][column]`, so column b of fold
            // slot gi is `prow[gi·batch + b]`. Each column's fold sequence
            // is exactly the datapath model's — `fold(acc, a, p) =
            // add32(acc, mul32(a, mul32(p, λ)))` is
            // `figlut_gemm::ifpu::fold_partial` with the i128 partial
            // replaced by the accumulator's own width ([`Accum::to_f64`]
            // explains why that is bit-identical) — but *four columns are
            // folded in lockstep*: the FP32-rounded accumulator chain is
            // serial per column (~3 dependent rounding steps per slot), so
            // interleaving independent columns hides most of its latency.
            // Interleaving never reorders any single column's operations,
            // so results stay bit-identical to batch-1 folds.
            let fold = |acc: f64, a: f64, p: A, lambda: f64| -> f64 {
                add32(acc, mul32(a, mul32(p.to_f64(), lambda)))
            };
            let zs = w.has_offset().then(|| w.row_offsets(r));
            let mut b0 = 0;
            while b0 + 4 <= batch {
                let mut acc = [0.0f64; 4];
                let lam = [
                    lambdas[b0],
                    lambdas[b0 + 1],
                    lambdas[b0 + 2],
                    lambdas[b0 + 3],
                ];
                if let Some(zs) = zs {
                    for g in 0..groups {
                        for i in 0..q {
                            let a = scales[g * q + i];
                            let base = (g * q + i) * batch + b0;
                            for j in 0..4 {
                                acc[j] = fold(acc[j], a, prow[base + j], lam[j]);
                            }
                        }
                        for j in 0..4 {
                            let gf = gsum_folds[(b0 + j) * groups + g];
                            acc[j] = add32(acc[j], mul32(zs[g], gf));
                        }
                    }
                } else {
                    for (gi, &a) in scales.iter().enumerate() {
                        let base = gi * batch + b0;
                        for j in 0..4 {
                            acc[j] = fold(acc[j], a, prow[base + j], lam[j]);
                        }
                    }
                }
                out_row[b0..b0 + 4].copy_from_slice(&acc);
                b0 += 4;
            }
            for (b, out) in out_row.iter_mut().enumerate().skip(b0) {
                let lambda = lambdas[b];
                let mut acc = 0.0;
                if let Some(zs) = zs {
                    let gsum_fold = &gsum_folds[b * groups..(b + 1) * groups];
                    for g in 0..groups {
                        for i in 0..q {
                            acc = fold(
                                acc,
                                scales[g * q + i],
                                prow[(g * q + i) * batch + b],
                                lambda,
                            );
                        }
                        acc = add32(acc, mul32(zs[g], gsum_fold[g]));
                    }
                } else {
                    for (gi, &a) in scales.iter().enumerate() {
                        acc = fold(acc, a, prow[gi * batch + b], lambda);
                    }
                }
                *out = acc;
            }
        }
    }
}

/// One worker's share of `exec_f`: f64 partials, plain f64 fold. Same
/// layout contract as [`panel_i`]; `gsums` is `batch × groups`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn panel_f(
    w: &PackedBcq,
    wins: &[Window],
    luts: &FlatLuts<f64>,
    gsums: &[f64],
    r0: usize,
    panel: &mut [f64],
    partials: &mut Vec<f64>,
) {
    let batch = luts.batch();
    let q = w.bits();
    let groups = w.groups();
    let gq = groups * q;
    let prow_len = batch * gq;
    let rows = panel.len() / batch;
    let pr = PANEL_ROWS;
    partials.clear();
    partials.resize(pr.min(rows) * prow_len, 0.0);
    for (s, sub) in panel.chunks_mut(pr * batch).enumerate() {
        let sr0 = r0 + s * pr;
        let sub_rows = sub.len() / batch;
        let partials = &mut partials[..sub_rows * prow_len];
        partials.fill(0.0);
        accumulate_panel(w, wins, luts, sr0, sub_rows, partials);
        for (ri, out_row) in sub.chunks_mut(batch).enumerate() {
            let r = sr0 + ri;
            let scales = w.row_scales(r);
            let prow = &partials[ri * prow_len..(ri + 1) * prow_len];
            for (b, out) in out_row.iter_mut().enumerate() {
                let mut acc = 0.0;
                if w.has_offset() {
                    let gsum = &gsums[b * groups..(b + 1) * groups];
                    let zs = w.row_offsets(r);
                    for g in 0..groups {
                        for i in 0..q {
                            acc += scales[g * q + i] * prow[(g * q + i) * batch + b];
                        }
                        acc += zs[g] * gsum[g];
                    }
                } else {
                    for (gi, &a) in scales.iter().enumerate() {
                        acc += a * prow[gi * batch + b];
                    }
                }
                *out = acc;
            }
        }
    }
}

/// The window width the kernels actually use. The datapath models read
/// µ-wide windows because that is the hardware's LUT size; the *software*
/// backend is free to widen them — per-(group, plane) partials are sums
/// over whole groups, and integer addition is associative, so any window
/// decomposition of a group yields bit-identical `exec_i` results (and
/// `exec_f` stays within its tolerance). Wider windows halve or quarter
/// the lookup count at the price of bigger tables; 8 (256-entry, 2 KiB
/// tables) is the sweet spot, mirroring the paper's own µ-vs-table-power
/// trade-off (Fig. 8). Falls back to the configured µ (generic descriptor
/// walk) when the group size has no even divisor in range.
pub(crate) fn effective_mu(gs: usize, cfg_mu: u32) -> usize {
    for e in [8usize, 4, 2] {
        if gs.is_multiple_of(e) {
            return e;
        }
    }
    cfg_mu as usize
}

/// Validate shapes/config shared by both kernels; returns `(batch, m, n)`.
pub(crate) fn check(x: &Mat<f64>, w: &PackedBcq, cfg: &EngineConfig) -> (usize, usize, usize) {
    assert!((1..=8).contains(&cfg.mu), "µ = {} unsupported", cfg.mu);
    let (batch, n) = x.shape();
    let (m, wn) = w.shape();
    assert_eq!(
        n, wn,
        "activation width {n} does not match weight reduction dim {wn}"
    );
    (batch, m, n)
}

/// FIGLUT-I fast path: `y = x·Wᵀ`, bit-identical to
/// `figlut_gemm::figlut::gemm_i` (and hence to iFPU), using `threads`
/// worker threads. Builds a throwaway [`ExecPlan`]; callers that execute
/// the same weights repeatedly should cache one.
///
/// # Panics
///
/// Panics on shape mismatch or `µ ∉ 1..=8`.
pub fn exec_i_threads(x: &Mat<f64>, w: &PackedBcq, cfg: &EngineConfig, threads: usize) -> Mat<f64> {
    ExecPlan::new(w, cfg).exec_i_threads(x, w, cfg, threads)
}

/// [`exec_i_threads`] with the default worker count
/// ([`crate::parallel::thread_count`]; override via `FIGLUT_EXEC_THREADS`).
pub fn exec_i(x: &Mat<f64>, w: &PackedBcq, cfg: &EngineConfig) -> Mat<f64> {
    exec_i_threads(x, w, cfg, thread_count())
}

/// FIGLUT-F fast path: `y = x·Wᵀ` with `f64` accumulation, tracking
/// `figlut_gemm::figlut::gemm_f` within scale-aware tolerance, using
/// `threads` worker threads. Builds a throwaway [`ExecPlan`]; callers that
/// execute the same weights repeatedly should cache one.
///
/// # Panics
///
/// Panics on shape mismatch or `µ ∉ 1..=8`.
pub fn exec_f_threads(x: &Mat<f64>, w: &PackedBcq, cfg: &EngineConfig, threads: usize) -> Mat<f64> {
    ExecPlan::new(w, cfg).exec_f_threads(x, w, cfg, threads)
}

/// [`exec_f_threads`] with the default worker count
/// ([`crate::parallel::thread_count`]; override via `FIGLUT_EXEC_THREADS`).
pub fn exec_f(x: &Mat<f64>, w: &PackedBcq, cfg: &EngineConfig) -> Mat<f64> {
    exec_f_threads(x, w, cfg, thread_count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use figlut_gemm::figlut::{gemm_f, gemm_i};
    use figlut_quant::bcq::{BcqParams, BcqWeight};
    use figlut_quant::uniform::{rtn, RtnParams};

    fn setup(m: usize, n: usize, bits: u32) -> (Mat<f64>, BcqWeight) {
        let w = Mat::from_fn(m, n, |r, c| ((r * n + c) as f64 * 0.201).sin() * 0.5);
        let b = BcqWeight::quantize(&w, BcqParams::per_row(bits));
        let x = Mat::from_fn(3, n, |bb, c| ((bb * n + c) as f64 * 0.063).cos());
        (x, b)
    }

    #[test]
    fn exec_i_bit_identical_to_gemm_i() {
        for (m, n, bits) in [(4, 32, 2), (6, 48, 3), (5, 130, 4), (1, 7, 1)] {
            let (x, b) = setup(m, n, bits);
            let cfg = EngineConfig::paper_default();
            let p = PackedBcq::pack(&b);
            for threads in [1usize, 3] {
                let ye = exec_i_threads(&x, &p, &cfg, threads);
                let ym = gemm_i(&x, &b, &cfg);
                assert_eq!(
                    ye.as_slice(),
                    ym.as_slice(),
                    "m={m} n={n} q={bits} t={threads}"
                );
            }
        }
    }

    #[test]
    fn exec_i_bit_identical_all_mu() {
        // Per-row scales (gs = 40, even): `effective_mu` widens every
        // configured µ to 8, so all eight iterations take the fast path.
        let (x, b) = setup(4, 40, 3);
        let p = PackedBcq::pack(&b);
        // gs = 15 (no even divisor): `effective_mu` keeps the configured
        // µ, so µ ∈ {3, 5, 6, 7} (64 % µ ≠ 0) and µ ∈ {2, 4, 8}
        // (15 % µ ≠ 0, ragged tails) all walk the generic descriptor
        // path; only µ = 1 stays fast. Batch 3 exercises the batched
        // variants of both walks.
        let w9 = Mat::from_fn(5, 45, |r, c| ((r * 45 + c) as f64 * 0.201).sin() * 0.5);
        let b9 = BcqWeight::quantize(&w9, BcqParams::grouped(3, 15));
        let x9 = Mat::from_fn(3, 45, |bb, c| ((bb * 45 + c) as f64 * 0.063).cos());
        let p9 = PackedBcq::pack(&b9);
        for mu in 1..=8u32 {
            let cfg = EngineConfig {
                mu,
                ..EngineConfig::paper_default()
            };
            assert_eq!(
                exec_i(&x, &p, &cfg).as_slice(),
                gemm_i(&x, &b, &cfg).as_slice(),
                "fast µ={mu}"
            );
            assert_eq!(
                exec_i(&x9, &p9, &cfg).as_slice(),
                gemm_i(&x9, &b9, &cfg).as_slice(),
                "generic µ={mu}"
            );
        }
    }

    #[test]
    fn exec_i_spans_sub_panels_and_tiles() {
        // m > PANEL_ROWS forces multiple sub-panels; n > 64·µ spans words.
        let m = PANEL_ROWS + 17;
        let (x, b) = setup(m, 288, 2);
        let cfg = EngineConfig::paper_default();
        let p = PackedBcq::pack(&b);
        assert_eq!(
            exec_i_threads(&x, &p, &cfg, 2).as_slice(),
            gemm_i(&x, &b, &cfg).as_slice()
        );
    }

    #[test]
    fn batched_call_rows_match_single_row_calls() {
        // The batch-blocking theorem at unit-test scale, with batch sizes
        // spanning both column engines (1..=7 covers COL_BLOCK register
        // blocks plus ragged 1/2/3-column tails; 8..=9 the wide
        // memory-backed pass) over an odd row count, so the odd-tail-row
        // variant of every pass runs too: each row of one batched call
        // equals the batch-1 call on that row alone, bit for bit (the
        // property suite widens this to arbitrary shapes).
        let (_, b) = setup(9, 96, 3);
        let cfg = EngineConfig::paper_default();
        let p = PackedBcq::pack(&b);
        let x9 = Mat::from_fn(9, 96, |bb, c| ((bb * 96 + c) as f64 * 0.063).cos());
        for batch in 1..=9usize {
            let x = Mat::from_fn(batch, 96, |bb, c| x9[(bb, c)]);
            let batched = exec_i_threads(&x, &p, &cfg, 2);
            for bb in 0..batch {
                let row = Mat::from_fn(1, 96, |_, c| x[(bb, c)]);
                let solo = exec_i_threads(&row, &p, &cfg, 1);
                assert_eq!(batched.row(bb), solo.row(0), "B={batch} row {bb}");
            }
        }
    }

    #[test]
    fn tile_windows_rescales_with_batch_and_stays_word_aligned() {
        for mu in [1u32, 2, 4, 8] {
            let kpw = 64 / mu as usize;
            let base = tile_windows(mu, 1);
            assert_eq!(base, (262144usize >> (mu + 3)).max(4), "µ={mu} base");
            for batch in [1usize, 2, 3, 7, 16, 100_000] {
                let t = tile_windows(mu, batch);
                assert!(t >= kpw, "µ={mu} B={batch}: tile {t} < one word");
                assert!(t.is_multiple_of(kpw), "µ={mu} B={batch}: tile {t} ragged");
                assert!(t <= base, "µ={mu} B={batch}: tile grew");
            }
        }
        // µ ∤ 64 (generic walk): no alignment constraint, still positive.
        assert!(tile_windows(3, 9) >= 4);
    }

    #[test]
    fn exec_f_tracks_gemm_f() {
        let (x, b) = setup(6, 64, 3);
        let cfg = EngineConfig::paper_default();
        let p = PackedBcq::pack(&b);
        let ye = exec_f(&x, &p, &cfg);
        let ym = gemm_f(&x, &b, &cfg);
        for bb in 0..x.rows() {
            let xs: f64 = x.row(bb).iter().map(|v| v.abs()).sum();
            for r in 0..6 {
                let denom = xs.max(1.0);
                assert!(
                    ((ye[(bb, r)] - ym[(bb, r)]) / denom).abs() < 1e-4,
                    "({bb},{r}): {} vs {}",
                    ye[(bb, r)],
                    ym[(bb, r)]
                );
            }
        }
    }

    #[test]
    fn grouped_scales_and_ragged_tail() {
        // gs = 10 with µ = 4: `effective_mu` narrows to 2 (the largest
        // even divisor), so this runs the fast path at MU = 2 with five
        // windows per group and tile boundaries landing mid-group;
        // n = 70 spans words. (The truly ragged generic walk is pinned by
        // `exec_i_bit_identical_all_mu`'s gs = 15 half.)
        let w = Mat::from_fn(7, 70, |r, c| ((r * 70 + c) as f64 * 0.113).sin());
        let b = BcqWeight::quantize(&w, BcqParams::grouped(3, 10));
        let x = Mat::from_fn(2, 70, |bb, c| ((bb + c) as f64 * 0.091).cos());
        let cfg = EngineConfig::paper_default();
        let p = PackedBcq::pack(&b);
        assert_eq!(
            exec_i_threads(&x, &p, &cfg, 4).as_slice(),
            gemm_i(&x, &b, &cfg).as_slice()
        );
    }

    #[test]
    fn grouped_scales_fast_path() {
        // gs = 12 with µ = 4 → full-width windows, several groups per tile.
        let w = Mat::from_fn(9, 132, |r, c| ((r * 132 + c) as f64 * 0.119).sin());
        let b = BcqWeight::quantize(&w, BcqParams::grouped(2, 12));
        let x = Mat::from_fn(2, 132, |bb, c| ((bb + c) as f64 * 0.087).cos());
        let cfg = EngineConfig::paper_default();
        let p = PackedBcq::pack(&b);
        assert_eq!(
            exec_i_threads(&x, &p, &cfg, 3).as_slice(),
            gemm_i(&x, &b, &cfg).as_slice()
        );
    }

    #[test]
    fn uniform_via_bcq_offset_path() {
        let w = Mat::from_fn(5, 32, |r, c| ((r * 32 + c) as f64 * 0.157).sin());
        let u = rtn(&w, RtnParams::per_row(4));
        let b = BcqWeight::from_uniform(&u);
        let x = Mat::from_fn(2, 32, |bb, c| ((bb + c) as f64 * 0.091).cos());
        let cfg = EngineConfig::paper_default();
        let p = PackedBcq::pack(&b);
        assert_eq!(
            exec_i(&x, &p, &cfg).as_slice(),
            gemm_i(&x, &b, &cfg).as_slice()
        );
    }

    #[test]
    fn more_threads_than_rows() {
        let (x, b) = setup(2, 16, 2);
        let cfg = EngineConfig::paper_default();
        let p = PackedBcq::pack(&b);
        assert_eq!(
            exec_i_threads(&x, &p, &cfg, 64).as_slice(),
            gemm_i(&x, &b, &cfg).as_slice()
        );
    }
}
