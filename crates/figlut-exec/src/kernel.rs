//! Cache-blocked LUT-GEMM kernels over [`PackedBcq`] weights.
//!
//! Both kernels follow the FIGLUT pipeline: per activation row, precompute
//! one flat FFLUT per µ-column window ([`crate::lut`]); then every output
//! row *reads* its µ-bit weight keys out of the packed bit-planes instead
//! of multiplying. Work is blocked three ways:
//!
//! * **row panels** — output rows are split into contiguous panels, one per
//!   worker thread ([`crate::parallel`]);
//! * **sub-panels** — each worker walks its rows in fixed
//!   `PANEL_ROWS`-row blocks so the per-row partial accumulators stay
//!   resident while a table tile streams through them;
//! * **k-tiles** — windows are visited in cache-sized tiles
//!   (`tile_windows`), swept across the whole sub-panel before moving
//!   on, so table reads stay cache-resident while plane bits stream
//!   sequentially.
//!
//! When µ divides both 64 and the scale-group size — which covers the
//! paper's operating point (µ = 4) and every power-of-two config — windows
//! are contiguous µ-bit fields of the packed words, and a monomorphized
//! fast path (`tile_pass_fast`) extracts keys by shifting one `u64` at a
//! time, with no per-window descriptors, branches, or bounds checks in the
//! lookup loop. Ragged group tails and odd µ fall back to the generic
//! descriptor walk (`tile_pass_generic`).
//!
//! [`exec_i`] reproduces the *exact* arithmetic of the FIGLUT-I datapath
//! model: the same pre-alignment ([`AlignedVector`]), exact integer window
//! sums (associativity makes the blocking invisible), and the same
//! FP32-rounded fold sequence (`figlut_gemm::ifpu::fold_partial`) per `(group, plane)` in
//! the same order — so its output is bit-identical to
//! `figlut_gemm::figlut::gemm_i` (and therefore to iFPU; DESIGN.md §3).
//! [`exec_f`] accumulates window partials in native `f64` in a fixed
//! (window-order) sequence, so it tracks `figlut_gemm::figlut::gemm_f` to
//! within the scale-aware tolerance the property tests assert, at much
//! higher throughput.

use crate::lut::{windows, FlatLuts, Window};
use crate::packed::PackedBcq;
use crate::parallel::{run_row_panels, thread_count};
use figlut_gemm::common::{add32, mul32};
use figlut_gemm::ifpu::fold_partial;
use figlut_gemm::EngineConfig;
use figlut_num::align::AlignedVector;
use figlut_num::Mat;

/// Rows per sub-panel: bounds the live partial-accumulator footprint
/// (`PANEL_ROWS × groups × q` scalars) independently of the thread count.
const PANEL_ROWS: usize = 64;

/// Windows per k-tile, sized so one tile's tables stay around 256 KiB
/// (assuming 8-byte entries; half that on the narrowed integer path) —
/// comfortably L2-resident next to the streaming plane words, and each
/// tile is reused across the whole sub-panel (`PANEL_ROWS × q` passes)
/// before the next tile streams in. Measured on the OPT decode shapes,
/// smaller (L1-sized) tiles lose to per-pass loop overhead and larger
/// ones thrash L2 once k·2^µ tables outgrow it. Always a multiple of the
/// windows-per-word count for every µ dividing 64.
fn tile_windows(mu: u32) -> usize {
    (262144usize >> (mu + 3)).max(4)
}

/// Accumulator `Self` absorbing table entries of type `E`. Decoupling the
/// two lets `exec_i` keep exact `i64` group partials while reading *narrow*
/// `i32` tables — half the bytes per lookup, which matters because large-k
/// shapes are bound by table-read bandwidth, not arithmetic. Sign extension
/// is exact, so narrowing never changes a result (the build site proves the
/// no-overflow bound first).
trait Accum<E: Copy>: Copy + Default {
    /// Fold one table entry into the accumulator.
    fn absorb(&mut self, e: E);
    /// Fold another accumulator (a completed window sum) into this one.
    fn merge(&mut self, other: Self);
}
impl Accum<i64> for i64 {
    #[inline(always)]
    fn absorb(&mut self, e: i64) {
        *self += e;
    }
    #[inline(always)]
    fn merge(&mut self, other: i64) {
        *self += other;
    }
}
impl Accum<i32> for i64 {
    #[inline(always)]
    fn absorb(&mut self, e: i32) {
        *self += e as i64;
    }
    #[inline(always)]
    fn merge(&mut self, other: i64) {
        *self += other;
    }
}
impl Accum<f64> for f64 {
    #[inline(always)]
    fn absorb(&mut self, e: f64) {
        *self += e;
    }
    #[inline(always)]
    fn merge(&mut self, other: f64) {
        *self += other;
    }
}

/// Fast tile pass for contiguous full-width windows (`µ | 64` and
/// `µ | group_size`): walk the packed words of one plane row, peel µ-bit
/// keys by shifting, and accumulate each scale group's window reads into a
/// scalar before spilling to `prow[group·q + plane]`.
///
/// `win_lo` must be word-aligned (a multiple of `64/MU`), which
/// [`tile_windows`] guarantees for tile boundaries.
#[allow(clippy::too_many_arguments)]
fn tile_pass_fast<E: Copy, A: Accum<E>, const MU: usize>(
    words: &[u64],
    entries: &[E],
    win_lo: usize,
    win_hi: usize,
    wpg: usize,
    plane: usize,
    q: usize,
    prow: &mut [A],
) {
    if win_hi == win_lo {
        return;
    }
    let kpw = 64 / MU; // windows (keys) per packed word
    let stride = 1usize << MU;
    let mask = stride - 1;
    let mut tables = entries[win_lo * stride..win_hi * stride].chunks_exact(stride);
    let mut g = win_lo / wpg;
    let mut left = wpg - (win_lo % wpg);
    let mut acc = A::default();
    let mut remaining = win_hi - win_lo;
    for &wordv in &words[win_lo / kpw..(win_hi).div_ceil(kpw)] {
        let mut bits = wordv;
        for table in tables.by_ref().take(kpw.min(remaining)) {
            let key = (bits as usize) & mask;
            bits >>= MU;
            acc.absorb(table[key]);
            left -= 1;
            if left == 0 {
                prow[g * q + plane].merge(acc);
                acc = A::default();
                g += 1;
                left = wpg;
            }
        }
        remaining = remaining.saturating_sub(kpw);
    }
    // Tile ended mid-group: spill the partial group sum.
    if left != wpg {
        prow[g * q + plane].merge(acc);
    }
}

/// [`tile_pass_fast`] over a *pair* of output rows sharing one table
/// walk. The two rows' accumulator chains are independent, so the CPU can
/// keep twice as many table loads in flight — the single-row pass is bound
/// by its serial `acc += table[key]` dependency chain, not by arithmetic —
/// and each streamed table line is reused by both rows while resident.
#[allow(clippy::too_many_arguments)]
fn tile_pass_fast2<E: Copy, A: Accum<E>, const MU: usize>(
    words0: &[u64],
    words1: &[u64],
    entries: &[E],
    win_lo: usize,
    win_hi: usize,
    wpg: usize,
    plane: usize,
    q: usize,
    prow0: &mut [A],
    prow1: &mut [A],
) {
    if win_hi == win_lo {
        return;
    }
    let kpw = 64 / MU;
    let stride = 1usize << MU;
    let mask = stride - 1;
    let mut tables = entries[win_lo * stride..win_hi * stride].chunks_exact(stride);
    let mut g = win_lo / wpg;
    let mut left = wpg - (win_lo % wpg);
    let mut acc0 = A::default();
    let mut acc1 = A::default();
    let mut remaining = win_hi - win_lo;
    let lo = win_lo / kpw;
    let hi = win_hi.div_ceil(kpw);
    for (&w0, &w1) in words0[lo..hi].iter().zip(&words1[lo..hi]) {
        let mut bits0 = w0;
        let mut bits1 = w1;
        for table in tables.by_ref().take(kpw.min(remaining)) {
            let k0 = (bits0 as usize) & mask;
            let k1 = (bits1 as usize) & mask;
            bits0 >>= MU;
            bits1 >>= MU;
            acc0.absorb(table[k0]);
            acc1.absorb(table[k1]);
            left -= 1;
            if left == 0 {
                prow0[g * q + plane].merge(acc0);
                prow1[g * q + plane].merge(acc1);
                acc0 = A::default();
                acc1 = A::default();
                g += 1;
                left = wpg;
            }
        }
        remaining = remaining.saturating_sub(kpw);
    }
    if left != wpg {
        prow0[g * q + plane].merge(acc0);
        prow1[g * q + plane].merge(acc1);
    }
}

/// Generic tile pass: per-window descriptors, arbitrary widths/starts
/// (ragged group tails, µ ∤ 64).
#[allow(clippy::too_many_arguments)]
fn tile_pass_generic<E: Copy, A: Accum<E>>(
    words: &[u64],
    entries: &[E],
    shift: u32,
    tile: &[Window],
    win_lo: usize,
    plane: usize,
    q: usize,
    prow: &mut [A],
) {
    for (wo, win) in tile.iter().enumerate() {
        let start = win.start as usize;
        let wi = start >> 6;
        let off = (start & 63) as u32;
        let mut bits = words[wi] >> off;
        if off + win.width > 64 {
            // width ≤ 8 ⇒ off ≥ 57 here, so the shift below is < 64.
            bits |= words[wi + 1] << (64 - off);
        }
        let key = (bits as usize) & ((1usize << win.width) - 1);
        prow[win.group as usize * q + plane].absorb(entries[((win_lo + wo) << shift) | key]);
    }
}

/// Accumulate all window partials of rows `r0..r0+rows` for one batch row:
/// the shared tile walk of both kernels. `partials` is `rows × groups × q`
/// in `[row][group][plane]` order.
fn accumulate_panel<E: Copy, A: Accum<E>>(
    w: &PackedBcq,
    wins: &[Window],
    luts: &FlatLuts<E>,
    r0: usize,
    rows: usize,
    partials: &mut [A],
) {
    let q = w.bits();
    let gq = w.groups() * q;
    let shift = luts.mu();
    let mu = shift as usize;
    let entries = luts.entries();
    let gs = w.group_size();
    let fast = 64 % mu == 0 && gs.is_multiple_of(mu);
    let wpg = gs / mu; // windows per group (fast path only)
    let tile = tile_windows(shift);
    for (t, tile_wins) in wins.chunks(tile).enumerate() {
        let win_lo = t * tile;
        let win_hi = win_lo + tile_wins.len();
        if fast {
            // Row pairs: two independent accumulator chains per pass hide
            // table-read latency (see [`tile_pass_fast2`]); a ragged last
            // row falls back to the single-row pass.
            let mut pairs = partials[..rows * gq].chunks_mut(2 * gq);
            let mut ri = 0;
            for chunk in pairs.by_ref() {
                if chunk.len() == 2 * gq {
                    let (p0, p1) = chunk.split_at_mut(gq);
                    let (ra, rb) = (r0 + ri, r0 + ri + 1);
                    for i in 0..q {
                        let (w0, w1) = (w.plane_row(i, ra), w.plane_row(i, rb));
                        match mu {
                            1 => tile_pass_fast2::<E, A, 1>(
                                w0, w1, entries, win_lo, win_hi, wpg, i, q, p0, p1,
                            ),
                            2 => tile_pass_fast2::<E, A, 2>(
                                w0, w1, entries, win_lo, win_hi, wpg, i, q, p0, p1,
                            ),
                            4 => tile_pass_fast2::<E, A, 4>(
                                w0, w1, entries, win_lo, win_hi, wpg, i, q, p0, p1,
                            ),
                            8 => tile_pass_fast2::<E, A, 8>(
                                w0, w1, entries, win_lo, win_hi, wpg, i, q, p0, p1,
                            ),
                            _ => unreachable!("64 % µ == 0 with µ ∈ 1..=8"),
                        }
                    }
                } else {
                    // Odd tail row.
                    let prow = &mut chunk[..gq];
                    let r = r0 + ri;
                    for i in 0..q {
                        let words = w.plane_row(i, r);
                        match mu {
                            1 => tile_pass_fast::<E, A, 1>(
                                words, entries, win_lo, win_hi, wpg, i, q, prow,
                            ),
                            2 => tile_pass_fast::<E, A, 2>(
                                words, entries, win_lo, win_hi, wpg, i, q, prow,
                            ),
                            4 => tile_pass_fast::<E, A, 4>(
                                words, entries, win_lo, win_hi, wpg, i, q, prow,
                            ),
                            8 => tile_pass_fast::<E, A, 8>(
                                words, entries, win_lo, win_hi, wpg, i, q, prow,
                            ),
                            _ => unreachable!("64 % µ == 0 with µ ∈ 1..=8"),
                        }
                    }
                }
                ri += 2;
            }
        } else {
            for (ri, prow) in partials.chunks_mut(gq).take(rows).enumerate() {
                let r = r0 + ri;
                for i in 0..q {
                    let words = w.plane_row(i, r);
                    tile_pass_generic(words, entries, shift, tile_wins, win_lo, i, q, prow);
                }
            }
        }
    }
}

/// One worker's share of `exec_i`: sub-panel blocks of integer partials,
/// then the datapath model's exact FP32-rounded fold per output row.
fn panel_i<E: Copy>(
    w: &PackedBcq,
    wins: &[Window],
    luts: &FlatLuts<E>,
    gsum_fold: &[f64],
    lambda: f64,
    r0: usize,
    panel: &mut [f64],
) where
    i64: Accum<E>,
{
    let q = w.bits();
    let groups = w.groups();
    let gq = groups * q;
    let mut partials = vec![0i64; PANEL_ROWS.min(panel.len()) * gq];
    for (s, sub) in panel.chunks_mut(PANEL_ROWS).enumerate() {
        let sr0 = r0 + s * PANEL_ROWS;
        let partials = &mut partials[..sub.len() * gq];
        partials.fill(0);
        accumulate_panel(w, wins, luts, sr0, sub.len(), partials);
        // Fold in exactly the datapath model's order — per group, plane
        // partials then the offset term, via the model's own
        // `fold_partial`; the row-invariant `mul32(Σx, λ)` of the offset
        // term arrives pre-folded in `gsum_fold`, so its fold stays
        // open-coded.
        for (ri, out) in sub.iter_mut().enumerate() {
            let r = sr0 + ri;
            let scales = w.row_scales(r);
            let prow = &partials[ri * gq..(ri + 1) * gq];
            let mut acc = 0.0;
            if w.has_offset() {
                let zs = w.row_offsets(r);
                for g in 0..groups {
                    for i in 0..q {
                        acc = fold_partial(acc, scales[g * q + i], prow[g * q + i] as i128, lambda);
                    }
                    acc = add32(acc, mul32(zs[g], gsum_fold[g]));
                }
            } else {
                for (&a, &p) in scales.iter().zip(prow) {
                    acc = fold_partial(acc, a, p as i128, lambda);
                }
            }
            *out = acc;
        }
    }
}

/// One worker's share of `exec_f`: f64 partials, plain f64 fold.
fn panel_f(
    w: &PackedBcq,
    wins: &[Window],
    luts: &FlatLuts<f64>,
    gsum: &[f64],
    r0: usize,
    panel: &mut [f64],
) {
    let q = w.bits();
    let groups = w.groups();
    let gq = groups * q;
    let mut partials = vec![0.0f64; PANEL_ROWS.min(panel.len()) * gq];
    for (s, sub) in panel.chunks_mut(PANEL_ROWS).enumerate() {
        let sr0 = r0 + s * PANEL_ROWS;
        let partials = &mut partials[..sub.len() * gq];
        partials.fill(0.0);
        accumulate_panel(w, wins, luts, sr0, sub.len(), partials);
        for (ri, out) in sub.iter_mut().enumerate() {
            let r = sr0 + ri;
            let scales = w.row_scales(r);
            let prow = &partials[ri * gq..(ri + 1) * gq];
            let mut acc = 0.0;
            if w.has_offset() {
                let zs = w.row_offsets(r);
                for g in 0..groups {
                    for i in 0..q {
                        acc += scales[g * q + i] * prow[g * q + i];
                    }
                    acc += zs[g] * gsum[g];
                }
            } else {
                for (&a, &p) in scales.iter().zip(prow) {
                    acc += a * p;
                }
            }
            *out = acc;
        }
    }
}

/// The window width the kernels actually use. The datapath models read
/// µ-wide windows because that is the hardware's LUT size; the *software*
/// backend is free to widen them — per-(group, plane) partials are sums
/// over whole groups, and integer addition is associative, so any window
/// decomposition of a group yields bit-identical `exec_i` results (and
/// `exec_f` stays within its tolerance). Wider windows halve or quarter
/// the lookup count at the price of bigger tables; 8 (256-entry, 2 KiB
/// tables) is the sweet spot, mirroring the paper's own µ-vs-table-power
/// trade-off (Fig. 8). Falls back to the configured µ (generic descriptor
/// walk) when the group size has no even divisor in range.
fn effective_mu(gs: usize, cfg_mu: u32) -> usize {
    for e in [8usize, 4, 2] {
        if gs.is_multiple_of(e) {
            return e;
        }
    }
    cfg_mu as usize
}

/// Validate shapes/config shared by both kernels; returns `(batch, m, n)`.
fn check(x: &Mat<f64>, w: &PackedBcq, cfg: &EngineConfig) -> (usize, usize, usize) {
    assert!((1..=8).contains(&cfg.mu), "µ = {} unsupported", cfg.mu);
    let (batch, n) = x.shape();
    let (m, wn) = w.shape();
    assert_eq!(
        n, wn,
        "activation width {n} does not match weight reduction dim {wn}"
    );
    (batch, m, n)
}

/// FIGLUT-I fast path: `y = x·Wᵀ`, bit-identical to
/// `figlut_gemm::figlut::gemm_i` (and hence to iFPU), using `threads`
/// worker threads.
///
/// # Panics
///
/// Panics on shape mismatch or `µ ∉ 1..=8`.
pub fn exec_i_threads(x: &Mat<f64>, w: &PackedBcq, cfg: &EngineConfig, threads: usize) -> Mat<f64> {
    let (batch, m, n) = check(x, w, cfg);
    let gs = w.group_size();
    let groups = w.groups();
    let mu = effective_mu(gs, cfg.mu);
    let wins = windows(n, gs, mu);
    let mut y = Mat::zeros(batch, m);
    for b in 0..batch {
        let xa: Vec<f64> = x.row(b).iter().map(|&v| cfg.act.quantize(v)).collect();
        let aligned = AlignedVector::align(&xa, cfg.act, cfg.guard_bits, cfg.align);
        let lambda = aligned.scale();
        let mant = aligned.mantissas();
        // Offset term Σx per group (the all-ones-key read of every
        // window), pre-folded to `mul32(Σx·λ)` — it is identical for
        // every output row.
        let gsum_fold: Vec<f64> = (0..groups)
            .map(|g| {
                let p: i128 = mant[g * gs..(g + 1) * gs].iter().map(|&v| v as i128).sum();
                mul32(p as f64, lambda)
            })
            .collect();
        // Large-k shapes are bound by table-read bandwidth, so narrow the
        // table entries to i32 whenever every window sum (and every build
        // intermediate, all bounded by µ·max|mantissa|) provably fits.
        // Sign extension is exact: both widths produce bit-identical
        // results; the i64 path is kept for extreme activation ranges.
        let maxm = mant.iter().map(|&v| v.unsigned_abs()).max().unwrap_or(0);
        if (mu as u64).saturating_mul(maxm) <= i32::MAX as u64 {
            let m32: Vec<i32> = mant.iter().map(|&v| v as i32).collect();
            let luts = FlatLuts::build(&m32, &wins, mu as u32);
            run_row_panels(y.row_mut(b), threads, |r0, panel| {
                panel_i(w, &wins, &luts, &gsum_fold, lambda, r0, panel);
            });
        } else {
            let luts = FlatLuts::build(mant, &wins, mu as u32);
            run_row_panels(y.row_mut(b), threads, |r0, panel| {
                panel_i(w, &wins, &luts, &gsum_fold, lambda, r0, panel);
            });
        }
    }
    y
}

/// [`exec_i_threads`] with the default worker count
/// ([`crate::parallel::thread_count`]; override via `FIGLUT_EXEC_THREADS`).
pub fn exec_i(x: &Mat<f64>, w: &PackedBcq, cfg: &EngineConfig) -> Mat<f64> {
    exec_i_threads(x, w, cfg, thread_count())
}

/// FIGLUT-F fast path: `y = x·Wᵀ` with `f64` accumulation, tracking
/// `figlut_gemm::figlut::gemm_f` within scale-aware tolerance, using
/// `threads` worker threads.
///
/// # Panics
///
/// Panics on shape mismatch or `µ ∉ 1..=8`.
pub fn exec_f_threads(x: &Mat<f64>, w: &PackedBcq, cfg: &EngineConfig, threads: usize) -> Mat<f64> {
    let (batch, m, n) = check(x, w, cfg);
    let gs = w.group_size();
    let groups = w.groups();
    let mu = effective_mu(gs, cfg.mu);
    let wins = windows(n, gs, mu);
    let mut y = Mat::zeros(batch, m);
    for b in 0..batch {
        let xa: Vec<f64> = x.row(b).iter().map(|&v| cfg.act.quantize(v)).collect();
        let luts = FlatLuts::build(&xa, &wins, mu as u32);
        let gsum: Vec<f64> = (0..groups)
            .map(|g| xa[g * gs..(g + 1) * gs].iter().sum())
            .collect();
        run_row_panels(y.row_mut(b), threads, |r0, panel| {
            panel_f(w, &wins, &luts, &gsum, r0, panel);
        });
    }
    y
}

/// [`exec_f_threads`] with the default worker count
/// ([`crate::parallel::thread_count`]; override via `FIGLUT_EXEC_THREADS`).
pub fn exec_f(x: &Mat<f64>, w: &PackedBcq, cfg: &EngineConfig) -> Mat<f64> {
    exec_f_threads(x, w, cfg, thread_count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use figlut_gemm::figlut::{gemm_f, gemm_i};
    use figlut_quant::bcq::{BcqParams, BcqWeight};
    use figlut_quant::uniform::{rtn, RtnParams};

    fn setup(m: usize, n: usize, bits: u32) -> (Mat<f64>, BcqWeight) {
        let w = Mat::from_fn(m, n, |r, c| ((r * n + c) as f64 * 0.201).sin() * 0.5);
        let b = BcqWeight::quantize(&w, BcqParams::per_row(bits));
        let x = Mat::from_fn(3, n, |bb, c| ((bb * n + c) as f64 * 0.063).cos());
        (x, b)
    }

    #[test]
    fn exec_i_bit_identical_to_gemm_i() {
        for (m, n, bits) in [(4, 32, 2), (6, 48, 3), (5, 130, 4), (1, 7, 1)] {
            let (x, b) = setup(m, n, bits);
            let cfg = EngineConfig::paper_default();
            let p = PackedBcq::pack(&b);
            for threads in [1usize, 3] {
                let ye = exec_i_threads(&x, &p, &cfg, threads);
                let ym = gemm_i(&x, &b, &cfg);
                assert_eq!(
                    ye.as_slice(),
                    ym.as_slice(),
                    "m={m} n={n} q={bits} t={threads}"
                );
            }
        }
    }

    #[test]
    fn exec_i_bit_identical_all_mu() {
        // Per-row scales (gs = 40, even): `effective_mu` widens every
        // configured µ to 8, so all eight iterations take the fast path.
        let (x, b) = setup(4, 40, 3);
        let p = PackedBcq::pack(&b);
        // gs = 15 (no even divisor): `effective_mu` keeps the configured
        // µ, so µ ∈ {3, 5, 6, 7} (64 % µ ≠ 0) and µ ∈ {2, 4, 8}
        // (15 % µ ≠ 0, ragged tails) all walk the generic descriptor
        // path; only µ = 1 stays fast.
        let w9 = Mat::from_fn(5, 45, |r, c| ((r * 45 + c) as f64 * 0.201).sin() * 0.5);
        let b9 = BcqWeight::quantize(&w9, BcqParams::grouped(3, 15));
        let x9 = Mat::from_fn(3, 45, |bb, c| ((bb * 45 + c) as f64 * 0.063).cos());
        let p9 = PackedBcq::pack(&b9);
        for mu in 1..=8u32 {
            let cfg = EngineConfig {
                mu,
                ..EngineConfig::paper_default()
            };
            assert_eq!(
                exec_i(&x, &p, &cfg).as_slice(),
                gemm_i(&x, &b, &cfg).as_slice(),
                "fast µ={mu}"
            );
            assert_eq!(
                exec_i(&x9, &p9, &cfg).as_slice(),
                gemm_i(&x9, &b9, &cfg).as_slice(),
                "generic µ={mu}"
            );
        }
    }

    #[test]
    fn exec_i_spans_sub_panels_and_tiles() {
        // m > PANEL_ROWS forces multiple sub-panels; n > 64·µ spans words.
        let m = PANEL_ROWS + 17;
        let (x, b) = setup(m, 288, 2);
        let cfg = EngineConfig::paper_default();
        let p = PackedBcq::pack(&b);
        assert_eq!(
            exec_i_threads(&x, &p, &cfg, 2).as_slice(),
            gemm_i(&x, &b, &cfg).as_slice()
        );
    }

    #[test]
    fn exec_f_tracks_gemm_f() {
        let (x, b) = setup(6, 64, 3);
        let cfg = EngineConfig::paper_default();
        let p = PackedBcq::pack(&b);
        let ye = exec_f(&x, &p, &cfg);
        let ym = gemm_f(&x, &b, &cfg);
        for bb in 0..x.rows() {
            let xs: f64 = x.row(bb).iter().map(|v| v.abs()).sum();
            for r in 0..6 {
                let denom = xs.max(1.0);
                assert!(
                    ((ye[(bb, r)] - ym[(bb, r)]) / denom).abs() < 1e-4,
                    "({bb},{r}): {} vs {}",
                    ye[(bb, r)],
                    ym[(bb, r)]
                );
            }
        }
    }

    #[test]
    fn grouped_scales_and_ragged_tail() {
        // gs = 10 with µ = 4: `effective_mu` narrows to 2 (the largest
        // even divisor), so this runs the fast path at MU = 2 with five
        // windows per group and tile boundaries landing mid-group;
        // n = 70 spans words. (The truly ragged generic walk is pinned by
        // `exec_i_bit_identical_all_mu`'s gs = 15 half.)
        let w = Mat::from_fn(7, 70, |r, c| ((r * 70 + c) as f64 * 0.113).sin());
        let b = BcqWeight::quantize(&w, BcqParams::grouped(3, 10));
        let x = Mat::from_fn(2, 70, |bb, c| ((bb + c) as f64 * 0.091).cos());
        let cfg = EngineConfig::paper_default();
        let p = PackedBcq::pack(&b);
        assert_eq!(
            exec_i_threads(&x, &p, &cfg, 4).as_slice(),
            gemm_i(&x, &b, &cfg).as_slice()
        );
    }

    #[test]
    fn grouped_scales_fast_path() {
        // gs = 12 with µ = 4 → full-width windows, several groups per tile.
        let w = Mat::from_fn(9, 132, |r, c| ((r * 132 + c) as f64 * 0.119).sin());
        let b = BcqWeight::quantize(&w, BcqParams::grouped(2, 12));
        let x = Mat::from_fn(2, 132, |bb, c| ((bb + c) as f64 * 0.087).cos());
        let cfg = EngineConfig::paper_default();
        let p = PackedBcq::pack(&b);
        assert_eq!(
            exec_i_threads(&x, &p, &cfg, 3).as_slice(),
            gemm_i(&x, &b, &cfg).as_slice()
        );
    }

    #[test]
    fn uniform_via_bcq_offset_path() {
        let w = Mat::from_fn(5, 32, |r, c| ((r * 32 + c) as f64 * 0.157).sin());
        let u = rtn(&w, RtnParams::per_row(4));
        let b = BcqWeight::from_uniform(&u);
        let x = Mat::from_fn(2, 32, |bb, c| ((bb + c) as f64 * 0.091).cos());
        let cfg = EngineConfig::paper_default();
        let p = PackedBcq::pack(&b);
        assert_eq!(
            exec_i(&x, &p, &cfg).as_slice(),
            gemm_i(&x, &b, &cfg).as_slice()
        );
    }

    #[test]
    fn more_threads_than_rows() {
        let (x, b) = setup(2, 16, 2);
        let cfg = EngineConfig::paper_default();
        let p = PackedBcq::pack(&b);
        assert_eq!(
            exec_i_threads(&x, &p, &cfg, 64).as_slice(),
            gemm_i(&x, &b, &cfg).as_slice()
        );
    }
}
