//! Row-panel parallelism over `std::thread::scope` (no external deps;
//! DESIGN.md §5 keeps the workspace registry-free).
//!
//! The kernels parallelize over contiguous panels of *output rows*: every
//! output element is computed start-to-finish by exactly one thread, with a
//! fixed window order and a fixed fold order, so results are bit-identical
//! for every thread count — the determinism contract the tests pin.

use std::num::NonZeroUsize;

/// Environment variable overriding the worker count (`≥ 1`).
pub const THREADS_ENV: &str = "FIGLUT_EXEC_THREADS";

/// Effective worker count: [`THREADS_ENV`] if set to a positive integer,
/// else the machine's available parallelism, else 1.
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Split `out` (the `m` outputs of one batch row) into at most `threads`
/// contiguous panels and run `work(first_row, panel)` on each, in parallel.
///
/// `work` must fill `panel[j]` with the value of output row
/// `first_row + j`; because panel boundaries never change *what* is
/// computed per element, the result is independent of `threads`.
pub fn run_row_panels<F>(out: &mut [f64], threads: usize, work: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    run_strided_panels(out, 1, threads, work);
}

/// [`run_row_panels`] for row-major outputs with `stride` values per
/// output row (the batched kernels' `m × batch` transposed output): `out`
/// is split on row boundaries into at most `threads` contiguous panels and
/// `work(first_row, panel)` runs on each, in parallel.
///
/// `work` must fill `panel[j·stride + s]` with value `s` of output row
/// `first_row + j`. As with [`run_row_panels`], panel boundaries never
/// change *what* is computed per element, so the result is independent of
/// `threads`.
///
/// # Panics
///
/// Panics if `stride` is zero or does not divide `out.len()`.
pub fn run_strided_panels<F>(out: &mut [f64], stride: usize, threads: usize, work: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    assert!(
        stride > 0 && out.len().is_multiple_of(stride),
        "output length {} is not a multiple of the row stride {stride}",
        out.len()
    );
    let m = out.len() / stride;
    if m == 0 {
        return;
    }
    let t = threads.clamp(1, m);
    if t == 1 {
        work(0, out);
        return;
    }
    let chunk = m.div_ceil(t);
    std::thread::scope(|s| {
        for (idx, panel) in out.chunks_mut(chunk * stride).enumerate() {
            let work = &work;
            s.spawn(move || work(idx * chunk, panel));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_cover_every_row_once() {
        for threads in [1usize, 2, 3, 7, 64] {
            let mut out = vec![0.0; 23];
            run_row_panels(&mut out, threads, |r0, panel| {
                for (j, v) in panel.iter_mut().enumerate() {
                    *v += (r0 + j) as f64 + 1.0;
                }
            });
            for (r, &v) in out.iter().enumerate() {
                assert_eq!(v, r as f64 + 1.0, "threads={threads} row {r}");
            }
        }
    }

    #[test]
    fn strided_panels_split_on_row_boundaries() {
        for threads in [1usize, 2, 3, 7, 64] {
            let (m, stride) = (11usize, 3usize);
            let mut out = vec![0.0; m * stride];
            run_strided_panels(&mut out, stride, threads, |r0, panel| {
                assert!(panel.len().is_multiple_of(stride), "ragged panel");
                for (j, row) in panel.chunks_mut(stride).enumerate() {
                    for (s, v) in row.iter_mut().enumerate() {
                        *v += ((r0 + j) * stride + s) as f64 + 1.0;
                    }
                }
            });
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, i as f64 + 1.0, "threads={threads} slot {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn strided_panels_reject_ragged_output() {
        let mut out = vec![0.0; 7];
        run_strided_panels(&mut out, 3, 2, |_, _| {});
    }

    #[test]
    fn empty_output_is_a_noop() {
        let mut out: Vec<f64> = Vec::new();
        run_row_panels(&mut out, 8, |_, _| panic!("must not be called"));
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }
}
