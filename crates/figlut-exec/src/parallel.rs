//! Row-panel parallelism over `std::thread::scope` (no external deps;
//! DESIGN.md §5 keeps the workspace registry-free).
//!
//! The kernels parallelize over contiguous panels of *output rows*: every
//! output element is computed start-to-finish by exactly one thread, with a
//! fixed window order and a fixed fold order, so results are bit-identical
//! for every thread count — the determinism contract the tests pin.

use std::num::NonZeroUsize;

/// Environment variable overriding the worker count (`≥ 1`).
pub const THREADS_ENV: &str = "FIGLUT_EXEC_THREADS";

/// Effective worker count: [`THREADS_ENV`] if set to a positive integer,
/// else the machine's available parallelism, else 1.
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Split `out` (the `m` outputs of one batch row) into at most `threads`
/// contiguous panels and run `work(first_row, panel)` on each, in parallel.
///
/// `work` must fill `panel[j]` with the value of output row
/// `first_row + j`; because panel boundaries never change *what* is
/// computed per element, the result is independent of `threads`.
pub fn run_row_panels<F>(out: &mut [f64], threads: usize, work: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let m = out.len();
    if m == 0 {
        return;
    }
    let t = threads.clamp(1, m);
    if t == 1 {
        work(0, out);
        return;
    }
    let chunk = m.div_ceil(t);
    std::thread::scope(|s| {
        for (idx, panel) in out.chunks_mut(chunk).enumerate() {
            let work = &work;
            s.spawn(move || work(idx * chunk, panel));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_cover_every_row_once() {
        for threads in [1usize, 2, 3, 7, 64] {
            let mut out = vec![0.0; 23];
            run_row_panels(&mut out, threads, |r0, panel| {
                for (j, v) in panel.iter_mut().enumerate() {
                    *v += (r0 + j) as f64 + 1.0;
                }
            });
            for (r, &v) in out.iter().enumerate() {
                assert_eq!(v, r as f64 + 1.0, "threads={threads} row {r}");
            }
        }
    }

    #[test]
    fn empty_output_is_a_noop() {
        let mut out: Vec<f64> = Vec::new();
        run_row_panels(&mut out, 8, |_, _| panic!("must not be called"));
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }
}
