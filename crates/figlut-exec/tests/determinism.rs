//! The `FIGLUT_EXEC_THREADS` override must never change output bits: the
//! kernels' reduction order is fixed per output element regardless of how
//! rows are split into panels (pins the contract of `parallel.rs`).
//!
//! This lives in its own integration-test binary (own process) because it
//! mutates the process environment; the property tests use the explicit
//! `*_threads` API instead.

use figlut_exec::parallel::{thread_count, THREADS_ENV};
use figlut_exec::{exec_f, exec_i, PackedBcq};
use figlut_gemm::EngineConfig;
use figlut_num::Mat;
use figlut_quant::bcq::{BcqParams, BcqWeight};

#[test]
fn env_thread_override_is_bit_invariant() {
    let w = Mat::from_fn(37, 150, |r, c| ((r * 150 + c) as f64 * 0.137).sin());
    let b = BcqWeight::quantize(&w, BcqParams::grouped(3, 30));
    let p = PackedBcq::pack(&b);
    let x = Mat::from_fn(4, 150, |bb, c| ((bb * 150 + c) as f64 * 0.071).cos());
    let cfg = EngineConfig::paper_default();

    let mut runs_i: Vec<Vec<f64>> = Vec::new();
    let mut runs_f: Vec<Vec<f64>> = Vec::new();
    for t in ["1", "2", "8"] {
        std::env::set_var(THREADS_ENV, t);
        assert_eq!(thread_count(), t.parse::<usize>().unwrap());
        runs_i.push(exec_i(&x, &p, &cfg).into_vec());
        runs_f.push(exec_f(&x, &p, &cfg).into_vec());
    }
    std::env::remove_var(THREADS_ENV);

    for t in 1..runs_i.len() {
        assert_eq!(runs_i[0], runs_i[t], "exec_i diverged at thread set {t}");
        assert_eq!(runs_f[0], runs_f[t], "exec_f diverged at thread set {t}");
    }

    // Garbage override values fall back to a sane positive count. Kept in
    // the same #[test] because tests in one binary share the environment.
    std::env::set_var(THREADS_ENV, "not-a-number");
    assert!(thread_count() >= 1);
    std::env::set_var(THREADS_ENV, "0");
    assert!(thread_count() >= 1);
    std::env::remove_var(THREADS_ENV);
}
