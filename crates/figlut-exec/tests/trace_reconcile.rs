//! Reconciles the exec-layer trace counters against the analytical models
//! the workspace already commits to: traced streamed words must equal
//! `ExecPlan::streamed_words` exactly, call/build/tier counters must match
//! the call pattern, and enabling tracing must not change a single output
//! bit. One trace session is installed per test; the `TraceGuard` holds
//! the process-wide session lock, so the tests serialize naturally.

use figlut_exec::{exec_i, ExecPlan, PackedBcq};
use figlut_gemm::EngineConfig;
use figlut_num::Mat;
use figlut_quant::bcq::{BcqParams, BcqWeight};
use figlut_trace::{install, snapshot, CollectSink};

fn packed(m: usize, k: usize, gs: usize, bits: u32, seed: u64) -> PackedBcq {
    let w = Mat::from_fn(m, k, |r, c| {
        (((r * k + c) as f64 + seed as f64) * 0.13).sin()
    });
    PackedBcq::pack(&BcqWeight::quantize(&w, BcqParams::grouped(bits, gs)))
}

fn acts(batch: usize, k: usize) -> Mat<f64> {
    Mat::from_fn(batch, k, |b, c| ((b * k + c) as f64 * 0.07).cos())
}

#[test]
fn streamed_words_match_the_plan_formula() {
    // Fast-path (µ divides 64 and the group size) and generic (gs 15,
    // µ 4 → ragged windows) shapes, across batch sizes spanning the
    // register-blocked, wide, and fallback column engines.
    let cases = [
        (16, 128, 64, 3, 4usize),
        (16, 128, 64, 3, 12),
        (8, 256, 32, 2, 1),
        (8, 60, 15, 3, 5),
        (4, 90, 15, 2, 80),
    ];
    for (m, k, gs, bits, batch) in cases {
        let w = packed(m, k, gs, bits, 7);
        let cfg = EngineConfig::paper_default();
        let plan = ExecPlan::new(&w, &cfg);
        let x = acts(batch, k);

        let guard = install(Box::new(CollectSink::default()));
        let before = snapshot();
        let calls = 3;
        for _ in 0..calls {
            plan.exec_i(&x, &w, &cfg);
        }
        let d = snapshot().since(&before);
        guard.finish().unwrap();

        assert_eq!(d.exec_calls, calls, "case {m}x{k} gs {gs} batch {batch}");
        assert_eq!(d.exec_lut_builds, calls, "one LUT build per call");
        assert_eq!(
            d.exec_tier_i32_i32 + d.exec_tier_i32_i64 + d.exec_tier_i64_i64,
            calls,
            "exactly one tier per call"
        );
        assert_eq!(
            d.exec_streamed_words,
            calls * plan.streamed_words(batch),
            "traced words != formula for {m}x{k} gs {gs} bits {bits} batch {batch}"
        );
        assert!(
            d.exec_ktiles >= calls * m as u64,
            "at least one tile per row"
        );
    }
}

#[test]
fn plan_reuse_and_float_path_are_counted() {
    let w = packed(8, 128, 64, 3, 11);
    let cfg = EngineConfig::paper_default();
    let x = acts(2, 128);

    let guard = install(Box::new(CollectSink::default()));
    let before = snapshot();
    let plan = ExecPlan::new(&w, &cfg);
    plan.exec_i(&x, &w, &cfg);
    plan.exec_i(&x, &w, &cfg);
    plan.exec_f(&x, &w, &cfg);
    // The free function builds (and discards) a plan per call.
    exec_i(&x, &w, &cfg);
    let d = snapshot().since(&before);
    guard.finish().unwrap();

    assert_eq!(d.exec_plan_builds, 2, "one held plan + one throwaway");
    assert_eq!(d.exec_calls, 3);
    assert_eq!(d.exec_f_calls, 1);
    assert_eq!(d.exec_lut_builds, 4, "every non-empty call rebuilds once");
    // The float path streams the same packed words as the integer path.
    assert_eq!(d.exec_streamed_words, 4 * plan.streamed_words(2));
}

#[test]
fn tracing_does_not_change_results_and_empty_calls_are_free() {
    let w = packed(8, 64, 32, 3, 3);
    let cfg = EngineConfig::paper_default();
    let plan = ExecPlan::new(&w, &cfg);
    let x = acts(4, 64);
    let quiet = plan.exec_i(&x, &w, &cfg);

    let guard = install(Box::new(CollectSink::default()));
    let before = snapshot();
    let traced = plan.exec_i(&x, &w, &cfg);
    let empty = plan.exec_i(&Mat::zeros(0, 64), &w, &cfg);
    let d = snapshot().since(&before);
    guard.finish().unwrap();

    assert_eq!(traced.as_slice(), quiet.as_slice(), "tracing changed bits");
    assert_eq!(empty.shape(), (0, 8));
    assert_eq!(d.exec_calls, 1, "batch-0 call must not count");
}
