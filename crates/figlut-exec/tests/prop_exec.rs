//! Differential property tests: the packed execution backend against the
//! bit-accurate datapath models, over arbitrary shapes, µ, group sizes,
//! thread counts, and ragged tails (m, n, k not multiples of the
//! tile/word/µ sizes).

use figlut_exec::{exec_f_threads, exec_i_threads, ExecPlan, PackedBcq};
use figlut_gemm::figlut::{gemm_f, gemm_i};
use figlut_gemm::EngineConfig;
use figlut_num::Mat;
use figlut_quant::bcq::{BcqParams, BcqWeight};
use figlut_quant::uniform::{rtn, RtnParams};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Problem {
    x: Mat<f64>,
    w: Mat<f64>,
    bits: u32,
    group_size: usize,
    mu: u32,
    threads: usize,
}

/// Shapes deliberately include ragged everything: n = groups·gs with gs
/// coprime to µ, m often not a multiple of the panel split, n spanning a
/// `u64` word boundary when gs·groups > 64.
fn problem() -> impl Strategy<Value = Problem> {
    (
        1usize..=9, // batch (spans both column engines: register blocks and, from 8, the wide pass)
        1usize..=12, // m
        1usize..=5, // groups
        1usize..=17, // group size
        1u32..=4,   // bits (binary planes)
        1u32..=4,   // µ
        0usize..4,  // thread-count choice index
    )
        .prop_flat_map(|(batch, m, groups, gs, bits, mu, tix)| {
            let threads = [1usize, 2, 3, 8][tix];
            let n = groups * gs;
            (
                prop::collection::vec(-4.0f64..4.0, batch * n),
                prop::collection::vec(-1.0f64..1.0, m * n),
            )
                .prop_map(move |(xv, wv)| Problem {
                    x: Mat::from_vec(batch, n, xv),
                    w: Mat::from_vec(m, n, wv),
                    bits,
                    group_size: gs,
                    mu,
                    threads,
                })
        })
}

fn quantize(p: &Problem) -> BcqWeight {
    BcqWeight::quantize(
        &p.w,
        BcqParams {
            bits: p.bits,
            group_size: p.group_size,
            with_offset: true,
            refine_iters: 2,
        },
    )
}

fn cfg(mu: u32) -> EngineConfig {
    EngineConfig {
        mu,
        ..EngineConfig::paper_default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exec_i_bit_exact_against_gemm_i(p in problem()) {
        let b = quantize(&p);
        let packed = PackedBcq::pack(&b);
        let c = cfg(p.mu);
        let fast = exec_i_threads(&p.x, &packed, &c, p.threads);
        let model = gemm_i(&p.x, &b, &c);
        prop_assert_eq!(fast.as_slice(), model.as_slice(), "p={:?}", p);
    }

    #[test]
    fn exec_i_bit_exact_on_uniform_grids(p in problem()) {
        // The offset-heavy Eq. 3 path (uniform → BCQ) as the models run it.
        let u = rtn(&p.w, RtnParams::grouped(p.bits, p.group_size));
        let b = BcqWeight::from_uniform(&u);
        let packed = PackedBcq::pack(&b);
        let c = cfg(p.mu);
        let fast = exec_i_threads(&p.x, &packed, &c, p.threads);
        let model = gemm_i(&p.x, &b, &c);
        prop_assert_eq!(fast.as_slice(), model.as_slice());
    }

    #[test]
    fn exec_f_within_scale_aware_tolerance_of_gemm_f(p in problem()) {
        let b = quantize(&p);
        let packed = PackedBcq::pack(&b);
        let c = cfg(p.mu);
        let fast = exec_f_threads(&p.x, &packed, &c, p.threads);
        let model = gemm_f(&p.x, &b, &c);
        let wd = b.dequantize();
        for bb in 0..p.x.rows() {
            let xs: f64 = p.x.row(bb).iter().map(|v| v.abs()).sum();
            for r in 0..wd.rows() {
                // Scale-aware: FP32 accumulation in the model drifts by
                // O(n·2⁻²⁴) of Σ|x|·max|w|; 1e-4 is ~4 decades of margin
                // at these sizes.
                let wmax = wd.row(r).iter().fold(0.0f64, |m, &v| m.max(v.abs()));
                let denom = (xs * wmax).max(1e-6);
                let err = (fast[(bb, r)] - model[(bb, r)]).abs() / denom;
                prop_assert!(
                    err < 1e-4,
                    "({bb},{r}): exec {} vs model {} rel {err}",
                    fast[(bb, r)],
                    model[(bb, r)]
                );
            }
        }
    }

    #[test]
    fn batched_exec_i_bit_matches_per_column_runs_and_model(p in problem()) {
        // The batch-blocking invariant figlut-serve stands on: one batched
        // call over a B-row activation matrix is bit-identical to B
        // independent 1-row calls AND to the datapath model — for
        // arbitrary shapes, µ, group sizes, offsets, and thread counts,
        // including ragged generic-path shapes. Run through a reused
        // ExecPlan so the cached-plan path (what Backend::Exec executes in
        // steady state) is the thing being pinned.
        let b = quantize(&p);
        let packed = PackedBcq::pack(&b);
        let c = cfg(p.mu);
        let plan = ExecPlan::new(&packed, &c);
        let batched = plan.exec_i_threads(&p.x, &packed, &c, p.threads);
        let model = gemm_i(&p.x, &b, &c);
        prop_assert_eq!(batched.as_slice(), model.as_slice(), "batched != model");
        let n = p.x.cols();
        for bb in 0..p.x.rows() {
            let row = Mat::from_fn(1, n, |_, cc| p.x[(bb, cc)]);
            // Same plan serves the batch-1 shape (pool reuse across batch
            // sizes), and a fresh throwaway plan must agree too.
            let solo_plan = plan.exec_i_threads(&row, &packed, &c, 1);
            let solo_free = exec_i_threads(&row, &packed, &c, p.threads);
            prop_assert_eq!(batched.row(bb), solo_plan.row(0), "plan row {}", bb);
            prop_assert_eq!(batched.row(bb), solo_free.row(0), "free row {}", bb);
        }
    }

    #[test]
    fn thread_count_never_changes_bits(p in problem()) {
        let b = quantize(&p);
        let packed = PackedBcq::pack(&b);
        let c = cfg(p.mu);
        let i1 = exec_i_threads(&p.x, &packed, &c, 1);
        let f1 = exec_f_threads(&p.x, &packed, &c, 1);
        for t in [2usize, 3, 8] {
            let it = exec_i_threads(&p.x, &packed, &c, t);
            let ft = exec_f_threads(&p.x, &packed, &c, t);
            prop_assert_eq!(it.as_slice(), i1.as_slice(), "exec_i t={}", t);
            prop_assert_eq!(ft.as_slice(), f1.as_slice(), "exec_f t={}", t);
        }
    }

    #[test]
    fn unpack_is_transparent_to_the_models(p in problem()) {
        // pack → unpack hands the models identical weights: gemm_i on the
        // unpacked container matches gemm_i on the original, bit for bit.
        let b = quantize(&p);
        let back = PackedBcq::pack(&b).unpack();
        let c = cfg(p.mu);
        let y_back = gemm_i(&p.x, &back, &c);
        let y_orig = gemm_i(&p.x, &b, &c);
        prop_assert_eq!(y_back.as_slice(), y_orig.as_slice());
    }
}
