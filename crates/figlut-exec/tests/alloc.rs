//! Steady-state allocation audit of the [`ExecPlan`] hot path.
//!
//! The plan's contract (DESIGN.md §6) is that once its scratch pools are
//! warm, an `exec_i_into` call performs **zero** heap allocations: the
//! windows are precomputed, the staging/LUT/partial buffers are recycled,
//! and the caller owns the output. This test pins that with a counting
//! global allocator: warm the plan up, arm the counter, run one decode-like
//! call per shape, and require the count to still be zero.
//!
//! This lives in its own integration-test binary on purpose — a global
//! allocator is per-process, and a sibling `#[test]` allocating on another
//! thread while the counter is armed would make the count meaningless.
//! Keep this file at exactly one test.

use figlut_exec::{exec_i_threads, ExecPlan, PackedBcq};
use figlut_gemm::EngineConfig;
use figlut_num::Mat;
use figlut_quant::bcq::{BcqParams, BcqWeight};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Counts allocations (alloc / alloc_zeroed / realloc) while armed.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: every method bumps a lock-free counter and then defers to
// `System` with the caller's layout/pointer arguments unchanged, so
// `System`'s allocator contract is upheld verbatim.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwards the caller's contract to `System` unchanged.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: forwards the caller's contract to `System` unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: forwards the caller's contract to `System` unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: forwards the caller's contract to `System` unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_exec_plan_calls_are_allocation_free() {
    // One offset-carrying fast-path shape (the serving operating point)
    // at both column engines — batch 4 (register column blocks) and
    // batch 8 (the wide memory-backed pass) — plus a ragged generic-path
    // shape. Single worker thread: spawning a thread allocates by
    // definition, and the zero-alloc contract is about the exec hot path,
    // which is identical on every worker.
    let cases: [(usize, usize, usize, u32, usize); 3] = [
        (96, 128, 32, 3, 4), // m, n, gs (even → fast path), q, batch
        (96, 128, 32, 3, 8), // wide column engine
        (11, 45, 15, 2, 3),  // gs 15 → generic descriptor walk
    ];
    for (m, n, gs, bits, batch) in cases {
        let w = Mat::from_fn(m, n, |r, c| ((r * n + c) as f64 * 0.143).sin() * 0.4);
        let b = BcqWeight::quantize(&w, BcqParams::grouped(bits, gs));
        let packed = PackedBcq::pack(&b);
        let cfg = EngineConfig::paper_default();
        let plan = ExecPlan::new(&packed, &cfg);
        let x = Mat::from_fn(batch, n, |bb, c| ((bb * n + c) as f64 * 0.067).cos());
        let mut y = Mat::zeros(batch, m);

        // Warm-up: first calls grow the pools and buffer capacities.
        plan.exec_i_into(&x, &packed, &cfg, 1, &mut y);
        plan.exec_i_into(&x, &packed, &cfg, 1, &mut y);

        ALLOCS.store(0, Ordering::SeqCst);
        ARMED.store(true, Ordering::SeqCst);
        plan.exec_i_into(&x, &packed, &cfg, 1, &mut y);
        ARMED.store(false, Ordering::SeqCst);
        let allocs = ALLOCS.load(Ordering::SeqCst);

        assert_eq!(
            allocs, 0,
            "steady-state exec_i_into allocated {allocs} times (m={m} n={n} gs={gs} B={batch})"
        );
        // And the allocation-free call still produced the right bits.
        let reference = exec_i_threads(&x, &packed, &cfg, 1);
        assert_eq!(y.as_slice(), reference.as_slice(), "steady-state bits");
    }
}
