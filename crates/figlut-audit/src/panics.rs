//! Panic-path inventory.
//!
//! Library code (`src/`, outside `#[cfg(test)]` modules) may only panic
//! on broken internal invariants — and each such site must say so. A
//! site is **justified** when it carries an `allow(panic)` marker with
//! the invariant spelled out. Everything else is **flagged** and must
//! appear in the committed baseline (`panic_baseline.txt`), which
//! grandfathers the historical inventory: the audit fails on *new*
//! unjustified sites and on stale baseline entries, so the inventory
//! can only shrink or be consciously re-reviewed. Regenerate the
//! baseline with `repro audit --update-baseline` after an intentional
//! change.
//!
//! Sites are keyed by `(file, FNV-1a hash of the scrubbed line)` rather
//! than line numbers, so unrelated edits above a site do not invalidate
//! the baseline while any edit *to* the site re-opens review.

use crate::markers::{is_test_code, Markers};
use crate::{Config, Finding, Lint, Scope, SourceFile};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Call/macro patterns that abort the program when reached.
const PANIC_PATTERNS: &[&str] = &[
    ".unwrap(",
    ".expect(",
    ".unwrap_err(",
    ".expect_err(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Summary of the inventory pass, fed into the [`crate::Report`].
pub struct Inventory {
    /// Sites justified by an `allow(panic)` marker.
    pub justified: usize,
    /// Unjustified sites covered by the committed baseline.
    pub baselined: usize,
    /// The baseline content matching the current tree.
    pub fresh_baseline: String,
}

/// 64-bit FNV-1a — the same dependency-free hash the KV checksums use.
pub fn fnv64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Default)]
struct SiteGroup {
    count: usize,
    first_line: usize,
    excerpt: String,
}

/// Run the inventory against the baseline at `cfg.baseline`.
pub fn check(
    cfg: &Config,
    files: &[SourceFile],
    markers: &mut Markers,
    findings: &mut Vec<Finding>,
) -> Inventory {
    let mut justified = 0usize;
    // (file, hash) -> occurrences in the current tree.
    let mut found: BTreeMap<(String, u64), SiteGroup> = BTreeMap::new();

    for (fi, file) in files.iter().enumerate() {
        if file.scope != Scope::Src {
            continue;
        }
        for (line, code) in file.scrubbed.code.iter().enumerate() {
            if is_test_code(file, line) {
                continue;
            }
            let hits: usize = PANIC_PATTERNS.iter().map(|p| code.matches(p).count()).sum();
            if hits == 0 {
                continue;
            }
            if markers.take(fi, line, "panic") {
                justified += hits;
                continue;
            }
            let key = (file.rel.clone(), fnv64(code.trim()));
            let group = found.entry(key).or_default();
            if group.count == 0 {
                group.first_line = line + 1;
                group.excerpt = excerpt_of(&file.raw, line);
            }
            group.count += hits;
        }
    }

    let baseline = load_baseline(cfg, findings);
    let mut baselined = 0usize;
    let mut fresh = String::from(
        "# panic-path baseline — grandfathered unjustified unwrap/expect/panic! sites.\n\
         # One line per distinct site: <file>\\t<count>\\t<fnv64 of scrubbed line>\\t<excerpt>.\n\
         # Regenerate with `repro audit --update-baseline`; see DESIGN.md §11.\n",
    );
    for ((file, hash), group) in &found {
        let allowed = baseline.get(&(file.clone(), *hash)).copied().unwrap_or(0);
        baselined += group.count.min(allowed);
        if group.count > allowed {
            findings.push(Finding {
                lint: Lint::PanicPath,
                file: file.clone(),
                line: group.first_line,
                message: format!(
                    "{} unjustified panic-path site(s) (baseline allows {}) at `{}` — \
                     justify with `audit: allow(panic) — <invariant>`, return an error \
                     instead, or regenerate the baseline",
                    group.count, allowed, group.excerpt
                ),
            });
        }
        let _ = writeln!(
            fresh,
            "{file}\t{}\t{hash:016x}\t{}",
            group.count, group.excerpt
        );
    }
    for ((file, hash), allowed) in &baseline {
        let live = found.get(&(file.clone(), *hash)).map_or(0, |g| g.count);
        if live < *allowed {
            findings.push(Finding {
                lint: Lint::PanicPath,
                file: file.clone(),
                line: 0,
                message: format!(
                    "stale panic-baseline entry {hash:016x} (baseline {allowed}, found \
                     {live}) — regenerate with `repro audit --update-baseline`"
                ),
            });
        }
    }

    Inventory {
        justified,
        baselined,
        fresh_baseline: fresh,
    }
}

fn excerpt_of(raw: &str, line: usize) -> String {
    let text = raw.lines().nth(line).unwrap_or("").trim();
    let mut ex: String = text.chars().take(80).collect();
    if ex.len() < text.len() {
        ex.push('…');
    }
    ex
}

fn load_baseline(cfg: &Config, findings: &mut Vec<Finding>) -> BTreeMap<(String, u64), usize> {
    let mut out = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(&cfg.baseline) else {
        // No baseline committed: every unjustified site is new.
        return out;
    };
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let parsed = (|| {
            let file = parts.next()?.to_string();
            let count: usize = parts.next()?.parse().ok()?;
            let hash = u64::from_str_radix(parts.next()?, 16).ok()?;
            Some((file, count, hash))
        })();
        match parsed {
            Some((file, count, hash)) => {
                *out.entry((file, hash)).or_default() += count;
            }
            None => findings.push(Finding {
                lint: Lint::PanicPath,
                file: cfg.baseline.display().to_string(),
                line: i + 1,
                message: "malformed baseline line (expected <file>\\t<count>\\t<hash>\\t<excerpt>)"
                    .into(),
            }),
        }
    }
    out
}
