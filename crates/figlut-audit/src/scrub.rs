//! A comment/string/attribute-aware line scrubber for Rust sources.
//!
//! The audit lints do not need a full AST: every rule they enforce is
//! expressible over (a) the source with comments and literal *contents*
//! removed and (b) the comment text itself, both kept line-aligned with
//! the original file. This module produces exactly that split. It
//! understands line comments, nested block comments, string literals,
//! raw strings with arbitrary `#` fences, byte/C strings, character
//! literals vs. lifetimes, and escapes — the places a naive substring
//! scan would misfire.

/// One source file split into line-aligned code and comment channels.
#[derive(Debug, Clone)]
pub struct Scrubbed {
    /// Line `i` of the input with comments removed and every string or
    /// character literal replaced by an empty literal (`""` / `' '`).
    /// Identifiers, attributes, and punctuation survive verbatim.
    pub code: Vec<String>,
    /// The concatenated comment text of line `i` (without the `//`,
    /// `///`, `/*` markers), empty for comment-free lines.
    pub comments: Vec<String>,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    BlockComment { depth: u32 },
    Str,
    RawStr { fence: u32 },
    Char,
}

/// Split `src` into its code and comment channels. Never fails: input
/// that is not valid Rust simply scrubs conservatively (an unterminated
/// literal swallows the rest of the file as literal text).
pub fn scrub(src: &str) -> Scrubbed {
    let mut code = Vec::new();
    let mut comments = Vec::new();
    let mut mode = Mode::Code;
    for line in src.lines() {
        let (c, m) = scrub_line(line, &mut mode);
        code.push(c);
        comments.push(m);
        // Line comments never span lines.
        if mode == Mode::LineComment {
            mode = Mode::Code;
        }
    }
    Scrubbed { code, comments }
}

fn scrub_line(line: &str, mode: &mut Mode) -> (String, String) {
    let mut code = String::new();
    let mut comment = String::new();
    let bytes: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match *mode {
            Mode::Code => match c {
                '/' if next == Some('/') => {
                    *mode = Mode::LineComment;
                    comment.push_str(&line.chars().skip(i + 2).collect::<String>());
                    break;
                }
                '/' if next == Some('*') => {
                    *mode = Mode::BlockComment { depth: 1 };
                    i += 2;
                }
                '"' => {
                    // Plain (or byte/C) string: the prefix letter was
                    // already emitted as code, which is fine — the lints
                    // only care that the *contents* vanish.
                    code.push('"');
                    *mode = Mode::Str;
                    i += 1;
                }
                'r' if is_raw_string_start(&bytes, i) => {
                    let mut fence = 0;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&'#') {
                        fence += 1;
                        j += 1;
                    }
                    code.push('"');
                    *mode = Mode::RawStr { fence };
                    i = j + 1;
                }
                '\'' => {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                    if is_char_literal(&bytes, i) {
                        code.push_str("' '");
                        *mode = Mode::Char;
                        i += 1;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    code.push(c);
                    i += 1;
                }
            },
            // audit: allow(panic) — scrub() resets LineComment before the next line
            Mode::LineComment => unreachable!("line comments consume the rest of the line"),
            Mode::BlockComment { depth } => {
                if c == '*' && next == Some('/') {
                    let d = depth - 1;
                    *mode = if d == 0 {
                        // Keep token separation across the removed span.
                        code.push(' ');
                        Mode::Code
                    } else {
                        Mode::BlockComment { depth: d }
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    *mode = Mode::BlockComment { depth: depth + 1 };
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => match c {
                '\\' => i += 2,
                '"' => {
                    code.push('"');
                    *mode = Mode::Code;
                    i += 1;
                }
                _ => i += 1,
            },
            Mode::RawStr { fence } => {
                if c == '"' && closes_raw(&bytes, i, fence) {
                    code.push('"');
                    *mode = Mode::Code;
                    i += 1 + fence as usize;
                } else {
                    i += 1;
                }
            }
            Mode::Char => match c {
                '\\' => i += 2,
                '\'' => {
                    *mode = Mode::Code;
                    i += 1;
                }
                _ => i += 1,
            },
        }
    }
    // A string/char literal can legitimately span lines; comments keep
    // accumulating; everything else resets per line in the caller.
    (code, comment)
}

/// Does the `"` at `bytes[i]` end a raw string with `fence` trailing
/// `#`s?
fn closes_raw(bytes: &[char], i: usize, fence: u32) -> bool {
    (1..=fence as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Is `bytes[i] == 'r'` the start of a raw string (`r"`, `r#"`, …) rather
/// than an identifier ending in `r`?
fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    if i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_') {
        return false;
    }
    let mut j = i + 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

/// Distinguish `'a'` / `'\n'` (char literal) from `'a` (lifetime) and
/// `'static`.
fn is_char_literal(bytes: &[char], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some('\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Iterate the identifier-ish words of a scrubbed code line.
pub fn words(code_line: &str) -> impl Iterator<Item = &str> {
    code_line
        .split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .filter(|w| !w.is_empty())
}

/// Byte ranges of `#[cfg(test)] mod … { … }` regions, as half-open line
/// ranges. Lints that only govern shipping code (the panic-path
/// inventory, the deterministic-crate marker ban) skip these lines.
pub fn cfg_test_regions(scrubbed: &Scrubbed) -> Vec<std::ops::Range<usize>> {
    let mut regions = Vec::new();
    let n = scrubbed.code.len();
    let mut i = 0;
    while i < n {
        let line = scrubbed.code[i].trim();
        let is_cfg_test = line.starts_with("#[cfg(test)]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Find the `{` that opens the annotated item (usually `mod tests {`
        // on the next line) and walk to its matching brace.
        let mut depth = 0i32;
        let mut opened = false;
        let start = i;
        let mut j = i;
        'outer: while j < n {
            for ch in scrubbed.code[j].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    ';' if !opened && depth == 0 => {
                        // `#[cfg(test)] use …;` — no body to skip.
                        break 'outer;
                    }
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                regions.push(start..j + 1);
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    regions
}

/// True if `line` (0-based) falls in any of `regions`.
pub fn in_regions(regions: &[std::ops::Range<usize>], line: usize) -> bool {
    regions.iter().any(|r| r.contains(&line))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let s = scrub("let x = 1; // trailing HashMap\n/* block\nHashMap\n*/ let y = 2;");
        assert_eq!(s.code[0], "let x = 1; ");
        assert!(s.comments[0].contains("HashMap"));
        assert!(!s.code[1].contains("HashMap"));
        assert!(!s.code[2].contains("HashMap"));
        assert!(s.code[3].contains("let y = 2;"));
    }

    #[test]
    fn nested_block_comments() {
        let s = scrub("/* a /* b */ still comment */ code()");
        assert!(!s.code[0].contains("still"));
        assert!(s.code[0].contains("code()"));
    }

    #[test]
    fn blanks_string_contents_including_raw() {
        let s = scrub(r##"let a = "HashMap"; let b = r#"Instant::now"#; f();"##);
        assert!(!s.code[0].contains("HashMap"));
        assert!(!s.code[0].contains("Instant"));
        assert!(s.code[0].contains("f();"));
    }

    #[test]
    fn multiline_string_swallows_code_tokens() {
        let s = scrub("let a = \"start\nHashMap\nend\"; g();");
        assert!(!s.code[1].contains("HashMap"));
        assert!(s.code[2].contains("g();"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let s = scrub("fn f<'a>(x: &'a str) { let c = '\"'; let d = 'H'; }");
        assert!(s.code[0].contains("'a"));
        assert!(!s.code[0].contains('H'));
        // The blanked char literal must not open a string.
        assert!(s.code[0].ends_with('}'));
    }

    #[test]
    fn escaped_quote_in_string() {
        let s = scrub(r#"let a = "he\"llo HashMap"; h();"#);
        assert!(!s.code[0].contains("HashMap"));
        assert!(s.code[0].contains("h();"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_raw_string() {
        let s = scrub(r#"let var = attr"x";"#);
        // `attr"x"` would be weird Rust, but `r` inside an identifier
        // must not trigger raw-string mode and eat the semicolon.
        assert!(s.code[0].ends_with(';'));
    }

    #[test]
    fn finds_cfg_test_region() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn b() {}";
        let s = scrub(src);
        let r = cfg_test_regions(&s);
        assert_eq!(r.len(), 1);
        assert!(in_regions(&r, 3));
        assert!(!in_regions(&r, 0));
        assert!(!in_regions(&r, 5));
    }

    #[test]
    fn cfg_test_on_use_item_does_not_swallow_file() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn real() { y.unwrap(); }";
        let s = scrub(src);
        let r = cfg_test_regions(&s);
        assert!(!in_regions(&r, 2));
    }

    #[test]
    fn words_splits_identifiers() {
        let w: Vec<_> = words("use std::collections::HashMap; x.unwrap_or(0)").collect();
        assert!(w.contains(&"HashMap"));
        assert!(w.contains(&"unwrap_or"));
        assert!(!w.contains(&"unwrap"));
    }
}
