//! The inline allowance grammar.
//!
//! A finding is suppressed by a comment of the form
//! (backticks only delimit the example here):
//!
//! ```text
//! // audit: allow(<key>) — <justification>
//! ```
//!
//! on the same line as the violating code or on a comment line directly
//! above it. Keys: `determinism`, `panic`, `lock`, `lock-order`. The
//! justification is mandatory — an allowance without a reason is itself
//! a finding, as is an allowance that suppresses nothing (staleness) or
//! names an unknown key (typos must not silently disable a lint).

use crate::scrub::in_regions;
use crate::{Finding, Lint, SourceFile};
use std::collections::BTreeMap;

/// Lint family a marker key belongs to.
pub fn key_lint(key: &str) -> Option<Lint> {
    match key {
        "determinism" => Some(Lint::Determinism),
        "panic" => Some(Lint::PanicPath),
        "lock" | "lock-order" => Some(Lint::LockDiscipline),
        _ => None,
    }
}

struct Marker {
    key: String,
    file_rel: String,
    /// 0-based line of the marker comment itself.
    own_line: usize,
    used: bool,
}

/// All allowance markers of a workspace, addressed by the code line they
/// govern.
pub struct Markers {
    /// `(file index, 0-based governed line) -> markers`.
    by_site: BTreeMap<(usize, usize), Vec<Marker>>,
    /// Grammar problems found while collecting (flushed by
    /// [`Markers::flag_unused`]).
    errors: Vec<Finding>,
}

/// Parse every marker in `files`. Grammar errors are recorded and
/// reported later so collection never fails.
pub fn collect(files: &[SourceFile]) -> Markers {
    let mut by_site: BTreeMap<(usize, usize), Vec<Marker>> = BTreeMap::new();
    let mut errors = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        let n = file.scrubbed.code.len();
        for line in 0..n {
            let comment = file.scrubbed.comments[line].trim();
            let Some(rest) = comment.strip_prefix("audit: allow(") else {
                continue;
            };
            let Some(close) = rest.find(')') else {
                errors.push(Finding {
                    lint: Lint::Reconcile,
                    file: file.rel.clone(),
                    line: line + 1,
                    message: "unterminated allowance marker (missing `)`)".into(),
                });
                continue;
            };
            let keys: Vec<String> = rest[..close]
                .split(',')
                .map(|k| k.trim().to_string())
                .filter(|k| !k.is_empty())
                .collect();
            let justification = rest[close + 1..]
                .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
                .trim();
            if justification.is_empty() {
                errors.push(Finding {
                    lint: keys
                        .first()
                        .and_then(|k| key_lint(k))
                        .unwrap_or(Lint::Reconcile),
                    file: file.rel.clone(),
                    line: line + 1,
                    message: "allowance marker lacks a justification (write \
                              `audit: allow(<key>) — <why this is sound>`)"
                        .into(),
                });
            }
            // The governed line: this one if it has code, else the next
            // line carrying code.
            let governed = if !file.scrubbed.code[line].trim().is_empty() {
                Some(line)
            } else {
                (line + 1..n).find(|&l| !file.scrubbed.code[l].trim().is_empty())
            };
            let Some(governed) = governed else {
                errors.push(Finding {
                    lint: keys
                        .first()
                        .and_then(|k| key_lint(k))
                        .unwrap_or(Lint::Reconcile),
                    file: file.rel.clone(),
                    line: line + 1,
                    message: "allowance marker governs no code line".into(),
                });
                continue;
            };
            for key in keys {
                if key_lint(&key).is_none() {
                    errors.push(Finding {
                        lint: Lint::Reconcile,
                        file: file.rel.clone(),
                        line: line + 1,
                        message: format!(
                            "unknown allowance key '{key}' (known: determinism, panic, \
                             lock, lock-order)"
                        ),
                    });
                    continue;
                }
                by_site.entry((fi, governed)).or_default().push(Marker {
                    key,
                    file_rel: file.rel.clone(),
                    own_line: line,
                    used: false,
                });
            }
        }
    }
    Markers { by_site, errors }
}

impl Markers {
    /// Consume the allowance for `key` governing `line` (0-based) of
    /// file `fi`, if present.
    pub fn take(&mut self, fi: usize, line: usize, key: &str) -> bool {
        if let Some(ms) = self.by_site.get_mut(&(fi, line)) {
            for m in ms {
                if m.key == key {
                    m.used = true;
                    return true;
                }
            }
        }
        false
    }

    /// Emit grammar errors and a finding per marker that suppressed
    /// nothing — an allowance that no longer allows anything is drift
    /// and must be removed rather than left to rot.
    pub fn flag_unused(self, findings: &mut Vec<Finding>) {
        findings.extend(self.errors);
        for ((_, _), ms) in self.by_site {
            for m in ms {
                if !m.used {
                    // key_lint validated at collection time.
                    let lint = key_lint(&m.key).unwrap_or(Lint::Reconcile);
                    findings.push(Finding {
                        lint,
                        file: m.file_rel.clone(),
                        line: m.own_line + 1,
                        message: format!(
                            "stale allowance `allow({})` — it suppresses nothing; remove it",
                            m.key
                        ),
                    });
                }
            }
        }
    }
}

/// True when `line` of `file` is test code (a `tests/` file or inside a
/// `#[cfg(test)]` module) — several lints relax there.
pub fn is_test_code(file: &SourceFile, line: usize) -> bool {
    file.scope == crate::Scope::Test || in_regions(&file.test_regions, line)
}
