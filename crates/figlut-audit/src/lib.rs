#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # figlut-audit — workspace-wide static invariant checker
//!
//! The workspace's signature property — every served token stream is
//! bit-identical to a solo run, across threads, policies, paging, and
//! injected faults — is enforced dynamically by the property suites and
//! golden traces. This crate is the *static* sibling of those gates: a
//! dependency-free source-level analyzer (its own lexer, its own JSON
//! writer, nothing from the registry) that walks every workspace crate
//! and turns repo-specific correctness rules into build-time errors.
//! DESIGN.md §11 documents each rule and the allowance grammar.
//!
//! Five lint families (exit-code bit in parentheses):
//!
//! * **determinism (1)** — forbids randomized or wall-clock constructs
//!   (`HashMap`, `HashSet`, `Instant`, `SystemTime`, thread-id reads) in
//!   audited code; in the deterministic core crates' `src/` not even an
//!   allowance can excuse them.
//! * **unsafe-discipline (2)** — every `unsafe` needs a `SAFETY:`
//!   comment; crates whose `src/` has no `unsafe` must declare
//!   `#![forbid(unsafe_code)]`.
//! * **panic-path (4)** — inventories `unwrap`/`expect`/`panic!`-class
//!   sites in shipping `src/`; each is either justified by an inline
//!   allowance or grandfathered in a committed baseline; new unjustified
//!   sites fail the audit.
//! * **lock-discipline (8)** — `Mutex::lock()` call sites must recover
//!   from poisoning (the `BlockPool` pattern) instead of unwrapping it,
//!   and acquiring two distinct locks in one function is flagged for
//!   ordering review.
//! * **reconciliation (16)** — every counter declared in
//!   `figlut-trace`'s `registry!` block must be incremented somewhere
//!   and named in DESIGN.md; every experiment id registered in
//!   `figlut-bench` must have a CI smoke (directly in the workflow or
//!   via a test that CI runs) or a recorded exemption.
//!
//! Run it as `repro audit` or `cargo run -p figlut-audit`; `--json`
//! emits machine-readable output, `--update-baseline` regenerates the
//! panic-path baseline after an intentional change.
//!
//! ```
//! use figlut_audit::{audit, Config};
//! let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
//! let report = audit(&Config::for_workspace(root)).unwrap();
//! assert_eq!(report.exit_code(), 0, "{}", report.render());
//! ```

pub mod determinism;
pub mod locks;
pub mod markers;
pub mod panics;
pub mod reconcile;
pub mod scrub;
pub mod unsafety;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// The five lint families. Each owns one bit of the process exit code so
/// CI logs can be decoded without re-running the tool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// Randomized-iteration / wall-clock / thread-id constructs.
    Determinism,
    /// `SAFETY:` comments and `#![forbid(unsafe_code)]` coverage.
    Unsafety,
    /// The `unwrap`/`expect`/`panic!` inventory against its baseline.
    PanicPath,
    /// Mutex poison recovery and nested-acquisition review.
    LockDiscipline,
    /// Counter-registry and experiment-registry reconciliation.
    Reconcile,
}

impl Lint {
    /// Stable lint name used in reports, JSON, and allowance markers.
    pub fn name(self) -> &'static str {
        match self {
            Lint::Determinism => "determinism",
            Lint::Unsafety => "unsafe-discipline",
            Lint::PanicPath => "panic-path",
            Lint::LockDiscipline => "lock-discipline",
            Lint::Reconcile => "reconcile",
        }
    }

    /// Exit-code bit for this family.
    pub fn bit(self) -> i32 {
        match self {
            Lint::Determinism => 1,
            Lint::Unsafety => 2,
            Lint::PanicPath => 4,
            Lint::LockDiscipline => 8,
            Lint::Reconcile => 16,
        }
    }
}

/// One violation, anchored to a workspace-relative file and 1-based line
/// (line 0 means the finding concerns the file or workspace as a whole).
#[derive(Clone, Debug)]
pub struct Finding {
    /// The family that produced the finding.
    pub lint: Lint,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line, or 0 for file/workspace-level findings.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

/// What to audit and where the committed side files live. All paths are
/// resolved relative to [`Config::root`].
#[derive(Clone, Debug)]
pub struct Config {
    /// Workspace root (the directory holding `Cargo.toml` and `crates/`).
    pub root: PathBuf,
    /// Crates whose `src/` must stay strictly deterministic: inside
    /// them, `audit: allow(determinism)` markers are themselves
    /// findings (outside `#[cfg(test)]` modules).
    pub deterministic_crates: Vec<String>,
    /// Committed panic-path baseline (grandfathered unjustified sites).
    pub baseline: PathBuf,
    /// Committed experiment-smoke exemptions (`id: reason` lines).
    pub exemptions: PathBuf,
    /// The `registry!` block declaring the trace counters.
    pub counters_file: PathBuf,
    /// The file declaring the `EXPERIMENTS` id array.
    pub experiments_file: PathBuf,
    /// The design document counters must be named in.
    pub design_file: PathBuf,
    /// The CI workflow experiment ids must be smoked from.
    pub ci_file: PathBuf,
    /// Directories (relative to root) scanned for test files that count
    /// as CI smokes (CI runs `cargo test`).
    pub smoke_test_dirs: Vec<PathBuf>,
}

impl Config {
    /// The configuration for this repository's layout.
    pub fn for_workspace(root: impl Into<PathBuf>) -> Config {
        let root = root.into();
        Config {
            deterministic_crates: [
                "figlut-num",
                "figlut-gemm",
                "figlut-lut",
                "figlut-exec",
                "figlut-model",
                "figlut-serve",
                "figlut-trace",
                "figlut-sim",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            baseline: root.join("crates/figlut-audit/panic_baseline.txt"),
            exemptions: root.join("crates/figlut-audit/experiment_exemptions.txt"),
            counters_file: root.join("crates/figlut-trace/src/counters.rs"),
            experiments_file: root.join("crates/figlut-bench/src/experiments.rs"),
            design_file: root.join("DESIGN.md"),
            ci_file: root.join(".github/workflows/ci.yml"),
            smoke_test_dirs: vec![
                PathBuf::from("crates/figlut-bench/tests"),
                PathBuf::from("tests"),
            ],
            root,
        }
    }
}

/// Whether a file ships in the library (`src/`) or only runs under
/// `cargo test` (`tests/`). Benches and examples are not audited: there,
/// wall-clock timing is the deliverable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// A file under some crate's `src/`.
    Src,
    /// A file under some crate's `tests/`.
    Test,
}

/// One audited source file, scrubbed and annotated.
pub struct SourceFile {
    /// Workspace-relative path (display form, `/`-separated).
    pub rel: String,
    /// Crate the file belongs to (directory name, or `figlut` for the
    /// root facade package).
    pub krate: String,
    /// `src/` vs `tests/`.
    pub scope: Scope,
    /// Line-aligned code/comment channels.
    pub scrubbed: scrub::Scrubbed,
    /// `#[cfg(test)] mod` line ranges within the file.
    pub test_regions: Vec<std::ops::Range<usize>>,
    /// Raw text (reconciliation needs literal string contents).
    pub raw: String,
}

/// The result of one audit pass.
pub struct Report {
    /// All findings, sorted by (lint, file, line).
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Panic-path sites carrying an `allow(panic)` justification.
    pub panics_justified: usize,
    /// Panic-path sites grandfathered by the baseline.
    pub panics_baselined: usize,
    /// Counters reconciled from the `registry!` block (0 means the
    /// registry source was absent — fixture workspaces).
    pub counters_checked: usize,
    /// Experiment ids reconciled against CI (0 means absent).
    pub experiments_checked: usize,
    /// The baseline content that `--update-baseline` would write.
    pub fresh_baseline: String,
}

impl Report {
    /// Bitwise OR of the [`Lint::bit`]s of every family with findings.
    pub fn exit_code(&self) -> i32 {
        self.findings.iter().fold(0, |acc, f| acc | f.lint.bit())
    }

    /// Human-readable report: one `file:line: [lint] message` per
    /// finding, then a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}:{}: [{}] {}",
                f.file,
                f.line,
                f.lint.name(),
                f.message
            );
        }
        let mut per: BTreeMap<&str, usize> = BTreeMap::new();
        for f in &self.findings {
            *per.entry(f.lint.name()).or_default() += 1;
        }
        let _ = writeln!(
            out,
            "audit: {} finding(s) across {} file(s); {} justified + {} baselined panic site(s); \
             {} counter(s), {} experiment(s) reconciled",
            self.findings.len(),
            self.files_scanned,
            self.panics_justified,
            self.panics_baselined,
            self.counters_checked,
            self.experiments_checked,
        );
        for (name, n) in per {
            let _ = writeln!(out, "  {name}: {n}");
        }
        out
    }

    /// Machine-readable JSON (hand-rolled; the crate is dependency-free).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"lint\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                f.lint.name(),
                json_escape(&f.file),
                f.line,
                json_escape(&f.message)
            );
        }
        let _ = write!(
            out,
            "],\"files_scanned\":{},\"panics_justified\":{},\"panics_baselined\":{},\
             \"counters_checked\":{},\"experiments_checked\":{},\"exit_code\":{}}}",
            self.files_scanned,
            self.panics_justified,
            self.panics_baselined,
            self.counters_checked,
            self.experiments_checked,
            self.exit_code()
        );
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Run every lint family over the workspace at `cfg.root`.
///
/// # Errors
///
/// Returns an error string when the root is unreadable or contains no
/// audited sources — never for findings (those land in the [`Report`]).
pub fn audit(cfg: &Config) -> Result<Report, String> {
    let files = collect_sources(cfg)?;
    if files.is_empty() {
        return Err(format!(
            "no audited sources under {} (expected crates/*/src or src/)",
            cfg.root.display()
        ));
    }

    let mut markers = markers::collect(&files);
    let mut findings = Vec::new();

    determinism::check(cfg, &files, &mut markers, &mut findings);
    unsafety::check(cfg, &files, &mut findings);
    let inventory = panics::check(cfg, &files, &mut markers, &mut findings);
    locks::check(&files, &mut markers, &mut findings);
    let recon = reconcile::check(cfg, &files, &mut findings);

    markers.flag_unused(&mut findings);

    findings.sort_by(|a, b| {
        (a.lint, &a.file, a.line, &a.message).cmp(&(b.lint, &b.file, b.line, &b.message))
    });

    Ok(Report {
        findings,
        files_scanned: files.len(),
        panics_justified: inventory.justified,
        panics_baselined: inventory.baselined,
        counters_checked: recon.counters_checked,
        experiments_checked: recon.experiments_checked,
        fresh_baseline: inventory.fresh_baseline,
    })
}

/// CLI driver shared by the `figlut-audit` binary and `repro audit`:
/// audit `root`, print the report (`--json` form when `json`), and
/// return the process exit code — the OR of failing [`Lint::bit`]s, 0
/// when clean, 64 on I/O errors. With `update_baseline`, rewrite the
/// panic-path baseline from the current tree first, then report against
/// it (so the verdict reflects the file just written).
pub fn run_cli(root: &Path, json: bool, update_baseline: bool) -> i32 {
    let cfg = Config::for_workspace(root);
    let report = match audit(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("audit error: {e}");
            return 64;
        }
    };
    if update_baseline {
        if let Err(e) = std::fs::write(&cfg.baseline, &report.fresh_baseline) {
            eprintln!("audit error: cannot write {}: {e}", cfg.baseline.display());
            return 64;
        }
        eprintln!("wrote {}", cfg.baseline.display());
        return run_cli(root, json, false);
    }
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    report.exit_code()
}

/// Discover and scrub every audited source file: `crates/*/{src,tests}`
/// plus the root package's `src/` and `tests/`. `vendor/` (API shims of
/// external crates), `benches/`, and `examples/` are out of scope.
fn collect_sources(cfg: &Config) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    let crates_dir = cfg.root.join("crates");
    let mut crate_dirs: Vec<(String, PathBuf)> = Vec::new();
    if crates_dir.is_dir() {
        let entries = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() && path.join("Cargo.toml").is_file() {
                crate_dirs.push((entry.file_name().to_string_lossy().into_owned(), path));
            }
        }
    }
    // The root facade package, when present.
    if cfg.root.join("src").is_dir() {
        crate_dirs.push(("figlut".to_string(), cfg.root.clone()));
    }
    crate_dirs.sort();

    for (krate, dir) in crate_dirs {
        for (sub, scope) in [("src", Scope::Src), ("tests", Scope::Test)] {
            let base = dir.join(sub);
            if !base.is_dir() {
                continue;
            }
            let mut paths = Vec::new();
            walk_rs(&base, &mut paths)?;
            paths.sort();
            for p in paths {
                let raw = std::fs::read_to_string(&p)
                    .map_err(|e| format!("cannot read {}: {e}", p.display()))?;
                let scrubbed = scrub::scrub(&raw);
                let test_regions = scrub::cfg_test_regions(&scrubbed);
                let rel = p
                    .strip_prefix(&cfg.root)
                    .unwrap_or(&p)
                    .to_string_lossy()
                    .replace('\\', "/");
                files.push(SourceFile {
                    rel,
                    krate: krate.clone(),
                    scope,
                    scrubbed,
                    test_regions,
                    raw,
                });
            }
        }
    }
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // Fixture corpora under tests/ are lint *inputs*, not audited
            // sources of the crate that carries them.
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
