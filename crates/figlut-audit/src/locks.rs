//! Lock-discipline lint.
//!
//! Two rules, scoped to shipping code (`src/` outside `#[cfg(test)]` —
//! in tests a poisoned lock *should* fail the test loudly):
//!
//! 1. **Poison recovery.** A `.lock()` call whose result is immediately
//!    `.unwrap()`ed or `.expect()`ed turns one panicking thread into a
//!    cascade of panics on every other thread that touches the mutex.
//!    The workspace pattern (see `BlockPool::lock`) is to recover the
//!    guard: `.lock().unwrap_or_else(|e| e.into_inner())` or a `match`
//!    on the `Err(poisoned)` arm — pool bookkeeping is kept consistent
//!    *before* any panic point precisely so recovery is sound. An
//!    `allow(lock)` marker records the rare site where propagating the
//!    panic is intended.
//! 2. **Nested acquisition.** A function that acquires two *distinct*
//!    locks opens the door to lock-order inversion; each such pairing
//!    must be reviewed and recorded with an `allow(lock-order)` marker
//!    naming the global order.

use crate::markers::{is_test_code, Markers};
use crate::{Finding, Lint, Scope, SourceFile};

/// Run the lint over every `src/` file.
pub fn check(files: &[SourceFile], markers: &mut Markers, findings: &mut Vec<Finding>) {
    for (fi, file) in files.iter().enumerate() {
        if file.scope != Scope::Src {
            continue;
        }
        check_file(fi, file, markers, findings);
    }
}

fn check_file(fi: usize, file: &SourceFile, markers: &mut Markers, findings: &mut Vec<Finding>) {
    // Stack of (brace depth at fn entry, distinct receivers locked).
    let mut fn_stack: Vec<(i32, Vec<String>)> = Vec::new();
    let mut depth: i32 = 0;
    let mut pending_fn = false;

    for (line, code) in file.scrubbed.code.iter().enumerate() {
        // Function-boundary tracking (lexical approximation: the next
        // `{` after a `fn` keyword opens its body; a `;` first means it
        // was a trait-method declaration or fn-pointer type).
        let mut chars = code.chars().peekable();
        let mut word = String::new();
        while let Some(c) = chars.next() {
            if c.is_alphanumeric() || c == '_' {
                word.push(c);
                if chars
                    .peek()
                    .is_none_or(|n| !(n.is_alphanumeric() || *n == '_'))
                    && word == "fn"
                {
                    pending_fn = true;
                }
                continue;
            }
            word.clear();
            match c {
                '{' => {
                    if pending_fn {
                        fn_stack.push((depth, Vec::new()));
                        pending_fn = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if fn_stack.last().is_some_and(|(d, _)| depth <= *d) {
                        fn_stack.pop();
                    }
                }
                ';' if pending_fn => pending_fn = false,
                _ => {}
            }
        }

        if is_test_code(file, line) {
            continue;
        }
        let mut search = 0;
        while let Some(pos) = code[search..].find(".lock()") {
            let at = search + pos;
            search = at + ".lock()".len();

            // Rule 1: what happens to the returned Result?
            let follow = next_token_after(file, line, search);
            if (follow.starts_with(".unwrap()") || follow.starts_with(".expect("))
                && !markers.take(fi, line, "lock")
            {
                findings.push(Finding {
                    lint: Lint::LockDiscipline,
                    file: file.rel.clone(),
                    line: line + 1,
                    message: "`.lock()` result unwrapped without poison recovery — \
                              use `.unwrap_or_else(|e| e.into_inner())` (the \
                              BlockPool pattern) or justify with \
                              `audit: allow(lock) — <why propagating is right>`"
                        .into(),
                });
            }

            // Rule 2: distinct receivers within one function.
            let recv = receiver_before(file, line, at);
            if let Some((_, receivers)) = fn_stack.last_mut() {
                if !receivers.contains(&recv) {
                    if !receivers.is_empty() && !markers.take(fi, line, "lock-order") {
                        findings.push(Finding {
                            lint: Lint::LockDiscipline,
                            file: file.rel.clone(),
                            line: line + 1,
                            message: format!(
                                "function acquires a second distinct lock (`{recv}` after \
                                 `{}`) — review for lock-order inversion and record the \
                                 order with `audit: allow(lock-order) — <order>`",
                                receivers[0]
                            ),
                        });
                    }
                    receivers.push(recv);
                }
            }
        }
    }
}

/// The first non-whitespace token text after byte `from` of `line`,
/// spilling onto following lines for rustfmt-wrapped method chains.
fn next_token_after(file: &SourceFile, line: usize, from: usize) -> String {
    let rest = file.scrubbed.code[line][from..].trim_start();
    if !rest.is_empty() {
        return rest.to_string();
    }
    file.scrubbed.code[line + 1..]
        .iter()
        .map(|l| l.trim_start())
        .find(|l| !l.is_empty())
        .unwrap_or("")
        .to_string()
}

/// The identifier chain immediately before `.lock()` (e.g. `self.inner`,
/// `p.pool`), looking at the previous line when the chain is wrapped.
fn receiver_before(file: &SourceFile, line: usize, at: usize) -> String {
    let before = file.scrubbed.code[line][..at].trim_end();
    let chain = trailing_chain(before);
    if !chain.is_empty() {
        return chain;
    }
    for l in (0..line).rev() {
        let text = file.scrubbed.code[l].trim_end();
        if text.is_empty() {
            continue;
        }
        let chain = trailing_chain(text);
        return if chain.is_empty() {
            "<expr>".to_string()
        } else {
            chain
        };
    }
    "<expr>".to_string()
}

fn trailing_chain(text: &str) -> String {
    let tail: String = text
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || matches!(c, '_' | '.' | ':'))
        .collect();
    tail.chars()
        .rev()
        .collect::<String>()
        .trim_matches(['.', ':'])
        .to_string()
}
