#![forbid(unsafe_code)]
//! `figlut-audit` — run the workspace static invariant checker.
//!
//! ```text
//! figlut-audit                       # audit the enclosing workspace
//! figlut-audit --json                # machine-readable findings
//! figlut-audit --root <dir>          # audit another tree
//! figlut-audit --update-baseline     # rewrite the panic-path baseline
//! ```
//!
//! Exit code: bitwise OR of the failing lint families (determinism 1,
//! unsafe-discipline 2, panic-path 4, lock-discipline 8, reconcile 16);
//! 0 when clean; 64 for usage or I/O errors. `repro audit` is the same
//! entry point routed through the bench harness.

use figlut_audit::run_cli;
use std::path::PathBuf;

fn main() {
    let mut json = false;
    let mut update_baseline = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--update-baseline" => update_baseline = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => usage_error("--root needs a directory argument"),
            },
            other => usage_error(&format!(
                "unknown argument '{other}' (try --json, --update-baseline, --root <dir>)"
            )),
        }
    }
    let Some(root) = root.or_else(discover_root) else {
        usage_error("no workspace root found (no ancestor with Cargo.toml and crates/)");
    };
    std::process::exit(run_cli(&root, json, update_baseline));
}

/// Walk up from the current directory to the first workspace-shaped
/// ancestor (has `Cargo.toml` and a `crates/` directory).
fn discover_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(64);
}
