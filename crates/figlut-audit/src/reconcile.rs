//! Counter/experiment reconciliation lint.
//!
//! Observability that drifts from reality is worse than none, so the
//! audit cross-checks the two registries the workspace commits to:
//!
//! * Every counter declared in `figlut-trace`'s `registry!` block must
//!   be **live** (its `bump_*` function called somewhere outside the
//!   registry) and **documented** (its field name appears in
//!   DESIGN.md). A counter failing either check is dead weight that
//!   silently reports zero.
//! * Every experiment id in `figlut-bench`'s `EXPERIMENTS` array must
//!   have a CI smoke — the id appears in the CI workflow, or quoted in
//!   a test file that CI runs via `cargo test` — or a recorded
//!   exemption (`experiment_exemptions.txt`, `id: reason` lines).
//!   Unused exemptions are findings, so the exemption list cannot rot.
//!
//! Both sub-checks are skipped when their source file is absent (the
//! fixture workspaces), and the counts in [`Summary`] say what actually
//! ran — the self-audit test pins them for the real workspace.

use crate::{Config, Finding, Lint, Scope, SourceFile};
use std::collections::BTreeMap;
use std::path::Path;

/// What the reconciliation pass actually covered.
pub struct Summary {
    /// Counters parsed out of the `registry!` block.
    pub counters_checked: usize,
    /// Experiment ids parsed out of the `EXPERIMENTS` array.
    pub experiments_checked: usize,
}

/// Run both reconciliation sub-checks.
pub fn check(cfg: &Config, files: &[SourceFile], findings: &mut Vec<Finding>) -> Summary {
    Summary {
        counters_checked: check_counters(cfg, files, findings),
        experiments_checked: check_experiments(cfg, findings),
    }
}

fn rel_of(cfg: &Config, path: &Path) -> String {
    path.strip_prefix(&cfg.root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn check_counters(cfg: &Config, files: &[SourceFile], findings: &mut Vec<Finding>) -> usize {
    let Ok(text) = std::fs::read_to_string(&cfg.counters_file) else {
        return 0;
    };
    let rel = rel_of(cfg, &cfg.counters_file);
    let scrubbed = crate::scrub::scrub(&text);
    let entries = registry_entries(&scrubbed);
    if entries.is_empty() {
        findings.push(Finding {
            lint: Lint::Reconcile,
            file: rel.clone(),
            line: 0,
            message: "no `IDENT, bump_x, field;` entries found in the `registry!` block".into(),
        });
        return 0;
    }
    let design = std::fs::read_to_string(&cfg.design_file).unwrap_or_default();
    for (line, bump, field) in &entries {
        let call = format!("{bump}(");
        let live = files.iter().any(|f| {
            f.scope == Scope::Src
                && f.rel != rel
                && f.scrubbed.code.iter().any(|c| c.contains(&call))
        });
        if !live {
            findings.push(Finding {
                lint: Lint::Reconcile,
                file: rel.clone(),
                line: line + 1,
                message: format!(
                    "counter `{field}` is declared but `{bump}` is never called — \
                     instrument the code path or delete the counter"
                ),
            });
        }
        if !contains_word(&design, field) {
            findings.push(Finding {
                lint: Lint::Reconcile,
                file: rel.clone(),
                line: line + 1,
                message: format!(
                    "counter `{field}` is not named in {} — document what it reconciles \
                     against",
                    rel_of(cfg, &cfg.design_file)
                ),
            });
        }
    }
    entries.len()
}

/// Parse `IDENT, bump_x, field;` triples out of the `registry! { … }`
/// invocation, returning `(0-based line, bump, field)`.
fn registry_entries(scrubbed: &crate::scrub::Scrubbed) -> Vec<(usize, String, String)> {
    let mut out = Vec::new();
    let Some(start) = scrubbed.code.iter().position(|c| c.contains("registry!")) else {
        return out;
    };
    let mut depth = 0i32;
    let mut opened = false;
    for (i, code) in scrubbed.code.iter().enumerate().skip(start) {
        for ch in code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        let line = code.trim();
        if opened && depth > 0 {
            if let Some(body) = line.strip_suffix(';') {
                let parts: Vec<&str> = body.split(',').map(str::trim).collect();
                if parts.len() == 3 && parts.iter().all(|p| is_ident(p)) {
                    out.push((i, parts[1].to_string(), parts[2].to_string()));
                }
            }
        }
        if opened && depth <= 0 {
            break;
        }
    }
    out
}

fn is_ident(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_alphanumeric() || c == '_')
}

/// `word` present in `text` with no identifier character on either side.
fn contains_word(text: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = text[from..].find(word) {
        let at = from + pos;
        let before_ok =
            at == 0 || !text[..at].ends_with(|c: char| c.is_alphanumeric() || c == '_' || c == '-');
        let after = &text[at + word.len()..];
        let after_ok = !after.starts_with(|c: char| c.is_alphanumeric() || c == '_' || c == '-');
        if before_ok && after_ok {
            return true;
        }
        from = at + word.len();
    }
    false
}

fn check_experiments(cfg: &Config, findings: &mut Vec<Finding>) -> usize {
    let Ok(text) = std::fs::read_to_string(&cfg.experiments_file) else {
        return 0;
    };
    let rel = rel_of(cfg, &cfg.experiments_file);
    let ids = experiment_ids(&text);
    if ids.is_empty() {
        findings.push(Finding {
            lint: Lint::Reconcile,
            file: rel.clone(),
            line: 0,
            message: "no string literals found in the `EXPERIMENTS` array".into(),
        });
        return 0;
    }
    let ci = std::fs::read_to_string(&cfg.ci_file).unwrap_or_default();
    let mut smoke_texts = Vec::new();
    for dir in &cfg.smoke_test_dirs {
        let dir = cfg.root.join(dir);
        if let Ok(entries) = std::fs::read_dir(&dir) {
            let mut paths: Vec<_> = entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "rs"))
                .collect();
            paths.sort();
            for p in paths {
                if let Ok(t) = std::fs::read_to_string(&p) {
                    smoke_texts.push(t);
                }
            }
        }
    }
    let mut exemptions = load_exemptions(cfg);
    for id in &ids {
        let quoted = format!("\"{id}\"");
        let covered = contains_word(&ci, id) || smoke_texts.iter().any(|t| t.contains(&quoted));
        if covered {
            continue;
        }
        if let Some(used) = exemptions.get_mut(id.as_str()) {
            *used = true;
            continue;
        }
        findings.push(Finding {
            lint: Lint::Reconcile,
            file: rel.clone(),
            line: 0,
            message: format!(
                "experiment `{id}` has no CI smoke (not in {} or any smoke-test dir) and \
                 no exemption in {}",
                rel_of(cfg, &cfg.ci_file),
                rel_of(cfg, &cfg.exemptions)
            ),
        });
    }
    for (id, used) in exemptions {
        if !used {
            findings.push(Finding {
                lint: Lint::Reconcile,
                file: rel_of(cfg, &cfg.exemptions),
                line: 0,
                message: format!(
                    "exemption for `{id}` is unused (the experiment is smoked or gone) — \
                     remove it"
                ),
            });
        }
    }
    ids.len()
}

/// String literals of the `EXPERIMENTS` array (read from the *raw* text —
/// scrubbing would blank exactly the contents we need).
fn experiment_ids(text: &str) -> Vec<String> {
    let Some(start) = text.find("EXPERIMENTS") else {
        return Vec::new();
    };
    let Some(end) = text[start..].find("];") else {
        return Vec::new();
    };
    let body = &text[start..start + end];
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(open) = rest.find('"') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('"') else { break };
        out.push(after[..close].to_string());
        rest = &after[close + 1..];
    }
    out
}

fn load_exemptions(cfg: &Config) -> BTreeMap<String, bool> {
    let mut out = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(&cfg.exemptions) else {
        return out;
    };
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((id, reason)) = line.split_once(':') {
            if !reason.trim().is_empty() {
                out.insert(id.trim().to_string(), false);
            }
        }
    }
    out
}
