//! Unsafe-discipline lint.
//!
//! Two rules:
//!
//! 1. Every line containing the `unsafe` keyword must be covered by a
//!    `SAFETY:` comment — on the same line or within the six lines
//!    above it (the rustc `undocumented_unsafe_blocks` convention,
//!    enforced here without needing the nightly lint).
//! 2. A crate whose `src/` contains no `unsafe` at all must say so in
//!    its entry points: `#![forbid(unsafe_code)]` in `src/lib.rs`,
//!    `src/main.rs`, and any `src/bin/*.rs` — so that introducing the
//!    first unsafe block is a deliberate, reviewed act rather than a
//!    drive-by.

use crate::scrub::words;
use crate::{Config, Finding, Lint, Scope, SourceFile};
use std::collections::BTreeMap;

/// How far above an `unsafe` line a `SAFETY:` comment may sit.
const SAFETY_WINDOW: usize = 6;

/// Run the lint: per-site `SAFETY:` coverage plus per-crate
/// `#![forbid(unsafe_code)]` coverage.
pub fn check(_cfg: &Config, files: &[SourceFile], findings: &mut Vec<Finding>) {
    // crate -> does any src/ file use `unsafe`?
    let mut crate_has_unsafe: BTreeMap<&str, bool> = BTreeMap::new();

    for file in files {
        let mut any = false;
        for (line, code) in file.scrubbed.code.iter().enumerate() {
            if !words(code).any(|w| w == "unsafe") {
                continue;
            }
            any = true;
            let covered = (line.saturating_sub(SAFETY_WINDOW)..=line)
                .any(|l| file.scrubbed.comments[l].contains("SAFETY"));
            if !covered {
                findings.push(Finding {
                    lint: Lint::Unsafety,
                    file: file.rel.clone(),
                    line: line + 1,
                    message: "`unsafe` without a `// SAFETY:` comment (same line or the \
                              few lines above) stating why the contract holds"
                        .into(),
                });
            }
        }
        if file.scope == Scope::Src {
            *crate_has_unsafe.entry(file.krate.as_str()).or_default() |= any;
        }
    }

    for (krate, has_unsafe) in crate_has_unsafe {
        if has_unsafe {
            continue;
        }
        for file in files
            .iter()
            .filter(|f| f.krate == krate && f.scope == Scope::Src)
        {
            if !is_target_root(&file.rel) {
                continue;
            }
            let declared = file.scrubbed.code.iter().any(|c| {
                c.split_whitespace()
                    .collect::<String>()
                    .contains("#![forbid(unsafe_code)]")
            });
            if !declared {
                findings.push(Finding {
                    lint: Lint::Unsafety,
                    file: file.rel.clone(),
                    line: 0,
                    message: format!(
                        "crate `{krate}` has no unsafe code in src/ — declare \
                         `#![forbid(unsafe_code)]` in this target root"
                    ),
                });
            }
        }
    }
}

/// Is this src file the root of a compilation target (lib, main, or a
/// `src/bin/*` binary)? Only target roots can carry inner attributes.
fn is_target_root(rel: &str) -> bool {
    rel.ends_with("src/lib.rs")
        || rel.ends_with("src/main.rs")
        || (rel.contains("/src/bin/") && rel.ends_with(".rs"))
}
