//! Determinism lint: forbid constructs whose behavior varies across
//! processes, hosts, or schedules.
//!
//! The workspace's core guarantee is that every result — kernel output,
//! served token stream, trace, CSV — is a pure function of its inputs
//! and seeds. `std::collections::HashMap`/`HashSet` iterate in
//! random-hasher order, `Instant`/`SystemTime` read wall clocks, and
//! thread-identity reads make logic depend on scheduling; any of them
//! can silently break the bit-identity gates. Hits are findings
//! everywhere the audit looks; outside the deterministic core an
//! `allow(determinism)` marker with a justification suppresses them
//! (e.g. `figlut-bench`'s wall-clock throughput timers, where elapsed
//! time *is* the measurement). Inside the deterministic crates' shipping
//! `src/`, the allowance itself is rejected — those crates must stay
//! clean, full stop.

use crate::markers::{is_test_code, Markers};
use crate::scrub::words;
use crate::{Config, Finding, Lint, SourceFile};

/// Forbidden identifiers and why each is nondeterministic.
const FORBIDDEN: &[(&str, &str)] = &[
    ("HashMap", "random-hasher iteration order"),
    ("HashSet", "random-hasher iteration order"),
    ("DefaultHasher", "randomly keyed hasher"),
    ("RandomState", "randomly keyed hasher"),
    ("ThreadId", "thread-identity-dependent logic"),
];

/// Non-identifier patterns matched on the scrubbed code text. The clock
/// types are matched as paths, not bare words — `Event::Instant` is this
/// workspace's own (virtual-tick) trace variant, while reaching the std
/// clocks requires either the `time::…` import or the `…::now` call.
const FORBIDDEN_PATTERNS: &[(&str, &str)] = &[
    ("thread::current", "thread-identity read"),
    ("Instant::now", "wall-clock read"),
    ("SystemTime::now", "wall-clock read"),
    ("time::Instant", "wall-clock type"),
    ("time::SystemTime", "wall-clock type"),
];

/// Run the lint over every audited file.
pub fn check(
    cfg: &Config,
    files: &[SourceFile],
    markers: &mut Markers,
    findings: &mut Vec<Finding>,
) {
    for (fi, file) in files.iter().enumerate() {
        let strict_crate = cfg.deterministic_crates.contains(&file.krate);
        for (line, code) in file.scrubbed.code.iter().enumerate() {
            let mut hits: Vec<(&str, &str)> = Vec::new();
            for &(word, why) in FORBIDDEN {
                if words(code).any(|w| w == word) {
                    hits.push((word, why));
                }
            }
            for &(pat, why) in FORBIDDEN_PATTERNS {
                if code.contains(pat) {
                    hits.push((pat, why));
                }
            }
            if hits.is_empty() {
                continue;
            }
            let strict = strict_crate && !is_test_code(file, line);
            let allowed = markers.take(fi, line, "determinism");
            for (what, why) in hits {
                if allowed && !strict {
                    continue;
                }
                let message = if allowed {
                    format!(
                        "`{what}` ({why}) — determinism allowances are not permitted in a \
                         deterministic crate's src/; fix the construct instead"
                    )
                } else {
                    format!(
                        "nondeterministic construct `{what}` ({why}) — use an ordered \
                         structure / virtual clock, or justify with \
                         `audit: allow(determinism) — <why>`"
                    )
                };
                findings.push(Finding {
                    lint: Lint::Determinism,
                    file: file.rel.clone(),
                    line: line + 1,
                    message,
                });
            }
        }
    }
}
