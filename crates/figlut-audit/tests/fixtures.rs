//! Fixture-workspace tests: every lint family is proven to fire on a
//! failing mini-workspace and to stay silent on a passing one, the
//! committed baseline workflow is exercised end to end (generate →
//! clean → drift → caught), and the audit passes over this repository's
//! own source.

use figlut_audit::{audit, Config, Lint, Report};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(root: PathBuf) -> Report {
    audit(&Config::for_workspace(root)).expect("fixture audit runs")
}

/// `report` has a finding of `lint` whose file contains `file` and whose
/// message contains `msg`.
fn has(report: &Report, lint: Lint, file: &str, msg: &str) -> bool {
    report
        .findings
        .iter()
        .any(|f| f.lint == lint && f.file.contains(file) && f.message.contains(msg))
}

#[test]
fn failing_workspace_fires_every_lint_family() {
    let r = run(fixture("failing"));

    // determinism: HashMap in a deterministic crate, and an allowance
    // marker inside deterministic src is itself rejected.
    assert!(
        has(&r, Lint::Determinism, "figlut-num", "HashMap"),
        "{}",
        r.render()
    );
    assert!(
        has(
            &r,
            Lint::Determinism,
            "figlut-num",
            "allowances are not permitted"
        ),
        "{}",
        r.render()
    );

    // unsafe-discipline: a bare unsafe fn, and an unsafe-free crate
    // whose root lacks #![forbid(unsafe_code)].
    assert!(has(&r, Lint::Unsafety, "tool", "SAFETY"), "{}", r.render());
    assert!(
        has(&r, Lint::Unsafety, "figlut-num", "#![forbid(unsafe_code)]"),
        "{}",
        r.render()
    );

    // panic-path: an unwrap with no marker and no baseline.
    assert!(
        has(&r, Lint::PanicPath, "tool", "unjustified panic-path site"),
        "{}",
        r.render()
    );

    // lock-discipline: .lock().unwrap() and .lock().expect( both get the
    // poison-recovery finding, and the second distinct lock in one
    // function gets the ordering finding.
    let poison = r
        .findings
        .iter()
        .filter(|f| f.lint == Lint::LockDiscipline && f.message.contains("poison recovery"))
        .count();
    assert_eq!(poison, 2, "{}", r.render());
    assert!(
        has(&r, Lint::LockDiscipline, "tool", "second distinct lock"),
        "{}",
        r.render()
    );

    // reconcile: dead + undocumented counter, unsmoked experiment,
    // unused exemption, unknown marker key; plus the marker-grammar
    // findings (stale marker, missing justification).
    assert!(
        has(&r, Lint::Reconcile, "counters.rs", "never called"),
        "{}",
        r.render()
    );
    assert!(
        has(&r, Lint::Reconcile, "counters.rs", "not named"),
        "{}",
        r.render()
    );
    assert!(
        has(&r, Lint::Reconcile, "experiments.rs", "no CI smoke"),
        "{}",
        r.render()
    );
    assert!(
        has(&r, Lint::Reconcile, "experiment_exemptions.txt", "unused"),
        "{}",
        r.render()
    );
    assert!(
        has(&r, Lint::Reconcile, "tool", "unknown allowance key"),
        "{}",
        r.render()
    );
    assert!(
        has(&r, Lint::PanicPath, "tool", "stale allowance"),
        "{}",
        r.render()
    );
    assert!(
        has(&r, Lint::LockDiscipline, "tool", "lacks a justification"),
        "{}",
        r.render()
    );

    // All five families set their exit bit.
    assert_eq!(r.exit_code(), 1 | 2 | 4 | 8 | 16, "{}", r.render());
}

#[test]
fn passing_workspace_is_clean() {
    let r = run(fixture("passing"));
    assert_eq!(r.exit_code(), 0, "{}", r.render());
    assert!(r.findings.is_empty(), "{}", r.render());
    // The justified constructs were actually seen, not skipped: the
    // allow(panic) markers (one standalone, one on the justified lock
    // unwrap) were consumed, and both registries reconciled.
    assert_eq!(r.panics_justified, 2, "{}", r.render());
    assert_eq!(r.counters_checked, 1);
    assert_eq!(r.experiments_checked, 2);
}

/// Copy a fixture tree into a scratch dir so `--update-baseline` and
/// source edits never touch the repository.
fn copy_tree(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("mkdir");
    for entry in std::fs::read_dir(from).expect("readdir").flatten() {
        let src = entry.path();
        let dst = to.join(entry.file_name());
        if src.is_dir() {
            copy_tree(&src, &dst);
        } else {
            std::fs::copy(&src, &dst).expect("copy");
        }
    }
}

#[test]
fn baseline_drift_is_caught() {
    let scratch = std::env::temp_dir().join(format!("figlut-audit-drift-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    copy_tree(&fixture("drift"), &scratch);
    let cfg = Config::for_workspace(&scratch);

    // 1. Ungoverned unwrap, no baseline: flagged.
    let r = audit(&cfg).expect("audit");
    assert!(
        has(&r, Lint::PanicPath, "app", "unjustified"),
        "{}",
        r.render()
    );

    // 2. Grandfather it the way `repro audit --update-baseline` does.
    std::fs::create_dir_all(cfg.baseline.parent().expect("baseline dir")).expect("mkdir");
    std::fs::write(&cfg.baseline, &r.fresh_baseline).expect("write baseline");
    let r = audit(&cfg).expect("audit");
    assert_eq!(r.exit_code(), 0, "{}", r.render());
    assert_eq!(r.panics_baselined, 1, "{}", r.render());

    // 3. Drift: a NEW unjustified unwrap is caught even though the old
    // site stays grandfathered.
    let lib = scratch.join("crates/app/src/lib.rs");
    let mut src = std::fs::read_to_string(&lib).expect("read lib");
    src.push_str("\npub fn last(v: &[u32]) -> u32 {\n    *v.last().unwrap()\n}\n");
    std::fs::write(&lib, src.clone()).expect("write lib");
    let r = audit(&cfg).expect("audit");
    assert!(
        has(&r, Lint::PanicPath, "app", "unjustified"),
        "{}",
        r.render()
    );
    assert_eq!(r.panics_baselined, 1, "{}", r.render());

    // 4. Removing every site makes the baseline entry stale — also a
    // finding, so the inventory can only shrink deliberately.
    let pruned: String = src
        .lines()
        .filter(|l| !l.contains("unwrap"))
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(&lib, pruned).expect("write lib");
    let r = audit(&cfg).expect("audit");
    assert!(
        has(&r, Lint::PanicPath, "app", "stale panic-baseline entry"),
        "{}",
        r.render()
    );

    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn self_audit_is_clean_and_registries_are_fully_reconciled() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let r = audit(&Config::for_workspace(root)).expect("workspace audit");
    assert_eq!(r.exit_code(), 0, "{}", r.render());
    // Pin the reconciliation surface: if a counter or experiment is
    // added, it must arrive with documentation and a smoke, and these
    // counts move with it.
    assert_eq!(r.counters_checked, 26, "{}", r.render());
    assert_eq!(r.experiments_checked, 28, "{}", r.render());
    assert!(
        r.files_scanned > 80,
        "only {} files scanned",
        r.files_scanned
    );
}
