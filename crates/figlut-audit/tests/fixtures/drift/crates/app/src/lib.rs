#![forbid(unsafe_code)]
//! Baseline-drift fixture: one grandfathered panic site.

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}
