#![forbid(unsafe_code)]
//! Fixture trace crate root.
pub mod counters;
