//! Registry whose one counter is live and documented.

registry! {
    /// Bumped by `tool::tick`, documented in DESIGN.md.
    LIVE_COUNTER, bump_live_counter, live_counter;
}
