#![forbid(unsafe_code)]
//! Fixture bench crate root.
pub mod experiments;
