//! Experiment table: one id smoked in CI, one exempted with a reason.

pub const EXPERIMENTS: [&str; 2] = ["smoked", "exempted"];
