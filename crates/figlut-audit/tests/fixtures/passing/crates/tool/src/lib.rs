//! Fixture crate where every risky construct is justified or handled.

// audit: allow(determinism) — interning map; iteration order is never observed
use std::collections::HashMap;
use std::sync::Mutex;

pub static A: Mutex<u32> = Mutex::new(0);
pub static B: Mutex<u32> = Mutex::new(0);

// audit: allow(determinism) — alias for the justified interning map above
pub type Interner = HashMap<String, u32>;

pub fn intern(m: &mut Interner, k: &str) -> u32 {
    let next = m.len() as u32;
    *m.entry(k.to_string()).or_insert(next)
}

pub fn read_a() -> u32 {
    *A.lock().unwrap_or_else(|e| e.into_inner())
}

pub fn read_both() -> u32 {
    let a = *A.lock().unwrap_or_else(|e| e.into_inner());
    // audit: allow(lock-order) — A then B is the fixed order at every site
    let b = *B.lock().unwrap_or_else(|e| e.into_inner());
    a + b
}

pub fn read_b() -> u32 {
    // audit: allow(lock, panic) — no code path panics while B is held
    *B.lock().unwrap()
}

pub fn head(v: &[u32]) -> u32 {
    // audit: allow(panic) — callers guarantee a non-empty slice
    *v.first().unwrap()
}

// SAFETY: exposes a raw read; the caller upholds pointer validity.
pub unsafe fn peek(p: *const u32) -> u32 {
    // SAFETY: caller contract — `p` is valid for reads.
    unsafe { *p }
}

pub fn tick() {
    bump_live_counter(1);
}

fn bump_live_counter(_n: u64) {}
