#![forbid(unsafe_code)]
//! Deterministic-crate fixture: ordered structures, no clocks, no panics.

use std::collections::BTreeMap;

pub fn lookup(m: &BTreeMap<u32, u32>, k: u32) -> Option<u32> {
    m.get(&k).copied()
}
