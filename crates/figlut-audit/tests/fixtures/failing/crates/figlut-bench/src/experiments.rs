//! Experiment table with no smokes anywhere.

pub const EXPERIMENTS: [&str; 1] = ["orphan"];
