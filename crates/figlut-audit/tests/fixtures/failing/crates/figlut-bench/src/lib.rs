//! Fixture bench crate root.
pub mod experiments;
