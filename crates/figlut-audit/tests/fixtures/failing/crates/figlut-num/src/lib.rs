//! Deterministic-crate fixture that violates the determinism lint.

use std::collections::HashMap;

pub fn lookup(m: &HashMap<u32, u32>, k: u32) -> Option<u32> {
    m.get(&k).copied()
}

// audit: allow(determinism) — markers are banned in deterministic src, so this is a finding
pub type Clock = std::time::Instant;
