//! Fixture crate violating the unsafe, panic, lock, and marker rules.

use std::sync::Mutex;

pub static A: Mutex<u32> = Mutex::new(0);
pub static B: Mutex<u32> = Mutex::new(0);

pub fn read_both() -> u32 {
    let a = *A.lock().unwrap();
    let b = *B.lock().expect("poisoned");
    a + b
}

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub unsafe fn peek(p: *const u32) -> u32 {
    unsafe { *p }
}

// audit: allow(bogus) — unknown keys must be findings, not silent no-ops
pub fn unknown_key() {}

// audit: allow(panic) — suppresses nothing on the next line
pub fn stale_marker() {}

// audit: allow(lock)
pub fn missing_justification() {}
