//! Registry with a dead, undocumented counter.

registry! {
    /// Never bumped anywhere, never documented.
    DEAD_COUNTER, bump_dead_counter, dead_counter;
}
