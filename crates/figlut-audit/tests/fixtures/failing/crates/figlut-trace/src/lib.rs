//! Fixture trace crate root.
pub mod counters;
