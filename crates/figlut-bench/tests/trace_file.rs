//! The committed sample trace (`results/ext_serving_trace.json`, produced
//! by `repro --threads 2 --trace results/ext_serving_trace.json
//! ext-serving --out-dir <tmp>`) must stay well-formed Chrome trace-event
//! JSON — it is the artifact README points Perfetto users at.

use std::path::Path;

#[test]
fn committed_sample_trace_is_valid_chrome_json() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/ext_serving_trace.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let n = figlut_trace::validate_chrome_trace(&text)
        .unwrap_or_else(|e| panic!("{} is malformed: {e}", path.display()));
    assert!(n > 0, "sample trace is empty");
    // It records an actual serving run: admission instants, step spans of
    // every phase the scheduler emits, and the queue-depth counter track.
    for needle in ["\"admit\"", "\"Prefill\"", "\"Decode\"", "\"queue_depth\""] {
        assert!(text.contains(needle), "sample trace lacks {needle}");
    }
}
