//! Smoke tests for the reproduction harness: every cheap experiment must
//! build non-empty tables with self-consistent content. (The perplexity
//! experiments are exercised by the repo-level integration tests; running
//! them here too would double CI time for no coverage gain.)

use figlut_bench::experiments::EXPERIMENTS;
use figlut_bench::fmt::Table;

/// Render a table and sanity-check its shape.
#[allow(dead_code)]
fn check(t: &Table) {
    assert!(!t.headers.is_empty());
    assert!(!t.rows.is_empty(), "{}: empty table", t.title);
    for row in &t.rows {
        assert_eq!(row.len(), t.headers.len(), "{}", t.title);
        for cell in row {
            assert!(!cell.is_empty(), "{}: empty cell", t.title);
        }
    }
    let rendered = t.render();
    assert!(rendered.contains(&t.title));
}

#[test]
fn fast_experiments_produce_tables() {
    let dir = std::env::temp_dir().join("figlut-harness-test");
    for id in [
        "table1", "fig1", "fig2", "table2", "fig6", "fig8", "fig9", "table3", "fig11", "fig14",
        "ext-node",
    ] {
        // `run` prints and writes CSVs; every registered id is known.
        figlut_bench::run(id, &dir).unwrap();
    }
    // CSVs landed.
    assert!(dir.join("table1.csv").exists());
    assert!(dir.join("fig9.csv").exists());
    let csv = std::fs::read_to_string(dir.join("fig11.csv")).unwrap();
    assert!(csv.lines().count() >= 5, "fig11 csv:\n{csv}");
    assert!(csv.contains("42%"), "fig11 must contain the 42% row");
}

#[test]
fn experiment_registry_is_complete() {
    // Every registered id dispatches (checked cheaply via --list parity);
    // unknown ids come back as a named error, not a panic.
    assert!(EXPERIMENTS.contains(&"table5"));
    assert!(EXPERIMENTS.contains(&"fig17"));
    assert!(EXPERIMENTS.contains(&"ext-throughput"));
    assert!(EXPERIMENTS.contains(&"ext-batch-scaling"));
    assert!(EXPERIMENTS.contains(&"ext-serving"));
    assert!(EXPERIMENTS.contains(&"ext-chunked-prefill"));
    assert!(EXPERIMENTS.contains(&"ext-paged-kv"));
    assert!(EXPERIMENTS.contains(&"ext-overload"));
    assert!(EXPERIMENTS.contains(&"ext-resilience"));
    assert_eq!(EXPERIMENTS.len(), 28);
    let err = figlut_bench::run("fig99", &std::env::temp_dir()).unwrap_err();
    assert_eq!(err, figlut_bench::UnknownExperiment("fig99".into()));
    let msg = err.to_string();
    assert!(
        msg.contains("unknown experiment 'fig99'") && msg.contains("ext-serving"),
        "{msg}"
    );
}

#[test]
fn table_formatting_roundtrip() {
    let mut t = Table::new("unit", &["a", "b"]);
    t.row(vec!["1".into(), "two,with,commas".into()]);
    t.note("hello");
    let dir = std::env::temp_dir().join("figlut-harness-test-fmt");
    t.write_csv(&dir, "unit").unwrap();
    let csv = std::fs::read_to_string(dir.join("unit.csv")).unwrap();
    assert!(csv.contains("\"two,with,commas\""), "{csv}");
    assert!(t.render().contains("note: hello"));
}
