//! `repro analyze` round-trips: the committed sample Chrome trace and a
//! freshly exported JSONL trace both replay into the analysis tables, and
//! the numbers reconcile against the `ServeReport` that produced them.

use figlut_bench::analyze_trace;
use figlut_model::{Backend, ModelConfig, Transformer};
use figlut_serve::{serve, BatchEngine, Policy, Scenario, ServeConfig};
use figlut_trace::{install, JsonlSink, TraceSink};
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// A `Write` handle the test can read back after the sink is boxed away.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn committed_sample_chrome_trace_analyzes() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/ext_serving_trace.json");
    let text = std::fs::read_to_string(&path).expect("committed sample trace");
    let tables = analyze_trace(&text).expect("committed trace must analyze cleanly");
    assert_eq!(tables.len(), 4);
    let rendered: String = tables.iter().map(|t| t.render()).collect();
    for needle in [
        "span kinds",
        "step duration distribution",
        "session timeline",
        "run breakdown",
        "Prefill",
        "Decode",
    ] {
        assert!(rendered.contains(needle), "missing {needle:?}");
    }
    // The committed trace records ext-serving's 5 configs × 16 requests.
    let timeline = &tables[2];
    assert_eq!(timeline.title, "session timeline");
    assert_eq!(timeline.rows.len(), 5 * 16, "one admit row per admission");
    let breakdown = &tables[3];
    assert_eq!(breakdown.rows.len(), 5, "one breakdown row per run");
}

#[test]
fn exported_jsonl_reconciles_with_the_live_report() {
    let model = Transformer::teacher(ModelConfig::tiny(), 21);
    let engine = BatchEngine::new(&model, Backend::Exact);
    let trace = Scenario::Bursty.trace(&model.cfg, 8, 3.0, 17);

    let buf = SharedBuf::default();
    let sink = JsonlSink::new(Box::new(buf.clone()));
    let guard = install(Box::new(sink) as Box<dyn TraceSink>);
    let report = serve(
        &engine,
        &trace,
        &ServeConfig::new(3, Policy::PrefillPriority).with_prefill_chunk(4),
    );
    guard.finish().unwrap();

    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let tables = analyze_trace(&text).expect("freshly exported JSONL must analyze");
    // Span rows across kinds must sum to the report's step count, and the
    // timeline must list every admission.
    let spans = &tables[0];
    let span_count: u64 = spans
        .rows
        .iter()
        .map(|r| r[1].parse::<u64>().unwrap())
        .sum();
    assert_eq!(span_count, report.steps.len() as u64);
    let total_ticks: u64 = spans
        .rows
        .iter()
        .map(|r| r[2].parse::<u64>().unwrap())
        .sum();
    let cost_sum: u64 = report.steps.iter().map(|s| s.cost).sum();
    assert_eq!(
        total_ticks, cost_sum,
        "span ticks reconcile with step costs"
    );
    assert_eq!(tables[2].rows.len(), report.requests.len());
    // Offline histogram quantiles agree with the live distributions for
    // the step-duration track (small tick values sit in exact buckets).
    let durs: Vec<u64> = report.steps.iter().map(|s| s.cost).collect();
    let mut hist = figlut_trace::Hist::new();
    for d in durs {
        hist.record(d);
    }
    let p99: u64 = spans
        .rows
        .iter()
        .map(|r| r[5].parse::<u64>().unwrap())
        .max()
        .unwrap();
    assert!(
        p99 <= hist.max(),
        "per-kind p99 cannot exceed the global max"
    );
}

#[test]
fn malformed_trace_is_an_error() {
    assert!(analyze_trace("").is_err());
    assert!(analyze_trace("[package]\nname = \"not-a-trace\"").is_err());
    assert!(analyze_trace("{\"traceEvents\":[{\"name\":1}]}").is_err());
}
