//! End-to-end CLI contract of the `repro` binary, negative paths included:
//! unknown experiments and malformed flags must exit nonzero with a named
//! error on stderr — never a panic backtrace — and must not write output.

use std::path::PathBuf;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp_out(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("figlut-cli-test-{tag}"))
}

#[test]
fn list_names_every_experiment_and_exits_zero() {
    let out = repro().arg("--list").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for id in figlut_bench::EXPERIMENTS {
        assert!(stdout.lines().any(|l| l == id), "--list lacks {id}");
    }
    assert!(stdout.lines().any(|l| l == "calibration"));
}

#[test]
fn unknown_experiment_exits_nonzero_with_named_error() {
    let dir = tmp_out("unknown-exp");
    let out = repro()
        .args(["--out-dir", dir.to_str().unwrap(), "fig99"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("unknown experiment 'fig99'"),
        "stderr: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "unknown id must not panic: {stderr}"
    );
    assert!(
        stderr.contains("ext-serving"),
        "error must list the known ids: {stderr}"
    );
}

#[test]
fn unknown_experiment_after_known_one_still_fails() {
    // The known experiment runs (its CSV lands), then the bad id stops the
    // process with the named error — no silent partial success.
    let dir = tmp_out("mixed-exp");
    let out = repro()
        .args(["--out-dir", dir.to_str().unwrap(), "table1", "nope"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown experiment 'nope'"), "{stderr}");
    assert!(
        dir.join("table1.csv").exists(),
        "known id before the bad one must still run"
    );
}

#[test]
fn unknown_flag_exits_nonzero() {
    let out = repro().arg("--frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown flag '--frobnicate'"), "{stderr}");
}

#[test]
fn bad_thread_count_exits_nonzero() {
    for bad in ["0", "lots"] {
        let out = repro().args(["--threads", bad, "table1"]).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "--threads {bad}: {out:?}");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(
            stderr.contains("--threads needs a positive integer"),
            "{stderr}"
        );
    }
}

#[test]
fn analyze_without_files_exits_nonzero() {
    let out = repro().arg("analyze").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("analyze needs at least one trace file"),
        "{stderr}"
    );
}
