//! Whole-engine GEMM benchmarks: the five datapath models on a fixed
//! LLM-flavored layer, plus the FIGLUT µ sweep (the software-time analogue
//! of the paper's complexity column in Table I).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use figlut_gemm::{Engine, EngineConfig, Weights};
use figlut_num::Mat;
use figlut_quant::bcq::BcqWeight;
use figlut_quant::uniform::{rtn, RtnParams};

fn problem(m: usize, n: usize, batch: usize) -> (Mat<f64>, Mat<f64>) {
    let w = Mat::from_fn(m, n, |r, c| ((r * n + c) as f64 * 0.173).sin() * 0.2);
    let x = Mat::from_fn(batch, n, |b, c| ((b * n + c) as f64 * 0.059).cos());
    (x, w)
}

fn bench_engines(c: &mut Criterion) {
    let (x, w) = problem(32, 128, 4);
    let u = rtn(&w, RtnParams::per_row(4));
    let bcq = BcqWeight::from_uniform(&u);
    let cfg = EngineConfig::paper_default();
    let mut g = c.benchmark_group("gemm_32x128_q4");
    for engine in Engine::ALL {
        let weights = if engine.supports_bcq() {
            Weights::Bcq(&bcq)
        } else {
            Weights::Uniform(&u)
        };
        g.bench_function(engine.name(), |b| {
            b.iter(|| black_box(engine.run(&x, &weights, &cfg)))
        });
    }
    g.finish();
}

fn bench_figlut_mu_sweep(c: &mut Criterion) {
    let (x, w) = problem(32, 128, 4);
    let u = rtn(&w, RtnParams::per_row(4));
    let bcq = BcqWeight::from_uniform(&u);
    let mut g = c.benchmark_group("figlut_i_mu_sweep");
    for mu in [1u32, 2, 4, 8] {
        let cfg = EngineConfig {
            mu,
            ..EngineConfig::paper_default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(mu), &mu, |b, _| {
            b.iter(|| black_box(Engine::FiglutI.run(&x, &Weights::Bcq(&bcq), &cfg)))
        });
    }
    g.finish();
}

fn bench_weight_precision(c: &mut Criterion) {
    // Bit-serial software cost scales with q, like the hardware cycles.
    let (x, w) = problem(32, 128, 4);
    let mut g = c.benchmark_group("figlut_i_weight_bits");
    for bits in [2u32, 4, 8] {
        let u = rtn(&w, RtnParams::per_row(bits));
        let bcq = BcqWeight::from_uniform(&u);
        let cfg = EngineConfig::paper_default();
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| black_box(Engine::FiglutI.run(&x, &Weights::Bcq(&bcq), &cfg)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_engines,
    bench_figlut_mu_sweep,
    bench_weight_precision
);
criterion_main!(benches);
