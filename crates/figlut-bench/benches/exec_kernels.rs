//! Packed execution backend benchmarks: the `figlut-exec` kernels against
//! the bit-accurate FIGLUT-I datapath model, plus packing and thread
//! scaling (the software counterpart of `repro ext-throughput`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use figlut_exec::{exec_f_threads, exec_i_threads, PackedBcq};
use figlut_gemm::{figlut, EngineConfig};
use figlut_num::Mat;
use figlut_quant::bcq::BcqWeight;
use figlut_quant::uniform::{rtn, RtnParams};

fn problem(m: usize, n: usize, batch: usize) -> (Mat<f64>, BcqWeight) {
    let w = Mat::from_fn(m, n, |r, c| ((r * n + c) as f64 * 0.173).sin() * 0.2);
    let u = rtn(&w, RtnParams::grouped(4, 128));
    let x = Mat::from_fn(batch, n, |b, c| ((b * n + c) as f64 * 0.059).cos());
    (x, BcqWeight::from_uniform(&u))
}

fn bench_exec_vs_model(c: &mut Criterion) {
    let (x, bcq) = problem(256, 512, 4);
    let packed = PackedBcq::pack(&bcq);
    let cfg = EngineConfig::paper_default();
    let mut g = c.benchmark_group("gemm_256x512_q4_b4");
    g.bench_function("model_gemm_i", |b| {
        b.iter(|| black_box(figlut::gemm_i(&x, &bcq, &cfg)))
    });
    g.bench_function("exec_i_1t", |b| {
        b.iter(|| black_box(exec_i_threads(&x, &packed, &cfg, 1)))
    });
    g.bench_function("exec_f_1t", |b| {
        b.iter(|| black_box(exec_f_threads(&x, &packed, &cfg, 1)))
    });
    g.finish();
}

fn bench_exec_thread_scaling(c: &mut Criterion) {
    let (x, bcq) = problem(1024, 1024, 8);
    let packed = PackedBcq::pack(&bcq);
    let cfg = EngineConfig::paper_default();
    let mut g = c.benchmark_group("exec_i_1024x1024_threads");
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(exec_i_threads(&x, &packed, &cfg, t)))
        });
    }
    g.finish();
}

fn bench_packing(c: &mut Criterion) {
    let (_, bcq) = problem(1024, 1024, 1);
    let mut g = c.benchmark_group("pack_1024x1024_q4");
    g.bench_function("pack", |b| b.iter(|| black_box(PackedBcq::pack(&bcq))));
    g.finish();
}

criterion_group!(
    benches,
    bench_exec_vs_model,
    bench_exec_thread_scaling,
    bench_packing
);
criterion_main!(benches);
