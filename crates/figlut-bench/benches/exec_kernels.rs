//! Packed execution backend benchmarks: the `figlut-exec` kernels against
//! the bit-accurate FIGLUT-I datapath model, plus packing, thread
//! scaling, and batch-column amortization (the software counterparts of
//! `repro ext-throughput` and `repro ext-batch-scaling`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use figlut_exec::{exec_f_threads, exec_i_threads, ExecPlan, PackedBcq};
use figlut_gemm::{figlut, EngineConfig};
use figlut_num::Mat;
use figlut_quant::bcq::BcqWeight;
use figlut_quant::uniform::{rtn, RtnParams};
use std::time::Instant;

fn problem(m: usize, n: usize, batch: usize) -> (Mat<f64>, BcqWeight) {
    let w = Mat::from_fn(m, n, |r, c| ((r * n + c) as f64 * 0.173).sin() * 0.2);
    let u = rtn(&w, RtnParams::grouped(4, 128));
    let x = Mat::from_fn(batch, n, |b, c| ((b * n + c) as f64 * 0.059).cos());
    (x, BcqWeight::from_uniform(&u))
}

fn bench_exec_vs_model(c: &mut Criterion) {
    let (x, bcq) = problem(256, 512, 4);
    let packed = PackedBcq::pack(&bcq);
    let cfg = EngineConfig::paper_default();
    let mut g = c.benchmark_group("gemm_256x512_q4_b4");
    g.bench_function("model_gemm_i", |b| {
        b.iter(|| black_box(figlut::gemm_i(&x, &bcq, &cfg)))
    });
    g.bench_function("exec_i_1t", |b| {
        b.iter(|| black_box(exec_i_threads(&x, &packed, &cfg, 1)))
    });
    g.bench_function("exec_f_1t", |b| {
        b.iter(|| black_box(exec_f_threads(&x, &packed, &cfg, 1)))
    });
    g.finish();
}

fn bench_exec_thread_scaling(c: &mut Criterion) {
    let (x, bcq) = problem(1024, 1024, 8);
    let packed = PackedBcq::pack(&bcq);
    let cfg = EngineConfig::paper_default();
    let mut g = c.benchmark_group("exec_i_1024x1024_threads");
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(exec_i_threads(&x, &packed, &cfg, t)))
        });
    }
    g.finish();
}

fn bench_exec_batch_scaling(c: &mut Criterion) {
    // Batch-column amortization at an OPT-1.3B decode shape (the QKV/out
    // projection, 2048 × 2048 Q4): one batched call streams the packed
    // planes once for all B columns, so per-column tokens/s should climb
    // with B. Single worker thread — this isolates the blocking, not the
    // thread scaling. The criterion number is time per *call*; per-column
    // tokens/s (= B / time) is printed alongside.
    let (m, n) = (2048usize, 2048usize);
    let (x16, bcq) = problem(m, n, 16);
    let packed = PackedBcq::pack(&bcq);
    let cfg = EngineConfig::paper_default();
    let plan = ExecPlan::new(&packed, &cfg);
    let mut g = c.benchmark_group("exec_i_2048x2048_q4_batch_1t");
    for batch in [1usize, 2, 4, 8, 16] {
        let x = Mat::from_fn(batch, n, |b, cc| x16[(b, cc)]);
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            b.iter(|| black_box(plan.exec_i_threads(&x, &packed, &cfg, 1)))
        });
        // Per-column rate, so the amortization is visible in the output.
        let started = Instant::now();
        let reps = 3;
        for _ in 0..reps {
            black_box(plan.exec_i_threads(&x, &packed, &cfg, 1));
        }
        let per_call = started.elapsed().as_secs_f64() / reps as f64;
        println!(
            "    B={batch}: {:.1} tok/s total, {:.1} tok/s per column",
            batch as f64 / per_call,
            1.0 / per_call
        );
    }
    g.finish();
}

fn bench_packing(c: &mut Criterion) {
    let (_, bcq) = problem(1024, 1024, 1);
    let mut g = c.benchmark_group("pack_1024x1024_q4");
    g.bench_function("pack", |b| b.iter(|| black_box(PackedBcq::pack(&bcq))));
    g.finish();
}

criterion_group!(
    benches,
    bench_exec_vs_model,
    bench_exec_thread_scaling,
    bench_exec_batch_scaling,
    bench_packing
);
criterion_main!(benches);
