//! Serving-layer benchmarks: batched decode steps and whole-trace serving
//! through the scheduler (the software counterpart of `repro ext-serving`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use figlut_gemm::EngineConfig;
use figlut_model::calibrate::{quantize_model, to_packed, Method};
use figlut_model::corpus::generate;
use figlut_model::transformer::KvCache;
use figlut_model::{Backend, ModelConfig, Transformer};
use figlut_serve::{serve, synthetic_trace, BatchEngine, Policy, ServeConfig, TraceParams};

fn packed_model() -> Transformer {
    let teacher = Transformer::teacher(ModelConfig::scaled(2, 48, 4), 102);
    let calib = generate(&teacher, 2, 10, 3);
    let (q, _) = quantize_model(&teacher, &calib, Method::ShiftAdd { bits: 3 });
    to_packed(&q)
}

fn bench_decode_batch(c: &mut Criterion) {
    let model = packed_model();
    let backend = Backend::Exec(EngineConfig::paper_default());
    let mut g = c.benchmark_group("decode_batch_opt1p3b_synth");
    for batch in [1usize, 4, 8] {
        // Sessions parked at different positions, as in live serving.
        let caches: Vec<KvCache> = (0..batch)
            .map(|i| {
                let mut cache = model.new_cache();
                let prompt: Vec<usize> = (0..=i + 2).map(|t| t % model.cfg.vocab).collect();
                let _ = model.prefill(&prompt, &mut cache, &backend);
                cache
            })
            .collect();
        let tokens = vec![5usize; batch];
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            b.iter(|| {
                let mut cs = caches.clone();
                black_box(model.decode_batch(&tokens, &mut cs, &backend))
            })
        });
    }
    g.finish();
}

fn bench_serve_trace(c: &mut Criterion) {
    let model = packed_model();
    let engine = BatchEngine::new(&model, Backend::Exec(EngineConfig::paper_default()));
    let trace = synthetic_trace(&model.cfg, &TraceParams::light(8), 11);
    let mut g = c.benchmark_group("serve_8req_trace");
    for policy in Policy::ALL {
        g.bench_function(policy.name(), |b| {
            b.iter(|| black_box(serve(&engine, &trace, &ServeConfig::new(4, policy))))
        });
    }
    g.finish();
}

fn bench_mixed_step(c: &mut Criterion) {
    // One fused mixed step (3 decode rows + an 8-row prefill chunk) vs the
    // segregated equivalent (one decode step + one prefill-chunk step):
    // the fused call shares a single weight traversal across both phases.
    let model = packed_model();
    let backend = Backend::Exec(EngineConfig::paper_default());
    let engine = BatchEngine::new(&model, backend);
    let trace = synthetic_trace(&model.cfg, &TraceParams::light(3), 31);
    let decoding: Vec<_> = trace
        .requests
        .iter()
        .map(|r| {
            let mut s = engine.start(r.clone());
            let _ = engine.prefill(&mut s);
            s
        })
        .collect();
    let long = figlut_serve::Request {
        id: 99,
        arrival: 0,
        prompt: (0..30).map(|i| i % model.cfg.vocab).collect(),
        max_new: 2,
        sampling: figlut_serve::Sampling::Greedy,
        seed: 5,
    };
    let prefilling = engine.start(long);
    let mut g = c.benchmark_group("mixed_step_3decode_8prefill");
    g.bench_function("fused", |b| {
        b.iter(|| {
            let mut d = decoding.clone();
            let mut p = prefilling.clone();
            let mut refs: Vec<&mut _> = d.iter_mut().collect();
            black_box(engine.step(&mut refs, Some(&mut p), 8))
        })
    });
    g.bench_function("segregated", |b| {
        b.iter(|| {
            let mut d = decoding.clone();
            let mut p = prefilling.clone();
            {
                let mut refs: Vec<&mut _> = d.iter_mut().collect();
                engine.decode(&mut refs);
            }
            black_box(engine.step(&mut [], Some(&mut p), 8))
        })
    });
    g.finish();
}

fn bench_paged_vs_contiguous(c: &mut Criterion) {
    // The same 8-request trace served end to end with contiguous
    // per-session KV vs block-table paging (several block sizes, plus a
    // tight pool that forces preempt/restore). Paging is pure bookkeeping
    // around the identical step sequence, so this measures its scheduler
    // overhead; the tight pool adds the swap-out/restore copies.
    let model = packed_model();
    let engine = BatchEngine::new(&model, Backend::Exec(EngineConfig::paper_default()));
    let trace = synthetic_trace(&model.cfg, &TraceParams::light(8), 11);
    let mut g = c.benchmark_group("serve_8req_paged_vs_contiguous");
    let base = ServeConfig::new(4, Policy::PrefillPriority);
    g.bench_function("contiguous", |b| {
        b.iter(|| black_box(serve(&engine, &trace, &base)))
    });
    for bs in [4usize, 16] {
        g.bench_function(format!("paged_bs{bs}"), |b| {
            let cfg = base.with_block_size(bs);
            b.iter(|| black_box(serve(&engine, &trace, &cfg)))
        });
    }
    g.bench_function("paged_bs4_tight_pool", |b| {
        let mut cfg = base.with_block_size(4);
        cfg.pool_blocks = Some(model.cfg.max_seq.div_ceil(4) + 2);
        b.iter(|| black_box(serve(&engine, &trace, &cfg)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_decode_batch,
    bench_serve_trace,
    bench_mixed_step,
    bench_paged_vs_contiguous
);
criterion_main!(benches);
