//! LUT-machinery kernel benchmarks: table construction under the two
//! generator schedules (the Fig. 11 comparison, in software time), half vs
//! full table reads, and RAC vs MAC inner loops.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use figlut_lut::generator::GenSchedule;
use figlut_lut::key::Key;
use figlut_lut::rac::{Mac, Rac};
use figlut_lut::table::{FullLut, HalfLut, LutRead};

fn activations(mu: u32) -> Vec<f64> {
    (0..mu).map(|i| 0.37 * (i as f64 + 1.0)).collect()
}

fn bench_generator_schedules(c: &mut Criterion) {
    let mut g = c.benchmark_group("lut_generation");
    for mu in [2u32, 4, 6, 8] {
        let xs = activations(mu);
        let opt = GenSchedule::optimized(mu, true);
        let naive = GenSchedule::straightforward(mu, true);
        g.bench_with_input(BenchmarkId::new("optimized", mu), &mu, |b, _| {
            b.iter(|| black_box(opt.apply(&xs, |a, y| a + y)))
        });
        g.bench_with_input(BenchmarkId::new("straightforward", mu), &mu, |b, _| {
            b.iter(|| black_box(naive.apply(&xs, |a, y| a + y)))
        });
    }
    g.finish();
}

fn bench_table_reads(c: &mut Criterion) {
    let xs = activations(4);
    let full = FullLut::build(&xs, |a, b| a + b);
    let half = HalfLut::build(&xs, |a, b| a + b);
    let keys: Vec<Key> = (0..16u16).map(|k| Key::new(k, 4)).collect();
    let mut g = c.benchmark_group("lut_read_16keys");
    g.bench_function("full", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &k in &keys {
                acc += full.read(k);
            }
            black_box(acc)
        })
    });
    g.bench_function("half_with_decoder", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &k in &keys {
                acc += half.read(k);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_rac_vs_mac(c: &mut Criterion) {
    // One reduction over 1024 binary weights: 256 RAC reads (µ=4) vs 1024
    // MACs — the software analogue of the paper's op-count reduction.
    let n = 1024usize;
    let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
    let bits: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
    let mut g = c.benchmark_group("reduction_1024_weights");
    g.bench_function("rac_mu4", |b| {
        let luts: Vec<HalfLut<f64>> = xs
            .chunks(4)
            .map(|c4| HalfLut::build(c4, |a, y| a + y))
            .collect();
        let keys: Vec<Key> = bits
            .chunks(4)
            .map(|c4| {
                let mut v = 0u16;
                for (j, &s) in c4.iter().enumerate() {
                    if s {
                        v |= 1 << j;
                    }
                }
                Key::new(v, 4)
            })
            .collect();
        b.iter(|| {
            let mut rac = Rac::<f64>::new(4);
            for (lut, &key) in luts.iter().zip(&keys) {
                rac.set_key(key);
                rac.read_accumulate(lut, |a, v| a + v);
            }
            black_box(rac.acc())
        })
    });
    g.bench_function("mac", |b| {
        b.iter(|| {
            let mut mac = Mac::new();
            for (&x, &s) in xs.iter().zip(&bits) {
                let w = if s { 1.0 } else { -1.0 };
                mac.multiply_accumulate(w, x, |a, y| a * y, |a, y| a + y);
            }
            black_box(mac.acc())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_generator_schedules,
    bench_table_reads,
    bench_rac_vs_mac
);
criterion_main!(benches);
