//! Quantizer benchmarks: RTN vs alternating BCQ vs GPTQ-style on one layer.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use figlut_num::Mat;
use figlut_quant::bcq::{BcqParams, BcqWeight};
use figlut_quant::gptq::{gptq_quantize, GptqParams};
use figlut_quant::uniform::{rtn, RtnParams};

fn layer(m: usize, n: usize) -> Mat<f64> {
    Mat::from_fn(m, n, |r, c| ((r * n + c) as f64 * 0.291).sin() * 0.3)
}

fn calib(n: usize, samples: usize) -> Mat<f64> {
    Mat::from_fn(n, samples, |i, s| {
        2.0 * ((s as f64) * 0.61).sin() + 0.4 * ((i * 7 + 3 * s) as f64 * 0.23).cos()
    })
}

fn bench_quantizers(c: &mut Criterion) {
    let w = layer(64, 64);
    let x = calib(64, 128);
    let mut g = c.benchmark_group("quantize_64x64_q3");
    g.bench_function("rtn", |b| {
        b.iter(|| black_box(rtn(&w, RtnParams::per_row(3))))
    });
    g.bench_function("bcq_alternating", |b| {
        b.iter(|| black_box(BcqWeight::quantize(&w, BcqParams::per_row(3))))
    });
    g.bench_function("gptq", |b| {
        b.iter(|| black_box(gptq_quantize(&w, &x, GptqParams::per_row(3))))
    });
    g.finish();
}

fn bench_bcq_bits(c: &mut Criterion) {
    let w = layer(64, 64);
    let mut g = c.benchmark_group("bcq_bits");
    for bits in [1u32, 2, 3, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            b.iter(|| black_box(BcqWeight::quantize(&w, BcqParams::per_row(bits))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_quantizers, bench_bcq_bits);
criterion_main!(benches);
