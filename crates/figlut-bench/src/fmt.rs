//! Text-table rendering and CSV output for the reproduction harness.
//!
//! The implementation lives in [`figlut_trace::fmt`] so that layers below
//! the harness (e.g. `ServeReport`'s `Display`) can render the same tables
//! without depending on figlut-bench; this module re-exports it under the
//! historical path so existing `figlut_bench::fmt::Table` users keep
//! compiling.

pub use figlut_trace::fmt::{f3, ratio, Table};
