//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro                          # run everything
//! repro fig16 table5             # run specific experiments
//! repro calibration              # cost-model calibration report
//! repro --out-dir /tmp/r fig16   # write CSVs somewhere else
//! repro --threads 2 ext-serving  # pin the exec kernels' worker count
//! repro --list                   # list experiment ids
//! ```
//!
//! Output: aligned text tables on stdout, CSVs under `--out-dir` (default
//! `results/`, created if absent). `--threads N` sets the `figlut-exec`
//! worker count for the throughput/serving experiments; an explicit
//! `FIGLUT_EXEC_THREADS` environment variable still wins (results are
//! bit-identical either way — thread count only moves the measured rates).

use figlut_bench::{run, EXPERIMENTS};
use figlut_exec::parallel::THREADS_ENV;
use std::path::PathBuf;

fn main() {
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut threads: Option<String> = None;
    // "Pinned" means the env holds a value thread_count() would actually
    // honor (same predicate); a garbage value must not eat the flag.
    let env_pinned =
        std::env::var(THREADS_ENV).is_ok_and(|v| v.trim().parse::<usize>().is_ok_and(|n| n >= 1));
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--list" => {
                for e in EXPERIMENTS {
                    println!("{e}");
                }
                println!("calibration");
                return;
            }
            "--out-dir" => {
                let Some(dir) = args.next() else {
                    eprintln!("error: --out-dir needs a directory argument");
                    std::process::exit(2);
                };
                out_dir = PathBuf::from(dir);
            }
            "--threads" => {
                let Some(n) = args.next() else {
                    eprintln!("error: --threads needs a positive integer argument");
                    std::process::exit(2);
                };
                if !n.parse::<usize>().is_ok_and(|v| v >= 1) {
                    eprintln!("error: --threads needs a positive integer, got '{n}'");
                    std::process::exit(2);
                }
                threads = Some(n);
            }
            other if other.starts_with('-') => {
                eprintln!(
                    "error: unknown flag '{other}' (try --list, --out-dir <dir>, or --threads <n>)"
                );
                std::process::exit(2);
            }
            other => ids.push(other.to_string()),
        }
    }
    // Applied once after the parse (last --threads wins); an environment
    // override present at startup still takes precedence — the flag is a
    // convenience default, not a way to lie to a pinned run.
    if let (Some(n), false) = (&threads, env_pinned) {
        std::env::set_var(THREADS_ENV, n);
    }
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("error: cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    if ids.is_empty() {
        run("all", &out_dir);
        run("calibration", &out_dir);
    } else {
        for a in &ids {
            run(a, &out_dir);
        }
    }
}
