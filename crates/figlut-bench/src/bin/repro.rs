//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro                # run everything
//! repro fig16 table5   # run specific experiments
//! repro calibration    # cost-model calibration report
//! repro --list         # list experiment ids
//! ```
//!
//! Output: aligned text tables on stdout, CSVs under `results/`.

use figlut_bench::{run, EXPERIMENTS};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let results = PathBuf::from("results");
    if args.iter().any(|a| a == "--list") {
        for e in EXPERIMENTS {
            println!("{e}");
        }
        println!("calibration");
        return;
    }
    if args.is_empty() {
        run("all", &results);
        run("calibration", &results);
    } else {
        for a in &args {
            run(a, &results);
        }
    }
}
