//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro                          # run everything
//! repro fig16 table5             # run specific experiments
//! repro calibration              # cost-model calibration report
//! repro --out-dir /tmp/r fig16   # write CSVs somewhere else
//! repro --list                   # list experiment ids
//! ```
//!
//! Output: aligned text tables on stdout, CSVs under `--out-dir` (default
//! `results/`, created if absent).

use figlut_bench::{run, EXPERIMENTS};
use std::path::PathBuf;

fn main() {
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--list" => {
                for e in EXPERIMENTS {
                    println!("{e}");
                }
                println!("calibration");
                return;
            }
            "--out-dir" => {
                let Some(dir) = args.next() else {
                    eprintln!("error: --out-dir needs a directory argument");
                    std::process::exit(2);
                };
                out_dir = PathBuf::from(dir);
            }
            other if other.starts_with('-') => {
                eprintln!("error: unknown flag '{other}' (try --list or --out-dir <dir>)");
                std::process::exit(2);
            }
            other => ids.push(other.to_string()),
        }
    }
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("error: cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    if ids.is_empty() {
        run("all", &out_dir);
        run("calibration", &out_dir);
    } else {
        for a in &ids {
            run(a, &out_dir);
        }
    }
}
