#![forbid(unsafe_code)]
//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro                          # run everything
//! repro fig16 table5             # run specific experiments
//! repro calibration              # cost-model calibration report
//! repro --out-dir /tmp/r fig16   # write CSVs somewhere else
//! repro --threads 2 ext-serving  # pin the exec kernels' worker count
//! repro --trace t.json ext-serving  # also write a Chrome trace
//! repro analyze t.jsonl          # replay an exported trace offline
//! repro --list                   # list experiment ids
//! ```
//!
//! Output: aligned text tables on stdout, CSVs under `--out-dir` (default
//! `results/`, created if absent). `--threads N` sets the `figlut-exec`
//! worker count for the throughput/serving experiments; an explicit
//! `FIGLUT_EXEC_THREADS` environment variable still wins (results are
//! bit-identical either way — thread count only moves the measured rates).
//!
//! `--trace <path>` records the run through `figlut-trace`: a `.jsonl`
//! path gets one JSON event per line, anything else gets Chrome
//! trace-event JSON (open in Perfetto / `chrome://tracing`; timestamps
//! are virtual serving ticks). The Chrome output is validated after the
//! run and the process fails if it is malformed. Tracing never changes
//! the tables or CSVs — the serving clock is virtual and the sinks are
//! pure observers.
//!
//! `repro analyze <trace>...` reads previously exported trace files
//! (either format, auto-detected) and replays them into distribution
//! tables: per-kind span statistics, the step-duration histogram, the
//! admission timeline, and a per-run queue/occupancy breakdown. Malformed
//! input exits nonzero naming the first bad line or event.
//!
//! `repro audit [--json] [--update-baseline]` runs the workspace static
//! invariant checker (`figlut-audit`) over this source tree: determinism,
//! unsafe-discipline, panic-path, lock-discipline, and counter/experiment
//! reconciliation lints. Exit code is the bitwise OR of the failing lint
//! families (see DESIGN.md §11); 0 means clean.

use figlut_bench::{analyze_trace, run, EXPERIMENTS};
use figlut_exec::parallel::THREADS_ENV;
use figlut_trace::{install, validate_chrome_trace, ChromeTraceSink, JsonlSink, TraceSink};
use std::path::PathBuf;

fn main() {
    // `repro audit` routes to the static invariant checker before the
    // experiment flag parse — `--json`/`--update-baseline` are audit-only.
    if std::env::args().nth(1).as_deref() == Some("audit") {
        let mut json = false;
        let mut update_baseline = false;
        for a in std::env::args().skip(2) {
            match a.as_str() {
                "--json" => json = true,
                "--update-baseline" => update_baseline = true,
                other => {
                    eprintln!(
                        "error: unknown audit argument '{other}' \
                         (try --json, --update-baseline)"
                    );
                    std::process::exit(64);
                }
            }
        }
        let root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
        std::process::exit(figlut_audit::run_cli(root, json, update_baseline));
    }
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut threads: Option<String> = None;
    let mut trace_path: Option<PathBuf> = None;
    // "Pinned" means the env holds a value thread_count() would actually
    // honor (same predicate); a garbage value must not eat the flag.
    let env_pinned =
        std::env::var(THREADS_ENV).is_ok_and(|v| v.trim().parse::<usize>().is_ok_and(|n| n >= 1));
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--list" => {
                for e in EXPERIMENTS {
                    println!("{e}");
                }
                println!("calibration");
                return;
            }
            "--out-dir" => {
                let Some(dir) = args.next() else {
                    eprintln!("error: --out-dir needs a directory argument");
                    std::process::exit(2);
                };
                out_dir = PathBuf::from(dir);
            }
            "--threads" => {
                let Some(n) = args.next() else {
                    eprintln!("error: --threads needs a positive integer argument");
                    std::process::exit(2);
                };
                if !n.parse::<usize>().is_ok_and(|v| v >= 1) {
                    eprintln!("error: --threads needs a positive integer, got '{n}'");
                    std::process::exit(2);
                }
                threads = Some(n);
            }
            "--trace" => {
                let Some(p) = args.next() else {
                    eprintln!("error: --trace needs a file path argument");
                    std::process::exit(2);
                };
                trace_path = Some(PathBuf::from(p));
            }
            other if other.starts_with('-') => {
                eprintln!(
                    "error: unknown flag '{other}' (try --list, --out-dir <dir>, \
                     --threads <n>, or --trace <path>)"
                );
                std::process::exit(2);
            }
            other => ids.push(other.to_string()),
        }
    }
    // `analyze` consumes the remaining positionals as trace files and
    // never runs experiments (so it also ignores --trace/--threads).
    if ids.first().is_some_and(|s| s == "analyze") {
        let paths = &ids[1..];
        if paths.is_empty() {
            eprintln!("error: analyze needs at least one trace file argument");
            std::process::exit(2);
        }
        for p in paths {
            let text = match std::fs::read_to_string(p) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read trace {p}: {e}");
                    std::process::exit(1);
                }
            };
            match analyze_trace(&text) {
                Ok(tables) => {
                    println!("analysis of {p}:");
                    for t in tables {
                        print!("{}", t.render());
                    }
                }
                Err(e) => {
                    eprintln!("error: malformed trace {p}: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }
    // Applied once after the parse (last --threads wins); an environment
    // override present at startup still takes precedence — the flag is a
    // convenience default, not a way to lie to a pinned run.
    if let (Some(n), false) = (&threads, env_pinned) {
        std::env::set_var(THREADS_ENV, n);
    }
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("error: cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    // A `.jsonl` suffix picks the line-oriented sink; everything else is
    // Chrome trace-event JSON (validated below after the sink closes).
    let chrome = trace_path
        .as_deref()
        .is_some_and(|p| p.extension().is_none_or(|e| e != "jsonl"));
    let guard = trace_path.as_deref().map(|p| {
        let sink: std::io::Result<Box<dyn TraceSink>> = if chrome {
            ChromeTraceSink::create(p).map(|s| Box::new(s) as Box<dyn TraceSink>)
        } else {
            JsonlSink::create(p).map(|s| Box::new(s) as Box<dyn TraceSink>)
        };
        match sink {
            Ok(sink) => install(sink),
            Err(e) => {
                eprintln!("error: cannot create trace file {}: {e}", p.display());
                std::process::exit(1);
            }
        }
    });
    let run_or_die = |id: &str| {
        if let Err(e) = run(id, &out_dir) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if ids.is_empty() {
        run_or_die("all");
        run_or_die("calibration");
    } else {
        for a in &ids {
            run_or_die(a);
        }
    }
    if let Some(guard) = guard {
        // audit: allow(panic) — guard is only Some when --trace supplied a path
        let path = trace_path.expect("guard implies path");
        if let Err(e) = guard.finish() {
            eprintln!("error: cannot finish trace {}: {e}", path.display());
            std::process::exit(1);
        }
        if chrome {
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("error: cannot read back trace {}: {e}", path.display());
                std::process::exit(1);
            });
            match validate_chrome_trace(&text) {
                Ok(n) => println!(
                    "\ntrace: {} ({n} events, Chrome trace JSON)",
                    path.display()
                ),
                Err(e) => {
                    eprintln!("error: malformed Chrome trace {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        } else {
            println!("\ntrace: {} (JSONL)", path.display());
        }
    }
}
