//! One function per paper table/figure (see DESIGN.md §4).
//!
//! Synthetic-model experiments (Tables IV/VI, Fig. 17) run on scaled-down
//! OPT-proportioned teachers (DESIGN.md §2 documents the substitution);
//! hardware experiments (Figs. 6–16, Table V) run the cost simulator on the
//! *real* OPT shape inventories.

use crate::fmt::{f3, ratio, Table};
use figlut_gemm::{Engine, EngineConfig};
use figlut_lut::bank::{banked_read_phase, fflut_read_phase, GPU_BANKS};
use figlut_lut::generator::GenSchedule;
use figlut_lut::table::symbolic_table;
use figlut_model::calibrate::{quantize_model, to_bcq, to_packed, Method};
use figlut_model::config::{by_name, OptConfig, OPT_FAMILY};
use figlut_model::corpus::{generate, Corpus};
use figlut_model::ppl::perplexity;
use figlut_model::transformer::{Backend, ModelConfig, Transformer};
use figlut_model::workload::decode_workload;
use figlut_num::fp::FpFormat;
use figlut_num::Mat;
use figlut_quant::bcq::{BcqParams, BcqWeight};
use figlut_quant::uniform::{rtn, RtnParams};
use figlut_sim::complexity::TABLE1;
use figlut_sim::engine::evaluate;
use figlut_sim::gpu::TABLE5_GPUS;
use figlut_sim::lutcost::{
    lut_power, optimal_k, pe_power, per_weight_read_power, system_power_per_weight, LutKind,
    PeParams,
};
use figlut_sim::mpu::{mpu_area, EngineSpec, SimEngine};
use figlut_sim::tech::Tech;
use std::path::Path;

/// All experiment ids, in paper order, plus the reproduction's extensions
/// (`ablation`, `ext-node`, `ext-prefill` are not in the paper).
pub const EXPERIMENTS: [&str; 28] = [
    "table1",
    "fig1",
    "fig2",
    "table2",
    "fig6",
    "fig8",
    "fig9",
    "table3",
    "fig11",
    "table4",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "table5",
    "table6",
    "ablation",
    "ext-node",
    "ext-prefill",
    "ext-quant",
    "ext-throughput",
    "ext-batch-scaling",
    "ext-serving",
    "ext-chunked-prefill",
    "ext-paged-kv",
    "ext-overload",
    "ext-resilience",
];

/// Look up a model from the static [`OPT_FAMILY`] table by a name that is
/// literally present in it. Keeping the one infallible-lookup panic here
/// keeps the experiment bodies free of `unwrap`.
fn opt_config(name: &str) -> &'static OptConfig {
    // audit: allow(panic) — literal name, present in the static OPT_FAMILY table
    by_name(name).unwrap_or_else(|| panic!("{name} missing from OPT_FAMILY"))
}

/// Error returned by [`run`] for an experiment id it does not know.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownExperiment(pub String);

impl std::fmt::Display for UnknownExperiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown experiment '{}' (try one of {EXPERIMENTS:?} or 'all')",
            self.0
        )
    }
}

impl std::error::Error for UnknownExperiment {}

/// Run one experiment (or `"all"`), printing tables and writing CSVs to
/// `results_dir`.
///
/// # Errors
///
/// Returns [`UnknownExperiment`] for an id outside [`EXPERIMENTS`],
/// `"all"`, and `"calibration"`; nothing is printed or written in that
/// case.
pub fn run(id: &str, results_dir: &Path) -> Result<(), UnknownExperiment> {
    let tables = match id {
        "all" => EXPERIMENTS
            .iter()
            // audit: allow(panic) — iterating the same EXPERIMENTS table dispatch matches on
            .flat_map(|e| dispatch(e).expect("every registered experiment dispatches"))
            .collect(),
        "calibration" => calibration(),
        other => dispatch(other).ok_or_else(|| UnknownExperiment(other.to_string()))?,
    };
    for (name, t) in &tables {
        print!("{}", t.render());
        if let Err(e) = t.write_csv(results_dir, name) {
            eprintln!("warning: could not write {name}.csv: {e}");
        }
    }
    Ok(())
}

fn dispatch(id: &str) -> Option<Vec<(String, Table)>> {
    Some(match id {
        "table1" => table1(),
        "fig1" => fig1(),
        "fig2" => fig2(),
        "table2" => table2(),
        "fig6" => fig6(),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "table3" => table3(),
        "fig11" => fig11(),
        "table4" => table4(),
        "fig13" => fig13(),
        "fig14" => fig14(),
        "fig15" => fig15(),
        "fig16" => fig16(),
        "fig17" => fig17(),
        "table5" => table5(),
        "table6" => table6(),
        "ablation" => ablation(),
        "ext-node" => ext_node(),
        "ext-prefill" => ext_prefill(),
        "ext-quant" => ext_quant(),
        "ext-throughput" => ext_throughput(),
        "ext-batch-scaling" => ext_batch_scaling(),
        "ext-serving" => ext_serving(),
        "ext-chunked-prefill" => ext_chunked_prefill(),
        "ext-paged-kv" => ext_paged_kv(),
        "ext-overload" => ext_overload(),
        "ext-resilience" => ext_resilience(),
        _ => return None,
    })
}

// --------------------------------------------------------------------------
// Shared synthetic-model setup
// --------------------------------------------------------------------------

/// Scaled-down stand-ins for the OPT sizes used in the accuracy tables.
fn synth_family() -> Vec<(&'static str, Transformer)> {
    vec![
        (
            "OPT-350M-synth",
            Transformer::teacher(ModelConfig::scaled(2, 32, 4), 101),
        ),
        (
            "OPT-1.3B-synth",
            Transformer::teacher(ModelConfig::scaled(2, 48, 4), 102),
        ),
        (
            "OPT-6.7B-synth",
            Transformer::teacher(ModelConfig::scaled(3, 64, 4), 103),
        ),
    ]
}

fn corpora(teacher: &Transformer, seed: u64) -> (Corpus, Corpus) {
    // Large enough that quantization orderings are clear of sampling noise
    // (180 evaluated positions per model).
    let calib = generate(teacher, 4, 14, seed);
    let eval = generate(teacher, 10, 18, seed + 1000);
    (calib, eval)
}

// --------------------------------------------------------------------------
// Experiments
// --------------------------------------------------------------------------

fn table1() -> Vec<(String, Table)> {
    let mut t = Table::new(
        "Table I — comparison of hardware accelerators",
        &[
            "Platform",
            "FP-INT op",
            "Mixed-precision",
            "BCQ",
            "Complexity",
        ],
    );
    let b = |v: bool| if v { "yes" } else { "no" }.to_string();
    for row in TABLE1 {
        t.row(vec![
            row.name.into(),
            b(row.fp_int),
            b(row.mixed_precision),
            b(row.bcq),
            row.complexity.into(),
        ]);
    }
    vec![("table1".into(), t)]
}

fn fig1() -> Vec<(String, Table)> {
    // A 3-bit uniform grid expressed exactly as BCQ + offset (Eq. 3), next
    // to a conventional (offset-free) BCQ fit of the same values.
    let grid: Vec<f64> = (0..8).map(|v| -0.7 + 0.2 * v as f64).collect();
    let w = Mat::from_vec(1, 8, grid.clone());
    let u = rtn(&w, RtnParams::per_row(3));
    let with_offset = BcqWeight::from_uniform(&u);
    let no_offset = BcqWeight::quantize(
        &w,
        BcqParams {
            bits: 3,
            group_size: 0,
            with_offset: false,
            refine_iters: 20,
        },
    );
    let mut t = Table::new(
        "Fig. 1 — BCQ with offset represents the uniform grid exactly (q = 3)",
        &["grid value", "BCQ+offset", "BCQ (no offset)"],
    );
    for (c, &g) in grid.iter().enumerate() {
        t.row(vec![
            f3(g),
            f3(with_offset.value(0, c)),
            f3(no_offset.value(0, c)),
        ]);
    }
    t.note(format!(
        "offset-BCQ scales α = [{}], z = {} (α_i = s·2^(i-1), z = s(2^q−1)/2 + base)",
        (0..3)
            .map(|i| f3(with_offset.alpha(i, 0, 0)))
            .collect::<Vec<_>>()
            .join(", "),
        f3(with_offset.offset(0, 0)),
    ));
    vec![("fig1".into(), t)]
}

fn fig2() -> Vec<(String, Table)> {
    let mut t = Table::new(
        "Fig. 2 — shared-memory bank conflicts: LUT-GEMM read phase vs FFLUT (32 threads)",
        &["structure", "mu", "serialization (cycles per ideal cycle)"],
    );
    for mu in [2u32, 4, 8] {
        let s = banked_read_phase(mu, 32, 2000, GPU_BANKS, 12345);
        t.row(vec![
            "GPU shared memory".into(),
            mu.to_string(),
            format!("{:.2}", s.serialization()),
        ]);
    }
    let f = fflut_read_phase(2000);
    t.row(vec![
        "FFLUT (conflict-free)".into(),
        "any".into(),
        format!("{:.2}", f.serialization()),
    ]);
    t.note("random weight keys serialize banked reads; dedicated FFLUT muxes never stall");
    vec![("fig2".into(), t)]
}

fn table2() -> Vec<(String, Table)> {
    let mut t = Table::new(
        "Table II — LUT contents for mu = 3",
        &["binary pattern {b1,b2,b3}", "key", "value"],
    );
    for (k, expr) in symbolic_table(3) {
        let pat: Vec<&str> = (0..3)
            .map(|i| if (k >> (2 - i)) & 1 == 1 { "+1" } else { "-1" })
            .collect();
        t.row(vec![
            format!("{{{}}}", pat.join(", ")),
            format!("{k} (b'{k:03b})"),
            expr,
        ]);
    }
    vec![("table2".into(), t)]
}

fn fig6() -> Vec<(String, Table)> {
    let tech = Tech::cmos28();
    let mut t = Table::new(
        "Fig. 6 — LUT power per weight vs FP16-adder baseline (= 1.0)",
        &["structure", "mu", "relative power"],
    );
    for mu in [4u32, 8] {
        t.row(vec![
            "RFLUT".into(),
            mu.to_string(),
            f3(per_weight_read_power(
                &tech,
                LutKind::Rflut,
                mu,
                FpFormat::Fp16,
                1,
            )),
        ]);
    }
    for mu in [2u32, 4, 8] {
        t.row(vec![
            "FFLUT".into(),
            mu.to_string(),
            f3(per_weight_read_power(
                &tech,
                LutKind::Fflut,
                mu,
                FpFormat::Fp16,
                1,
            )),
        ]);
    }
    for mu in [2u32, 4, 8] {
        t.row(vec![
            "hFFLUT".into(),
            mu.to_string(),
            f3(per_weight_read_power(
                &tech,
                LutKind::Hfflut,
                mu,
                FpFormat::Fp16,
                1,
            )),
        ]);
    }
    t.note("RFLUT mu=2 is below the memory compiler's minimum macro (paper skips it too)");
    t.note("FFLUT mu=8 power excludes it from consideration, as in the paper");
    vec![("fig6".into(), t)]
}

fn fig8() -> Vec<(String, Table)> {
    let tech = Tech::cmos28();
    let mut t = Table::new(
        "Fig. 8 — relative PE power per weight vs k (baseline FP16 adders = 1.0)",
        &["k", "mu=2", "mu=4"],
    );
    for k in [1u32, 2, 4, 8, 16, 32, 64] {
        let p = |mu| {
            let params = PeParams {
                mu,
                k,
                ..PeParams::paper_default(FpFormat::Fp16)
            };
            system_power_per_weight(&tech, &params)
        };
        t.row(vec![k.to_string(), f3(p(2)), f3(p(4))]);
    }
    t.note("mu=4 starts worse (bigger LUT) and wins once the LUT is shared — paper §III-C");
    vec![("fig8".into(), t)]
}

fn fig9() -> Vec<(String, Table)> {
    let tech = Tech::cmos28();
    let base = pe_power(
        &tech,
        &PeParams {
            k: 1,
            ..PeParams::paper_default(FpFormat::Fp16)
        },
    );
    let mut t = Table::new(
        "Fig. 9 — P_PE and P_RAC vs k, normalized to k = 1 (mu = 4)",
        &["k", "P_PE (norm)", "P_RAC (norm)"],
    );
    for k in [1u32, 2, 4, 8, 16, 24, 32, 40, 48, 64] {
        let p = pe_power(
            &tech,
            &PeParams {
                k,
                ..PeParams::paper_default(FpFormat::Fp16)
            },
        );
        t.row(vec![
            k.to_string(),
            f3(p.total_pj() / base.total_pj()),
            f3(p.per_rac_pj(k) / base.per_rac_pj(1)),
        ]);
    }
    let kstar = optimal_k(&tech, 4, FpFormat::Fp16, 64);
    t.note(format!(
        "P_RAC minimum at k = {kstar} (paper selects k = 32)"
    ));
    vec![("fig9".into(), t)]
}

fn table3() -> Vec<(String, Table)> {
    let tech = Tech::cmos28();
    let full = lut_power(&tech, LutKind::Fflut, 4, 16, 32);
    let half = lut_power(&tech, LutKind::Hfflut, 4, 16, 32);
    let base = full.hold_pj_per_cycle;
    let mut t = Table::new(
        "Table III — relative power of LUT vs MUX vs decoder (FFLUT LUT = 1.000)",
        &["structure", "LUT", "MUX", "decoder", "MUX+decoder"],
    );
    t.row(vec![
        "FFLUT".into(),
        f3(full.hold_pj_per_cycle / base),
        f3(full.mux_pj_per_read / base),
        f3(0.0),
        f3(full.mux_pj_per_read / base),
    ]);
    t.row(vec![
        "hFFLUT".into(),
        f3(half.hold_pj_per_cycle / base),
        f3(half.mux_pj_per_read / base),
        f3(half.decoder_pj_per_read / base),
        f3((half.mux_pj_per_read + half.decoder_pj_per_read) / base),
    ]);
    t.note("paper reports 1.000 / 0.494 for the LUT column; decode overhead is trivial");
    vec![("table3".into(), t)]
}

fn fig11() -> Vec<(String, Table)> {
    let mut t = Table::new(
        "Fig. 11 — LUT generator adder counts (half table)",
        &[
            "mu",
            "straightforward",
            "optimized",
            "saving",
            "depth (opt)",
        ],
    );
    for mu in 2u32..=6 {
        let s = GenSchedule::straightforward(mu, true);
        let o = GenSchedule::optimized(mu, true);
        t.row(vec![
            mu.to_string(),
            s.adds().to_string(),
            o.adds().to_string(),
            format!("{:.0}%", 100.0 * (1.0 - o.adds() as f64 / s.adds() as f64)),
            o.depth().to_string(),
        ]);
    }
    t.note("paper: 14 adds at mu = 4, a 42% reduction over 24");
    vec![("fig11".into(), t)]
}

fn table4() -> Vec<(String, Table)> {
    let mut t = Table::new(
        "Table IV — perplexity parity of GEMM engines (RTN Q4, FP16 act, FP32 accum)",
        &["model", "GPU (exact)", "FIGLUT-F", "FIGLUT-I"],
    );
    for (name, teacher) in synth_family() {
        let (calib, eval) = corpora(&teacher, 7);
        let (q, _) = quantize_model(&teacher, &calib, Method::Rtn { bits: 4 });
        let qb = to_bcq(&q);
        let cfg = EngineConfig::paper_default();
        let gpu = perplexity(&q, &eval, &Backend::Exact);
        let ff = perplexity(&qb, &eval, &Backend::Engine(Engine::FiglutF, cfg));
        let fi = perplexity(&qb, &eval, &Backend::Engine(Engine::FiglutI, cfg));
        t.row(vec![name.into(), f3(gpu), f3(ff), f3(fi)]);
    }
    t.note("identical to ~3 decimals: FP32 accumulation preserves accuracy (paper Table IV)");
    vec![("table4".into(), t)]
}

fn accel_engines() -> [SimEngine; 4] {
    [
        SimEngine::Fpe,
        SimEngine::Ifpu,
        SimEngine::Figna,
        SimEngine::FiglutI,
    ]
}

fn fig13() -> Vec<(String, Table)> {
    let tech = Tech::cmos28();
    let mut out = Vec::new();
    for fmt in FpFormat::ALL {
        for q in [4.0f64, 8.0] {
            let mut t = Table::new(
                format!(
                    "Fig. 13 — TOPS/mm² normalized to FPE ({} activations, Q{})",
                    fmt, q as u32
                ),
                &[
                    "engine", "125M", "350M", "1.3B", "2.7B", "6.7B", "13B", "30B",
                ],
            );
            let spec_of = |e: SimEngine| {
                let s = EngineSpec::paper(e, fmt);
                if q > 4.0 && !e.is_bit_serial() {
                    s.q8_variant()
                } else {
                    s
                }
            };
            let base: Vec<f64> = OPT_FAMILY
                .iter()
                .map(|cfg| {
                    evaluate(
                        &tech,
                        &spec_of(SimEngine::Fpe),
                        &decode_workload(cfg, 32),
                        q,
                    )
                    .tops_per_mm2()
                })
                .collect();
            for e in accel_engines() {
                let mut row = vec![e.name().to_string()];
                for (i, cfg) in OPT_FAMILY.iter().enumerate() {
                    let r = evaluate(&tech, &spec_of(e), &decode_workload(cfg, 32), q);
                    row.push(f3(r.tops_per_mm2() / base[i]));
                }
                t.row(row);
            }
            let tag = format!("fig13_{}_q{}", fmt.name(), q as u32);
            out.push((tag, t));
        }
    }
    out
}

fn fig14() -> Vec<(String, Table)> {
    let tech = Tech::cmos28();
    let mut t = Table::new(
        "Fig. 14 — MPU area breakdown, normalized to FPE total (same format/precision)",
        &["variant", "engine", "arithmetic", "flip-flop", "total"],
    );
    for fmt in FpFormat::ALL {
        for q8 in [false, true] {
            let variant = format!("{}-Q{}", fmt, if q8 { 8 } else { 4 });
            let spec_of = |e: SimEngine| {
                let s = EngineSpec::paper(e, fmt);
                if q8 && !e.is_bit_serial() {
                    s.q8_variant()
                } else {
                    s
                }
            };
            let fpe = mpu_area(&tech, &spec_of(SimEngine::Fpe)).total_um2();
            for e in accel_engines() {
                let a = mpu_area(&tech, &spec_of(e));
                t.row(vec![
                    variant.clone(),
                    e.name().into(),
                    f3(a.arithmetic_um2 / fpe),
                    f3(a.flipflop_um2 / fpe),
                    f3(a.total_um2() / fpe),
                ]);
            }
        }
    }
    vec![("fig14".into(), t)]
}

fn fig15() -> Vec<(String, Table)> {
    let tech = Tech::cmos28();
    let cfg = opt_config("OPT-6.7B");
    let wl = decode_workload(cfg, 32);
    let mut t = Table::new(
        "Fig. 15 — energy breakdown on OPT-6.7B, normalized to FPE at each precision",
        &["precision", "engine", "MPU", "SRAM", "DRAM", "VPU", "total"],
    );
    for q in [1.0f64, 2.0, 3.0, 4.0, 8.0] {
        let spec_of = |e: SimEngine| {
            let s = EngineSpec::paper(e, FpFormat::Fp16);
            if q > 4.0 && !e.is_bit_serial() {
                s.q8_variant()
            } else {
                s
            }
        };
        let fpe_total = evaluate(&tech, &spec_of(SimEngine::Fpe), &wl, q)
            .energy
            .total_pj();
        for e in accel_engines() {
            let r = evaluate(&tech, &spec_of(e), &wl, q);
            t.row(vec![
                format!("Q{}", q as u32),
                e.name().into(),
                f3(r.energy.mpu_pj / fpe_total),
                f3(r.energy.sram_pj / fpe_total),
                f3(r.energy.dram_pj / fpe_total),
                f3(r.energy.vpu_pj / fpe_total),
                f3(r.energy.total_pj() / fpe_total),
            ]);
        }
    }
    t.note("bit-serial engines shrink with precision; FPE/FIGNA pad sub-4-bit to Q4");
    vec![("fig15".into(), t)]
}

fn fig16() -> Vec<(String, Table)> {
    let tech = Tech::cmos28();
    let mut out = Vec::new();
    for q in [2.0f64, 3.0, 4.0] {
        let mut t = Table::new(
            format!("Fig. 16 — TOPS/W normalized to FPE (FP16, Q{})", q as u32),
            &[
                "engine", "125M", "350M", "1.3B", "2.7B", "6.7B", "13B", "30B",
            ],
        );
        let base: Vec<f64> = OPT_FAMILY
            .iter()
            .map(|cfg| {
                evaluate(
                    &tech,
                    &EngineSpec::paper(SimEngine::Fpe, FpFormat::Fp16),
                    &decode_workload(cfg, 32),
                    q,
                )
                .tops_per_w()
            })
            .collect();
        for e in [SimEngine::Ifpu, SimEngine::Figna, SimEngine::FiglutI] {
            let mut row = vec![e.name().to_string()];
            for (i, cfg) in OPT_FAMILY.iter().enumerate() {
                let r = evaluate(
                    &tech,
                    &EngineSpec::paper(e, FpFormat::Fp16),
                    &decode_workload(cfg, 32),
                    q,
                );
                row.push(f3(r.tops_per_w() / base[i]));
            }
            t.row(row);
        }
        out.push((format!("fig16_q{}", q as u32), t));
    }
    out
}

fn fig17() -> Vec<(String, Table)> {
    let tech = Tech::cmos28();
    let opt = opt_config("OPT-6.7B");
    let wl = decode_workload(opt, 32);
    let teacher = Transformer::teacher(ModelConfig::scaled(3, 64, 4), 103);
    let (calib, eval) = corpora(&teacher, 7);
    let fp16_ppl = perplexity(&teacher, &eval, &Backend::Exact);

    let mut t = Table::new(
        "Fig. 17 — TOPS/W vs perplexity, OPT-6.7B(-synth): FIGNA+OPTQ vs FIGLUT+ShiftAddLLM",
        &[
            "config",
            "avg bits",
            "perplexity",
            "TOPS/W",
            "rel. model size",
        ],
    );
    t.note(format!("FP16 baseline perplexity: {}", f3(fp16_ppl)));
    let figna = EngineSpec::paper(SimEngine::Figna, FpFormat::Fp16);
    for bits in [2u32, 3, 4] {
        let (q, _) = quantize_model(&teacher, &calib, Method::Gptq { bits });
        let p = perplexity(&q, &eval, &Backend::Exact);
        let r = evaluate(&tech, &figna, &wl, bits as f64);
        t.row(vec![
            format!("FIGNA OPTQ-Q{bits}"),
            format!("{bits}"),
            f3(p),
            f3(r.tops_per_w()),
            f3(bits as f64 / 4.0),
        ]);
    }
    let figlut = EngineSpec::paper(SimEngine::FiglutI, FpFormat::Fp16);
    let mut methods: Vec<(String, Method)> = vec![
        ("FIGLUT ShiftAdd-Q2".into(), Method::ShiftAdd { bits: 2 }),
        (
            "FIGLUT ShiftAdd-Q2.4".into(),
            Method::ShiftAddMixed { avg_bits: 2.4 },
        ),
        ("FIGLUT ShiftAdd-Q3".into(), Method::ShiftAdd { bits: 3 }),
        ("FIGLUT ShiftAdd-Q4".into(), Method::ShiftAdd { bits: 4 }),
    ];
    for (label, m) in methods.drain(..) {
        let (q, _) = quantize_model(&teacher, &calib, m);
        let avg = q.average_bits();
        let p = perplexity(&q, &eval, &Backend::Exact);
        let r = evaluate(&tech, &figlut, &wl, avg);
        t.row(vec![
            label,
            format!("{avg:.2}"),
            f3(p),
            f3(r.tops_per_w()),
            f3(avg / 4.0),
        ]);
    }
    vec![("fig17".into(), t)]
}

fn table5() -> Vec<(String, Table)> {
    let tech = Tech::cmos28();
    let cfg = opt_config("OPT-6.7B");
    let wl = decode_workload(cfg, 32);
    let mut t = Table::new(
        "Table V — cross-platform comparison (OPT-6.7B, batch 32, Q4 weights)",
        &["hardware", "format", "TOPS", "power (W)", "TOPS/W"],
    );
    for g in TABLE5_GPUS {
        t.row(vec![
            g.name.into(),
            g.format.into(),
            f3(g.tops),
            f3(g.power_w),
            f3(g.tops_per_w()),
        ]);
    }
    for e in [SimEngine::Ifpu, SimEngine::Figna, SimEngine::FiglutI] {
        let r = evaluate(&tech, &EngineSpec::paper(e, FpFormat::Fp16), &wl, 4.0);
        t.row(vec![
            e.name().into(),
            "FP16-Q4".into(),
            f3(r.tops()),
            f3(r.power_w()),
            f3(r.tops_per_w()),
        ]);
    }
    t.note("GPU rows are the paper's measured operating points (simulated constants;");
    t.note("see figlut-sim::gpu for the roofline cross-check). Accelerator rows are");
    t.note("computed by the cost model at 28nm/100MHz with LPDDR-class DRAM.");
    vec![("table5".into(), t)]
}

fn table6() -> Vec<(String, Table)> {
    let mut t = Table::new(
        "Table VI — perplexity, FP16 vs ShiftAddLLM BCQ4 / BCQ3",
        &["model", "FP16", "BCQ4", "BCQ3"],
    );
    for (name, teacher) in synth_family() {
        let (calib, eval) = corpora(&teacher, 13);
        let base = perplexity(&teacher, &eval, &Backend::Exact);
        let mut cells = vec![name.to_string(), f3(base)];
        for bits in [4u32, 3] {
            let (q, _) = quantize_model(&teacher, &calib, Method::ShiftAdd { bits });
            cells.push(f3(perplexity(&q, &eval, &Backend::Exact)));
        }
        t.row(cells);
    }
    t.note("expected shape: FP16 ≤ BCQ4 ≤ BCQ3, with BCQ4 close to FP16 (paper Table VI)");
    vec![("table6".into(), t)]
}

fn ablation() -> Vec<(String, Table)> {
    let tech = Tech::cmos28();
    let opt = opt_config("OPT-6.7B");
    let wl = decode_workload(opt, 32);
    let mut t = Table::new(
        "Ablation — FIGLUT design choices on OPT-6.7B (Q4 unless noted)",
        &["configuration", "TOPS/W", "TOPS/mm2", "vs paper point"],
    );
    let base_spec = EngineSpec::paper(SimEngine::FiglutI, FpFormat::Fp16);
    let base = evaluate(&tech, &base_spec, &wl, 4.0);
    let mut row = |label: &str, spec: EngineSpec, q: f64| {
        let r = evaluate(&tech, &spec, &wl, q);
        t.row(vec![
            label.into(),
            f3(r.tops_per_w()),
            f3(r.tops_per_mm2()),
            ratio(r.tops_per_w() / base.tops_per_w()),
        ]);
    };
    row("paper point: mu=4, k=32, hFFLUT, INT", base_spec, 4.0);
    for (mu, k) in [(2u32, 16u32), (2, 32), (4, 8), (4, 64), (8, 32)] {
        let mut s = base_spec;
        s.mu = mu;
        s.k = k;
        row(&format!("mu={mu}, k={k}"), s, 4.0);
    }
    let mut full = base_spec;
    full.lut_kind = LutKind::Fflut;
    row("full FFLUT (no halving)", full, 4.0);
    row(
        "FP RAC datapath (FIGLUT-F)",
        EngineSpec::paper(SimEngine::FiglutF, FpFormat::Fp16),
        4.0,
    );
    t.note("mu/hFFLUT/INT choices all confirm the paper's §III-C/D conclusions;");
    t.note("k=64 is marginally ahead at the whole-engine level (tile-reuse effects");
    t.note("the paper's PE-level P_RAC analysis excludes) but within noise of k=32");

    // Alignment-mode accuracy ablation (functional, on the synthetic model).
    let teacher = Transformer::teacher(ModelConfig::scaled(2, 48, 4), 102);
    let (calib, eval) = corpora(&teacher, 31);
    let (q, _) = quantize_model(&teacher, &calib, Method::Rtn { bits: 4 });
    let qb = to_bcq(&q);
    let mut t2 = Table::new(
        "Ablation — pre-alignment mode and guard bits (FIGLUT-I, RTN-Q4)",
        &["alignment", "guard bits", "perplexity"],
    );
    let exact = perplexity(&q, &eval, &Backend::Exact);
    t2.row(vec!["exact reference".into(), "-".into(), f3(exact)]);
    for (mode, name) in [
        (figlut_num::align::AlignMode::RoundNearestEven, "RNE"),
        (figlut_num::align::AlignMode::Truncate, "truncate"),
    ] {
        for guard in [0u32, 4] {
            let cfg = EngineConfig {
                guard_bits: guard,
                align: mode,
                ..EngineConfig::paper_default()
            };
            let p = perplexity(&qb, &eval, &Backend::Engine(Engine::FiglutI, cfg));
            t2.row(vec![name.into(), guard.to_string(), f3(p)]);
        }
    }
    t2.note("RNE alignment with guard bits reproduces the exact perplexity (FIGNA's");
    t2.note("'preserving numerical accuracy' claim); bare truncation drifts slightly");
    vec![("ablation_hw".into(), t), ("ablation_align".into(), t2)]
}

fn ext_node() -> Vec<(String, Table)> {
    // Extension: the paper's closing remark — "the efficiency of FIGLUT
    // would be even more prominent if evaluated under comparable
    // fabrication technologies" (A100 = 7nm, H100 = 4nm).
    let opt = opt_config("OPT-6.7B");
    let wl = decode_workload(opt, 32);
    let mut t = Table::new(
        "Extension — FIGLUT-I vs GPU efficiency across fabrication nodes",
        &["node (nm)", "TOPS/W", "vs A100 (0.21)", "vs H100 (0.22)"],
    );
    for node in [28.0f64, 16.0, 7.0, 4.0] {
        let tech = Tech::cmos28().scaled_to_node(node);
        let r = evaluate(
            &tech,
            &EngineSpec::paper(SimEngine::FiglutI, FpFormat::Fp16),
            &wl,
            4.0,
        );
        t.row(vec![
            format!("{node}"),
            f3(r.tops_per_w()),
            ratio(r.tops_per_w() / 0.21),
            ratio(r.tops_per_w() / 0.22),
        ]);
    }
    t.note("first-order node scaling (DRAM energy held constant); quantifies the");
    t.note("paper's remark that 28nm FIGLUT already beats 7nm/4nm GPUs");
    vec![("ext_node".into(), t)]
}

fn ext_prefill() -> Vec<(String, Table)> {
    // Extension: decode vs prefill operating points (the paper evaluates
    // the decode/generation phase; prefill shows where the compute-bound
    // regime moves).
    use figlut_model::workload::prefill_workload;
    let tech = Tech::cmos28();
    let opt = opt_config("OPT-6.7B");
    let mut t = Table::new(
        "Extension — decode vs prefill on FIGLUT-I (OPT-6.7B, batch 32, Q4)",
        &["phase", "TOPS", "TOPS/W", "memory-bound?"],
    );
    let spec = EngineSpec::paper(SimEngine::FiglutI, FpFormat::Fp16);
    for (label, wl, batch_rows) in [
        ("decode (batch 32)", decode_workload(opt, 32), 32usize),
        ("decode (batch 1)", decode_workload(opt, 1), 1),
        (
            "prefill (batch 4 x 128 tokens)",
            prefill_workload(opt, 4, 128),
            512,
        ),
    ] {
        let r = evaluate(&tech, &spec, &wl, 4.0);
        let c = figlut_sim::dataflow::gemm_cycles(
            &tech,
            &spec,
            opt.d_model,
            opt.d_model,
            batch_rows,
            4.0,
        );
        t.row(vec![
            label.into(),
            f3(r.tops()),
            f3(r.tops_per_w()),
            if c.memory_bound() { "yes" } else { "no" }.into(),
        ]);
    }
    t.note("batch-1 decode is DRAM-bound (the paper's LLM-serving motivation);");
    t.note("prefill saturates compute and pushes efficiency toward the peak");
    vec![("ext_prefill".into(), t)]
}

fn ext_quant() -> Vec<(String, Table)> {
    // Extension: all four quantization stacks head-to-head on one model —
    // the quantizer landscape the paper's related-work section surveys
    // (RTN, AWQ [25], OPTQ [10], ShiftAddLLM [36]).
    let teacher = Transformer::teacher(ModelConfig::scaled(3, 64, 4), 103);
    let (calib, eval) = corpora(&teacher, 7);
    let base = perplexity(&teacher, &eval, &Backend::Exact);
    let mut t = Table::new(
        "Extension — quantizer comparison on OPT-6.7B-synth (perplexity)",
        &["method", "Q2", "Q3", "Q4"],
    );
    t.note(format!("FP16 baseline perplexity: {}", f3(base)));
    for (name, mk) in [
        ("RTN", (|b| Method::Rtn { bits: b }) as fn(u32) -> Method),
        ("AWQ", |b| Method::Awq { bits: b }),
        ("OPTQ", |b| Method::Gptq { bits: b }),
        ("ShiftAddLLM (BCQ)", |b| Method::ShiftAdd { bits: b }),
    ] {
        let mut cells = vec![name.to_string()];
        for bits in [2u32, 3, 4] {
            let (q, _) = quantize_model(&teacher, &calib, mk(bits));
            cells.push(f3(perplexity(&q, &eval, &Backend::Exact)));
        }
        t.row(cells);
    }
    t.note("expected: calibrated methods beat RTN; BCQ's non-uniform grid is the");
    t.note("most robust at 2 bits (why the paper pairs FIGLUT with ShiftAddLLM)");
    vec![("ext_quant".into(), t)]
}

fn ext_throughput() -> Vec<(String, Table)> {
    // Extension: host-side software throughput of the packed figlut-exec
    // backend vs the bit-accurate FIGLUT-I datapath model, on the real
    // OPT-1.3B decode GEMM set (batch 32, Q4, µ = 4). "GF/s" counts the
    // effective FLOPs of the FP GEMM being replaced (2·batch·m·n), the
    // usual accounting for weight-only-quantized kernels. The datapath
    // model's rate is measured at batch 2 (its per-row cost is linear in
    // batch; running it at batch 32 would take minutes by design — it is a
    // correctness model, which is the point of this table).
    use figlut_exec::{exec_i_threads, PackedBcq};
    // audit: allow(determinism) — wall-clock time is this experiment's measurement
    use std::time::Instant;

    let opt = opt_config("OPT-1.3B");
    let d = opt.d_model;
    let shapes: [(&str, usize, usize); 3] = [
        ("QKV/out proj", d, d),
        ("FFN up", opt.ffn, d),
        ("FFN down", d, opt.ffn),
    ];
    let batch = 32usize;
    let model_batch = 2usize;
    let threads = figlut_exec::parallel::thread_count();
    let cfg = EngineConfig::paper_default();

    let mut t = Table::new(
        format!(
            "Extension — exec backend throughput vs FIGLUT-I datapath model \
             (OPT-1.3B decode, batch {batch}, Q4, mu=4, {threads} threads)"
        ),
        &[
            "GEMM (m x n)",
            "model GF/s",
            "exec 1T GF/s",
            "speedup 1T",
            "exec NT GF/s",
            "speedup NT",
        ],
    );
    let mut min_speedup_1t = f64::INFINITY;
    for (name, m, n) in shapes {
        let w = Mat::from_fn(m, n, |r, c| ((r * n + c) as f64 * 0.173).sin() * 0.2);
        let u = rtn(&w, RtnParams::grouped(4, 128));
        let bcq = BcqWeight::from_uniform(&u);
        let packed = PackedBcq::pack(&bcq);
        let x = Mat::from_fn(batch, n, |b, c| ((b * n + c) as f64 * 0.059).cos());
        let xm = Mat::from_fn(model_batch, n, |b, c| x[(b, c)]);

        let gf = |rows: usize, secs: f64| 2.0 * (rows * m * n) as f64 / secs / 1e9;
        // audit: allow(determinism) — wall-clock time is this experiment's measurement
        let started = Instant::now();
        let ym = figlut_gemm::figlut::gemm_i(&xm, &bcq, &cfg);
        let model_rate = gf(model_batch, started.elapsed().as_secs_f64());

        // audit: allow(determinism) — wall-clock time is this experiment's measurement
        let started = Instant::now();
        let y1 = exec_i_threads(&x, &packed, &cfg, 1);
        let exec1_rate = gf(batch, started.elapsed().as_secs_f64());

        // audit: allow(determinism) — wall-clock time is this experiment's measurement
        let started = Instant::now();
        let yn = exec_i_threads(&x, &packed, &cfg, threads);
        let execn_rate = gf(batch, started.elapsed().as_secs_f64());

        // Differential guard: this is a *benchmark of the same bits*.
        assert_eq!(y1.as_slice(), yn.as_slice(), "{name}: thread divergence");
        for b in 0..model_batch {
            assert_eq!(ym.row(b), y1.row(b), "{name}: exec != model");
        }

        min_speedup_1t = min_speedup_1t.min(exec1_rate / model_rate);
        t.row(vec![
            format!("{name} ({m} x {n})"),
            f3(model_rate),
            f3(exec1_rate),
            ratio(exec1_rate / model_rate),
            f3(execn_rate),
            ratio(execn_rate / model_rate),
        ]);
    }
    t.note(format!(
        "minimum single-thread speedup over the datapath model: {}",
        ratio(min_speedup_1t)
    ));
    t.note(format!(
        "'model GF/s' is measured at batch {model_batch}, not batch {batch}: the datapath \
         model's per-row cost is batch-linear by construction, so its batch-{batch} run \
         would take {}x the measured time at the same GF/s rate — the speedup columns \
         compare per-row throughput at equal work",
        batch / model_batch
    ));
    t.note("timings are host-dependent; outputs are asserted bit-identical across");
    t.note("backend, batch subset, and thread count before any rate is reported");
    vec![("ext_throughput".into(), t)]
}

fn ext_batch_scaling() -> Vec<(String, Table)> {
    // Extension: the batch-column blocking of PR 4 measured end to end —
    // one batched `exec_i` call over B activation rows vs B sequential
    // batch-1 calls on the same rows, across the OPT-1.3B decode GEMM
    // set. The blocked kernel streams the packed weight planes once per
    // k-tile for all B columns (B plane sweeps → 1), reads each decoded
    // key's B line-sharing table entries in one contiguous (vectorizable)
    // run, and folds four columns in lockstep — so the batched call
    // approaches batch-1 cost as B grows. Before any rate is reported,
    // the batched output is asserted bit-identical to the per-column runs
    // — the invariance `prop_exec`/`prop_serve` pin, re-checked on the
    // measured inputs.
    use figlut_exec::{ExecPlan, PackedBcq};
    // audit: allow(determinism) — wall-clock time is this experiment's measurement
    use std::time::Instant;

    let opt = opt_config("OPT-1.3B");
    let d = opt.d_model;
    let shapes: [(&str, usize, usize); 3] = [
        ("QKV/out proj", d, d),
        ("FFN up", opt.ffn, d),
        ("FFN down", d, opt.ffn),
    ];
    let cfg = EngineConfig::paper_default();
    let threads_nt = figlut_exec::parallel::thread_count();

    // Best-of-5 wall times: the container clock is noisy and this is a
    // measurement, not a statistics suite (`benches/exec_kernels.rs` has
    // the criterion run).
    let time = |f: &dyn Fn()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            // audit: allow(determinism) — wall-clock time is this experiment's measurement
            let started = Instant::now();
            f();
            best = best.min(started.elapsed().as_secs_f64());
        }
        best
    };

    let mut t = Table::new(
        format!(
            "Extension — batch-blocked exec_i amortization \
             (OPT-1.3B decode GEMMs, Q4, 1 thread; NT = {threads_nt} threads)"
        ),
        &[
            "GEMM (m x n)",
            "batch B",
            "1 call @ B (ms)",
            "B x batch-1 (ms)",
            "speedup",
            "tok/s total",
            "tok/s total NT",
        ],
    );
    let mut best_speedup_at_8 = 0.0f64;
    for (name, m, n) in shapes {
        let w = Mat::from_fn(m, n, |r, c| ((r * n + c) as f64 * 0.173).sin() * 0.2);
        let u = rtn(&w, RtnParams::grouped(4, 128));
        let bcq = BcqWeight::from_uniform(&u);
        let packed = PackedBcq::pack(&bcq);
        let plan = ExecPlan::new(&packed, &cfg);
        let x16 = Mat::from_fn(16, n, |b, c| ((b * n + c) as f64 * 0.059).cos());
        for batch in [1usize, 2, 4, 8, 16] {
            let x = Mat::from_fn(batch, n, |b, c| x16[(b, c)]);
            let rows: Vec<Mat<f64>> = (0..batch)
                .map(|b| Mat::from_fn(1, n, |_, c| x[(b, c)]))
                .collect();

            // Bit-identity gate: batched ≡ per-column, before any timing
            // is reported.
            let yb = plan.exec_i_threads(&x, &packed, &cfg, 1);
            for (b, row) in rows.iter().enumerate() {
                let solo = plan.exec_i_threads(row, &packed, &cfg, 1);
                assert_eq!(
                    yb.row(b),
                    solo.row(0),
                    "{name} B={batch}: batched row {b} diverged from its batch-1 run"
                );
            }

            let batched = time(&|| {
                let _ = plan.exec_i_threads(&x, &packed, &cfg, 1);
            });
            let sequential = time(&|| {
                for row in &rows {
                    let _ = plan.exec_i_threads(row, &packed, &cfg, 1);
                }
            });
            let batched_nt = time(&|| {
                let _ = plan.exec_i_threads(&x, &packed, &cfg, threads_nt);
            });
            let speedup = sequential / batched;
            if batch == 8 {
                best_speedup_at_8 = best_speedup_at_8.max(speedup);
            }
            t.row(vec![
                format!("{name} ({m} x {n})"),
                batch.to_string(),
                f3(batched * 1e3),
                f3(sequential * 1e3),
                ratio(speedup),
                f3(batch as f64 / batched),
                f3(batch as f64 / batched_nt),
            ]);
        }
    }
    t.note(format!(
        "best batched-vs-sequential speedup at B = 8 across the decode set: {} \
         (single thread)",
        ratio(best_speedup_at_8)
    ));
    t.note("outputs asserted bit-identical (batched row b == batch-1 run of row b)");
    t.note("before any rate is reported; gemm_i parity is pinned by prop_exec");
    t.note("why it scales: the packed weight planes are streamed once per k-tile for");
    t.note("all B columns (B sweeps -> 1 sweep per token batch), each decoded key's B");
    t.note("table reads are one contiguous line-sharing run (vectorized from B >= 8),");
    t.note("and the FP32 fold interleaves 4 independent per-column rounding chains");
    t.note("timings are host-dependent and this container's clock is noisy; on this");
    t.note("host the 2 MB-8 MB packed planes stay cache-resident, so the kernel is");
    t.note("lookup-latency-bound rather than DRAM-bound and the batch speedup is");
    t.note("sublinear; a DRAM-bound host amortizes closer to linearly");
    vec![("ext_batch_scaling".into(), t)]
}

fn ext_serving() -> Vec<(String, Table)> {
    // Extension: the paper's motivating scenario run end to end — an LLM
    // *serving* workload (seeded arrival trace, continuous batching) on the
    // packed exec backend, with the executed step sequence priced through
    // the cost model at the real OPT-1.3B shape. Before any number is
    // reported, every session's token stream is asserted bit-identical to
    // its solo batch-1 run: scheduling may move tokens in time, never
    // change them.
    use figlut_serve::{
        serve, synthetic_trace, BatchEngine, Policy, Sampling, ServeConfig, TraceParams,
    };

    let teacher = Transformer::teacher(ModelConfig::scaled(2, 48, 4), 102);
    let (calib, _) = corpora(&teacher, 7);
    let (q, _) = quantize_model(&teacher, &calib, Method::ShiftAdd { bits: 3 });
    let model = to_packed(&q);
    let engine = BatchEngine::new(&model, Backend::Exec(EngineConfig::paper_default()));

    let params = TraceParams {
        requests: 16,
        mean_interarrival: 12.0,
        prompt_len: (4, 10),
        new_tokens: (6, 14),
        sampling: Sampling::Greedy,
    };
    let trace = synthetic_trace(&model.cfg, &params, 4242);
    let solo: Vec<Vec<usize>> = trace.requests.iter().map(|r| engine.solo_run(r)).collect();

    let tech = Tech::cmos28();
    let opt = opt_config("OPT-1.3B");
    let spec = EngineSpec::paper(SimEngine::FiglutI, FpFormat::Fp16);
    let avg_bits = model.average_bits();

    let mut t = Table::new(
        format!(
            "Extension — continuous-batching serving of a {}-request trace \
             (OPT-1.3B-synth, ShiftAdd-Q3, exec backend, {} threads)",
            trace.len(),
            figlut_exec::parallel::thread_count(),
        ),
        &[
            "policy",
            "max_batch",
            "tok/ktick",
            "mean TTFT",
            "p50 lat",
            "p99 lat",
            "occupancy",
            "nJ/token",
        ],
    );
    let mut last = None;
    for (policy, max_batch) in [
        (Policy::Fcfs, 8usize),
        (Policy::DecodePriority, 8),
        (Policy::PrefillPriority, 1),
        (Policy::PrefillPriority, 4),
        (Policy::PrefillPriority, 8),
    ] {
        let report = serve(&engine, &trace, &ServeConfig::new(max_batch, policy));
        // The batch-invariance gate: no throughput number is reported
        // unless the tokens are exactly the solo batch-1 tokens.
        for r in &report.requests {
            assert_eq!(
                r.generated, solo[r.id],
                "{policy:?} max_batch={max_batch}: request {} diverged from its solo run",
                r.id
            );
        }
        t.row(vec![
            policy.name().into(),
            max_batch.to_string(),
            f3(report.tokens_per_kilotick()),
            f3(report.mean_ttft()),
            report.latency_percentile(50.0).to_string(),
            report.latency_percentile(99.0).to_string(),
            f3(report.mean_decode_occupancy()),
            f3(report.energy_per_token_pj(&tech, &spec, opt, avg_bits) / 1e3),
        ]);
        last = Some(report);
    }
    // The per-run rollup figlut-serve exposes as `ServeReport: Display`
    // (rendered through the same table helpers), for the last
    // configuration above (prefill-priority, max_batch 8).
    if let Some(report) = &last {
        print!("{report}");
    }
    t.note("per-session tokens asserted bit-identical to solo batch-1 runs before any");
    t.note("rate is reported (the batch-invariance property figlut-serve's tests pin)");
    t.note("virtual clock: each step costs 1 + token-rows ticks; latencies in ticks");
    t.note("nJ/token prices the executed step sequence (exact per-step batch sizes)");
    t.note("through figlut-sim at the real OPT-1.3B shape on FIGLUT-I at 28nm;");
    t.note("prefill steps carry prefill_workload's quadratic attention term (earlier");
    t.note("reports priced every step as a decode batch and understated prefill)");
    vec![("ext_serving".into(), t)]
}

fn ext_chunked_prefill() -> Vec<(String, Table)> {
    // Extension: chunked prefill vs head-of-line blocking, measured on the
    // serving stack. A decode-heavy load (four short-prompt sessions with
    // staggered budgets) is hit by two 30-token prompts mid-stream; the
    // monolithic prefill stalls every running decode for the full prompt,
    // while a chunk budget `c` bounds each step — and therefore every
    // running session's inter-token stall — by
    // `step_overhead + c + max_batch` ticks. Before any number is
    // reported, every emitted token stream is asserted bit-identical to
    // its solo batch-1 run, and the chunked rows are asserted to respect
    // the stall bound.
    use figlut_serve::{serve, BatchEngine, Policy, Request, Sampling, ServeConfig, Trace};

    let teacher = Transformer::teacher(ModelConfig::scaled(2, 48, 4), 102);
    let (calib, _) = corpora(&teacher, 7);
    let (q, _) = quantize_model(&teacher, &calib, Method::ShiftAdd { bits: 3 });
    let model = to_packed(&q);
    let engine = BatchEngine::new(&model, Backend::Exec(EngineConfig::paper_default()));

    let long_prompt = 30usize;
    let mk = |id: usize, arrival: u64, prompt_len: usize, max_new: usize| Request {
        id,
        arrival,
        prompt: (0..prompt_len)
            .map(|i| {
                if i == 0 {
                    0
                } else {
                    (7 * i + 3) % model.cfg.vocab
                }
            })
            .collect(),
        max_new,
        sampling: Sampling::Greedy,
        seed: 9000 + id as u64,
    };
    let trace = Trace {
        requests: vec![
            mk(0, 0, 3, 10),
            mk(1, 0, 3, 14),
            mk(2, 0, 3, 18),
            mk(3, 0, 3, 22),
            mk(4, 40, long_prompt, 4),
            mk(5, 80, long_prompt, 4),
        ],
    };
    let solo: Vec<Vec<usize>> = trace.requests.iter().map(|r| engine.solo_run(r)).collect();

    let tech = Tech::cmos28();
    let opt = opt_config("OPT-1.3B");
    let spec = EngineSpec::paper(SimEngine::FiglutI, FpFormat::Fp16);
    let avg_bits = model.average_bits();
    let max_batch = 4usize;

    let mut t = Table::new(
        format!(
            "Extension — chunked prefill vs head-of-line blocking \
             (4 decode-heavy sessions + 2 x {long_prompt}-token prompts, \
             prefill-priority, max_batch {max_batch}, exec backend)"
        ),
        &[
            "prefill_chunk",
            "tok/ktick",
            "mean TTFT",
            "p99 lat",
            "max stall",
            "p99 stall",
            "mixed steps",
            "nJ/token",
        ],
    );
    for chunk in [None, Some(64usize), Some(16), Some(8)] {
        let mut cfg = ServeConfig::new(max_batch, Policy::PrefillPriority);
        cfg.prefill_chunk = chunk;
        let report = serve(&engine, &trace, &cfg);
        // The batch-invariance gate: chunking must move stalls, not tokens.
        for r in &report.requests {
            assert_eq!(
                r.generated, solo[r.id],
                "chunk {chunk:?}: request {} diverged from its solo run",
                r.id
            );
        }
        if let Some(c) = chunk {
            // The tentpole's latency guarantee, asserted before reporting:
            // stalls are bounded by the chunk, not the foreign prompt.
            let bound = cfg.step_overhead + (c.min(long_prompt) + max_batch) as u64;
            assert!(
                report.max_inter_token_stall() <= bound,
                "chunk {c}: stall {} exceeds bound {bound}",
                report.max_inter_token_stall()
            );
        }
        let mixed = report
            .steps
            .iter()
            .filter(|s| s.prefill_rows > 0 && s.decode_rows > 0)
            .count();
        t.row(vec![
            chunk.map_or("none".into(), |c| c.to_string()),
            f3(report.tokens_per_kilotick()),
            f3(report.mean_ttft()),
            report.latency_percentile(99.0).to_string(),
            report.max_inter_token_stall().to_string(),
            report.stall_percentile(99.0).to_string(),
            mixed.to_string(),
            f3(report.energy_per_token_pj(&tech, &spec, opt, avg_bits) / 1e3),
        ]);
    }
    t.note("tokens asserted bit-identical to solo batch-1 runs for every chunk budget");
    t.note("before any number is reported; chunked rows additionally asserted to meet");
    t.note("the stall bound step_overhead + chunk + max_batch (chunk 64 > prompt 30,");
    t.note("so it degenerates to one whole-prompt chunk and only caps, not splits)");
    t.note("stalls are gaps between consecutive tokens of one session, in ticks; the");
    t.note("monolithic row shows the head-of-line blocking: a running session waits");
    t.note("the whole foreign prompt; energy barely moves because chunk pricing");
    t.note("telescopes (quadratic attention increments sum to the whole-prompt term)");
    vec![("ext_chunked_prefill".into(), t)]
}

fn ext_paged_kv() -> Vec<(String, Table)> {
    // Extension: paged KV with copy-on-write prefix sharing and
    // preempt-to-host, measured on the serving stack. Eight sessions share
    // a 64-token prompt prefix (a system prompt) and diverge in 4-token
    // tails; contiguous per-session KV stores the prefix eight times while
    // the paged layouts keep one refcounted copy and copy-on-write only on
    // divergence. The last row caps the block pool at the legal minimum
    // (one full-context session), forcing preempt/restore cycles whose
    // swap traffic is priced as non-GEMM DRAM work. Before any number is
    // reported, every token stream is asserted bit-identical to its solo
    // batch-1 run — paging and preemption move bytes, never tokens — and
    // the unbounded paged rows are asserted to cut resident KV below half
    // of contiguous at energy within 5% (sharing is storage-only, so the
    // executed step sequence is identical and energy is *exactly* equal).
    use figlut_serve::{serve, BatchEngine, Policy, Request, Sampling, ServeConfig, Trace};

    let teacher = Transformer::teacher(
        ModelConfig {
            max_seq: 96,
            ..ModelConfig::tiny()
        },
        103,
    );
    let (calib, _) = corpora(&teacher, 7);
    let (q, _) = quantize_model(&teacher, &calib, Method::ShiftAdd { bits: 3 });
    let model = to_packed(&q);
    let engine = BatchEngine::new(&model, Backend::Exec(EngineConfig::paper_default()));

    let sessions = 8usize;
    let prefix_len = 64usize;
    let prefix: Vec<usize> = (0..prefix_len)
        .map(|i| {
            if i == 0 {
                0
            } else {
                (5 * i + 11) % model.cfg.vocab
            }
        })
        .collect();
    let trace = Trace {
        requests: (0..sessions)
            .map(|id| {
                let mut prompt = prefix.clone();
                prompt.extend((0..4).map(|i| (13 * id + 29 * i + 1) % model.cfg.vocab));
                Request {
                    id,
                    arrival: 0,
                    prompt,
                    max_new: 8,
                    sampling: Sampling::Greedy,
                    seed: 7000 + id as u64,
                }
            })
            .collect(),
    };
    let solo: Vec<Vec<usize>> = trace.requests.iter().map(|r| engine.solo_run(r)).collect();

    let tech = Tech::cmos28();
    let opt = opt_config("OPT-1.3B");
    let spec = EngineSpec::paper(SimEngine::FiglutI, FpFormat::Fp16);
    let avg_bits = model.average_bits();
    let max_batch = sessions;
    // Contiguous resident KV uses the same per-row storage a block holds.
    let row_bytes = 2 * model.cfg.layers * model.cfg.d_model * std::mem::size_of::<f64>();

    let mut t = Table::new(
        format!(
            "Extension — paged KV, prefix sharing, preempt/restore \
             ({sessions} sessions x {prefix_len}-token shared prefix, \
             prefill-priority, max_batch {max_batch}, exec backend)"
        ),
        &[
            "kv layout",
            "pool",
            "peak KV KiB",
            "vs contig",
            "shared rows",
            "swaps o/i",
            "tok/ktick",
            "nJ/token",
        ],
    );

    let base = ServeConfig::new(max_batch, Policy::PrefillPriority);
    let contiguous = serve(&engine, &trace, &base);
    for r in &contiguous.requests {
        assert_eq!(
            r.generated, solo[r.id],
            "contiguous: request {} diverged from its solo run",
            r.id
        );
    }
    let contig_bytes = contiguous.peak_kv_rows * row_bytes;
    let contig_energy = contiguous.energy_per_token_pj(&tech, &spec, opt, avg_bits);
    t.row(vec![
        "contiguous".into(),
        "-".into(),
        f3(contig_bytes as f64 / 1024.0),
        ratio(1.0),
        "0".into(),
        "0/0".into(),
        f3(contiguous.tokens_per_kilotick()),
        f3(contig_energy / 1e3),
    ]);

    let min_cap = model.cfg.max_seq.div_ceil(8);
    for (bs, pool) in [(4usize, None), (8, None), (16, None), (8, Some(min_cap))] {
        let mut cfg = base.with_block_size(bs);
        cfg.pool_blocks = pool;
        let report = serve(&engine, &trace, &cfg);
        // The batch-invariance gate, now over memory layout: paging and
        // preemption may move bytes, never tokens.
        for r in &report.requests {
            assert_eq!(
                r.generated, solo[r.id],
                "bs {bs} pool {pool:?}: request {} diverged from its solo run",
                r.id
            );
        }
        // audit: allow(panic) — the run above was constructed with a paged KV config
        let stats = report.paging.expect("paged run must report paging stats");
        assert_eq!(stats.final_live_blocks, 0, "bs {bs}: leaked KV blocks");
        assert_eq!(stats.swaps_out, stats.swaps_in, "bs {bs}: swap asymmetry");
        let paged_bytes = stats.peak_live_blocks * stats.bytes_per_block;
        let frac = paged_bytes as f64 / contig_bytes as f64;
        let energy = report.energy_per_token_pj(&tech, &spec, opt, avg_bits);
        match pool {
            None => {
                // The issue's acceptance gates: the shared prefix halves
                // resident KV (and then some) at energy within 5%.
                assert!(
                    frac < 0.5,
                    "bs {bs}: resident KV {frac:.2}x of contiguous, expected < 0.5x"
                );
                assert!(
                    (energy - contig_energy).abs() <= 0.05 * contig_energy,
                    "bs {bs}: energy/token {energy} drifted from contiguous {contig_energy}"
                );
                assert_eq!(stats.swaps_out, 0, "bs {bs}: preempted without a pool cap");
            }
            Some(cap) => {
                assert!(stats.swaps_out > 0, "capped pool never preempted");
                assert!(
                    stats.peak_live_blocks <= cap,
                    "peak {} blocks over cap {cap}",
                    stats.peak_live_blocks
                );
            }
        }
        t.row(vec![
            format!("paged bs={bs}"),
            pool.map_or("inf".into(), |c| c.to_string()),
            f3(paged_bytes as f64 / 1024.0),
            ratio(frac),
            stats.shared_rows.to_string(),
            format!("{}/{}", stats.swaps_out, stats.swaps_in),
            f3(report.tokens_per_kilotick()),
            f3(energy / 1e3),
        ]);
    }
    t.note("tokens asserted bit-identical to solo batch-1 runs for every layout and");
    t.note("pool cap before any number is reported; unbounded paged rows additionally");
    t.note("asserted to hold resident KV < 0.5x contiguous at energy within 5%");
    t.note("peak KV: contiguous prices peak_kv_rows x one row's K+V bytes; paged");
    t.note("prices peak_live_blocks x bytes_per_block (same f64 host storage)");
    t.note("sharing is storage-only (adopters still compute all prefill rows), so the");
    t.note("unbounded step sequences match contiguous exactly and energy is equal;");
    t.note("the capped row swaps blocks to host and back (priced as non-GEMM DRAM");
    t.note("traffic in nJ/token) yet still emits the same tokens");
    vec![("ext_paged_kv".into(), t)]
}

fn ext_overload() -> Vec<(String, Table)> {
    // Extension: goodput vs raw throughput under overload, across the
    // scenario library. Each arrival scenario (steady Poisson, bursty
    // on-off, heavy-tailed lengths, flash crowd on a shared prefix) runs
    // at 1x, 3x, and 10x load — the load dial divides the mean
    // inter-arrival gaps only, so request *contents* are byte-identical
    // across loads and the solo batch-1 reference runs once per scenario.
    // Before any number is reported every session's token stream is
    // asserted bit-identical to its solo run and every stall is asserted
    // to respect the chunked-prefill bound; only then do we report how
    // goodput (tokens from sessions meeting the TTFT + stall SLO) falls
    // away from raw throughput as queueing delay blows TTFT past the SLO.
    use figlut_serve::{serve, BatchEngine, Policy, Scenario, ServeConfig, Slo};

    let teacher = Transformer::teacher(ModelConfig::scaled(2, 48, 4), 102);
    let (calib, _) = corpora(&teacher, 7);
    let (q, _) = quantize_model(&teacher, &calib, Method::ShiftAdd { bits: 3 });
    let model = to_packed(&q);
    let engine = BatchEngine::new(&model, Backend::Exec(EngineConfig::paper_default()));

    let requests = 12usize;
    let seed = 2025u64;
    let max_batch = 4usize;
    let chunk = 8usize;
    let cfg = ServeConfig::new(max_batch, Policy::PrefillPriority).with_prefill_chunk(chunk);
    let slo = Slo {
        ttft: 100,
        stall: 16,
    };

    let mut t = Table::new(
        format!(
            "Extension — goodput vs throughput under overload \
             ({requests}-request scenarios x 1x/3x/10x load, slo ttft {} \
             stall {}, prefill-priority, max_batch {max_batch}, chunk {chunk})",
            slo.ttft, slo.stall,
        ),
        &[
            "scenario",
            "load",
            "tok/ktick",
            "goodput",
            "met req",
            "mean TTFT",
            "p99 TTFT",
            "queue/prefill/sample",
            "p99 qwait",
            "p99 stall",
        ],
    );
    for sc in Scenario::ALL {
        let base = sc.trace(&model.cfg, requests, 1.0, seed);
        let solo: Vec<Vec<usize>> = base.requests.iter().map(|r| engine.solo_run(r)).collect();
        for load in [1.0, 3.0, 10.0] {
            let trace = sc.trace(&model.cfg, requests, load, seed);
            // The load dial moves arrivals only; pin that here so the solo
            // reference computed at 1x stays valid for every row.
            for (a, b) in trace.requests.iter().zip(&base.requests) {
                assert_eq!(
                    (a.id, &a.prompt, a.max_new, a.seed),
                    (b.id, &b.prompt, b.max_new, b.seed),
                    "{} load {load}: request contents moved with load",
                    sc.name()
                );
            }
            let report = serve(&engine, &trace, &cfg);
            // The batch-invariance gate: overload may delay tokens, never
            // change them.
            for r in &report.requests {
                assert_eq!(
                    r.generated,
                    solo[r.id],
                    "{} load {load}: request {} diverged from its solo run",
                    sc.name(),
                    r.id
                );
            }
            // PR 5's chunked-prefill latency guarantee holds at any load.
            let bound = cfg.step_overhead + (chunk + max_batch) as u64;
            assert!(
                report.max_inter_token_stall() <= bound,
                "{} load {load}: stall {} exceeds bound {bound}",
                sc.name(),
                report.max_inter_token_stall()
            );
            let dists = report.distributions();
            let good = report.goodput(&slo);
            // The headline claim, pinned: at 10x load every scenario has
            // sessions blowing the SLO, so goodput < raw throughput.
            if load >= 10.0 {
                assert!(
                    good.met_requests < report.requests.len(),
                    "{} load {load}: overload failed to push any session past the SLO",
                    sc.name()
                );
            }
            let n = report.requests.len() as f64;
            let (mut qsum, mut psum, mut ssum) = (0u64, 0u64, 0u64);
            for r in &report.requests {
                let sp = r.ttft_split();
                qsum += sp.queue;
                psum += sp.prefill;
                ssum += sp.sample;
            }
            t.row(vec![
                sc.name().into(),
                format!("{load}x"),
                f3(report.tokens_per_kilotick()),
                f3(good.tokens_per_kilotick),
                format!("{}/{}", good.met_requests, report.requests.len()),
                f3(report.mean_ttft()),
                dists.ttft.percentile(99.0).to_string(),
                format!(
                    "{:.1}/{:.1}/{:.1}",
                    qsum as f64 / n,
                    psum as f64 / n,
                    ssum as f64 / n
                ),
                dists.queue_wait.percentile(99.0).to_string(),
                dists.stall.percentile(99.0).to_string(),
            ]);
        }
    }
    t.note("tokens asserted bit-identical to solo batch-1 runs (request contents are");
    t.note("load-invariant, so one solo pass per scenario covers all three loads) and");
    t.note("stalls asserted <= step_overhead + chunk + max_batch before any rate is");
    t.note("reported; goodput counts only tokens from sessions meeting the SLO");
    t.note("(ttft <= slo.ttft and every inter-token stall <= slo.stall)");
    t.note("queue/prefill/sample: mean TTFT decomposition in ticks — time waiting for");
    t.note("admission, the session's own prefill rows, and step overheads plus");
    t.note("co-scheduled foreign rows between admission and the first token");
    t.note("under overload throughput holds (batching keeps the engine busy) while");
    t.note("goodput collapses: queueing delay, not compute, blows the TTFT budget");
    vec![("ext_overload".into(), t)]
}

fn ext_resilience() -> Vec<(String, Table)> {
    // Extension: admission control under a faulty flash crowd. The
    // flash-crowd scenario runs at 10x load — the overload regime where
    // `ext-overload` shows unbounded admission collapsing goodput — with a
    // deterministic fault plan active the whole time: transient step
    // failures, swap-in failures, checksummed KV corruption on restore
    // (detected and re-fetched from the clean host image), and
    // pool-exhaustion spikes that preempt the newest runner. Every
    // admission policy serves the identical trace under the identical
    // fault schedule; before any number is reported every *served*
    // session's token stream is asserted bit-identical to its solo
    // batch-1 run (faults and shedding may move ticks, never tokens) and
    // every shed request is asserted to be an honest zero-token
    // rejection. The headline gate: SLO-aware shedding beats unbounded
    // admission on goodput even while faults are being injected.
    use figlut_serve::{
        serve_with_hooks, AdmissionPolicy, BatchEngine, FaultPlan, FinishReason, Policy, Scenario,
        ServeConfig, ServeHooks, Slo,
    };

    // Restore corruption is only injectable where it can be detected, so
    // the per-block checksum pass stays on for this experiment (stamping
    // never changes tokens or any other experiment's tables).
    figlut_model::set_kv_checksums(true);
    let teacher = Transformer::teacher(ModelConfig::scaled(2, 48, 4), 102);
    let (calib, _) = corpora(&teacher, 7);
    let (q, _) = quantize_model(&teacher, &calib, Method::ShiftAdd { bits: 3 });
    let model = to_packed(&q);
    let engine = BatchEngine::new(&model, Backend::Exec(EngineConfig::paper_default()));

    let requests = 12usize;
    let seed = 2025u64;
    let load = 10.0;
    let max_batch = 4usize;
    let chunk = 8usize;
    // The pool cap sits just above one full-context session (the
    // `ext-paged-kv` pressure point), so the crowd preempts and restores
    // naturally — giving the swap-in and corruption faults traffic to hit.
    let min_cap = model.cfg.max_seq.div_ceil(8);
    let cfg = ServeConfig::new(max_batch, Policy::PrefillPriority)
        .with_prefill_chunk(chunk)
        .with_block_size(8)
        .with_pool_blocks(min_cap + 2);
    let slo = Slo {
        ttft: 100,
        stall: 16,
    };
    let trace = Scenario::FlashCrowd.trace(&model.cfg, requests, load, seed);
    let solo: Vec<Vec<usize>> = trace.requests.iter().map(|r| engine.solo_run(r)).collect();
    // One seeded plan, replayed identically for every admission policy.
    let plan = FaultPlan::new(7, 40)
        .with_step_failures(60)
        .with_swap_in_failures(250)
        .with_restore_corruption(250)
        .with_pool_spikes(120);

    let mut t = Table::new(
        format!(
            "Extension — admission control under a faulty flash crowd \
             ({requests} requests x {load}x load, fault budget {}, slo ttft {} \
             stall {}, prefill-priority, max_batch {max_batch}, chunk {chunk}, \
             paged bs=8)",
            plan.remaining_budget(),
            slo.ttft,
            slo.stall,
        ),
        &[
            "admission",
            "tok/ktick",
            "goodput",
            "met req",
            "shed",
            "retries s/w/c",
            "spikes",
            "mean TTFT",
            "p99 qwait",
        ],
    );
    let policies = [
        AdmissionPolicy::Unbounded,
        AdmissionPolicy::QueueCap { depth: 4 },
        AdmissionPolicy::TokenBudget { tokens: 64 },
        AdmissionPolicy::SloShed { ttft: slo.ttft },
    ];
    let mut goodput_of = Vec::new();
    for admission in policies {
        let report = serve_with_hooks(
            &engine,
            &trace,
            &cfg.with_admission(admission),
            ServeHooks {
                fault_plan: Some(plan.clone()),
                ..Default::default()
            },
        );
        // The resilience gate: every request accounted for, every served
        // stream bit-identical to its solo run despite the injected
        // faults, every shed an honest zero-token rejection.
        assert_eq!(report.requests.len(), trace.len(), "{admission:?}");
        let mut shed = 0usize;
        for r in &report.requests {
            if r.reason == FinishReason::Shed {
                shed += 1;
                assert_eq!(r.tokens, 0, "{admission:?}: shed request emitted");
            } else {
                assert_eq!(
                    r.generated, solo[r.id],
                    "{admission:?}: request {} diverged from its solo run under faults",
                    r.id
                );
            }
        }
        let res = &report.resilience;
        assert_eq!(res.shed_requests, shed, "{admission:?}");
        // The plan actually fired: this row demonstrates recovery, not a
        // fault-free run wearing a resilience label.
        assert!(
            res.step_retries + res.swap_in_retries + res.pool_spikes > 0,
            "{admission:?}: no fault fired — raise the rates or the budget"
        );
        if admission == AdmissionPolicy::Unbounded {
            assert_eq!(shed, 0, "unbounded admission must not shed");
            // The baseline row keeps every session in flight long enough
            // for the whole fault taxonomy to fire — the seeded plan is
            // deterministic, so this is a pin, not a hope.
            assert!(
                res.step_retries > 0
                    && res.swap_in_retries > 0
                    && res.checksum_faults > 0
                    && res.pool_spikes > 0,
                "unbounded row must exercise every fault class: {res:?}"
            );
        }
        // audit: allow(panic) — the run above was constructed with a paged KV config
        let stats = report.paging.as_ref().expect("paged run reports stats");
        assert_eq!(
            stats.final_live_blocks, 0,
            "{admission:?}: leaked KV blocks"
        );
        let good = report.goodput(&slo);
        goodput_of.push((admission, good.tokens_per_kilotick));
        let dists = report.distributions();
        t.row(vec![
            admission.name().into(),
            f3(report.tokens_per_kilotick()),
            f3(good.tokens_per_kilotick),
            format!("{}/{}", good.met_requests, report.requests.len()),
            shed.to_string(),
            format!(
                "{}/{}/{}",
                res.step_retries, res.swap_in_retries, res.checksum_faults
            ),
            res.pool_spikes.to_string(),
            f3(report.mean_ttft()),
            dists.queue_wait.percentile(99.0).to_string(),
        ]);
    }
    // The headline gate, pinned before the CSV is written: SLO-aware
    // shedding turns the overload collapse of `ext-overload`'s unbounded
    // baseline into goodput — under an active fault schedule.
    let unbounded = goodput_of[0].1;
    let slo_shed = goodput_of
        .iter()
        .find(|(a, _)| matches!(a, AdmissionPolicy::SloShed { .. }))
        // audit: allow(panic) — the shed policy row is pushed unconditionally above
        .expect("slo-shed row present")
        .1;
    assert!(
        slo_shed > unbounded,
        "slo-shed goodput {slo_shed} must beat unbounded {unbounded} at {load}x load"
    );
    t.note("all four rows replay the identical seeded fault plan on the identical");
    t.note("flash-crowd trace; served token streams asserted bit-identical to solo");
    t.note("batch-1 runs and shed requests asserted zero-token before any rate is");
    t.note("reported; the slo-shed row is asserted to beat the unbounded row on");
    t.note("goodput (ext-overload's 10x flash-crowd collapse, recovered by admission");
    t.note("control while faults are live)");
    t.note("retries s/w/c: transient step retries / swap-in retries / checksummed");
    t.note("corruption detections (each re-fetched from the clean host image)");
    vec![("ext_resilience".into(), t)]
}

/// `repro calibration` — the achieved values of every calibration target
/// from DESIGN.md §5, next to the paper's numbers.
fn calibration() -> Vec<(String, Table)> {
    let tech = Tech::cmos28();
    let mut t = Table::new(
        "Calibration — cost-model targets vs paper",
        &["quantity", "paper", "this model"],
    );
    let full = lut_power(&tech, LutKind::Fflut, 4, 16, 32);
    let half = lut_power(&tech, LutKind::Hfflut, 4, 16, 32);
    t.row(vec![
        "hFFLUT / FFLUT storage power".into(),
        "0.494".into(),
        f3(half.hold_pj_per_cycle / full.hold_pj_per_cycle),
    ]);
    t.row(vec![
        "optimal k (mu=4)".into(),
        "32".into(),
        optimal_k(&tech, 4, FpFormat::Fp16, 64).to_string(),
    ]);
    let o = GenSchedule::optimized(4, true).adds();
    let s = GenSchedule::straightforward(4, true).adds();
    t.row(vec![
        "generator adds mu=4 (opt/naive)".into(),
        "14 / 24 (42%)".into(),
        format!("{o} / {s} ({:.0}%)", 100.0 * (1.0 - o as f64 / s as f64)),
    ]);
    let wl = decode_workload(opt_config("OPT-6.7B"), 32);
    let tw = |e: SimEngine, q: f64| {
        evaluate(&tech, &EngineSpec::paper(e, FpFormat::Fp16), &wl, q).tops_per_w()
    };
    t.row(vec![
        "FIGLUT-I / FIGNA TOPS/W at Q4".into(),
        "1.2x (Fig. 17) – 1.4x (Table V)".into(),
        ratio(tw(SimEngine::FiglutI, 4.0) / tw(SimEngine::Figna, 4.0)),
    ]);
    t.row(vec![
        "FIGLUT-I / FIGNA TOPS/W at Q3".into(),
        "1.6x".into(),
        ratio(tw(SimEngine::FiglutI, 3.0) / tw(SimEngine::Figna, 3.0)),
    ]);
    t.row(vec![
        "FIGLUT-I(Q2.4) / FIGNA(Q3) TOPS/W".into(),
        "1.98x".into(),
        ratio(tw(SimEngine::FiglutI, 2.4) / tw(SimEngine::Figna, 3.0)),
    ]);
    t.row(vec![
        "FIGLUT-I(Q2) / FIGNA(Q2) TOPS/W".into(),
        "up to 2.4x".into(),
        ratio(tw(SimEngine::FiglutI, 2.0) / tw(SimEngine::Figna, 2.0)),
    ]);
    vec![("calibration".into(), t)]
}
