#![forbid(unsafe_code)]
//! # figlut-bench — reproduction harness for every table and figure
//!
//! The `repro` binary regenerates each experiment of the paper's evaluation
//! (see DESIGN.md §4 for the experiment index):
//!
//! ```text
//! cargo run -p figlut-bench --bin repro            # everything
//! cargo run -p figlut-bench --bin repro -- fig16   # one experiment
//! ```
//!
//! Each experiment prints an aligned text table and writes a CSV to
//! `results/`. Criterion benches in `benches/` cover the hot kernels
//! (LUT construction, RAC vs MAC, full engines). `repro analyze <trace>`
//! replays an exported `figlut-trace` file offline into distribution
//! tables ([`analyze`]).

pub mod analyze;
pub mod experiments;
pub mod fmt;

pub use analyze::analyze_trace;
pub use experiments::{run, UnknownExperiment, EXPERIMENTS};
