//! Offline trace analysis: replay an exported `figlut-trace` file into
//! distribution tables.
//!
//! The `repro analyze <trace>` subcommand reads either trace format the
//! sinks write — newline-delimited JSON (`.jsonl`) or Chrome trace-event
//! JSON — normalizes the events, and folds them into the same
//! deterministic [`Hist`] histograms the live report uses (DESIGN.md §9):
//! per-kind span statistics, a merged step-duration distribution, the
//! per-session admission timeline, and a per-run queue-depth/occupancy
//! breakdown. Because the histograms have fixed bucket boundaries, an
//! offline analysis of an exported trace reports the same quantiles as
//! the run that produced it — the trace file is a faithful, replayable
//! record, not a lossy log.
//!
//! Malformed input is a hard error (the CLI exits nonzero): every parse
//! failure names the first offending line or event.

use figlut_trace::fmt::{f3, Table};
use figlut_trace::json::Json;
use figlut_trace::Hist;
use std::collections::BTreeMap;

/// One normalized trace event, format-independent.
#[derive(Clone, Debug, PartialEq)]
enum Ev {
    Span {
        name: String,
        run: u64,
        ts: u64,
        dur: u64,
        args: Vec<(String, u64)>,
    },
    Instant {
        name: String,
        run: u64,
        ts: u64,
        args: Vec<(String, u64)>,
    },
    Counter {
        name: String,
        run: u64,
        ts: u64,
        value: u64,
    },
}

impl Ev {
    fn run(&self) -> u64 {
        match self {
            Ev::Span { run, .. } | Ev::Instant { run, .. } | Ev::Counter { run, .. } => *run,
        }
    }
}

fn field<'a>(obj: &'a Json, key: &str, what: &str) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("{what}: missing \"{key}\""))
}

fn num(obj: &Json, key: &str, what: &str) -> Result<u64, String> {
    let v = field(obj, key, what)?
        .as_num()
        .ok_or_else(|| format!("{what}: \"{key}\" is not a number"))?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!(
            "{what}: \"{key}\" = {v} is not a non-negative integer"
        ));
    }
    Ok(v as u64)
}

fn string(obj: &Json, key: &str, what: &str) -> Result<String, String> {
    Ok(field(obj, key, what)?
        .as_str()
        .ok_or_else(|| format!("{what}: \"{key}\" is not a string"))?
        .to_string())
}

fn args_of(obj: &Json, what: &str) -> Result<Vec<(String, u64)>, String> {
    match obj.get("args") {
        None => Ok(Vec::new()),
        Some(Json::Obj(fields)) => fields
            .iter()
            .map(|(k, v)| {
                let n = v
                    .as_num()
                    .ok_or_else(|| format!("{what}: arg \"{k}\" is not a number"))?;
                Ok((k.clone(), n as u64))
            })
            .collect(),
        Some(_) => Err(format!("{what}: \"args\" is not an object")),
    }
}

fn arg(args: &[(String, u64)], key: &str) -> Option<u64> {
    args.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
}

/// Parse one JSONL line (a self-describing object with a `type` field).
fn parse_jsonl_event(obj: &Json, what: &str) -> Result<Ev, String> {
    let ty = string(obj, "type", what)?;
    let name = string(obj, "name", what)?;
    let run = num(obj, "run", what)?;
    let ts = num(obj, "ts", what)?;
    match ty.as_str() {
        "span" => Ok(Ev::Span {
            name,
            run,
            ts,
            dur: num(obj, "dur", what)?,
            args: args_of(obj, what)?,
        }),
        "instant" => Ok(Ev::Instant {
            name,
            run,
            ts,
            args: args_of(obj, what)?,
        }),
        "counter" => Ok(Ev::Counter {
            name,
            run,
            ts,
            value: num(obj, "value", what)?,
        }),
        other => Err(format!("{what}: unknown event type \"{other}\"")),
    }
}

/// Parse one Chrome trace event (`ph` X/i/C; `tid` is run + 1).
fn parse_chrome_event(obj: &Json, what: &str) -> Result<Ev, String> {
    let ph = string(obj, "ph", what)?;
    let name = string(obj, "name", what)?;
    let tid = num(obj, "tid", what)?;
    if tid == 0 {
        return Err(format!("{what}: \"tid\" must be >= 1 (it encodes run + 1)"));
    }
    let run = tid - 1;
    let ts = num(obj, "ts", what)?;
    match ph.as_str() {
        "X" => Ok(Ev::Span {
            name,
            run,
            ts,
            dur: num(obj, "dur", what)?,
            args: args_of(obj, what)?,
        }),
        "i" => Ok(Ev::Instant {
            name,
            run,
            ts,
            args: args_of(obj, what)?,
        }),
        "C" => {
            let args = args_of(obj, what)?;
            let value =
                arg(&args, "value").ok_or_else(|| format!("{what}: counter without args.value"))?;
            Ok(Ev::Counter {
                name,
                run,
                ts,
                value,
            })
        }
        other => Err(format!("{what}: unknown phase \"{other}\"")),
    }
}

/// Normalize a trace file of either format into event order.
fn parse_events(text: &str) -> Result<Vec<Ev>, String> {
    let head = text.trim_start();
    if head.is_empty() {
        return Err("empty trace file".into());
    }
    // The Chrome sink always opens with the `traceEvents` envelope; the
    // JSONL sink writes one bare event object per line.
    if head.starts_with("{\"traceEvents\"") {
        let doc = Json::parse(text).map_err(|e| format!("Chrome trace: {e}"))?;
        let events = field(&doc, "traceEvents", "Chrome trace")?
            .as_arr()
            .ok_or_else(|| "Chrome trace: \"traceEvents\" is not an array".to_string())?;
        events
            .iter()
            .enumerate()
            .map(|(i, e)| parse_chrome_event(e, &format!("event {i}")))
            .collect()
    } else {
        text.lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty())
            .map(|(i, l)| {
                let what = format!("line {}", i + 1);
                let obj = Json::parse(l).map_err(|e| format!("{what}: {e}"))?;
                parse_jsonl_event(&obj, &what)
            })
            .collect()
    }
}

/// Per-run aggregation for the breakdown table.
#[derive(Default)]
struct RunStats {
    steps: u64,
    ticks: u64,
    by_kind: [u64; 3], // prefill / decode / mixed, by span name
    other_spans: u64,
    prefill_rows: u64,
    decode_rows: u64,
    swapped_rows: u64,
    batch_ticks: u64, // Σ batch × dur, for the mean resident batch
    queue_samples: Vec<(u64, u64)>,
}

/// Time-weighted mean of a step-function counter: each sample holds until
/// the next sample's timestamp (the final sample carries no weight, so a
/// single-sample track reports its value directly).
fn time_weighted_mean(samples: &[(u64, u64)]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    if samples.len() == 1 {
        return samples[0].1 as f64;
    }
    let (mut weighted, mut span) = (0u64, 0u64);
    for w in samples.windows(2) {
        let dt = w[1].0 - w[0].0;
        weighted += w[0].1 * dt;
        span += dt;
    }
    if span == 0 {
        samples.iter().map(|&(_, v)| v as f64).sum::<f64>() / samples.len() as f64
    } else {
        weighted as f64 / span as f64
    }
}

/// Replay a trace file (either sink format) into analysis tables:
/// per-kind span statistics, the merged step-duration histogram, the
/// admission timeline, and a per-run queue/occupancy breakdown.
///
/// # Errors
///
/// Returns a message naming the first malformed line or event; an empty
/// or event-less trace is an error too (the CLI maps all of these to a
/// nonzero exit).
pub fn analyze_trace(text: &str) -> Result<Vec<Table>, String> {
    let events = parse_events(text)?;
    if events.is_empty() {
        return Err("trace contains no events".into());
    }
    if !events.iter().any(|e| matches!(e, Ev::Span { .. })) {
        return Err("trace contains no spans".into());
    }

    // Per-kind span-duration histograms (deterministic, mergeable).
    let mut by_name: BTreeMap<String, Hist> = BTreeMap::new();
    let mut runs: BTreeMap<u64, RunStats> = BTreeMap::new();
    for e in &events {
        let stats = runs.entry(e.run()).or_default();
        match e {
            Ev::Span {
                name, dur, args, ..
            } => {
                by_name.entry(name.clone()).or_default().record(*dur);
                stats.steps += 1;
                stats.ticks += dur;
                match name.as_str() {
                    "Prefill" => stats.by_kind[0] += 1,
                    "Decode" => stats.by_kind[1] += 1,
                    "Mixed" => stats.by_kind[2] += 1,
                    _ => stats.other_spans += 1,
                }
                stats.prefill_rows += arg(args, "prefill_rows").unwrap_or(0);
                stats.decode_rows += arg(args, "decode_rows").unwrap_or(0);
                stats.swapped_rows += arg(args, "swapped_rows").unwrap_or(0);
                stats.batch_ticks += arg(args, "batch").unwrap_or(0) * dur;
            }
            Ev::Counter {
                name, ts, value, ..
            } if name == "queue_depth" => {
                stats.queue_samples.push((*ts, *value));
            }
            _ => {}
        }
    }

    // Table 1: per-kind span statistics, quantiles from the histograms.
    let mut spans = Table::new(
        "span kinds",
        &["kind", "count", "ticks", "mean", "p50", "p99", "max"],
    );
    let mut merged = Hist::new();
    for (name, h) in &by_name {
        merged.merge(h);
        spans.row(vec![
            name.clone(),
            h.count().to_string(),
            (h.mean() * h.count() as f64).round().to_string(),
            f3(h.mean()),
            h.quantile(50.0).to_string(),
            h.quantile(99.0).to_string(),
            h.max().to_string(),
        ]);
    }
    spans.note("durations in virtual ticks; quantiles from log-bucketed histograms (≤3.2% high)");

    // Table 2: the merged step-duration distribution, bucket by bucket.
    let mut dist = Table::new("step duration distribution", &["ticks", "steps"]);
    for (lo, hi, count) in merged.nonzero_buckets() {
        let label = if hi - lo == 1 {
            lo.to_string()
        } else {
            format!("{lo}..{}", hi - 1)
        };
        dist.row(vec![label, count.to_string()]);
    }
    dist.note(format!(
        "{} steps across {} runs; fixed log-linear buckets, so offline merges reproduce live quantiles exactly",
        merged.count(),
        runs.len()
    ));

    // Table 3: per-session admission timeline.
    let mut timeline = Table::new(
        "session timeline",
        &["run", "tick", "request", "queue after admit"],
    );
    for e in &events {
        if let Ev::Instant {
            name,
            run,
            ts,
            args,
        } = e
        {
            if name == "admit" {
                timeline.row(vec![
                    run.to_string(),
                    ts.to_string(),
                    arg(args, "id").map_or("?".into(), |v| v.to_string()),
                    arg(args, "queue").map_or("?".into(), |v| v.to_string()),
                ]);
            }
        }
    }
    if timeline.rows.is_empty() {
        timeline.note("no admit instants in this trace");
    }

    // Table 4: per-run queue-depth / occupancy breakdown.
    let mut breakdown = Table::new(
        "run breakdown",
        &[
            "run",
            "steps",
            "ticks",
            "P/D/M",
            "prefill rows",
            "decode rows",
            "swapped rows",
            "mean batch",
            "queue mean",
            "queue peak",
        ],
    );
    for (run, s) in &runs {
        let mean_batch = if s.ticks == 0 {
            0.0
        } else {
            s.batch_ticks as f64 / s.ticks as f64
        };
        let peak = s.queue_samples.iter().map(|&(_, v)| v).max().unwrap_or(0);
        breakdown.row(vec![
            run.to_string(),
            s.steps.to_string(),
            s.ticks.to_string(),
            format!("{}/{}/{}", s.by_kind[0], s.by_kind[1], s.by_kind[2]),
            s.prefill_rows.to_string(),
            s.decode_rows.to_string(),
            s.swapped_rows.to_string(),
            f3(mean_batch),
            f3(time_weighted_mean(&s.queue_samples)),
            peak.to_string(),
        ]);
    }
    breakdown.note(
        "mean batch is Σ(batch×dur)/Σdur over spans; queue mean is time-weighted over queue_depth samples",
    );

    Ok(vec![spans, dist, timeline, breakdown])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jsonl_fixture() -> String {
        [
            r#"{"type":"instant","name":"admit","run":0,"ts":0,"args":{"id":0,"queue":0}}"#,
            r#"{"type":"span","name":"Prefill","run":0,"ts":0,"dur":7,"args":{"queue":0,"batch":1,"prefill_rows":6,"decode_rows":0,"swapped_rows":0}}"#,
            r#"{"type":"counter","name":"queue_depth","run":0,"ts":7,"value":1}"#,
            r#"{"type":"span","name":"Decode","run":0,"ts":7,"dur":2,"args":{"queue":1,"batch":1,"prefill_rows":0,"decode_rows":1,"swapped_rows":0}}"#,
            r#"{"type":"counter","name":"queue_depth","run":0,"ts":9,"value":0}"#,
        ]
        .join("\n")
    }

    #[test]
    fn jsonl_round_trips_into_tables() {
        let tables = analyze_trace(&jsonl_fixture()).unwrap();
        assert_eq!(tables.len(), 4);
        let spans = &tables[0];
        assert_eq!(spans.title, "span kinds");
        assert_eq!(spans.rows.len(), 2, "Prefill and Decode rows");
        let rendered: String = tables.iter().map(|t| t.render()).collect();
        assert!(rendered.contains("Prefill"));
        assert!(rendered.contains("session timeline"));
        assert!(rendered.contains("run breakdown"));
    }

    #[test]
    fn chrome_and_jsonl_agree() {
        let chrome = concat!(
            "{\"traceEvents\":[\n",
            "{\"name\":\"admit\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":1,\"ts\":0,\"args\":{\"id\":0,\"queue\":0}},\n",
            "{\"name\":\"Prefill\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":7,\"args\":{\"queue\":0,\"batch\":1,\"prefill_rows\":6,\"decode_rows\":0,\"swapped_rows\":0}},\n",
            "{\"name\":\"queue_depth\",\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":7,\"args\":{\"value\":1}},\n",
            "{\"name\":\"Decode\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":7,\"dur\":2,\"args\":{\"queue\":1,\"batch\":1,\"prefill_rows\":0,\"decode_rows\":1,\"swapped_rows\":0}},\n",
            "{\"name\":\"queue_depth\",\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":9,\"args\":{\"value\":0}}\n",
            "]}\n"
        );
        let a = analyze_trace(chrome).unwrap();
        let b = analyze_trace(&jsonl_fixture()).unwrap();
        let render = |ts: &[Table]| ts.iter().map(|t| t.render()).collect::<String>();
        assert_eq!(render(&a), render(&b), "formats must analyze identically");
    }

    #[test]
    fn malformed_input_is_rejected_with_location() {
        let cases: [(&str, &str); 6] = [
            ("", "empty"),
            ("not json", "line 1"),
            (r#"{"type":"span","name":"x","run":0,"ts":0}"#, "dur"),
            (
                r#"{"type":"wat","name":"x","run":0,"ts":0}"#,
                "unknown event type",
            ),
            (
                "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"Z\",\"tid\":1,\"ts\":0}]}",
                "phase",
            ),
            (
                r#"{"type":"counter","name":"q","run":0,"ts":-3,"value":1}"#,
                "non-negative",
            ),
        ];
        for (text, needle) in cases {
            let err = analyze_trace(text).unwrap_err();
            assert!(
                err.contains(needle),
                "error {err:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn counter_only_trace_is_an_error() {
        let err =
            analyze_trace(r#"{"type":"counter","name":"q","run":0,"ts":0,"value":1}"#).unwrap_err();
        assert!(err.contains("no spans"), "{err}");
    }

    #[test]
    fn time_weighted_mean_holds_samples_until_the_next() {
        assert_eq!(time_weighted_mean(&[]), 0.0);
        assert_eq!(time_weighted_mean(&[(5, 3)]), 3.0);
        // depth 2 for 10 ticks, then 0 for 10 → mean 1.
        assert_eq!(time_weighted_mean(&[(0, 2), (10, 0), (20, 0)]), 1.0);
    }
}
