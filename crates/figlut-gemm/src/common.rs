//! Shared engine configuration and helpers.

use figlut_num::align::AlignMode;
use figlut_num::fp::FpFormat;
use figlut_num::Mat;
use figlut_quant::{BcqWeight, UniformWeight};

/// A quantized weight operand, by format.
///
/// Mirrors the paper's Table I split: GPUs/FPE/FIGNA consume INT (uniform)
/// weights, iFPU/FIGLUT consume BCQ bit-planes. Uniform models run on BCQ
/// hardware losslessly via [`BcqWeight::from_uniform`].
#[derive(Clone, Copy, Debug)]
pub enum Weights<'a> {
    /// Uniformly quantized INT weights.
    Uniform(&'a UniformWeight),
    /// Binary-coding-quantized weights.
    Bcq(&'a BcqWeight),
}

impl Weights<'_> {
    /// `(rows, cols)` of the represented matrix.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            Weights::Uniform(u) => u.shape(),
            Weights::Bcq(b) => b.shape(),
        }
    }

    /// Weight precision in bits (bit-planes for BCQ).
    pub fn bits(&self) -> u32 {
        match self {
            Weights::Uniform(u) => u.bits(),
            Weights::Bcq(b) => b.bits(),
        }
    }

    /// Dequantize to `f64`.
    pub fn dequantize(&self) -> Mat<f64> {
        match self {
            Weights::Uniform(u) => u.dequantize(),
            Weights::Bcq(b) => b.dequantize(),
        }
    }
}

/// Datapath configuration shared by all engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Activation format delivered by the input buffer (paper sweeps FP16 /
    /// BF16 / FP32).
    pub act: FpFormat,
    /// LUT group size µ for the FIGLUT engines (the paper settles on 4).
    pub mu: u32,
    /// Extra mantissa bits kept through pre-alignment (integer engines).
    /// The paper's engines keep the format's own precision (`0`); a few
    /// guard bits model FIGNA's "numerical accuracy preserving" headroom.
    pub guard_bits: u32,
    /// Disposal of bits shifted out during pre-alignment.
    pub align: AlignMode,
}

impl EngineConfig {
    /// The paper's default operating point: FP16 activations, µ = 4,
    /// RNE alignment with FIGNA-style guard headroom.
    pub fn paper_default() -> Self {
        Self {
            act: FpFormat::Fp16,
            mu: 4,
            guard_bits: 4,
            align: AlignMode::RoundNearestEven,
        }
    }

    /// Same defaults with a different activation format.
    pub fn with_act(act: FpFormat) -> Self {
        Self {
            act,
            ..Self::paper_default()
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Round every activation to the configured format (what the input SRAM
/// delivers to the MPU).
pub(crate) fn round_activations(x: &Mat<f64>, fmt: FpFormat) -> Mat<f64> {
    x.map(|&v| fmt.quantize(v))
}

/// Round to FP32 (the accumulator precision all engines share).
///
/// Uses the host FPU's `f64 → f32` conversion: `figlut-num`'s property
/// suite (`prop_softfloat.rs`) proves the bit-accurate `Sf<8, 23>`
/// round-trip equals the native cast on arbitrary bit patterns including
/// subnormals, so this is the same rounding at a fraction of the cost —
/// it is on the per-partial fold path of every engine and of
/// `figlut-exec`'s kernels.
#[inline]
pub(crate) fn fp32(v: f64) -> f64 {
    v as f32 as f64
}

/// FP32-rounded `a + b` — the accumulator addition every engine shares.
/// Public so fast software backends (`figlut-exec`) can replicate the exact
/// rounding sequence of the datapath models.
#[inline]
pub fn add32(a: f64, b: f64) -> f64 {
    fp32(a + b)
}

/// FP32-rounded `a × b` (see [`add32`]).
#[inline]
pub fn mul32(a: f64, b: f64) -> f64 {
    fp32(a * b)
}

/// Validate `x (B×n)` against `w` of `m × n`, returning `(batch, m, n)`.
///
/// # Panics
///
/// Panics on mismatch.
pub(crate) fn check_shapes(x: &Mat<f64>, w_shape: (usize, usize)) -> (usize, usize, usize) {
    let (batch, n) = x.shape();
    let (m, wn) = w_shape;
    assert_eq!(
        n, wn,
        "activation width {n} does not match weight reduction dim {wn}"
    );
    (batch, m, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use figlut_quant::uniform::{rtn, RtnParams};

    #[test]
    fn weights_enum_delegates() {
        let w = Mat::from_fn(3, 8, |r, c| (r as f64 - c as f64) * 0.1);
        let u = rtn(&w, RtnParams::per_row(4));
        let b = BcqWeight::from_uniform(&u);
        let wu = Weights::Uniform(&u);
        let wb = Weights::Bcq(&b);
        assert_eq!(wu.shape(), (3, 8));
        assert_eq!(wb.shape(), (3, 8));
        assert_eq!(wu.bits(), 4);
        assert_eq!(wb.bits(), 4);
        assert!(wu.dequantize().max_abs_diff(&wb.dequantize()) < 1e-12);
    }

    #[test]
    fn config_defaults_match_paper() {
        let cfg = EngineConfig::paper_default();
        assert_eq!(cfg.mu, 4);
        assert_eq!(cfg.act, FpFormat::Fp16);
    }

    #[test]
    fn fp32_rounding_is_idempotent() {
        let v = 0.1f64;
        assert_eq!(fp32(fp32(v)), fp32(v));
        assert_eq!(fp32(0.5), 0.5);
    }
}
