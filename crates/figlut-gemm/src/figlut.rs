//! FIGLUT: the LUT-based FP-INT GEMM engine (this paper).
//!
//! Per activation group of µ inputs, a half-size LUT (hFFLUT) holds every
//! signed combination; each output row's RAC then *reads* its µ-bit weight
//! pattern instead of multiplying — `O(mnkq/µ)` table reads replace
//! `O(mnkq)` arithmetic operations (Table I).
//!
//! Two datapaths, as evaluated in the paper:
//!
//! * [`gemm_f`] — **FIGLUT-F**: LUT entries are floating point (built by
//!   the generator's FP adder tree), RACs accumulate in FP32.
//! * [`gemm_i`] — **FIGLUT-I**: activations are pre-aligned first; LUT
//!   entries and RAC accumulators are integers, scaled back once per plane.
//!   Bit-identical to iFPU (integer addition is associative — the LUT only
//!   regroups it), which this crate's tests assert.
//!
//! The offset term `z·Σx` needed for uniform-via-BCQ execution reuses the
//! same machinery: reading the all-ones key of every window yields `Σx`
//! for free — no extra adder tree.

use crate::common::{add32, check_shapes, mul32, round_activations, EngineConfig};
use crate::ifpu::fold_partial;
use figlut_lut::key::Key;
use figlut_lut::table::{HalfLut, LutRead};
use figlut_num::align::AlignedVector;
use figlut_num::Mat;
use figlut_quant::BcqWeight;

/// Column windows of one scale group: `(start column, width ≤ µ)`.
fn windows(c0: usize, gs: usize, mu: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..gs.div_ceil(mu)).map(move |wi| {
        let start = c0 + wi * mu;
        let width = mu.min(c0 + gs - start);
        (start, width)
    })
}

/// FIGLUT-F GEMM: FP LUTs + FP32 read-accumulate.
///
/// # Panics
///
/// Panics on shape mismatch or `µ ∉ 1..=8`.
#[allow(clippy::needless_range_loop)] // g indexes groups, luts and column offsets together
pub fn gemm_f(x: &Mat<f64>, w: &BcqWeight, cfg: &EngineConfig) -> Mat<f64> {
    assert!((1..=8).contains(&cfg.mu), "µ = {} unsupported", cfg.mu);
    let (batch, m, _n) = check_shapes(x, w.shape());
    let xa = round_activations(x, cfg.act);
    let q = w.bits() as usize;
    let gs = w.group_size();
    let groups = w.groups();
    let mu = cfg.mu as usize;
    let mut y = Mat::zeros(batch, m);
    for b in 0..batch {
        let xrow = xa.row(b);
        // LUT generation phase: one hFFLUT per window, built with
        // FP32-rounded adds in the generator tree's order.
        let luts: Vec<Vec<HalfLut<f64>>> = (0..groups)
            .map(|g| {
                windows(g * gs, gs, mu)
                    .map(|(start, width)| HalfLut::build(&xrow[start..start + width], add32))
                    .collect()
            })
            .collect();
        // Query phase: every output row re-reads the shared LUTs.
        for r in 0..m {
            let mut acc = 0.0;
            for g in 0..groups {
                let c0 = g * gs;
                for i in 0..q {
                    let plane = w.plane(i);
                    let mut psum = 0.0;
                    for ((start, width), lut) in windows(c0, gs, mu).zip(&luts[g]) {
                        let key = Key::new(plane.key(r, start, width), width as u32);
                        psum = add32(psum, lut.read(key));
                    }
                    acc = add32(acc, mul32(w.alpha(i, r, c0), psum));
                }
                if w.has_offset() {
                    let mut psum = 0.0;
                    for ((_, width), lut) in windows(c0, gs, mu).zip(&luts[g]) {
                        let ones = Key::new(((1u32 << width) - 1) as u16, width as u32);
                        psum = add32(psum, lut.read(ones));
                    }
                    acc = add32(acc, mul32(w.offset(r, c0), psum));
                }
            }
            y[(b, r)] = acc;
        }
    }
    y
}

/// FIGLUT-I GEMM: pre-aligned integer LUTs + integer read-accumulate.
///
/// # Panics
///
/// Panics on shape mismatch or `µ ∉ 1..=8`.
#[allow(clippy::needless_range_loop)] // g indexes groups, luts and column offsets together
pub fn gemm_i(x: &Mat<f64>, w: &BcqWeight, cfg: &EngineConfig) -> Mat<f64> {
    assert!((1..=8).contains(&cfg.mu), "µ = {} unsupported", cfg.mu);
    let (batch, m, _n) = check_shapes(x, w.shape());
    let xa = round_activations(x, cfg.act);
    let q = w.bits() as usize;
    let gs = w.group_size();
    let groups = w.groups();
    let mu = cfg.mu as usize;
    let mut y = Mat::zeros(batch, m);
    for b in 0..batch {
        let aligned = AlignedVector::align(xa.row(b), cfg.act, cfg.guard_bits, cfg.align);
        let lambda = aligned.scale();
        let mant = aligned.mantissas();
        // Integer hFFLUTs (exact adds).
        let luts: Vec<Vec<HalfLut<i64>>> = (0..groups)
            .map(|g| {
                windows(g * gs, gs, mu)
                    .map(|(start, width)| {
                        HalfLut::build(&mant[start..start + width], |a, c| {
                            a.checked_add(c).expect("LUT entry overflow")
                        })
                    })
                    .collect()
            })
            .collect();
        for r in 0..m {
            let mut acc = 0.0;
            for g in 0..groups {
                let c0 = g * gs;
                for i in 0..q {
                    let plane = w.plane(i);
                    let mut p: i128 = 0;
                    for ((start, width), lut) in windows(c0, gs, mu).zip(&luts[g]) {
                        let key = Key::new(plane.key(r, start, width), width as u32);
                        p += lut.read(key) as i128;
                    }
                    acc = fold_partial(acc, w.alpha(i, r, c0), p, lambda);
                }
                if w.has_offset() {
                    let mut p: i128 = 0;
                    for ((_, width), lut) in windows(c0, gs, mu).zip(&luts[g]) {
                        let ones = Key::new(((1u32 << width) - 1) as u16, width as u32);
                        p += lut.read(ones) as i128;
                    }
                    acc = fold_partial(acc, w.offset(r, c0), p, lambda);
                }
            }
            y[(b, r)] = acc;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Weights;
    use crate::{ifpu, reference};
    use figlut_quant::bcq::BcqParams;
    use figlut_quant::uniform::{rtn, RtnParams};

    fn setup(m: usize, n: usize, bits: u32) -> (Mat<f64>, BcqWeight) {
        let w = Mat::from_fn(m, n, |r, c| ((r * n + c) as f64 * 0.201).sin() * 0.5);
        let b = BcqWeight::quantize(&w, BcqParams::per_row(bits));
        let x = Mat::from_fn(3, n, |bb, c| ((bb * n + c) as f64 * 0.063).cos());
        (x, b)
    }

    #[test]
    fn figlut_f_close_to_reference() {
        let (x, b) = setup(6, 64, 3);
        let cfg = EngineConfig::paper_default();
        let y = gemm_f(&x, &b, &cfg);
        let oracle = reference::gemm(&x, &Weights::Bcq(&b), &cfg);
        for bb in 0..3 {
            for r in 0..6 {
                let denom = oracle[(bb, r)].abs().max(1.0);
                assert!(
                    ((y[(bb, r)] - oracle[(bb, r)]) / denom).abs() < 1e-4,
                    "({bb},{r}): {} vs {}",
                    y[(bb, r)],
                    oracle[(bb, r)]
                );
            }
        }
    }

    #[test]
    fn figlut_i_bit_identical_to_ifpu() {
        // The LUT only reassociates integer addition, so FIGLUT-I and iFPU
        // must agree to the last bit.
        for (m, n, bits) in [(4, 32, 2), (6, 48, 3), (3, 64, 4)] {
            let (x, b) = setup(m, n, bits);
            let cfg = EngineConfig::paper_default();
            let yl = gemm_i(&x, &b, &cfg);
            let yi = ifpu::gemm(&x, &b, &cfg);
            assert_eq!(
                yl.as_slice(),
                yi.as_slice(),
                "m={m} n={n} q={bits}: FIGLUT-I diverged from iFPU"
            );
        }
    }

    #[test]
    fn figlut_i_bit_identical_to_ifpu_all_mu() {
        let (x, b) = setup(4, 40, 3);
        for mu in 1..=8u32 {
            let cfg = EngineConfig {
                mu,
                ..EngineConfig::paper_default()
            };
            let yl = gemm_i(&x, &b, &cfg);
            let yi = ifpu::gemm(&x, &b, &cfg);
            assert_eq!(yl.as_slice(), yi.as_slice(), "µ={mu}");
        }
    }

    #[test]
    fn uniform_model_runs_losslessly_via_bcq() {
        // RTN-quantized (uniform) model executed on the BCQ engine through
        // the exact Eq. 3 conversion: agrees with the FP reference on the
        // same dequantized weights.
        let w = Mat::from_fn(5, 32, |r, c| ((r * 32 + c) as f64 * 0.157).sin());
        let u = rtn(&w, RtnParams::per_row(4));
        let b = BcqWeight::from_uniform(&u);
        let x = Mat::from_fn(2, 32, |bb, c| ((bb + c) as f64 * 0.091).cos());
        let cfg = EngineConfig::paper_default();
        let y = gemm_f(&x, &b, &cfg);
        let oracle = reference::gemm(&x, &Weights::Uniform(&u), &cfg);
        for bb in 0..2 {
            for r in 0..5 {
                let denom = oracle[(bb, r)].abs().max(1.0);
                assert!(((y[(bb, r)] - oracle[(bb, r)]) / denom).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn ragged_group_width_handled() {
        // n = 30 with µ = 4: last window of each group is narrower.
        let w = Mat::from_fn(3, 30, |r, c| ((r * 30 + c) as f64 * 0.113).sin());
        let b = BcqWeight::quantize(&w, BcqParams::per_row(3));
        let x = Mat::from_fn(1, 30, |_, c| (c as f64 * 0.21).cos());
        let cfg = EngineConfig::paper_default();
        let yf = gemm_f(&x, &b, &cfg);
        let yi = gemm_i(&x, &b, &cfg);
        let oracle = reference::gemm(&x, &Weights::Bcq(&b), &cfg);
        assert!(yf.max_abs_diff(&oracle) < 1e-2);
        assert!(yi.max_abs_diff(&oracle) < 1e-2);
    }

    #[test]
    fn figlut_f_matches_fpe_closely() {
        // Same FP32 accumulation, different association order: results are
        // equal to within a few accumulation ulps.
        let w = Mat::from_fn(4, 64, |r, c| ((r * 64 + c) as f64 * 0.171).sin());
        let u = rtn(&w, RtnParams::per_row(4));
        let b = BcqWeight::from_uniform(&u);
        let x = Mat::from_fn(2, 64, |bb, c| ((bb + 7 * c) as f64 * 0.033).cos());
        let cfg = EngineConfig::paper_default();
        let yl = gemm_f(&x, &b, &cfg);
        let yp = crate::fpe::gemm(&x, &u, &cfg);
        for bb in 0..2 {
            for r in 0..4 {
                let denom = yp[(bb, r)].abs().max(1.0);
                assert!(
                    ((yl[(bb, r)] - yp[(bb, r)]) / denom).abs() < 1e-4,
                    "({bb},{r}): {} vs {}",
                    yl[(bb, r)],
                    yp[(bb, r)]
                );
            }
        }
    }

    #[test]
    fn mu_one_degenerates_to_bit_serial() {
        let (x, b) = setup(3, 16, 2);
        let cfg = EngineConfig {
            mu: 1,
            ..EngineConfig::paper_default()
        };
        let y = gemm_f(&x, &b, &cfg);
        let oracle = reference::gemm(&x, &Weights::Bcq(&b), &cfg);
        assert!(y.max_abs_diff(&oracle) < 1e-2);
    }
}
