//! FPE: the dequantize-then-FP-MAC baseline engine.
//!
//! The paper's baseline (§IV-B "configuration setup"): each PE dequantizes
//! the INT weight back to the activation's FP format, multiplies two
//! FP values, and accumulates in FP32. This is what a GPU effectively does
//! for weight-only-quantized models — all the arithmetic is still floating
//! point, so weight quantization saves bandwidth but no compute energy.
//!
//! Datapath rounding points modeled here, per output element:
//! 1. weight dequantized and rounded to the activation format,
//! 2. FP×FP product rounded directly into FP32 (a fused format-widening
//!    multiplier, as DesignWare provides),
//! 3. FP32 accumulation, one rounded add per reduction step.

use crate::common::{add32, check_shapes, mul32, round_activations, EngineConfig};
use figlut_num::Mat;
use figlut_quant::UniformWeight;

/// FPE GEMM: `y = x·Wᵀ` with dequantization + FP MAC.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn gemm(x: &Mat<f64>, w: &UniformWeight, cfg: &EngineConfig) -> Mat<f64> {
    let (batch, m, n) = check_shapes(x, w.shape());
    let xa = round_activations(x, cfg.act);
    // Dequantize once: value rounded to the activation format (the
    // INT→FP converter output register).
    let wd = Mat::from_fn(m, n, |r, c| cfg.act.quantize(w.value(r, c)));
    Mat::from_fn(batch, m, |b, r| {
        let xrow = xa.row(b);
        let wrow = wd.row(r);
        let mut acc = 0.0;
        for c in 0..n {
            acc = add32(acc, mul32(xrow[c], wrow[c]));
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Weights;
    use crate::reference;
    use figlut_num::fp::FpFormat;
    use figlut_quant::uniform::{rtn, RtnParams};

    fn setup(m: usize, n: usize, bits: u32) -> (Mat<f64>, UniformWeight) {
        let w = Mat::from_fn(m, n, |r, c| ((r * n + c) as f64 * 0.193).sin() * 0.5);
        let u = rtn(&w, RtnParams::per_row(bits));
        let x = Mat::from_fn(3, n, |b, c| ((b * n + c) as f64 * 0.071).cos());
        (x, u)
    }

    #[test]
    fn close_to_reference() {
        let (x, u) = setup(6, 64, 4);
        let cfg = EngineConfig::paper_default();
        let y = gemm(&x, &u, &cfg);
        let oracle = reference::gemm(&x, &Weights::Uniform(&u), &cfg);
        // fp16 weight-rounding + fp32 accumulation over n=64: relative
        // error well below 1e-2.
        for b in 0..x.rows() {
            for r in 0..u.shape().0 {
                let denom = oracle[(b, r)].abs().max(1.0);
                assert!(
                    ((y[(b, r)] - oracle[(b, r)]) / denom).abs() < 1e-2,
                    "({b},{r}): {} vs {}",
                    y[(b, r)],
                    oracle[(b, r)]
                );
            }
        }
    }

    #[test]
    fn fp32_activations_are_near_exact() {
        let (x, u) = setup(4, 32, 8);
        let cfg = EngineConfig::with_act(FpFormat::Fp32);
        let y = gemm(&x, &u, &cfg);
        let oracle = reference::gemm(&x, &Weights::Uniform(&u), &cfg);
        assert!(y.max_abs_diff(&oracle) < 1e-4);
    }

    #[test]
    fn deterministic() {
        let (x, u) = setup(4, 32, 4);
        let cfg = EngineConfig::paper_default();
        assert_eq!(gemm(&x, &u, &cfg).as_slice(), gemm(&x, &u, &cfg).as_slice());
    }
}
