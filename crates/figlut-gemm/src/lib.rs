#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # figlut-gemm — bit-accurate models of the five FP-INT GEMM engines
//!
//! The paper's hardware evaluation compares five engines on identical
//! workloads (§IV-B). This crate models each engine's *datapath* —
//! rounding point by rounding point — so numerical claims (Table IV) can be
//! checked, while `figlut-sim` prices the same datapaths in energy/area.
//!
//! | Engine | Module | Weights | Inner operation |
//! |---|---|---|---|
//! | GPU-like reference |  [`mod@reference`] | any | dequantize, exact f64 dot |
//! | FPE (baseline) | [`fpe`] | uniform | dequantize to FP, FP mul + FP32 add |
//! | iFPU (ICLR'23) | [`ifpu`] | BCQ | pre-align, INT add/sub per bit-plane |
//! | FIGNA (HPCA'24) | [`figna`] | uniform | pre-align, INT×INT mul + INT acc |
//! | FIGLUT-F (this paper) | [`figlut`] | BCQ | FP LUT read + FP32 accumulate |
//! | FIGLUT-I (this paper) | [`figlut`] | BCQ | pre-align, INT LUT read + INT acc |
//!
//! All engines take activations as a `B × n` [`Mat<f64>`] (rounded to the
//! configured activation format on entry, exactly as a memory interface
//! would deliver them), weights as `m × n` quantized containers from
//! `figlut-quant`, and produce the `B × m` output of `y = x·Wᵀ` with FP32
//! accumulation — the paper's accuracy-preserving configuration.
//!
//! The numerical relationships the paper relies on, enforced in this
//! crate's tests:
//!
//! * FIGLUT-I ≡ iFPU **bit-exactly** (same pre-alignment, same integer
//!   sums — the LUT only reassociates integer addition).
//! * FIGLUT-F ≈ FPE ≈ reference (FP32 accumulation differs only in
//!   association order).
//! * FIGNA ≈ iFPU on uniform weights (same integers, different scaling
//!   algebra).

pub mod common;
pub mod figlut;
pub mod figna;
pub mod fpe;
pub mod ifpu;
pub mod reference;

pub use common::{EngineConfig, Weights};

use figlut_num::Mat;

/// Engine selector for harness code that sweeps all engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Exact-arithmetic oracle (the "GPU" row of Table IV).
    Reference,
    /// Dequantize-then-FP-MAC baseline.
    Fpe,
    /// Bit-serial pre-aligned adder engine.
    Ifpu,
    /// Pre-aligned integer MAC engine.
    Figna,
    /// LUT-based engine, FP datapath.
    FiglutF,
    /// LUT-based engine, pre-aligned integer datapath.
    FiglutI,
}

impl Engine {
    /// All engines in the paper's plotting order.
    pub const ALL: [Engine; 6] = [
        Engine::Reference,
        Engine::Fpe,
        Engine::Ifpu,
        Engine::Figna,
        Engine::FiglutF,
        Engine::FiglutI,
    ];

    /// Human-readable name.
    pub const fn name(self) -> &'static str {
        match self {
            Engine::Reference => "GPU-ref",
            Engine::Fpe => "FPE",
            Engine::Ifpu => "iFPU",
            Engine::Figna => "FIGNA",
            Engine::FiglutF => "FIGLUT-F",
            Engine::FiglutI => "FIGLUT-I",
        }
    }

    /// `true` if the engine consumes BCQ bit-planes (Table I "BCQ support").
    pub const fn supports_bcq(self) -> bool {
        matches!(
            self,
            Engine::Reference | Engine::Ifpu | Engine::FiglutF | Engine::FiglutI
        )
    }

    /// `true` if the engine consumes uniform INT weights.
    pub const fn supports_uniform(self) -> bool {
        matches!(self, Engine::Reference | Engine::Fpe | Engine::Figna)
    }

    /// Run the engine on `x (B×n)` against `w (m×n)`, producing `B×m`.
    ///
    /// # Panics
    ///
    /// Panics if the engine does not support the weight container's format
    /// (mirroring Table I: e.g. FIGNA has no BCQ support) or on shape
    /// mismatch.
    pub fn run(self, x: &Mat<f64>, w: &Weights<'_>, cfg: &EngineConfig) -> Mat<f64> {
        match (self, w) {
            (Engine::Reference, w) => reference::gemm(x, w, cfg),
            (Engine::Fpe, Weights::Uniform(u)) => fpe::gemm(x, u, cfg),
            (Engine::Ifpu, Weights::Bcq(b)) => ifpu::gemm(x, b, cfg),
            (Engine::Figna, Weights::Uniform(u)) => figna::gemm(x, u, cfg),
            (Engine::FiglutF, Weights::Bcq(b)) => figlut::gemm_f(x, b, cfg),
            (Engine::FiglutI, Weights::Bcq(b)) => figlut::gemm_i(x, b, cfg),
            (e, Weights::Uniform(_)) => {
                panic!(
                    "{} does not support uniform INT weights; convert with BcqWeight::from_uniform",
                    e.name()
                )
            }
            (e, Weights::Bcq(_)) => {
                panic!(
                    "{} does not support BCQ weights (see paper Table I)",
                    e.name()
                )
            }
        }
    }
}

impl core::fmt::Display for Engine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}
