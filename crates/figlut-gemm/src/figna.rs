//! FIGNA: the pre-aligned integer MAC engine (HPCA'24).
//!
//! FIGNA removes iFPU's bit-serial overhead by multiplying the aligned
//! integer mantissa directly with the multi-bit INT weight code — one
//! INT×INT MAC per weight instead of q add/sub passes. The cost is
//! inflexibility: the multiplier width is fixed at design time, so sub-4-bit
//! models run padded to 4 bits and BCQ formats are unsupported (Table I).
//!
//! With the affine grid `w = s·v + base` (codes `v ∈ [0, 2^q)`), a group's
//! contribution is `s·(Σ m_c·v_c)·λ + base·(Σ m_c)·λ`; both integer sums
//! accumulate exactly, then two FP32-rounded scaling steps each.

use crate::common::{add32, check_shapes, mul32, round_activations, EngineConfig};
use figlut_num::align::AlignedVector;
use figlut_num::Mat;
use figlut_quant::UniformWeight;

/// FIGNA GEMM: `y = x·Wᵀ` over uniform INT weights.
///
/// # Panics
///
/// Panics on shape mismatch.
#[allow(clippy::needless_range_loop)] // g indexes gsum and column offsets together
pub fn gemm(x: &Mat<f64>, w: &UniformWeight, cfg: &EngineConfig) -> Mat<f64> {
    let (batch, m, _n) = check_shapes(x, w.shape());
    let xa = round_activations(x, cfg.act);
    let gs = w.group_size();
    let groups = w.groups();
    let mut y = Mat::zeros(batch, m);
    for b in 0..batch {
        let aligned = AlignedVector::align(xa.row(b), cfg.act, cfg.guard_bits, cfg.align);
        let lambda = aligned.scale();
        let mant = aligned.mantissas();
        let gsum: Vec<i128> = (0..groups)
            .map(|g| mant[g * gs..(g + 1) * gs].iter().map(|&v| v as i128).sum())
            .collect();
        for r in 0..m {
            let mut acc = 0.0;
            for g in 0..groups {
                let c0 = g * gs;
                // INT×INT multiply-accumulate over the group.
                let mut iacc: i128 = 0;
                for (j, &mv) in mant[c0..c0 + gs].iter().enumerate() {
                    iacc += mv as i128 * w.code(r, c0 + j) as i128;
                }
                let real = mul32(iacc as f64, lambda);
                acc = add32(acc, mul32(w.scale(r, c0), real));
                let sum_real = mul32(gsum[g] as f64, lambda);
                acc = add32(acc, mul32(w.base(r, c0), sum_real));
            }
            y[(b, r)] = acc;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Weights;
    use crate::{ifpu, reference};
    use figlut_quant::bcq::BcqWeight;
    use figlut_quant::uniform::{rtn, RtnParams};

    fn setup(m: usize, n: usize, bits: u32) -> (Mat<f64>, UniformWeight) {
        let w = Mat::from_fn(m, n, |r, c| ((r * n + c) as f64 * 0.177).sin() * 0.6);
        let u = rtn(&w, RtnParams::per_row(bits));
        let x = Mat::from_fn(2, n, |b, c| ((b * n + c) as f64 * 0.049).cos());
        (x, u)
    }

    #[test]
    fn close_to_reference() {
        let (x, u) = setup(5, 64, 4);
        let cfg = EngineConfig::paper_default();
        let y = gemm(&x, &u, &cfg);
        let oracle = reference::gemm(&x, &Weights::Uniform(&u), &cfg);
        for b in 0..2 {
            for r in 0..5 {
                let denom = oracle[(b, r)].abs().max(1.0);
                assert!(
                    ((y[(b, r)] - oracle[(b, r)]) / denom).abs() < 1e-2,
                    "({b},{r})"
                );
            }
        }
    }

    #[test]
    fn agrees_with_ifpu_on_uniform_weights() {
        // Same pre-alignment, same integers; only the scaling algebra
        // differs (per-plane α vs single s), so results agree tightly.
        let (x, u) = setup(6, 32, 4);
        let bq = BcqWeight::from_uniform(&u);
        let cfg = EngineConfig::paper_default();
        let yf = gemm(&x, &u, &cfg);
        let yi = ifpu::gemm(&x, &bq, &cfg);
        for b in 0..2 {
            for r in 0..6 {
                let denom = yf[(b, r)].abs().max(1.0);
                assert!(
                    ((yf[(b, r)] - yi[(b, r)]) / denom).abs() < 1e-5,
                    "({b},{r}): FIGNA {} vs iFPU {}",
                    yf[(b, r)],
                    yi[(b, r)]
                );
            }
        }
    }

    #[test]
    fn grouped_grid() {
        let w = Mat::from_fn(3, 24, |r, c| ((r * 24 + c) as f64 * 0.271).sin());
        let u = rtn(&w, RtnParams::grouped(4, 8));
        let x = Mat::from_fn(1, 24, |_, c| (c as f64 * 0.13).cos());
        let cfg = EngineConfig::paper_default();
        let y = gemm(&x, &u, &cfg);
        let oracle = reference::gemm(&x, &Weights::Uniform(&u), &cfg);
        assert!(y.max_abs_diff(&oracle) < 0.05);
    }
}
