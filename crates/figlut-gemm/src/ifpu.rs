//! iFPU: the bit-serial pre-aligned adder engine (ICLR'23).
//!
//! iFPU aligns activation mantissas to the vector-maximum exponent, after
//! which the inner product against one binary weight plane is a chain of
//! integer additions/subtractions. Each bit-plane costs a full pass, so a
//! q-bit model takes q passes — the `O(mnkq)` complexity row of Table I.
//!
//! Per (batch, output row):
//! 1. pre-align the activation row (shared with FIGNA / FIGLUT-I),
//! 2. for each scale group and each plane `i`: integer sum `Σ_c ±m_c`,
//! 3. scale by `αᵢ` (two FP32-rounded multiplies: mantissa-to-real, then
//!    α), accumulate in FP32,
//! 4. offset term: `z · Σ_c x_c`, same scaling path.

use crate::common::{add32, check_shapes, mul32, round_activations, EngineConfig};
use figlut_num::align::AlignedVector;
use figlut_num::Mat;
use figlut_quant::BcqWeight;

/// Fold one integer plane partial `p` into the FP32 accumulator:
/// `acc + α·(p·λ)` with every operation FP32-rounded. Shared verbatim with
/// FIGLUT-I so the two engines are bit-identical (they produce the same
/// integer `p` by associativity of integer addition). Public so the packed
/// execution backend (`figlut-exec`) can reproduce the exact rounding
/// sequence and stay bit-identical to [`crate::figlut::gemm_i`].
#[inline]
pub fn fold_partial(acc: f64, alpha: f64, p: i128, lambda: f64) -> f64 {
    let real = mul32(p as f64, lambda);
    add32(acc, mul32(alpha, real))
}

/// iFPU GEMM: `y = x·Wᵀ` over BCQ weights.
///
/// # Panics
///
/// Panics on shape mismatch.
#[allow(clippy::needless_range_loop)] // g indexes gsum and column offsets together
pub fn gemm(x: &Mat<f64>, w: &BcqWeight, cfg: &EngineConfig) -> Mat<f64> {
    let (batch, m, _n) = check_shapes(x, w.shape());
    let xa = round_activations(x, cfg.act);
    let q = w.bits() as usize;
    let gs = w.group_size();
    let groups = w.groups();
    let mut y = Mat::zeros(batch, m);
    for b in 0..batch {
        let aligned = AlignedVector::align(xa.row(b), cfg.act, cfg.guard_bits, cfg.align);
        let lambda = aligned.scale();
        let mant = aligned.mantissas();
        // Group-wise mantissa sums for the offset term (computed once per
        // batch row, reused by every output row).
        let gsum: Vec<i128> = (0..groups)
            .map(|g| mant[g * gs..(g + 1) * gs].iter().map(|&v| v as i128).sum())
            .collect();
        for r in 0..m {
            let mut acc = 0.0;
            for g in 0..groups {
                let c0 = g * gs;
                for i in 0..q {
                    let plane = w.plane(i);
                    let mut p: i128 = 0;
                    for (j, &mv) in mant[c0..c0 + gs].iter().enumerate() {
                        let mv = mv as i128;
                        if plane.get(r, c0 + j) {
                            p += mv;
                        } else {
                            p -= mv;
                        }
                    }
                    acc = fold_partial(acc, w.alpha(i, r, c0), p, lambda);
                }
                if w.has_offset() {
                    acc = fold_partial(acc, w.offset(r, c0), gsum[g], lambda);
                }
            }
            y[(b, r)] = acc;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Weights;
    use crate::reference;
    use figlut_quant::bcq::BcqParams;
    use figlut_quant::uniform::{rtn, RtnParams};

    fn setup(m: usize, n: usize, bits: u32) -> (Mat<f64>, BcqWeight) {
        let w = Mat::from_fn(m, n, |r, c| ((r * n + c) as f64 * 0.219).sin() * 0.4);
        let b = BcqWeight::quantize(&w, BcqParams::per_row(bits));
        let x = Mat::from_fn(2, n, |bb, c| ((bb * n + c) as f64 * 0.057).cos());
        (x, b)
    }

    #[test]
    fn close_to_reference() {
        let (x, b) = setup(5, 48, 3);
        let cfg = EngineConfig::paper_default();
        let y = gemm(&x, &b, &cfg);
        let oracle = reference::gemm(&x, &Weights::Bcq(&b), &cfg);
        for bb in 0..x.rows() {
            for r in 0..5 {
                let denom = oracle[(bb, r)].abs().max(1.0);
                assert!(
                    ((y[(bb, r)] - oracle[(bb, r)]) / denom).abs() < 1e-2,
                    "({bb},{r}): {} vs {}",
                    y[(bb, r)],
                    oracle[(bb, r)]
                );
            }
        }
    }

    #[test]
    fn exact_on_uniform_grid_weights() {
        // Weights exactly on a 4-bit unit-step grid (every row spans the
        // full 0..15 code range, so the RTN scale is exactly 1.0) and
        // power-of-two-ish inputs: every datapath value is dyadic with few
        // significant bits, so iFPU equals the oracle exactly.
        let w = Mat::from_fn(3, 16, |r, c| ((r + c) % 16) as f64 - 7.5);
        let u = rtn(&w, RtnParams::per_row(4));
        let b = BcqWeight::from_uniform(&u);
        let x = Mat::from_fn(1, 16, |_, c| ((c % 8) as f64 + 1.0) * 0.25);
        let cfg = EngineConfig::paper_default();
        let y = gemm(&x, &b, &cfg);
        let oracle = reference::gemm(&x, &Weights::Bcq(&b), &cfg);
        assert!(
            y.max_abs_diff(&oracle) < 1e-9,
            "{}",
            y.max_abs_diff(&oracle)
        );
    }

    #[test]
    fn handles_grouped_scales() {
        let w = Mat::from_fn(4, 32, |r, c| ((r * 32 + c) as f64 * 0.143).sin());
        let bq = BcqWeight::quantize(&w, BcqParams::grouped(3, 8));
        let x = Mat::from_fn(2, 32, |b, c| ((b + c) as f64 * 0.081).cos());
        let cfg = EngineConfig::paper_default();
        let y = gemm(&x, &bq, &cfg);
        let oracle = reference::gemm(&x, &Weights::Bcq(&bq), &cfg);
        assert!(y.max_abs_diff(&oracle) < 0.05 * oracle.frob_norm().max(1.0));
    }
}
