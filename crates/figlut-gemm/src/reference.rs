//! Exact-arithmetic reference engine (the oracle).
//!
//! Rounds activations to the configured format (that much any engine sees),
//! dequantizes weights to `f64`, and computes the GEMM exactly in `f64`.
//! Every hardware engine's output is compared against this; Table IV's
//! "GPU" row plays the same role in the paper.

use crate::common::{check_shapes, round_activations, EngineConfig, Weights};
use figlut_num::Mat;

/// `y (B×m) = x (B×n) · Wᵀ (n×m)` in exact `f64` arithmetic.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn gemm(x: &Mat<f64>, w: &Weights<'_>, cfg: &EngineConfig) -> Mat<f64> {
    let (batch, m, n) = check_shapes(x, w.shape());
    let xa = round_activations(x, cfg.act);
    let wd = w.dequantize();
    Mat::from_fn(batch, m, |b, r| {
        let xrow = xa.row(b);
        let wrow = wd.row(r);
        let mut acc = 0.0;
        for c in 0..n {
            acc += xrow[c] * wrow[c];
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use figlut_quant::uniform::{rtn, RtnParams};

    #[test]
    fn matches_mat_matmul() {
        let w = Mat::from_fn(4, 8, |r, c| ((r * 8 + c) as f64 * 0.17).sin());
        let u = rtn(&w, RtnParams::per_row(8));
        let x = Mat::from_fn(2, 8, |b, c| ((b + c) as f64 * 0.31).cos());
        let cfg = EngineConfig {
            act: figlut_num::fp::FpFormat::Fp32,
            ..EngineConfig::paper_default()
        };
        let y = gemm(&x, &Weights::Uniform(&u), &cfg);
        let xa = x.map(|&v| cfg.act.quantize(v));
        let oracle = xa.matmul(&u.dequantize().transposed());
        assert!(y.max_abs_diff(&oracle) < 1e-12);
    }
}
