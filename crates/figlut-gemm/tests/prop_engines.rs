//! Cross-engine property tests: every hardware datapath must track the
//! exact-arithmetic reference on arbitrary inputs, and the paper's
//! equivalence structure (FIGLUT-I ≡ iFPU) must hold bit-for-bit.

use figlut_gemm::{Engine, EngineConfig, Weights};
use figlut_num::fp::FpFormat;
use figlut_num::Mat;
use figlut_quant::bcq::{BcqParams, BcqWeight};
use figlut_quant::uniform::{rtn, RtnParams};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Problem {
    x: Mat<f64>,
    w: Mat<f64>,
    bits: u32,
}

fn problem() -> impl Strategy<Value = Problem> {
    (1usize..=4, 1usize..=6, 1usize..=48, 1u32..=4).prop_flat_map(|(batch, m, n, bits)| {
        (
            prop::collection::vec(-4.0f64..4.0, batch * n),
            prop::collection::vec(-1.0f64..1.0, m * n),
        )
            .prop_map(move |(xv, wv)| Problem {
                x: Mat::from_vec(batch, n, xv),
                w: Mat::from_vec(m, n, wv),
                bits,
            })
    })
}

fn assert_close(got: &Mat<f64>, want: &Mat<f64>, scale_rows: &Mat<f64>, tol: f64, tag: &str) {
    for b in 0..got.rows() {
        for r in 0..got.cols() {
            // Scale-aware tolerance: |x|·|w| row magnitudes.
            let denom = scale_rows[(b, r)].max(1e-6);
            let err = (got[(b, r)] - want[(b, r)]).abs() / denom;
            assert!(
                err < tol,
                "{tag} ({b},{r}): got {} want {} rel {err}",
                got[(b, r)],
                want[(b, r)]
            );
        }
    }
}

/// Row-magnitude scale: Σ|x_c|·max|w| per (batch, row) — the natural error
/// scale of a dot product.
fn magnitude(x: &Mat<f64>, wd: &Mat<f64>) -> Mat<f64> {
    Mat::from_fn(x.rows(), wd.rows(), |b, r| {
        let xs: f64 = x.row(b).iter().map(|v| v.abs()).sum();
        let wmax = wd.row(r).iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        xs * wmax
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bcq_engines_track_reference(p in problem()) {
        let bq = BcqWeight::quantize(&p.w, BcqParams::per_row(p.bits));
        let cfg = EngineConfig::paper_default();
        let wref = Weights::Bcq(&bq);
        let oracle = Engine::Reference.run(&p.x, &wref, &cfg);
        let mag = magnitude(&p.x, &bq.dequantize());
        for e in [Engine::Ifpu, Engine::FiglutF, Engine::FiglutI] {
            let y = e.run(&p.x, &wref, &cfg);
            // fp16 activations: alignment + fp32 accumulation error stays
            // within ~2⁻¹⁰ of the dot-product magnitude.
            assert_close(&y, &oracle, &mag, 2e-3, e.name());
        }
    }

    #[test]
    fn uniform_engines_track_reference(p in problem()) {
        let u = rtn(&p.w, RtnParams::per_row(p.bits));
        let cfg = EngineConfig::paper_default();
        let wref = Weights::Uniform(&u);
        let oracle = Engine::Reference.run(&p.x, &wref, &cfg);
        let mag = magnitude(&p.x, &u.dequantize());
        for e in [Engine::Fpe, Engine::Figna] {
            let y = e.run(&p.x, &wref, &cfg);
            assert_close(&y, &oracle, &mag, 2e-3, e.name());
        }
    }

    #[test]
    fn figlut_i_equals_ifpu_bitexact(p in problem(), mu in 1u32..=8) {
        let bq = BcqWeight::quantize(&p.w, BcqParams::per_row(p.bits));
        let cfg = EngineConfig { mu, ..EngineConfig::paper_default() };
        let wref = Weights::Bcq(&bq);
        let yl = Engine::FiglutI.run(&p.x, &wref, &cfg);
        let yi = Engine::Ifpu.run(&p.x, &wref, &cfg);
        prop_assert_eq!(yl.as_slice(), yi.as_slice());
    }

    #[test]
    fn uniform_via_bcq_is_value_preserving(p in problem()) {
        // Running a uniform model on BCQ hardware (Eq. 3 conversion) gives
        // the same results as running it natively, up to FP32 accumulation
        // association.
        let u = rtn(&p.w, RtnParams::per_row(p.bits));
        let bq = BcqWeight::from_uniform(&u);
        let cfg = EngineConfig::with_act(FpFormat::Fp32);
        let y_native = Engine::Fpe.run(&p.x, &Weights::Uniform(&u), &cfg);
        let y_bcq = Engine::FiglutF.run(&p.x, &Weights::Bcq(&bq), &cfg);
        let mag = magnitude(&p.x, &u.dequantize());
        assert_close(&y_bcq, &y_native, &mag, 1e-5, "uniform-via-bcq");
    }

    #[test]
    fn engines_are_deterministic(p in problem()) {
        // Same inputs → same bits, across repeated runs (no hidden state).
        let bq = BcqWeight::quantize(&p.w, BcqParams::per_row(p.bits));
        let wref = Weights::Bcq(&bq);
        let cfg = EngineConfig::with_act(FpFormat::Fp16);
        for e in [Engine::Ifpu, Engine::FiglutF, Engine::FiglutI] {
            let a = e.run(&p.x, &wref, &cfg);
            let b = e.run(&p.x, &wref, &cfg);
            prop_assert_eq!(a.as_slice(), b.as_slice(), "{}", e.name());
        }
    }
}

#[test]
#[should_panic(expected = "does not support BCQ")]
fn figna_rejects_bcq() {
    let w = Mat::from_fn(2, 8, |r, c| (r + c) as f64 * 0.1);
    let bq = BcqWeight::quantize(&w, BcqParams::per_row(2));
    let x = Mat::from_fn(1, 8, |_, c| c as f64);
    let _ = Engine::Figna.run(&x, &Weights::Bcq(&bq), &EngineConfig::paper_default());
}

#[test]
#[should_panic(expected = "does not support uniform")]
fn ifpu_rejects_uniform() {
    let w = Mat::from_fn(2, 8, |r, c| (r + c) as f64 * 0.1);
    let u = rtn(&w, RtnParams::per_row(2));
    let x = Mat::from_fn(1, 8, |_, c| c as f64);
    let _ = Engine::Ifpu.run(&x, &Weights::Uniform(&u), &EngineConfig::paper_default());
}
