//! On-chip buffers and off-chip traffic (paper §III-F, Fig. 12).
//!
//! FIGLUT's system keeps tile data in double-buffered SRAM, streams weights
//! from shared DRAM once per GEMM (weight-stationary), and re-streams
//! activations per output-row tile. This module sizes the buffers (for
//! area) and counts the traffic (for energy and for the DRAM-bound cycle
//! floor).

use crate::mpu::{geometry, EngineSpec, SimEngine};
use crate::tech::Tech;

/// Total on-chip SRAM bits of a build: double-buffered input and weight
/// tiles, a partial-sum buffer, and the unified activation/output buffer.
pub fn buffer_bits(spec: &EngineSpec) -> usize {
    let g = geometry(spec);
    let act_bits = spec.act.storage_bits() as usize;
    // The paper's evaluation batch.
    let batch = 32;
    // Input tile: Tn activations × batch, double buffered.
    let input = 2 * g.tn * batch * act_bits;
    // Weight tile: Tm × Tn at up to 8-bit codes (fixed engines) or 4
    // bit-planes in flight (bit-serial), double buffered.
    let wt_bits_per_weight = match spec.engine {
        SimEngine::Fpe | SimEngine::Figna => spec.designed_bits.max(8) as usize,
        _ => 4,
    };
    let weight = 2 * g.tm * g.tn * wt_bits_per_weight;
    // Partial sums: Tm × batch × FP32.
    let psum = g.tm * batch * 32;
    // Unified buffer (activations + outputs), fixed 128 KiB as in Fig. 12.
    let unified = 128 * 1024 * 8;
    input + weight + psum + unified
}

/// Off-chip and on-chip traffic of one GEMM `(m × n weights, batch B)` at
/// average weight precision `q_storage` bits (what is actually stored;
/// fixed engines pad sub-designed precisions to their designed width).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Traffic {
    /// DRAM bits moved (weights + activations + outputs + scales).
    pub dram_bits: f64,
    /// SRAM read bits.
    pub sram_read_bits: f64,
    /// SRAM write bits.
    pub sram_write_bits: f64,
}

impl Traffic {
    /// Energy of this traffic (pJ).
    pub fn energy_pj(&self, tech: &Tech) -> f64 {
        self.dram_bits * tech.dram_pj_per_bit
            + self.sram_read_bits * tech.sram_read_pj_per_bit
            + self.sram_write_bits * tech.sram_write_pj_per_bit
    }
}

/// Count the traffic of one GEMM on a build.
///
/// `q_storage`: bits per weight in memory. `q_stream`: bit-plane passes the
/// inner loop makes (bit-serial engines re-stream activations per plane;
/// fixed engines make one pass).
pub fn gemm_traffic(
    spec: &EngineSpec,
    m: usize,
    n: usize,
    batch: usize,
    q_storage: f64,
    q_stream: f64,
) -> Traffic {
    let g = geometry(spec);
    let act_bits = spec.act.storage_bits() as f64;
    let (m_f, n_f, b_f) = (m as f64, n as f64, batch as f64);
    let m_tiles = (m as f64 / g.tm as f64).ceil();
    // Scale/offset metadata: one 16-bit α per plane per row (per-row
    // grouping) plus a 16-bit offset.
    let meta_bits = m_f * 16.0 * (q_storage + 1.0);
    // DRAM: weights once, activations once, outputs once.
    let dram_bits = m_f * n_f * q_storage + meta_bits + b_f * n_f * act_bits + b_f * m_f * act_bits;
    // SRAM: weights written then read once; activations written once and
    // re-read per m-tile and per bit-plane pass; psums spilled per n-tile.
    let n_tiles = (n as f64 / g.tn as f64).ceil();
    let act_reads = b_f * n_f * act_bits * m_tiles * q_stream;
    let psum_traffic = b_f * m_f * 32.0 * (n_tiles - 1.0).max(0.0);
    let sram_read_bits = m_f * n_f * q_storage + act_reads + psum_traffic;
    let sram_write_bits = m_f * n_f * q_storage + b_f * n_f * act_bits + psum_traffic;
    Traffic {
        dram_bits,
        sram_read_bits,
        sram_write_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use figlut_num::fp::FpFormat;

    fn spec(e: SimEngine) -> EngineSpec {
        EngineSpec::paper(e, FpFormat::Fp16)
    }

    #[test]
    fn weights_dominate_dram_for_llm_shapes() {
        // GEMV-like LLM shapes (m = n = 4096, B = 32): weight traffic must
        // dominate — the memory-bound premise of the whole paper.
        let t = gemm_traffic(&spec(SimEngine::FiglutI), 4096, 4096, 32, 4.0, 4.0);
        let weight_bits = 4096.0 * 4096.0 * 4.0;
        assert!(t.dram_bits < weight_bits * 1.1, "{}", t.dram_bits);
        assert!(t.dram_bits > weight_bits);
    }

    #[test]
    fn lower_precision_cuts_dram_traffic() {
        let s = spec(SimEngine::FiglutI);
        let t4 = gemm_traffic(&s, 4096, 4096, 32, 4.0, 4.0);
        let t2 = gemm_traffic(&s, 4096, 4096, 32, 2.0, 2.0);
        assert!(t2.dram_bits < t4.dram_bits * 0.6);
    }

    #[test]
    fn bit_serial_restreams_activations() {
        let s = spec(SimEngine::Ifpu);
        let t8 = gemm_traffic(&s, 1024, 1024, 8, 8.0, 8.0);
        let t4 = gemm_traffic(&s, 1024, 1024, 8, 4.0, 4.0);
        assert!(t8.sram_read_bits > t4.sram_read_bits);
    }

    #[test]
    fn buffer_sizes_are_reasonable() {
        for e in SimEngine::ALL {
            let bits = buffer_bits(&spec(e));
            // Between 128 KiB (unified floor) and 2 MiB.
            assert!(bits >= 128 * 1024 * 8, "{}", e.name());
            assert!(bits < 2 * 1024 * 1024 * 8, "{}", e.name());
        }
    }

    #[test]
    fn traffic_energy_is_dram_dominated() {
        let tech = Tech::cmos28();
        let t = gemm_traffic(&spec(SimEngine::FiglutI), 2048, 2048, 32, 4.0, 4.0);
        let dram = t.dram_bits * tech.dram_pj_per_bit;
        assert!(dram > 0.5 * t.energy_pj(&tech));
    }
}
