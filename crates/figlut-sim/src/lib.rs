#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # figlut-sim — energy / area / cycle simulator for the FIGLUT evaluation
//!
//! The paper's hardware results come from 28 nm synthesis + P&R and CACTI.
//! This crate substitutes a parametric cost model (see DESIGN.md §2 for the
//! substitution argument) with the same structure the paper evaluates:
//!
//! * [`tech`] — the 28 nm-class component library (every pJ/µm² constant,
//!   documented and centralized).
//! * [`lutcost`] — RFLUT / FFLUT / hFFLUT structures, the fan-out model,
//!   and PE power: paper Figs. 6–9, Table III.
//! * [`mpu`] — array geometries (64×64, 64×64×4, 2×16×4·k) and area
//!   breakdowns: paper Fig. 14.
//! * [`dataflow`] — weight-stationary tiling with bit-plane-inner ordering:
//!   paper Fig. 5; cycle counts.
//! * [`memory`] — buffer sizing and SRAM/DRAM traffic: paper Fig. 12.
//! * [`engine`] — whole-engine evaluation to TOPS / TOPS/W / TOPS/mm²:
//!   paper Figs. 13, 15, 16, 17 and Table V.
//! * [`gpu`] — the A100/H100/LUT-GEMM rows of Table V (measured constants
//!   + roofline cross-check).
//! * [`complexity`] — Table I feature/complexity rows.
//! * [`cyclesim`] — a cycle-level PE simulation that validates the analytic
//!   cycle model and reproduces the functional engine bit-exactly.
//!
//! ## Quick example
//!
//! ```
//! use figlut_sim::engine::{evaluate, square_workload};
//! use figlut_sim::mpu::{EngineSpec, SimEngine};
//! use figlut_sim::tech::Tech;
//! use figlut_num::fp::FpFormat;
//!
//! let tech = Tech::cmos28();
//! let wl = square_workload(4096, 32);
//! let figlut = evaluate(&tech, &EngineSpec::paper(SimEngine::FiglutI, FpFormat::Fp16), &wl, 4.0);
//! let figna = evaluate(&tech, &EngineSpec::paper(SimEngine::Figna, FpFormat::Fp16), &wl, 4.0);
//! assert!(figlut.tops_per_w() > figna.tops_per_w());
//! ```

pub mod complexity;
pub mod cyclesim;
pub mod dataflow;
pub mod engine;
pub mod gpu;
pub mod lutcost;
pub mod memory;
pub mod mpu;
pub mod tech;

pub use engine::{evaluate, GemmShape, Report, Workload};
pub use mpu::{EngineSpec, SimEngine};
pub use tech::Tech;
