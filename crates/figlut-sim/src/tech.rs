//! 28 nm-class component cost library.
//!
//! The paper synthesizes at 28 nm / 100 MHz with Synopsys Design Compiler,
//! measures LUT structures after P&R in ICC2, sizes SRAM with a memory
//! compiler and DRAM with CACTI. We cannot run those tools, so this module
//! is the substitution documented in DESIGN.md §2: a parametric component
//! library whose *absolute* numbers come from public 28 nm-class data
//! (Horowitz, ISSCC'14 "Computing's energy problem", scaled 45 → 28 nm;
//! CACTI-class SRAM/DRAM constants) and whose *ratios* are calibrated so
//! the paper's normalized results reproduce (see `repro calibration`).
//!
//! Every figure in the paper's evaluation is normalized (to an FP-adder
//! baseline, to FPE, or to k = 1), so those ratios — not the absolute
//! picojoules — carry the results.
//!
//! Units: energy pJ, area µm², time cycles at [`Tech::freq_hz`].

use figlut_num::fp::FpFormat;

/// Technology/cost parameters. Construct with [`Tech::cmos28`] (the paper's
/// node) and override fields for ablations.
#[derive(Clone, Debug, PartialEq)]
pub struct Tech {
    /// Operating frequency (paper: 100 MHz).
    pub freq_hz: f64,
    /// FP adder energy per op, [fp16, bf16, fp32] (pJ).
    pub fp_add_pj: [f64; 3],
    /// FP multiplier energy per op, [fp16, bf16, fp32] (pJ).
    pub fp_mul_pj: [f64; 3],
    /// Integer adder energy per bit of operand width (pJ/bit).
    pub int_add_pj_per_bit: f64,
    /// Integer multiplier energy per (a-bit × b-bit) product (pJ per bit²).
    pub int_mul_pj_per_bit2: f64,
    /// INT→FP dequantizer energy per conversion (pJ), scaled by output width.
    pub i2f_pj_per_out_bit: f64,
    /// Flip-flop energy per bit per clock (clock tree + data activity, pJ).
    pub ff_pj_per_bit_cycle: f64,
    /// 2:1 multiplexer energy per bit per traversal (pJ).
    pub mux2_pj_per_bit: f64,
    /// hFFLUT decoder energy per read per output bit (key inversion + XOR
    /// sign flip; pJ).
    pub decoder_pj_per_bit: f64,
    /// Fan-out power growth per extra RAC sharing a LUT (fraction/load).
    ///
    /// Driving k read ports multiplies flip-flop output energy by
    /// `1 + fanout_gamma·k`.
    pub fanout_gamma: f64,
    /// Per-read wire/buffer energy growth per RAC sharing the LUT (pJ per
    /// read per load). Together with `fanout_gamma` this produces the
    /// U-shaped P_RAC(k) of paper Fig. 9; calibrated so the optimum lands
    /// at k = 32 for µ = 4.
    pub port_wire_pj_per_load: f64,
    /// Register-file LUT read energy: fixed + per-entry terms (pJ). The
    /// fixed decoder/sense overhead dominates at these tiny depths, which
    /// is exactly why the paper's RFLUT loses to FP adders (Fig. 6).
    pub rf_read_base_pj: f64,
    /// Per-entry component of the register-file read (pJ/entry at 16-bit
    /// width, scaled linearly with width).
    pub rf_read_pj_per_entry: f64,
    /// Register-file write energy relative to a read.
    pub rf_write_ratio: f64,
    /// SRAM read energy per bit (pJ/bit).
    pub sram_read_pj_per_bit: f64,
    /// SRAM write energy per bit (pJ/bit).
    pub sram_write_pj_per_bit: f64,
    /// Off-chip DRAM access energy per bit (pJ/bit; CACTI-class LPDDR4).
    pub dram_pj_per_bit: f64,
    /// DRAM bandwidth available to the accelerator (bytes/s).
    pub dram_bw_bytes_per_s: f64,
    /// Pre-alignment energy per activation element (max-exponent compare +
    /// barrel shift) per 16 bits of mantissa (pJ).
    pub align_pj_per_16b: f64,

    // ---- area (µm²) ----
    /// FP adder area, [fp16, bf16, fp32].
    pub fp_add_um2: [f64; 3],
    /// FP multiplier area, [fp16, bf16, fp32].
    pub fp_mul_um2: [f64; 3],
    /// Integer adder area per bit.
    pub int_add_um2_per_bit: f64,
    /// Integer multiplier area per bit².
    pub int_mul_um2_per_bit2: f64,
    /// INT→FP converter area per output bit.
    pub i2f_um2_per_out_bit: f64,
    /// Flip-flop area per bit.
    pub ff_um2_per_bit: f64,
    /// MUX2 area per bit.
    pub mux2_um2_per_bit: f64,
    /// SRAM macro area per bit.
    pub sram_um2_per_bit: f64,
    /// Register-file macro area per bit (larger cells + ports).
    pub rf_um2_per_bit: f64,
}

impl Tech {
    /// The paper's technology point: 28 nm CMOS at 100 MHz.
    ///
    /// Energy values are Horowitz ISSCC'14 45 nm numbers scaled by ≈0.6×
    /// (capacitance scaling to 28 nm); SRAM/DRAM from CACTI-class tables.
    pub fn cmos28() -> Self {
        Self {
            freq_hz: 100e6,
            //              fp16  bf16  fp32
            fp_add_pj: [0.25, 0.20, 0.55],
            fp_mul_pj: [0.70, 0.55, 2.30],
            int_add_pj_per_bit: 0.002,
            int_mul_pj_per_bit2: 0.0018,
            i2f_pj_per_out_bit: 0.006,
            ff_pj_per_bit_cycle: 0.0012,
            mux2_pj_per_bit: 5.0e-6,
            decoder_pj_per_bit: 6.0e-5,
            fanout_gamma: 0.010,
            port_wire_pj_per_load: 1.5e-4,
            rf_read_base_pj: 1.20,
            rf_read_pj_per_entry: 0.0047,
            rf_write_ratio: 0.8,
            sram_read_pj_per_bit: 0.008,
            sram_write_pj_per_bit: 0.010,
            dram_pj_per_bit: 4.0,
            dram_bw_bytes_per_s: 12.8e9,
            align_pj_per_16b: 0.020,
            fp_add_um2: [400.0, 320.0, 900.0],
            fp_mul_um2: [800.0, 640.0, 3000.0],
            int_add_um2_per_bit: 1.5,
            int_mul_um2_per_bit2: 3.0,
            i2f_um2_per_out_bit: 12.0,
            ff_um2_per_bit: 4.5,
            mux2_um2_per_bit: 0.9,
            sram_um2_per_bit: 0.15,
            rf_um2_per_bit: 0.60,
        }
    }

    fn fmt_idx(fmt: FpFormat) -> usize {
        match fmt {
            FpFormat::Fp16 => 0,
            FpFormat::Bf16 => 1,
            FpFormat::Fp32 => 2,
        }
    }

    /// FP add energy (pJ).
    pub fn fp_add(&self, fmt: FpFormat) -> f64 {
        self.fp_add_pj[Self::fmt_idx(fmt)]
    }

    /// FP multiply energy (pJ).
    pub fn fp_mul(&self, fmt: FpFormat) -> f64 {
        self.fp_mul_pj[Self::fmt_idx(fmt)]
    }

    /// Integer add energy for `bits`-wide operands (pJ).
    pub fn int_add(&self, bits: u32) -> f64 {
        self.int_add_pj_per_bit * bits as f64
    }

    /// Integer multiply energy for an `a × b` bit product (pJ).
    pub fn int_mul(&self, a: u32, b: u32) -> f64 {
        self.int_mul_pj_per_bit2 * a as f64 * b as f64
    }

    /// INT→FP conversion energy to a `fmt` output (pJ).
    pub fn i2f(&self, fmt: FpFormat) -> f64 {
        self.i2f_pj_per_out_bit * fmt.storage_bits() as f64
    }

    /// Pre-alignment energy per activation of format `fmt` (pJ).
    pub fn align(&self, fmt: FpFormat) -> f64 {
        self.align_pj_per_16b * fmt.storage_bits() as f64 / 16.0
    }

    /// Fan-out multiplier for a node driving `k` loads.
    pub fn fanout_factor(&self, k: u32) -> f64 {
        1.0 + self.fanout_gamma * k as f64
    }

    /// Register-file LUT read energy for a `entries × width` macro (pJ).
    pub fn rf_read(&self, entries: usize, width_bits: u32) -> f64 {
        (self.rf_read_base_pj + self.rf_read_pj_per_entry * entries as f64)
            * (width_bits as f64 / 16.0)
    }

    /// Register-file LUT write energy (pJ).
    pub fn rf_write(&self, entries: usize, width_bits: u32) -> f64 {
        self.rf_read(entries, width_bits) * self.rf_write_ratio
    }

    /// FP adder area (µm²).
    pub fn fp_add_area(&self, fmt: FpFormat) -> f64 {
        self.fp_add_um2[Self::fmt_idx(fmt)]
    }

    /// FP multiplier area (µm²).
    pub fn fp_mul_area(&self, fmt: FpFormat) -> f64 {
        self.fp_mul_um2[Self::fmt_idx(fmt)]
    }

    /// Integer adder area (µm²).
    pub fn int_add_area(&self, bits: u32) -> f64 {
        self.int_add_um2_per_bit * bits as f64
    }

    /// Integer multiplier area (µm²).
    pub fn int_mul_area(&self, a: u32, b: u32) -> f64 {
        self.int_mul_um2_per_bit2 * a as f64 * b as f64
    }

    /// INT→FP converter area (µm²).
    pub fn i2f_area(&self, fmt: FpFormat) -> f64 {
        self.i2f_um2_per_out_bit * fmt.storage_bits() as f64
    }

    /// DRAM bytes transferable per clock cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bw_bytes_per_s / self.freq_hz
    }
}

impl Tech {
    /// First-order scaling of the 28 nm library to another logic node
    /// (used to quantify the paper's closing remark that FIGLUT's
    /// "efficiency would be even more prominent if evaluated under
    /// comparable fabrication technologies" to the 7 nm A100 / 4 nm H100).
    ///
    /// Dynamic energy scales with capacitance × V²; across foundry nodes a
    /// practical fit is `E ∝ (node/28)^1.5` and logic/SRAM area
    /// `∝ (node/28)^2`. Off-chip DRAM energy and bandwidth are
    /// node-independent and left unchanged. This is deliberately coarse —
    /// a sensitivity knob, not a PDK.
    ///
    /// # Panics
    ///
    /// Panics unless `3.0 ≤ node_nm ≤ 65.0`.
    pub fn scaled_to_node(&self, node_nm: f64) -> Tech {
        assert!(
            (3.0..=65.0).contains(&node_nm),
            "node {node_nm} nm outside the model's validity range"
        );
        let e = (node_nm / 28.0).powf(1.5);
        let a = (node_nm / 28.0).powi(2);
        let mut t = self.clone();
        for v in t.fp_add_pj.iter_mut().chain(t.fp_mul_pj.iter_mut()) {
            *v *= e;
        }
        t.int_add_pj_per_bit *= e;
        t.int_mul_pj_per_bit2 *= e;
        t.i2f_pj_per_out_bit *= e;
        t.ff_pj_per_bit_cycle *= e;
        t.mux2_pj_per_bit *= e;
        t.decoder_pj_per_bit *= e;
        t.port_wire_pj_per_load *= e;
        t.rf_read_base_pj *= e;
        t.rf_read_pj_per_entry *= e;
        t.sram_read_pj_per_bit *= e;
        t.sram_write_pj_per_bit *= e;
        t.align_pj_per_16b *= e;
        for v in t.fp_add_um2.iter_mut().chain(t.fp_mul_um2.iter_mut()) {
            *v *= a;
        }
        t.int_add_um2_per_bit *= a;
        t.int_mul_um2_per_bit2 *= a;
        t.i2f_um2_per_out_bit *= a;
        t.ff_um2_per_bit *= a;
        t.mux2_um2_per_bit *= a;
        t.sram_um2_per_bit *= a;
        t.rf_um2_per_bit *= a;
        t
    }
}

impl Default for Tech {
    fn default() -> Self {
        Self::cmos28()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_of_fp_costs() {
        let t = Tech::cmos28();
        // bf16 < fp16 < fp32 for both add and mul (shorter mantissa).
        assert!(t.fp_add(FpFormat::Bf16) < t.fp_add(FpFormat::Fp16));
        assert!(t.fp_add(FpFormat::Fp16) < t.fp_add(FpFormat::Fp32));
        assert!(t.fp_mul(FpFormat::Bf16) < t.fp_mul(FpFormat::Fp16));
        assert!(t.fp_mul(FpFormat::Fp16) < t.fp_mul(FpFormat::Fp32));
        // Multiply costs more than add in the same format.
        for f in FpFormat::ALL {
            assert!(t.fp_mul(f) > t.fp_add(f));
        }
    }

    #[test]
    fn int_cheaper_than_fp() {
        let t = Tech::cmos28();
        // A 24-bit integer add is far cheaper than an fp32 add — the whole
        // premise of pre-alignment engines.
        assert!(t.int_add(24) < t.fp_add(FpFormat::Fp32) / 5.0);
        // An 11×4 integer multiply is cheaper than an fp16 multiply — the
        // FIGNA premise.
        assert!(t.int_mul(11, 4) < t.fp_mul(FpFormat::Fp16) / 5.0);
    }

    #[test]
    fn rflut_read_exceeds_fp_add() {
        // Paper Fig. 6: RFLUT reads are more expensive than the FP-adder
        // baseline per weight op. µ=4 → 16 entries, one read covers 4
        // weights; µ=8 → 256 entries, 8 weights.
        let t = Tech::cmos28();
        let base = t.fp_add(FpFormat::Fp16);
        let per_weight_mu4 = t.rf_read(16, 16) / 4.0;
        let per_weight_mu8 = t.rf_read(256, 16) / 8.0;
        assert!(per_weight_mu4 > base, "{per_weight_mu4} vs {base}");
        assert!(per_weight_mu8 > base, "{per_weight_mu8} vs {base}");
        // µ4 needs twice the reads of µ8 and ends up *worse* overall even
        // though each read is cheaper (paper §III-C).
        assert!(t.rf_read(16, 16) < t.rf_read(256, 16));
        assert!(per_weight_mu4 > per_weight_mu8);
    }

    #[test]
    fn fanout_grows_linearly() {
        let t = Tech::cmos28();
        assert_eq!(t.fanout_factor(0), 1.0);
        assert!(t.fanout_factor(32) > 1.25 && t.fanout_factor(32) < 1.4);
    }

    #[test]
    fn memory_hierarchy_ordering() {
        let t = Tech::cmos28();
        assert!(t.sram_read_pj_per_bit < t.dram_pj_per_bit / 100.0);
        assert!(t.mux2_pj_per_bit < t.ff_pj_per_bit_cycle);
    }

    #[test]
    fn node_scaling_shrinks_logic_not_dram() {
        let t28 = Tech::cmos28();
        let t7 = t28.scaled_to_node(7.0);
        // Energy down ~8× ((7/28)^1.5 ≈ 0.125), area down 16×.
        assert!((t7.fp_add(FpFormat::Fp16) / t28.fp_add(FpFormat::Fp16) - 0.125).abs() < 0.01);
        assert!((t7.ff_um2_per_bit / t28.ff_um2_per_bit - 1.0 / 16.0).abs() < 1e-9);
        assert_eq!(t7.dram_pj_per_bit, t28.dram_pj_per_bit);
        assert_eq!(t7.dram_bw_bytes_per_s, t28.dram_bw_bytes_per_s);
        // Identity at 28 nm.
        let same = t28.scaled_to_node(28.0);
        assert!((same.fp_add(FpFormat::Fp32) - t28.fp_add(FpFormat::Fp32)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "validity range")]
    fn node_scaling_rejects_absurd_nodes() {
        let _ = Tech::cmos28().scaled_to_node(1.0);
    }
}
