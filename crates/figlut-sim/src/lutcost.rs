//! Power and area of LUT structures and PEs (paper §III-C/D, Figs 6–9,
//! Table III).
//!
//! The paper's key architecture decisions — FFLUT over RFLUT, µ = 4,
//! k = 32 RACs per LUT, hFFLUT halving — are all driven by post-P&R power
//! measurements. This module reprices the same comparisons from the
//! [`Tech`] component library:
//!
//! * [`lut_power`] — per-structure costs (FF retention, mux-tree reads,
//!   decoder, regeneration) including the fan-out penalty of `k` shared
//!   readers.
//! * [`per_weight_read_power`] — Fig. 6's metric: energy per weight
//!   position served, LUT read path vs one FP add.
//! * [`pe_power`] — Fig. 8/9's metric: a full PE (one shared LUT + k RACs
//!   + registers + amortized generation) at equal throughput.
//! * [`optimal_k`] — argmin of P_RAC(k), which lands at 32 for µ = 4.

use crate::tech::Tech;
use figlut_lut::generator::GenSchedule;
use figlut_num::fp::FpFormat;

/// LUT implementation style.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LutKind {
    /// Register-file macro (the conventional approach the paper rejects).
    Rflut,
    /// Flip-flop + multiplexer table (paper Fig. 7).
    Fflut,
    /// Half-size FFLUT with sign-flip decoder (paper Fig. 10).
    Hfflut,
}

impl LutKind {
    /// Stored entries for group size µ.
    pub fn stored_entries(self, mu: u32) -> usize {
        match self {
            LutKind::Hfflut => 1 << (mu - 1),
            _ => 1 << mu,
        }
    }

    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            LutKind::Rflut => "RFLUT",
            LutKind::Fflut => "FFLUT",
            LutKind::Hfflut => "hFFLUT",
        }
    }
}

/// Cost breakdown of one LUT instance serving `k` readers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LutPower {
    /// Storage retention + refresh per cycle (FF clocking incl. fan-out of
    /// the k read ports; RFLUT macros embed this in their access energy).
    pub hold_pj_per_cycle: f64,
    /// Mux-tree traversal per read, per port (incl. port wiring that grows
    /// with k).
    pub mux_pj_per_read: f64,
    /// hFFLUT decoder per read (zero for the other kinds).
    pub decoder_pj_per_read: f64,
    /// Macro access energy per read (RFLUT only).
    pub macro_pj_per_read: f64,
    /// Energy to write one full table (RFLUT regeneration; FFLUT refresh is
    /// carried by `hold_pj_per_cycle`).
    pub write_table_pj: f64,
    /// Area of storage plus k read ports (µm²).
    pub area_um2: f64,
}

impl LutPower {
    /// Total energy per read, excluding retention.
    pub fn read_pj(&self) -> f64 {
        self.mux_pj_per_read + self.decoder_pj_per_read + self.macro_pj_per_read
    }
}

/// Price one LUT of the given kind: group size `mu`, `width_bits`-wide
/// entries, shared by `k` readers.
///
/// # Panics
///
/// Panics if `mu ∉ 1..=8` or `k == 0`.
pub fn lut_power(tech: &Tech, kind: LutKind, mu: u32, width_bits: u32, k: u32) -> LutPower {
    assert!((1..=8).contains(&mu), "µ = {mu} out of range");
    assert!(k >= 1, "k must be positive");
    let entries = kind.stored_entries(mu) as f64;
    let bits = entries * width_bits as f64;
    match kind {
        LutKind::Rflut => {
            let read = tech.rf_read(entries as usize, width_bits);
            LutPower {
                hold_pj_per_cycle: 0.0, // embedded in the macro access energy
                mux_pj_per_read: 0.0,
                decoder_pj_per_read: 0.0,
                macro_pj_per_read: read,
                write_table_pj: entries * tech.rf_write(entries as usize, width_bits),
                area_um2: bits * tech.rf_um2_per_bit,
            }
        }
        LutKind::Fflut | LutKind::Hfflut => {
            let hold = bits * tech.ff_pj_per_bit_cycle * tech.fanout_factor(k);
            let tree = width_bits as f64 * (entries - 1.0) * tech.mux2_pj_per_bit;
            let port = tech.port_wire_pj_per_load * k as f64;
            let decoder = if kind == LutKind::Hfflut {
                tech.decoder_pj_per_bit * (width_bits + mu) as f64
            } else {
                0.0
            };
            LutPower {
                hold_pj_per_cycle: hold,
                mux_pj_per_read: tree + port,
                decoder_pj_per_read: decoder,
                macro_pj_per_read: 0.0,
                write_table_pj: bits * tech.ff_pj_per_bit_cycle,
                area_um2: bits * tech.ff_um2_per_bit
                    + k as f64 * width_bits as f64 * (entries - 1.0) * tech.mux2_um2_per_bit,
            }
        }
    }
}

/// Fig. 6 metric: LUT read-path energy per *weight position served*,
/// relative to one FP add of the same format (the arithmetic a read
/// replaces). One read covers µ weights; retention is amortized over the
/// k·µ weight positions a LUT serves per cycle (k = 1 in Fig. 6, which
/// compares structures before sharing is introduced).
pub fn per_weight_read_power(tech: &Tech, kind: LutKind, mu: u32, fmt: FpFormat, k: u32) -> f64 {
    let lp = lut_power(tech, kind, mu, fmt.storage_bits(), k);
    let per_weight = (lp.hold_pj_per_cycle / k as f64 + lp.read_pj()) / mu as f64;
    per_weight / tech.fp_add(fmt)
}

/// RAC accumulator datapath.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RacDatapath {
    /// FIGLUT-F: FP32 accumulation.
    Fp32Acc,
    /// FIGLUT-I: integer accumulation at the given register width.
    IntAcc {
        /// Accumulator width in bits.
        bits: u32,
    },
}

impl RacDatapath {
    /// Energy of one accumulate.
    pub fn add_pj(self, tech: &Tech) -> f64 {
        match self {
            RacDatapath::Fp32Acc => tech.fp_add(FpFormat::Fp32),
            RacDatapath::IntAcc { bits } => tech.int_add(bits),
        }
    }

    /// Adder area.
    pub fn add_area_um2(self, tech: &Tech) -> f64 {
        match self {
            RacDatapath::Fp32Acc => tech.fp_add_area(FpFormat::Fp32),
            RacDatapath::IntAcc { bits } => tech.int_add_area(bits),
        }
    }

    /// Accumulator register width.
    pub fn acc_bits(self) -> u32 {
        match self {
            RacDatapath::Fp32Acc => 32,
            RacDatapath::IntAcc { bits } => bits,
        }
    }
}

/// PE configuration: one shared (h)FFLUT plus `k` RACs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeParams {
    /// LUT group size.
    pub mu: u32,
    /// RACs sharing the LUT.
    pub k: u32,
    /// Activation / table-entry format.
    pub fmt: FpFormat,
    /// LUT style (the paper's PE uses the hFFLUT).
    pub kind: LutKind,
    /// Accumulator datapath.
    pub datapath: RacDatapath,
    /// PE rows sharing one LUT generator via value forwarding (FIGLUT
    /// forwards generated values down 2 rows).
    pub gen_share_rows: u32,
}

impl PeParams {
    /// The paper's operating point: µ = 4, k = 32, hFFLUT, integer RACs
    /// sized for the format's aligned mantissa plus accumulation headroom.
    pub fn paper_default(fmt: FpFormat) -> Self {
        Self {
            mu: 4,
            k: 32,
            fmt,
            kind: LutKind::Hfflut,
            datapath: RacDatapath::IntAcc {
                bits: fmt.precision() + 13,
            },
            gen_share_rows: 2,
        }
    }
}

/// Per-cycle PE power breakdown at full utilization.
///
/// Matches the paper's Fig. 9 measurement boundary: the PE is the shared
/// LUT plus its k RACs. The LUT *generator* sits outside the PE (shared
/// down rows by value forwarding) and is priced separately by
/// [`generator_pj_per_cycle`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PePower {
    /// LUT retention (incl. fan-out).
    pub lut_pj: f64,
    /// All k read ports (mux trees, port wiring, decoder).
    pub read_pj: f64,
    /// All k accumulators (adds + key/psum registers).
    pub rac_pj: f64,
}

impl PePower {
    /// Total PE power per cycle (pJ).
    pub fn total_pj(&self) -> f64 {
        self.lut_pj + self.read_pj + self.rac_pj
    }

    /// Per-RAC power (the paper's P_RAC = P_PE / k).
    pub fn per_rac_pj(&self, k: u32) -> f64 {
        self.total_pj() / k as f64
    }

    /// Weight positions served per cycle (k reads × µ weights).
    pub fn weights_per_cycle(&self, mu: u32, k: u32) -> f64 {
        (mu * k) as f64
    }
}

/// Price one PE per cycle (every RAC reads once per cycle).
pub fn pe_power(tech: &Tech, p: &PeParams) -> PePower {
    let lp = lut_power(tech, p.kind, p.mu, p.fmt.storage_bits(), p.k);
    let k = p.k as f64;
    let regs_bits = (p.mu + p.datapath.acc_bits()) as f64; // key + psum per RAC
    let rac = k * (p.datapath.add_pj(tech) + regs_bits * tech.ff_pj_per_bit_cycle);
    PePower {
        lut_pj: lp.hold_pj_per_cycle,
        read_pj: k * lp.read_pj(),
        rac_pj: rac,
    }
}

/// Per-cycle LUT-generator power amortized per PE: `adds(µ)` format adds
/// per cycle, shared across `gen_share_rows` PEs by value forwarding.
pub fn generator_pj_per_cycle(tech: &Tech, p: &PeParams) -> f64 {
    let gen_adds = GenSchedule::optimized(p.mu, p.kind == LutKind::Hfflut).adds() as f64;
    gen_adds * tech.fp_add(p.fmt) / p.gen_share_rows as f64
}

/// PE area (µm²): LUT storage + ports, RAC adders + registers, and the
/// amortized generator share.
pub fn pe_area(tech: &Tech, p: &PeParams) -> f64 {
    let lp = lut_power(tech, p.kind, p.mu, p.fmt.storage_bits(), p.k);
    let k = p.k as f64;
    let regs_bits = (p.mu + p.datapath.acc_bits()) as f64;
    let racs = k * (p.datapath.add_area_um2(tech) + regs_bits * tech.ff_um2_per_bit);
    let gen_adds = GenSchedule::optimized(p.mu, p.kind == LutKind::Hfflut).adds() as f64;
    let gen = gen_adds * tech.fp_add_area(p.fmt) / p.gen_share_rows as f64;
    lp.area_um2 + racs + gen
}

/// Argmin of P_RAC(k) over `1..=max_k` (paper Fig. 9's design decision).
pub fn optimal_k(tech: &Tech, mu: u32, fmt: FpFormat, max_k: u32) -> u32 {
    let mut best = (1u32, f64::INFINITY);
    for k in 1..=max_k {
        let p = PeParams {
            k,
            ..PeParams::paper_default(fmt)
        };
        let p = PeParams { mu, ..p };
        let prac = pe_power(tech, &p).per_rac_pj(k);
        if prac < best.1 {
            best = (k, prac);
        }
    }
    best.0
}

/// System-level power per weight position at equal throughput (Fig. 8's
/// metric), relative to an FP-adder array of the same throughput. Includes
/// the PE's amortized generator share.
pub fn system_power_per_weight(tech: &Tech, p: &PeParams) -> f64 {
    let pe = pe_power(tech, p);
    let per_weight =
        (pe.total_pj() + generator_pj_per_cycle(tech, p)) / pe.weights_per_cycle(p.mu, p.k);
    per_weight / tech.fp_add(p.fmt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tech {
        Tech::cmos28()
    }

    #[test]
    fn hfflut_halves_storage_power() {
        // Paper Table III: hFFLUT LUT power ≈ 0.494× FFLUT.
        let full = lut_power(&t(), LutKind::Fflut, 4, 16, 32);
        let half = lut_power(&t(), LutKind::Hfflut, 4, 16, 32);
        let ratio = half.hold_pj_per_cycle / full.hold_pj_per_cycle;
        assert!((ratio - 0.5).abs() < 0.02, "ratio {ratio}");
        // Decoder overhead exists but is small relative to the LUT itself.
        assert!(half.decoder_pj_per_read > 0.0);
        assert!(half.decoder_pj_per_read < 0.02 * full.hold_pj_per_cycle);
    }

    #[test]
    fn table3_relative_magnitudes() {
        // MUX and decoder are trivia next to LUT retention (paper Table III
        // reports 0.003 / 0.005 relative).
        let full = lut_power(&t(), LutKind::Fflut, 4, 16, 1);
        let half = lut_power(&t(), LutKind::Hfflut, 4, 16, 1);
        let base = full.hold_pj_per_cycle;
        assert!(full.mux_pj_per_read / base < 0.02);
        assert!((half.mux_pj_per_read + half.decoder_pj_per_read) / base < 0.03);
    }

    #[test]
    fn fig6_rflut_worse_than_adder_fflut_better() {
        let tech = t();
        let fmt = FpFormat::Fp16;
        // RFLUT (µ=4, µ=8): above the FP-adder baseline; µ4 worse than µ8.
        let r4 = per_weight_read_power(&tech, LutKind::Rflut, 4, fmt, 1);
        let r8 = per_weight_read_power(&tech, LutKind::Rflut, 8, fmt, 1);
        assert!(
            r4 > 1.0 && r8 > 1.0,
            "RFLUT must lose to FP adds: {r4} {r8}"
        );
        assert!(r4 > r8, "µ4 needs 2× the reads of µ8: {r4} vs {r8}");
        // FFLUT: µ2/µ4 below baseline, µ8 blows up (excluded in the paper).
        let f2 = per_weight_read_power(&tech, LutKind::Fflut, 2, fmt, 1);
        let f4 = per_weight_read_power(&tech, LutKind::Fflut, 4, fmt, 1);
        let f8 = per_weight_read_power(&tech, LutKind::Fflut, 8, fmt, 1);
        assert!(f2 < 1.0 && f4 < 1.0, "FFLUT should win: {f2} {f4}");
        assert!(f8 > 1.5, "µ8 FFLUT should be excluded: {f8}");
        assert!(f2 < f4 && f4 < f8);
    }

    #[test]
    fn fig9_optimum_k_is_32_for_mu4() {
        let k = optimal_k(&t(), 4, FpFormat::Fp16, 64);
        assert!((24..=40).contains(&k), "optimal k = {k}, expected ≈32");
        // And the curve is genuinely U-shaped: k=1 and k=64 both worse.
        let prac = |k: u32| {
            let p = PeParams {
                mu: 4,
                k,
                ..PeParams::paper_default(FpFormat::Fp16)
            };
            pe_power(&t(), &p).per_rac_pj(k)
        };
        assert!(prac(1) > prac(k));
        assert!(prac(64) > prac(k));
    }

    #[test]
    fn fig8_mu4_beats_mu2_at_large_k() {
        let tech = t();
        let mk = |mu, k| PeParams {
            mu,
            k,
            ..PeParams::paper_default(FpFormat::Fp16)
        };
        // At k = 1 the bigger LUT makes µ4 worse than µ2 (paper §III-C)…
        let p2_k1 = system_power_per_weight(&tech, &mk(2, 1));
        let p4_k1 = system_power_per_weight(&tech, &mk(4, 1));
        assert!(p4_k1 > p2_k1, "k=1: µ4 {p4_k1} should exceed µ2 {p2_k1}");
        // …but at k = 32 sharing amortizes the LUT and µ4 wins.
        let p2_k32 = system_power_per_weight(&tech, &mk(2, 32));
        let p4_k32 = system_power_per_weight(&tech, &mk(4, 32));
        assert!(p4_k32 < p2_k32, "k=32: µ4 {p4_k32} should beat µ2 {p2_k32}");
        // And the whole point: well below the FP-adder baseline.
        assert!(p4_k32 < 0.5, "FIGLUT PE per-weight power {p4_k32} ≥ 0.5×");
    }

    #[test]
    fn pe_power_is_monotone_in_k_for_total() {
        let tech = t();
        let mut last = 0.0;
        for k in [1u32, 2, 4, 8, 16, 32, 64] {
            let p = PeParams {
                mu: 4,
                k,
                ..PeParams::paper_default(FpFormat::Fp16)
            };
            let total = pe_power(&tech, &p).total_pj();
            assert!(total > last, "total PE power must grow with k");
            last = total;
        }
    }

    #[test]
    fn area_scales_with_k_and_mu() {
        let tech = t();
        let a = |mu, k| {
            pe_area(
                &tech,
                &PeParams {
                    mu,
                    k,
                    ..PeParams::paper_default(FpFormat::Fp16)
                },
            )
        };
        assert!(a(4, 32) > a(4, 1));
        assert!(a(8, 32) > a(4, 32));
    }

    #[test]
    fn int_racs_cheaper_than_fp_racs() {
        // FIGLUT-I's premise (the paper evaluates FIGLUT-I for Fig. 16
        // "given that FIGLUT-I shows better power efficiency").
        let tech = t();
        let base = PeParams::paper_default(FpFormat::Fp16);
        let int_pe = pe_power(&tech, &base).total_pj();
        let fp_pe = pe_power(
            &tech,
            &PeParams {
                datapath: RacDatapath::Fp32Acc,
                ..base
            },
        )
        .total_pj();
        assert!(int_pe < fp_pe, "{int_pe} !< {fp_pe}");
    }
}
