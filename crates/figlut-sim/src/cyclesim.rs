//! Cycle-level simulation of one FIGLUT PE (paper Figs. 4–5).
//!
//! The analytic model in [`crate::dataflow`] prices GEMMs with closed-form
//! cycle counts. This module *executes* the weight-stationary, bit-plane-
//! inner dataflow of one PE — generator → hFFLUT → k RACs → edge scaling —
//! one cycle at a time, so two things can be checked against it:
//!
//! 1. **Functional correctness through the timing**: the simulated PE's
//!    outputs must equal `figlut_gemm::figlut::gemm_i` *bit-for-bit* (same
//!    pre-alignment, same integer LUT reads, same FP32 scaling order).
//! 2. **The closed-form cycle count**: steady-state cycles must match
//!    `m·n·B·q / (k·µ)` up to the per-tile/plane switch bubbles the
//!    analytic model charges.
//!
//! One PE is `1/128` of the paper's MPU; its dataflow (Fig. 5(b)): hold a
//! tile of k output rows stationary, then for each bit plane, stream every
//! input group of every batch row through the shared LUT while the k RACs
//! read-accumulate their pattern keys. Plane partials are scaled by `αᵢ`
//! (and the offset by `z·Σx`, read through the all-ones key) at the array
//! edge.

use figlut_gemm::common::EngineConfig;
use figlut_lut::key::Key;
use figlut_lut::table::{HalfLut, LutRead};
use figlut_num::align::AlignedVector;
use figlut_num::fp::FpFormat;
use figlut_num::Mat;
use figlut_quant::BcqWeight;

/// Event counters accumulated by the simulation — the quantities the
/// energy model prices per occurrence.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeCounters {
    /// Cycles the PE was active.
    pub cycles: u64,
    /// Half-table (re)generations (one per streamed input group).
    pub lut_generations: u64,
    /// RAC read-accumulate operations.
    pub rac_reads: u64,
    /// Bit-plane switches (key-register reloads).
    pub plane_switches: u64,
    /// Weight-tile switches (new k output rows made stationary).
    pub tile_switches: u64,
    /// Edge scaling operations (α·partial and z·Σx folds).
    pub edge_scalings: u64,
}

/// Result of simulating one PE over a whole GEMM.
#[derive(Clone, Debug)]
pub struct PeSimResult {
    /// `B × m` outputs.
    pub outputs: Mat<f64>,
    /// Event counts.
    pub counters: PeCounters,
}

/// Cycle-step one FIGLUT-I PE through `y = x·Wᵀ`.
///
/// `cfg.mu` is the LUT group size; `k` RACs (output rows) share the LUT.
/// Activations are pre-aligned per batch row exactly as the functional
/// engine does.
///
/// # Panics
///
/// Panics on shape mismatch, `µ ∉ 1..=8`, or `k == 0`.
pub fn simulate_pe_gemm_i(
    x: &Mat<f64>,
    w: &BcqWeight,
    cfg: &EngineConfig,
    k: usize,
) -> PeSimResult {
    assert!((1..=8).contains(&cfg.mu), "µ = {} unsupported", cfg.mu);
    assert!(k > 0, "k must be positive");
    let (batch, n) = x.shape();
    let (m, wn) = w.shape();
    assert_eq!(n, wn, "activation/weight width mismatch");
    let q = w.bits() as usize;
    let gs = w.group_size();
    let groups = w.groups();
    let mu = cfg.mu as usize;

    let mut counters = PeCounters::default();
    // Integer plane partials per (batch, row, scale-group, plane) plus the
    // offset partial (index q). The cycle loop fills these; the edge stage
    // folds them in the canonical (group-outer, plane-inner) order so the
    // result is bit-identical to the functional engine.
    let mut partials = vec![0i128; batch * m * groups * (q + 1)];
    let idx = |b: usize, r: usize, g: usize, i: usize| ((b * m + r) * groups + g) * (q + 1) + i;

    // Pre-align every batch row once (the aligner sits at the array input).
    let xa = x.map(|&v| cfg.act.quantize(v));
    let aligned: Vec<AlignedVector> = (0..batch)
        .map(|b| AlignedVector::align(xa.row(b), cfg.act, cfg.guard_bits, cfg.align))
        .collect();

    // --- weight-stationary tile loop: k output rows at a time -----------
    for tile_r0 in (0..m).step_by(k) {
        let rows = &(tile_r0..(tile_r0 + k).min(m)).collect::<Vec<_>>();
        counters.tile_switches += 1;
        // Fig. 5(b): bit planes inner — the next plane of the SAME tile is
        // processed before moving to the next tile. The offset pass rides
        // as a synthetic plane reading the all-ones key.
        for plane in 0..=q {
            let is_offset_pass = plane == q;
            if is_offset_pass && !w.has_offset() {
                continue;
            }
            counters.plane_switches += 1;
            for (b, av) in aligned.iter().enumerate() {
                let mant = av.mantissas();
                for g in 0..groups {
                    let c0 = g * gs;
                    let mut win_start = c0;
                    while win_start < c0 + gs {
                        let width = mu.min(c0 + gs - win_start);
                        // One cycle: generator rebuilds the half table for
                        // this window, k RACs read concurrently.
                        counters.cycles += 1;
                        counters.lut_generations += 1;
                        let lut = HalfLut::build(&mant[win_start..win_start + width], |a, c| {
                            a.checked_add(c).expect("LUT entry overflow")
                        });
                        for &r in rows.iter() {
                            counters.rac_reads += 1;
                            let key = if is_offset_pass {
                                Key::new(((1u32 << width) - 1) as u16, width as u32)
                            } else {
                                Key::new(w.plane(plane).key(r, win_start, width), width as u32)
                            };
                            partials[idx(b, r, g, plane)] += lut.read(key) as i128;
                        }
                        win_start += width;
                    }
                }
            }
        }
    }

    // --- edge stage: fold partials in the functional engine's order -----
    let mut outputs = Mat::zeros(batch, m);
    for (b, av) in aligned.iter().enumerate() {
        let lambda = av.scale();
        for r in 0..m {
            let mut acc = 0.0;
            for g in 0..groups {
                let c0 = g * gs;
                for i in 0..q {
                    counters.edge_scalings += 1;
                    acc = fold32(acc, w.alpha(i, r, c0), partials[idx(b, r, g, i)], lambda);
                }
                if w.has_offset() {
                    counters.edge_scalings += 1;
                    acc = fold32(acc, w.offset(r, c0), partials[idx(b, r, g, q)], lambda);
                }
            }
            outputs[(b, r)] = acc;
        }
    }
    PeSimResult { outputs, counters }
}

/// FP32-rounded `acc + α·(p·λ)` — the edge datapath, identical to
/// `figlut_gemm::ifpu::fold_partial`.
fn fold32(acc: f64, alpha: f64, p: i128, lambda: f64) -> f64 {
    let fp32 = |v: f64| FpFormat::Fp32.quantize(v);
    let real = fp32(p as f64 * lambda);
    fp32(acc + fp32(alpha * real))
}

/// Cycle-step one FIGLUT-F PE (floating-point LUT entries, FP32 RACs)
/// through `y = x·Wᵀ`. Same dataflow as [`simulate_pe_gemm_i`], FP
/// datapath; bit-identical to `figlut_gemm::figlut::gemm_f`.
///
/// # Panics
///
/// Panics on shape mismatch, `µ ∉ 1..=8`, or `k == 0`.
pub fn simulate_pe_gemm_f(
    x: &Mat<f64>,
    w: &BcqWeight,
    cfg: &EngineConfig,
    k: usize,
) -> PeSimResult {
    assert!((1..=8).contains(&cfg.mu), "µ = {} unsupported", cfg.mu);
    assert!(k > 0, "k must be positive");
    let (batch, n) = x.shape();
    let (m, wn) = w.shape();
    assert_eq!(n, wn, "activation/weight width mismatch");
    let q = w.bits() as usize;
    let gs = w.group_size();
    let groups = w.groups();
    let mu = cfg.mu as usize;
    let fp32 = |v: f64| FpFormat::Fp32.quantize(v);
    let add32 = |a: f64, b: f64| fp32(a + b);

    let mut counters = PeCounters::default();
    // FP32 plane partials, accumulated window-by-window in stream order —
    // the same association the functional engine uses.
    let mut partials = vec![0.0f64; batch * m * groups * (q + 1)];
    let idx = |b: usize, r: usize, g: usize, i: usize| ((b * m + r) * groups + g) * (q + 1) + i;
    let xa = x.map(|&v| cfg.act.quantize(v));

    for tile_r0 in (0..m).step_by(k) {
        let rows = &(tile_r0..(tile_r0 + k).min(m)).collect::<Vec<_>>();
        counters.tile_switches += 1;
        for plane in 0..=q {
            let is_offset_pass = plane == q;
            if is_offset_pass && !w.has_offset() {
                continue;
            }
            counters.plane_switches += 1;
            for b in 0..batch {
                let xrow = xa.row(b);
                for g in 0..groups {
                    let c0 = g * gs;
                    let mut win_start = c0;
                    while win_start < c0 + gs {
                        let width = mu.min(c0 + gs - win_start);
                        counters.cycles += 1;
                        counters.lut_generations += 1;
                        let lut = HalfLut::build(&xrow[win_start..win_start + width], add32);
                        for &r in rows.iter() {
                            counters.rac_reads += 1;
                            let key = if is_offset_pass {
                                Key::new(((1u32 << width) - 1) as u16, width as u32)
                            } else {
                                Key::new(w.plane(plane).key(r, win_start, width), width as u32)
                            };
                            let slot = &mut partials[idx(b, r, g, plane)];
                            *slot = add32(*slot, lut.read(key));
                        }
                        win_start += width;
                    }
                }
            }
        }
    }

    let mut outputs = Mat::zeros(batch, m);
    for b in 0..batch {
        for r in 0..m {
            let mut acc = 0.0;
            for g in 0..groups {
                let c0 = g * gs;
                for i in 0..q {
                    counters.edge_scalings += 1;
                    acc = add32(acc, fp32(w.alpha(i, r, c0) * partials[idx(b, r, g, i)]));
                }
                if w.has_offset() {
                    counters.edge_scalings += 1;
                    acc = add32(acc, fp32(w.offset(r, c0) * partials[idx(b, r, g, q)]));
                }
            }
            outputs[(b, r)] = acc;
        }
    }
    PeSimResult { outputs, counters }
}

/// Inputs of the closed-form PE cycle prediction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeCyclesQuery {
    /// Output rows.
    pub m: usize,
    /// Reduction width.
    pub n: usize,
    /// Batch rows.
    pub batch: usize,
    /// Bit planes.
    pub q: u32,
    /// LUT group size.
    pub mu: u32,
    /// RACs per LUT.
    pub k: usize,
    /// Columns per scale group (`0` = per row).
    pub group_size: usize,
    /// Whether an offset pass rides along.
    pub has_offset: bool,
}

/// Closed-form steady-state cycles the analytic model predicts for one PE:
/// `ceil(m/k) · passes · B · Σ windows`, where passes counts bit planes
/// plus the offset pass.
pub fn predicted_pe_cycles(qy: &PeCyclesQuery) -> u64 {
    let gs = if qy.group_size == 0 {
        qy.n
    } else {
        qy.group_size
    };
    let groups = qy.n / gs;
    let windows_per_group = gs.div_ceil(qy.mu as usize);
    let passes = qy.q as u64 + qy.has_offset as u64;
    (qy.m.div_ceil(qy.k) as u64) * passes * qy.batch as u64 * (groups * windows_per_group) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use figlut_gemm::figlut::gemm_i;
    use figlut_quant::bcq::BcqParams;
    use figlut_quant::uniform::{rtn, RtnParams};

    fn problem(m: usize, n: usize, batch: usize, bits: u32) -> (Mat<f64>, BcqWeight) {
        let w = Mat::from_fn(m, n, |r, c| ((r * n + c) as f64 * 0.219).sin() * 0.4);
        let b = BcqWeight::quantize(&w, BcqParams::per_row(bits));
        let x = Mat::from_fn(batch, n, |bb, c| ((bb * n + c) as f64 * 0.057).cos());
        (x, b)
    }

    #[test]
    fn cycle_sim_matches_functional_engine_bitexact() {
        for (m, n, batch, bits, k) in [
            (8usize, 32usize, 2usize, 3u32, 4usize),
            (6, 24, 3, 2, 8),
            (5, 40, 1, 4, 2),
        ] {
            let (x, w) = problem(m, n, batch, bits);
            let cfg = EngineConfig::paper_default();
            let sim = simulate_pe_gemm_i(&x, &w, &cfg, k);
            let func = gemm_i(&x, &w, &cfg);
            assert_eq!(
                sim.outputs.as_slice(),
                func.as_slice(),
                "m={m} n={n} B={batch} q={bits} k={k}"
            );
        }
    }

    #[test]
    fn fp_cycle_sim_matches_functional_engine_bitexact() {
        use figlut_gemm::figlut::gemm_f;
        for (m, n, batch, bits, k) in [(8usize, 32usize, 2usize, 3u32, 4usize), (5, 24, 2, 2, 8)] {
            let (x, w) = problem(m, n, batch, bits);
            let cfg = EngineConfig::paper_default();
            let sim = simulate_pe_gemm_f(&x, &w, &cfg, k);
            let func = gemm_f(&x, &w, &cfg);
            assert_eq!(
                sim.outputs.as_slice(),
                func.as_slice(),
                "m={m} n={n} B={batch} q={bits} k={k}"
            );
        }
    }

    #[test]
    fn f_and_i_variants_count_identical_events() {
        let (x, w) = problem(6, 24, 2, 3);
        let cfg = EngineConfig::paper_default();
        let f = simulate_pe_gemm_f(&x, &w, &cfg, 4).counters;
        let i = simulate_pe_gemm_i(&x, &w, &cfg, 4).counters;
        assert_eq!(f, i, "datapath choice must not change the schedule");
    }

    #[test]
    fn cycle_count_matches_closed_form() {
        let (x, w) = problem(8, 32, 2, 3);
        let cfg = EngineConfig::paper_default();
        let sim = simulate_pe_gemm_i(&x, &w, &cfg, 4);
        let want = predicted_pe_cycles(&PeCyclesQuery {
            m: 8,
            n: 32,
            batch: 2,
            q: 3,
            mu: 4,
            k: 4,
            group_size: w.group_size(),
            has_offset: w.has_offset(),
        });
        assert_eq!(sim.counters.cycles, want);
    }

    #[test]
    fn event_counts_are_consistent() {
        let (x, w) = problem(6, 24, 2, 2);
        let cfg = EngineConfig::paper_default();
        let sim = simulate_pe_gemm_i(&x, &w, &cfg, 3);
        let c = &sim.counters;
        // One generation per cycle (the generator runs every streamed
        // window), and ≤ k reads per cycle.
        assert_eq!(c.lut_generations, c.cycles);
        assert!(c.rac_reads <= c.cycles * 3);
        // Tiles: ceil(6/3) = 2; planes per tile: q + offset = 3.
        assert_eq!(c.tile_switches, 2);
        assert_eq!(c.plane_switches, 2 * 3);
        // Edge folds: per (batch, row, group, plane+offset).
        assert_eq!(c.edge_scalings, 2 * 6 * (2 + 1) as u64);
    }

    #[test]
    fn rac_reads_follow_complexity_formula() {
        // Table I: FIGLUT performs m·n·B·q/µ reads (+ offset pass).
        let (x, w) = problem(8, 32, 2, 4);
        let cfg = EngineConfig::paper_default();
        let sim = simulate_pe_gemm_i(&x, &w, &cfg, 4);
        let expect = (8 * 32 * 2 * (4 + 1)) as u64 / 4;
        assert_eq!(sim.counters.rac_reads, expect);
    }

    #[test]
    fn bigger_k_fewer_cycles() {
        let (x, w) = problem(16, 32, 2, 3);
        let cfg = EngineConfig::paper_default();
        let c1 = simulate_pe_gemm_i(&x, &w, &cfg, 1).counters.cycles;
        let c4 = simulate_pe_gemm_i(&x, &w, &cfg, 4).counters.cycles;
        let c16 = simulate_pe_gemm_i(&x, &w, &cfg, 16).counters.cycles;
        assert_eq!(c1, 4 * c4);
        assert_eq!(c4, 4 * c16);
    }

    #[test]
    fn uniform_model_runs_through_cycle_sim() {
        // The Eq. 3 rewrite executes losslessly through the timed PE too.
        let wmat = Mat::from_fn(4, 16, |r, c| ((r * 16 + c) as f64 * 0.157).sin());
        let u = rtn(&wmat, RtnParams::per_row(4));
        let w = BcqWeight::from_uniform(&u);
        let x = Mat::from_fn(2, 16, |b, c| ((b + c) as f64 * 0.091).cos());
        let cfg = EngineConfig::paper_default();
        let sim = simulate_pe_gemm_i(&x, &w, &cfg, 4);
        let func = gemm_i(&x, &w, &cfg);
        assert_eq!(sim.outputs.as_slice(), func.as_slice());
    }

    #[test]
    fn grouped_scales_supported() {
        let wmat = Mat::from_fn(4, 32, |r, c| ((r * 32 + c) as f64 * 0.143).sin());
        let w = BcqWeight::quantize(&wmat, BcqParams::grouped(3, 8));
        let x = Mat::from_fn(2, 32, |b, c| ((b + c) as f64 * 0.081).cos());
        let cfg = EngineConfig::paper_default();
        let sim = simulate_pe_gemm_i(&x, &w, &cfg, 4);
        let func = gemm_i(&x, &w, &cfg);
        assert_eq!(sim.outputs.as_slice(), func.as_slice());
    }
}
