//! Whole-engine evaluation: cycles, energy, area → TOPS, TOPS/W, TOPS/mm².
//!
//! [`evaluate`] prices a [`Workload`] (a set of GEMM shapes plus non-GEMM
//! FLOPs) on an [`EngineSpec`], producing the [`Report`] behind the paper's
//! Figs. 13, 15, 16, 17 and Table V. Energy is the sum of
//!
//! * **MPU compute** — engine-specific per-operation datapath energies
//!   (from [`Tech`]) plus per-cycle pipeline/LUT retention,
//! * **SRAM / DRAM** — tile traffic from [`crate::memory`],
//! * **VPU** — non-GEMM vector work.
//!
//! The engine-specific inner-loop costs mirror `figlut-gemm`'s functional
//! models one-to-one: every rounded operation there has a priced operation
//! here.

use crate::dataflow::gemm_cycles;
use crate::lutcost::lut_power;
use crate::memory::gemm_traffic;
use crate::mpu::{
    engine_area, geometry, pipeline_ff_pj_per_cycle, EngineArea, EngineSpec, SimEngine,
};
use crate::tech::Tech;
use figlut_lut::generator::GenSchedule;
use figlut_num::fp::FpFormat;

/// One GEMM shape in a workload: `batch × n` activations against `m × n`
/// weights, occurring `repeat` times (e.g. per layer × layers × tokens).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GemmShape {
    /// Output features.
    pub m: usize,
    /// Input features (reduction dim).
    pub n: usize,
    /// Batch (tokens in flight; the paper uses 32).
    pub batch: usize,
    /// Occurrence multiplier.
    pub repeat: f64,
}

impl GemmShape {
    /// MAC-counted operations (2 ops per multiply-accumulate), including
    /// repeats.
    pub fn ops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.batch as f64 * self.repeat
    }
}

/// A model's compute demand.
#[derive(Clone, Debug, PartialEq)]
pub struct Workload {
    /// GEMM inventory.
    pub gemms: Vec<GemmShape>,
    /// Non-GEMM FLOPs handled by the VPU (LayerNorm, softmax, GELU, …).
    pub nongemm_flops: f64,
}

impl Workload {
    /// Total GEMM operations.
    pub fn ops(&self) -> f64 {
        self.gemms.iter().map(GemmShape::ops).sum()
    }
}

/// Energy split used by the paper's Fig. 15 bars.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// MPU datapath + retention (pJ).
    pub mpu_pj: f64,
    /// Vector unit (pJ).
    pub vpu_pj: f64,
    /// On-chip SRAM traffic (pJ).
    pub sram_pj: f64,
    /// Off-chip DRAM traffic (pJ).
    pub dram_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy (pJ).
    pub fn total_pj(&self) -> f64 {
        self.mpu_pj + self.vpu_pj + self.sram_pj + self.dram_pj
    }
}

/// Evaluation result for one (engine, workload, precision) point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Report {
    /// Total cycles.
    pub cycles: f64,
    /// Total GEMM operations (MAC-counted ×2).
    pub ops: f64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Area breakdown.
    pub area: EngineArea,
    /// Clock (Hz), copied from the tech for derived metrics.
    pub freq_hz: f64,
}

impl Report {
    /// Wall-clock seconds.
    pub fn seconds(&self) -> f64 {
        self.cycles / self.freq_hz
    }

    /// Achieved tera-operations per second.
    pub fn tops(&self) -> f64 {
        self.ops / self.seconds() / 1e12
    }

    /// Average power in watts.
    pub fn power_w(&self) -> f64 {
        self.energy.total_pj() * 1e-12 / self.seconds()
    }

    /// Energy efficiency. (1 TOPS/W ≡ 1 operation per picojoule.)
    pub fn tops_per_w(&self) -> f64 {
        self.ops / self.energy.total_pj()
    }

    /// Area efficiency (TOPS per mm²).
    pub fn tops_per_mm2(&self) -> f64 {
        self.tops() / self.area.total_mm2()
    }
}

/// Evaluate `workload` on `spec` at average weight precision `weight_bits`
/// (fractional for mixed-precision models, e.g. 2.4).
///
/// # Panics
///
/// Panics if `weight_bits` is outside `(0, 8]`.
pub fn evaluate(tech: &Tech, spec: &EngineSpec, workload: &Workload, weight_bits: f64) -> Report {
    assert!(
        weight_bits > 0.0 && weight_bits <= 8.0,
        "weight precision {weight_bits} out of range"
    );
    let mut cycles = 0.0;
    let mut energy = EnergyBreakdown::default();
    for g in &workload.gemms {
        let c = gemm_cycles(tech, spec, g.m, g.n, g.batch, weight_bits);
        cycles += c.total() * g.repeat;
        let q_stream = if spec.engine.is_bit_serial() {
            weight_bits
        } else {
            1.0
        };
        let q_storage = if spec.engine.is_bit_serial() {
            weight_bits
        } else {
            spec.designed_bits as f64
        };
        let traffic = gemm_traffic(spec, g.m, g.n, g.batch, q_storage, q_stream);
        energy.dram_pj += traffic.dram_bits * tech.dram_pj_per_bit * g.repeat;
        energy.sram_pj += (traffic.sram_read_bits * tech.sram_read_pj_per_bit
            + traffic.sram_write_bits * tech.sram_write_pj_per_bit)
            * g.repeat;
        energy.mpu_pj +=
            mpu_compute_pj(tech, spec, g.m, g.n, g.batch, weight_bits, c.total()) * g.repeat;
    }
    energy.vpu_pj =
        workload.nongemm_flops * (tech.fp_mul(FpFormat::Fp32) + tech.fp_add(FpFormat::Fp32)) / 2.0;
    Report {
        cycles,
        ops: workload.ops(),
        energy,
        area: engine_area(tech, spec),
        freq_hz: tech.freq_hz,
    }
}

/// MPU datapath energy of one GEMM (pJ). Mirrors the functional engines in
/// `figlut-gemm` operation for operation.
fn mpu_compute_pj(
    tech: &Tech,
    spec: &EngineSpec,
    m: usize,
    n: usize,
    batch: usize,
    q: f64,
    total_cycles: f64,
) -> f64 {
    let g = geometry(spec);
    let uses = m as f64 * n as f64 * batch as f64;
    let m_tiles = (m as f64 / g.tm as f64).ceil();
    let n_tiles = (n as f64 / g.tn as f64).ceil();
    let p = spec.mant_bits();
    let fmt = spec.act;
    let fp32_mac = tech.fp_mul(FpFormat::Fp32) + tech.fp_add(FpFormat::Fp32);
    let pipeline = pipeline_ff_pj_per_cycle(tech, spec) * total_cycles;
    match spec.engine {
        SimEngine::Fpe => {
            let per_use = tech.i2f(fmt) + tech.fp_mul(fmt) + tech.fp_add(FpFormat::Fp32);
            uses * per_use + pipeline
        }
        SimEngine::Figna => {
            // The p+7-bit adder is the offset (Σ mantissa) accumulator.
            let per_use = tech.int_mul(p, spec.designed_bits)
                + tech.int_add(spec.acc_bits())
                + tech.int_add(p + 7);
            // Edge scaling: scale & base, one FP32 MAC each per (row, batch,
            // n-tile); alignment per activation fetch.
            let edge = m as f64 * batch as f64 * n_tiles * 2.0 * fp32_mac;
            let align = batch as f64 * n as f64 * m_tiles * tech.align(fmt);
            uses * per_use + edge + align + pipeline
        }
        SimEngine::Ifpu => {
            let bit_uses = uses * q;
            let per_bit = tech.int_add(spec.acc_bits());
            // Per-plane α scaling plus one offset pass (the bit-serial
            // scaling overhead the paper highlights).
            let edge = m as f64 * batch as f64 * (q + 1.0) * n_tiles * fp32_mac;
            let align = batch as f64 * n as f64 * m_tiles * q * tech.align(fmt);
            bit_uses * per_bit + edge + align + pipeline
        }
        SimEngine::FiglutF | SimEngine::FiglutI => {
            let pp = spec.pe_params();
            let lp = lut_power(tech, pp.kind, spec.mu, fmt.storage_bits(), spec.k);
            let reads = uses * q / spec.mu as f64;
            let per_read = lp.read_pj() + pp.datapath.add_pj(tech);
            // LUT retention + RAC registers, every cycle.
            let pes = 2.0 * 16.0 * 4.0;
            let racs = pes * spec.k as f64;
            let retention = pes * lp.hold_pj_per_cycle
                + racs * (spec.mu + pp.datapath.acc_bits()) as f64 * tech.ff_pj_per_bit_cycle;
            // Generator: every input-group presentation rebuilds a half
            // table (14 adds at µ = 4), shared down `gen_share_rows` rows.
            let gen_adds = GenSchedule::optimized(spec.mu, true).adds() as f64;
            let presentations =
                batch as f64 * (n as f64 / spec.mu as f64) * m_tiles * q / pp.gen_share_rows as f64;
            let gen = presentations * gen_adds * tech.fp_add(fmt);
            let edge = m as f64 * batch as f64 * (q + 1.0) * n_tiles * fp32_mac;
            let align = if spec.engine == SimEngine::FiglutI {
                batch as f64 * n as f64 * m_tiles * q * tech.align(fmt)
            } else {
                0.0
            };
            reads * per_read + retention * total_cycles + gen + edge + align + pipeline
        }
    }
}

/// A single-layer LLM-ish workload, convenient for tests and sweeps.
pub fn square_workload(dim: usize, batch: usize) -> Workload {
    Workload {
        gemms: vec![GemmShape {
            m: dim,
            n: dim,
            batch,
            repeat: 1.0,
        }],
        nongemm_flops: 20.0 * dim as f64 * batch as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tech {
        Tech::cmos28()
    }

    fn report(e: SimEngine, q: f64) -> Report {
        let spec = EngineSpec::paper(e, FpFormat::Fp16);
        evaluate(&t(), &spec, &square_workload(4096, 32), q)
    }

    #[test]
    fn tops_per_w_ordering_at_q4() {
        // The paper's headline ordering (Table V): FPE < iFPU < FIGNA <
        // FIGLUT-I.
        let fpe = report(SimEngine::Fpe, 4.0).tops_per_w();
        let ifpu = report(SimEngine::Ifpu, 4.0).tops_per_w();
        let figna = report(SimEngine::Figna, 4.0).tops_per_w();
        let figlut = report(SimEngine::FiglutI, 4.0).tops_per_w();
        assert!(fpe < ifpu, "FPE {fpe} !< iFPU {ifpu}");
        assert!(ifpu < figna, "iFPU {ifpu} !< FIGNA {figna}");
        assert!(figna < figlut, "FIGNA {figna} !< FIGLUT {figlut}");
        // Headline magnitude: ≥1.2× over FIGNA at Q4 (paper: 1.2×–1.4×).
        assert!(
            figlut / figna > 1.10,
            "FIGLUT/FIGNA = {} too small",
            figlut / figna
        );
    }

    #[test]
    fn q3_gap_grows_to_about_1_6x() {
        // Paper abstract: 59% higher TOPS/W than FIGNA at 3-bit.
        let figna = report(SimEngine::Figna, 3.0).tops_per_w();
        let figlut = report(SimEngine::FiglutI, 3.0).tops_per_w();
        let ratio = figlut / figna;
        assert!(
            (1.3..2.2).contains(&ratio),
            "Q3 FIGLUT/FIGNA = {ratio}, expected ≈1.6"
        );
    }

    #[test]
    fn sub4_bit_serial_efficiency_rises() {
        // Fig. 16: TOPS/W of FIGLUT grows as precision drops; fixed engines
        // stay flat.
        let f4 = report(SimEngine::FiglutI, 4.0).tops_per_w();
        let f3 = report(SimEngine::FiglutI, 3.0).tops_per_w();
        let f2 = report(SimEngine::FiglutI, 2.0).tops_per_w();
        assert!(f2 > f3 && f3 > f4, "{f2} {f3} {f4}");
        let g4 = report(SimEngine::Figna, 4.0).tops_per_w();
        let g2 = report(SimEngine::Figna, 2.0).tops_per_w();
        assert!(
            (g2 / g4 - 1.0).abs() < 0.05,
            "FIGNA should be flat: {g2} vs {g4}"
        );
    }

    #[test]
    fn q8_penalizes_bit_serial_throughput() {
        // Fig. 13 discussion: at Q8 bit-serial engines take 2× cycles.
        let lut4 = report(SimEngine::FiglutI, 4.0);
        let lut8 = report(SimEngine::FiglutI, 8.0);
        assert!((lut4.tops() / lut8.tops() - 2.0).abs() < 0.2);
        let fpe4 = report(SimEngine::Fpe, 4.0);
        let fpe8 = evaluate(
            &t(),
            &EngineSpec::paper(SimEngine::Fpe, FpFormat::Fp16).q8_variant(),
            &square_workload(4096, 32),
            8.0,
        );
        assert!((fpe4.tops() / fpe8.tops() - 1.0).abs() < 0.1);
    }

    #[test]
    fn figlut_area_efficiency_beats_figna_at_sub4() {
        // Fig. 13: proposed engines reach up to ~1.5× FIGNA's TOPS/mm² in
        // the sub-4-bit regime.
        let figna = report(SimEngine::Figna, 3.0);
        let figlut = report(SimEngine::FiglutI, 3.0);
        let ratio = figlut.tops_per_mm2() / figna.tops_per_mm2();
        assert!(ratio > 1.1, "Q3 area-efficiency ratio {ratio}");
    }

    #[test]
    fn energy_breakdown_components_positive() {
        let r = report(SimEngine::FiglutI, 4.0);
        assert!(r.energy.mpu_pj > 0.0);
        assert!(r.energy.sram_pj > 0.0);
        assert!(r.energy.dram_pj > 0.0);
        assert!(r.energy.vpu_pj > 0.0);
        // GEMM dominates the VPU (paper: non-GEMM impact "minimal").
        assert!(r.energy.vpu_pj < 0.05 * r.energy.total_pj());
    }

    #[test]
    fn dram_energy_drops_with_precision_for_bit_serial() {
        let e4 = report(SimEngine::FiglutI, 4.0).energy.dram_pj;
        let e2 = report(SimEngine::FiglutI, 2.0).energy.dram_pj;
        assert!(e2 < 0.6 * e4);
        // Fixed engines store padded weights: flat.
        let g4 = report(SimEngine::Figna, 4.0).energy.dram_pj;
        let g2 = report(SimEngine::Figna, 2.0).energy.dram_pj;
        assert!((g2 / g4 - 1.0).abs() < 0.01);
    }

    #[test]
    fn figlut_f_less_efficient_than_figlut_i() {
        // The paper focuses on FIGLUT-I "given that FIGLUT-I shows better
        // power efficiency with integer operations".
        let f = report(SimEngine::FiglutF, 4.0).tops_per_w();
        let i = report(SimEngine::FiglutI, 4.0).tops_per_w();
        assert!(i > f, "I {i} !> F {f}");
    }

    #[test]
    fn mixed_precision_interpolates() {
        let f2 = report(SimEngine::FiglutI, 2.0).tops_per_w();
        let f24 = report(SimEngine::FiglutI, 2.4).tops_per_w();
        let f3 = report(SimEngine::FiglutI, 3.0).tops_per_w();
        assert!(f2 > f24 && f24 > f3, "{f2} {f24} {f3}");
    }
}
