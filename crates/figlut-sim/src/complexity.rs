//! Computational-complexity accounting (paper Table I).
//!
//! The paper characterizes each engine by the count of inner-loop
//! arithmetic/lookup operations for a GEMM of `m × n` weights against `k`
//! activations of batch: GPU and FIGNA do `O(mnk)` multi-bit operations,
//! iFPU does `O(mnkq)` one-bit operations, and FIGLUT does `O(mnkq/µ)`
//! table reads.

/// Engine feature row of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FeatureRow {
    /// Platform name.
    pub name: &'static str,
    /// Native FP-INT operation (no dequantization)?
    pub fp_int: bool,
    /// Supports mixed weight precision on one hardware build?
    pub mixed_precision: bool,
    /// Supports BCQ (non-uniform) weights?
    pub bcq: bool,
    /// Complexity formula as printed in the paper.
    pub complexity: &'static str,
}

/// The four rows of Table I.
pub const TABLE1: [FeatureRow; 4] = [
    FeatureRow {
        name: "GPU",
        fp_int: false,
        mixed_precision: false,
        bcq: false,
        complexity: "O(mnk)",
    },
    FeatureRow {
        name: "iFPU",
        fp_int: true,
        mixed_precision: true,
        bcq: true,
        complexity: "O(mnkq)",
    },
    FeatureRow {
        name: "FIGNA",
        fp_int: true,
        mixed_precision: false,
        bcq: false,
        complexity: "O(mnk)",
    },
    FeatureRow {
        name: "FIGLUT (proposed)",
        fp_int: true,
        mixed_precision: true,
        bcq: true,
        complexity: "O(mnkq/µ)",
    },
];

/// Error returned by [`inner_ops`] for a platform Table I does not list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownPlatform(pub String);

impl core::fmt::Display for UnknownPlatform {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "unknown platform '{}' (Table I lists GPU, iFPU, FIGNA, FIGLUT)",
            self.0
        )
    }
}

impl std::error::Error for UnknownPlatform {}

/// Inner-loop operation count for each platform on an `(m, n, k)` GEMM with
/// `q`-bit weights and LUT group size `mu`.
///
/// # Errors
///
/// Returns [`UnknownPlatform`] for a name outside Table I.
pub fn inner_ops(
    name: &str,
    m: u64,
    n: u64,
    k: u64,
    q: u64,
    mu: u64,
) -> Result<f64, UnknownPlatform> {
    let base = (m * n * k) as f64;
    Ok(match name {
        "GPU" | "FIGNA" => base,
        "iFPU" => base * q as f64,
        "FIGLUT" | "FIGLUT (proposed)" => base * q as f64 / mu as f64,
        other => return Err(UnknownPlatform(other.to_string())),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figlut_reduces_bit_serial_ops_by_mu() {
        let ifpu = inner_ops("iFPU", 1024, 1024, 32, 4, 4).unwrap();
        let figlut = inner_ops("FIGLUT", 1024, 1024, 32, 4, 4).unwrap();
        assert_eq!(ifpu / figlut, 4.0);
    }

    #[test]
    fn figlut_q4_mu4_matches_fixed_engines() {
        // At q = µ = 4, FIGLUT's read count equals FIGNA's MAC count — the
        // equal-throughput normalization of §IV-B.
        let figna = inner_ops("FIGNA", 512, 512, 8, 4, 4).unwrap();
        let figlut = inner_ops("FIGLUT", 512, 512, 8, 4, 4).unwrap();
        assert_eq!(figna, figlut);
    }

    #[test]
    fn unknown_platform_is_a_named_error() {
        let err = inner_ops("TPU", 1, 1, 1, 4, 4).unwrap_err();
        assert_eq!(err, UnknownPlatform("TPU".into()));
        assert!(err.to_string().contains("unknown platform 'TPU'"));
    }

    #[test]
    fn table1_feature_flags() {
        let gpu = &TABLE1[0];
        assert!(!gpu.fp_int && !gpu.bcq);
        let figlut = &TABLE1[3];
        assert!(figlut.fp_int && figlut.mixed_precision && figlut.bcq);
        let figna = &TABLE1[2];
        assert!(figna.fp_int && !figna.mixed_precision && !figna.bcq);
    }
}
