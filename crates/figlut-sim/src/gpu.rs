//! GPU comparison rows for Table V.
//!
//! The paper's A100/H100 rows are *empirical measurements* (nvidia-smi power
//! and measured kernel latency at batch 32 on OPT-6.7B); GPUs cannot be
//! re-synthesized from a component library. We therefore carry the paper's
//! measured operating points as documented constants and cross-check them
//! with a memory-bound roofline model — small-batch LLM GEMM is bandwidth
//! limited, so achieved TFLOPS ≈ 2·B·BW/bytes-per-weight × efficiency.

/// A GPU (or GPU-kernel) operating point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuPoint {
    /// Device / kernel label.
    pub name: &'static str,
    /// Activation-weight format label.
    pub format: &'static str,
    /// Measured throughput (TFLOPS for FP-FP, TOPS for FP-INT).
    pub tops: f64,
    /// Measured board power (W).
    pub power_w: f64,
    /// HBM bandwidth (bytes/s) for the roofline cross-check.
    pub hbm_bw: f64,
    /// Bytes moved per weight during the GEMM (2 for FP16, 0.5 for Q4).
    pub bytes_per_weight: f64,
    /// Batch size of the measurement.
    pub batch: usize,
}

impl GpuPoint {
    /// Energy efficiency (TOPS/W).
    pub fn tops_per_w(&self) -> f64 {
        self.tops / self.power_w
    }

    /// Memory-bound roofline throughput: every weight byte read once per
    /// batch of `batch` tokens sustains `2·batch / bytes_per_weight` ops
    /// per byte of bandwidth.
    pub fn roofline_tops(&self) -> f64 {
        2.0 * self.batch as f64 * self.hbm_bw / self.bytes_per_weight / 1e12
    }

    /// Fraction of the roofline the measurement achieves.
    pub fn roofline_efficiency(&self) -> f64 {
        self.tops / self.roofline_tops()
    }
}

/// A100, FP16×FP16 cuBLAS at batch 32 (paper Table V).
pub const A100_FP16: GpuPoint = GpuPoint {
    name: "A100",
    format: "FP16-FP16",
    tops: 40.27,
    power_w: 192.0,
    hbm_bw: 2.0e12,
    bytes_per_weight: 2.0,
    batch: 32,
};

/// A100 running the LUT-GEMM FP16×Q4 kernel — batch 1 only, CUDA cores,
/// shared-memory bank conflicts (paper Table V, §II-C).
pub const A100_LUTGEMM_Q4: GpuPoint = GpuPoint {
    name: "A100 (LUT-GEMM)",
    format: "FP16-Q4",
    tops: 1.85,
    power_w: 208.0,
    hbm_bw: 2.0e12,
    bytes_per_weight: 0.5,
    batch: 1,
};

/// H100, FP16×FP16 at batch 32 (paper Table V).
pub const H100_FP16: GpuPoint = GpuPoint {
    name: "H100",
    format: "FP16-FP16",
    tops: 62.08,
    power_w: 279.0,
    hbm_bw: 3.35e12,
    bytes_per_weight: 2.0,
    batch: 32,
};

/// All GPU rows of Table V.
pub const TABLE5_GPUS: [GpuPoint; 3] = [A100_FP16, A100_LUTGEMM_Q4, H100_FP16];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reported_efficiencies() {
        // Table V: 0.21, 0.01, 0.22 TOPS/W.
        assert!((A100_FP16.tops_per_w() - 0.21).abs() < 0.005);
        assert!((A100_LUTGEMM_Q4.tops_per_w() - 0.01).abs() < 0.005);
        assert!((H100_FP16.tops_per_w() - 0.22).abs() < 0.005);
    }

    #[test]
    fn measurements_sit_below_roofline() {
        for g in TABLE5_GPUS {
            let eff = g.roofline_efficiency();
            assert!(
                eff > 0.0 && eff < 1.0,
                "{}: roofline efficiency {eff} out of (0,1)",
                g.name
            );
        }
        // Batch-32 FP16 runs reasonably close to the bandwidth bound
        // (paper: "reported TFLOPS … significantly lower than theoretical
        // peaks, primarily due to the small batch size" — i.e. memory
        // bound, not compute bound).
        assert!(A100_FP16.roofline_efficiency() > 0.4);
    }

    #[test]
    fn lutgemm_batch1_wastes_bandwidth_potential() {
        // LUT-GEMM at batch 1: only 2·BW/0.5 = 8 TOPS roofline, and bank
        // conflicts keep it well under even that.
        let r = A100_LUTGEMM_Q4.roofline_tops();
        assert!(r < 10.0);
        assert!(A100_LUTGEMM_Q4.roofline_efficiency() < 0.5);
    }

    #[test]
    fn h100_more_efficient_than_a100() {
        assert!(H100_FP16.tops_per_w() > A100_FP16.tops_per_w());
    }
}
