//! MPU geometries and area models for the five engines (paper §IV-B, Fig. 14).
//!
//! All engines are normalized to the *same peak throughput* (the paper's
//! fairness rule): 16384 weight-bit positions per cycle at Q4 —
//!
//! * FPE / FIGNA: 64 × 64 PE arrays (4096 multi-bit weights/cycle),
//! * iFPU: 64 × 64 × 4 one-bit cells,
//! * FIGLUT: a 2 × 16 × 4 PE array; with µ = 4 and k = 32 that is
//!   128 PEs × 32 RACs × 4 weights/read = 16384 bit positions.
//!
//! Area is reported in the paper's two buckets (arithmetic vs flip-flop),
//! plus the engine-level additions (SRAM buffers, VPU, systolic input
//! setup) used for TOPS/mm².

use crate::lutcost::{pe_area, LutKind, PeParams, RacDatapath};
use crate::tech::Tech;
use figlut_num::fp::FpFormat;

/// Hardware engine being simulated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SimEngine {
    /// Dequantize + FP MAC baseline.
    Fpe,
    /// Bit-serial pre-aligned adder array.
    Ifpu,
    /// Pre-aligned INT-MAC array.
    Figna,
    /// LUT-based, FP datapath.
    FiglutF,
    /// LUT-based, pre-aligned integer datapath.
    FiglutI,
}

impl SimEngine {
    /// All engines in the paper's plotting order.
    pub const ALL: [SimEngine; 5] = [
        SimEngine::Fpe,
        SimEngine::Ifpu,
        SimEngine::Figna,
        SimEngine::FiglutF,
        SimEngine::FiglutI,
    ];

    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            SimEngine::Fpe => "FPE",
            SimEngine::Ifpu => "iFPU",
            SimEngine::Figna => "FIGNA",
            SimEngine::FiglutF => "FIGLUT-F",
            SimEngine::FiglutI => "FIGLUT-I",
        }
    }

    /// Bit-serial engines run cycles proportional to the weight bit-width;
    /// fixed engines pad sub-designed precisions (paper Fig. 15 discussion).
    pub const fn is_bit_serial(self) -> bool {
        matches!(
            self,
            SimEngine::Ifpu | SimEngine::FiglutF | SimEngine::FiglutI
        )
    }

    /// `true` for the two FIGLUT variants.
    pub const fn is_lut(self) -> bool {
        matches!(self, SimEngine::FiglutF | SimEngine::FiglutI)
    }

    /// `true` for engines that pre-align activations to integer mantissas.
    pub const fn uses_prealign(self) -> bool {
        matches!(
            self,
            SimEngine::Ifpu | SimEngine::Figna | SimEngine::FiglutI
        )
    }
}

impl core::fmt::Display for SimEngine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete hardware instance to evaluate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineSpec {
    /// Engine family.
    pub engine: SimEngine,
    /// Activation format.
    pub act: FpFormat,
    /// Designed weight width for the fixed-precision engines (4 for the Q4
    /// build, 8 for the extended Q8 build; ignored by bit-serial engines).
    pub designed_bits: u32,
    /// LUT group size (FIGLUT only).
    pub mu: u32,
    /// RACs per LUT (FIGLUT only).
    pub k: u32,
    /// LUT structure (FIGLUT only). The paper's design uses the hFFLUT;
    /// [`LutKind::Fflut`] is kept as an ablation point.
    pub lut_kind: LutKind,
}

impl EngineSpec {
    /// The paper's standard build: Q4-designed fixed engines, µ = 4, k = 32.
    pub fn paper(engine: SimEngine, act: FpFormat) -> Self {
        Self {
            engine,
            act,
            designed_bits: 4,
            mu: 4,
            k: 32,
            lut_kind: LutKind::Hfflut,
        }
    }

    /// The extended Q8 build of the fixed-precision engines.
    pub fn q8_variant(mut self) -> Self {
        self.designed_bits = 8;
        self
    }

    /// Aligned-mantissa width for the pre-aligning engines (format
    /// precision incl. hidden bit).
    pub fn mant_bits(&self) -> u32 {
        self.act.precision()
    }

    /// Integer accumulator width: mantissa + weight/group growth headroom
    /// (64-deep reduction ⇒ 6 bits, plus sign).
    pub fn acc_bits(&self) -> u32 {
        match self.engine {
            SimEngine::Figna => self.mant_bits() + self.designed_bits + 7,
            _ => self.mant_bits() + 13,
        }
    }

    /// The RAC datapath for LUT engines.
    pub fn rac_datapath(&self) -> RacDatapath {
        match self.engine {
            SimEngine::FiglutF => RacDatapath::Fp32Acc,
            _ => RacDatapath::IntAcc {
                bits: self.acc_bits(),
            },
        }
    }

    /// PE parameters for the LUT engines.
    pub fn pe_params(&self) -> PeParams {
        PeParams {
            mu: self.mu,
            k: self.k,
            fmt: self.act,
            kind: self.lut_kind,
            datapath: self.rac_datapath(),
            gen_share_rows: 2,
        }
    }
}

/// Array geometry and peak throughput.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Geometry {
    /// Output rows covered per tile.
    pub tm: usize,
    /// Input channels covered per tile.
    pub tn: usize,
    /// Physical compute cells (PEs / bit-cells / RACs).
    pub cells: usize,
    /// Systolic pipeline fill stages per tile (the paper's 63 vs 15).
    pub fill_stages: usize,
    /// Input bus width in activations per cycle.
    pub input_width: usize,
    /// Peak weight-bit positions processed per cycle.
    pub bit_ops_per_cycle: f64,
}

impl Geometry {
    /// Weights processed per cycle at an (average) precision `q`.
    ///
    /// Fixed engines always move `cells` weights per cycle; bit-serial
    /// engines trade bit-planes for speed.
    pub fn weights_per_cycle(&self, engine: SimEngine, q: f64) -> f64 {
        if engine.is_bit_serial() {
            self.bit_ops_per_cycle / q
        } else {
            match engine {
                SimEngine::Fpe | SimEngine::Figna => self.cells as f64,
                _ => unreachable!("bit-serial handled above"),
            }
        }
    }
}

/// Geometry of the paper's builds.
pub fn geometry(spec: &EngineSpec) -> Geometry {
    match spec.engine {
        SimEngine::Fpe | SimEngine::Figna => Geometry {
            tm: 64,
            tn: 64,
            cells: 4096,
            fill_stages: 63,
            input_width: 64,
            bit_ops_per_cycle: 4096.0 * spec.designed_bits as f64,
        },
        SimEngine::Ifpu => Geometry {
            tm: 64,
            tn: 64,
            cells: 16384,
            fill_stages: 63,
            input_width: 64,
            bit_ops_per_cycle: 16384.0,
        },
        SimEngine::FiglutF | SimEngine::FiglutI => {
            // 2 × 16 × 4 PEs, k RACs each, µ weights per read.
            let pes = 2 * 16 * 4;
            let racs = pes * spec.k as usize;
            Geometry {
                tm: 2 * spec.k as usize,
                tn: 16 * 4 * spec.mu as usize,
                cells: racs,
                fill_stages: 15,
                input_width: 16 * 4 * spec.mu as usize,
                bit_ops_per_cycle: (racs * spec.mu as usize) as f64,
            }
        }
    }
}

/// MPU area in the paper's Fig. 14 buckets.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AreaBreakdown {
    /// Arithmetic logic (µm²).
    pub arithmetic_um2: f64,
    /// Flip-flops / storage (µm²).
    pub flipflop_um2: f64,
}

impl AreaBreakdown {
    /// Total (µm²).
    pub fn total_um2(&self) -> f64 {
        self.arithmetic_um2 + self.flipflop_um2
    }
}

/// Barrel-shifter + max-exponent comparator area per pre-alignment lane.
fn aligner_area(tech: &Tech, mant_bits: u32) -> f64 {
    // A log-shifter is ~log2(p) mux stages of p bits plus an exponent
    // comparator (int add width of the exponent field).
    let stages = (32 - (mant_bits - 1).leading_zeros()) as f64;
    stages * mant_bits as f64 * tech.mux2_um2_per_bit + tech.int_add_area(8)
}

/// MPU area of a build, split arithmetic vs flip-flop.
pub fn mpu_area(tech: &Tech, spec: &EngineSpec) -> AreaBreakdown {
    let g = geometry(spec);
    let p = spec.mant_bits();
    let d = spec.designed_bits;
    let fmt_bits = spec.act.storage_bits();
    match spec.engine {
        SimEngine::Fpe => {
            let per_pe_arith = tech.i2f_area(spec.act)
                + tech.fp_mul_area(spec.act)
                + tech.fp_add_area(FpFormat::Fp32);
            // Input register, FP32 psum, weight register, control.
            let per_pe_ff = (fmt_bits + 32 + d + 4) as f64 * tech.ff_um2_per_bit;
            AreaBreakdown {
                arithmetic_um2: g.cells as f64 * per_pe_arith,
                flipflop_um2: g.cells as f64 * per_pe_ff + setup_ff_area(tech, &g, fmt_bits),
            }
        }
        SimEngine::Figna => {
            let acc = spec.acc_bits();
            // INT×INT MAC plus the second (offset/base) accumulator path
            // required for asymmetric uniform grids: Σ mantissa.
            let per_pe_arith =
                tech.int_mul_area(p, d) + tech.int_add_area(acc) + tech.int_add_area(p + 7);
            let per_pe_ff = (p + acc + (p + 7) + d + 4) as f64 * tech.ff_um2_per_bit;
            let aligners = g.input_width as f64 * aligner_area(tech, p);
            // Edge scaling: one FP32 multiplier+adder pair per output row.
            let edge =
                g.tm as f64 * (tech.fp_mul_area(FpFormat::Fp32) + tech.fp_add_area(FpFormat::Fp32));
            AreaBreakdown {
                arithmetic_um2: g.cells as f64 * per_pe_arith + aligners + edge,
                flipflop_um2: g.cells as f64 * per_pe_ff + setup_ff_area(tech, &g, fmt_bits),
            }
        }
        SimEngine::Ifpu => {
            let acc = spec.acc_bits();
            // One add/sub per 1-bit cell; each cell owns its plane partial.
            let per_cell_arith = tech.int_add_area(acc);
            let per_cell_ff =
                (1 + 2 + acc) as f64 * tech.ff_um2_per_bit + (p as f64 / 4.0) * tech.ff_um2_per_bit; // input reg shared by 4 lanes
            let aligners = g.input_width as f64 * aligner_area(tech, p);
            let edge =
                g.tm as f64 * (tech.fp_mul_area(FpFormat::Fp32) + tech.fp_add_area(FpFormat::Fp32));
            AreaBreakdown {
                arithmetic_um2: g.cells as f64 * per_cell_arith + aligners + edge,
                flipflop_um2: g.cells as f64 * per_cell_ff + setup_ff_area(tech, &g, fmt_bits),
            }
        }
        SimEngine::FiglutF | SimEngine::FiglutI => {
            let pes = 2 * 16 * 4;
            let pe = pe_area(tech, &spec.pe_params());
            // The generator share inside `pe_area` covers the adder trees;
            // aligners for the I variant sit at the array edge.
            let aligners = if spec.engine == SimEngine::FiglutI {
                g.input_width as f64 * aligner_area(tech, p)
            } else {
                0.0
            };
            let edge =
                g.tm as f64 * (tech.fp_mul_area(FpFormat::Fp32) + tech.fp_add_area(FpFormat::Fp32));
            // Split the PE area into buckets: LUT storage + registers are
            // FF; adders, muxes and generators are arithmetic.
            let pp = spec.pe_params();
            let lut_bits = (spec.lut_kind.stored_entries(spec.mu) as u32 * fmt_bits) as f64;
            let reg_bits = spec.k as f64 * (spec.mu + pp.datapath.acc_bits()) as f64;
            let ff = (lut_bits + reg_bits) * tech.ff_um2_per_bit;
            let arith_per_pe = pe - ff;
            AreaBreakdown {
                arithmetic_um2: pes as f64 * arith_per_pe + aligners + edge,
                flipflop_um2: pes as f64 * ff + setup_ff_area(tech, &g, fmt_bits),
            }
        }
    }
}

/// Systolic data-setup flip-flops: a triangular delay array of up to
/// `fill_stages` registers across the input bus (paper: "63-stage input
/// buffers … FIGLUT requires a maximum of only 15").
fn setup_ff_area(tech: &Tech, g: &Geometry, fmt_bits: u32) -> f64 {
    let bits = g.fill_stages as f64 * g.input_width as f64 * fmt_bits as f64 / 2.0;
    bits * tech.ff_um2_per_bit
}

/// Per-cycle flip-flop energy of the systolic setup + PE pipeline registers.
pub fn pipeline_ff_pj_per_cycle(tech: &Tech, spec: &EngineSpec) -> f64 {
    let g = geometry(spec);
    let fmt_bits = spec.act.storage_bits();
    let p = spec.mant_bits();
    let d = spec.designed_bits;
    let per_cell_bits = match spec.engine {
        SimEngine::Fpe => (fmt_bits + 32 + d + 4) as f64,
        SimEngine::Figna => (p + spec.acc_bits() + (p + 7) + d + 4) as f64,
        SimEngine::Ifpu => (1 + 2 + spec.acc_bits()) as f64 + p as f64 / 4.0,
        // LUT engines: register energy is accounted inside `pe_power`.
        SimEngine::FiglutF | SimEngine::FiglutI => 0.0,
    };
    let setup_bits = g.fill_stages as f64 * g.input_width as f64 * fmt_bits as f64 / 2.0;
    (g.cells as f64 * per_cell_bits + setup_bits) * tech.ff_pj_per_bit_cycle
}

/// Engine-level area: MPU + SRAM buffers + VPU.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineArea {
    /// The matrix processing unit.
    pub mpu: AreaBreakdown,
    /// On-chip SRAM buffers (input/weight/psum/unified).
    pub sram_um2: f64,
    /// Vector processing unit for non-GEMM ops.
    pub vpu_um2: f64,
}

impl EngineArea {
    /// Total engine area (µm²).
    pub fn total_um2(&self) -> f64 {
        self.mpu.total_um2() + self.sram_um2 + self.vpu_um2
    }

    /// Total in mm².
    pub fn total_mm2(&self) -> f64 {
        self.total_um2() / 1e6
    }
}

/// Full engine area including buffers and VPU.
pub fn engine_area(tech: &Tech, spec: &EngineSpec) -> EngineArea {
    let mpu = mpu_area(tech, spec);
    EngineArea {
        mpu,
        sram_um2: crate::memory::buffer_bits(spec) as f64 * tech.sram_um2_per_bit,
        vpu_um2: 64.0 * (tech.fp_mul_area(FpFormat::Fp32) + tech.fp_add_area(FpFormat::Fp32)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tech {
        Tech::cmos28()
    }

    #[test]
    fn throughput_normalized_across_engines() {
        // Paper: all engines are designed for identical Q4 throughput.
        for e in SimEngine::ALL {
            let spec = EngineSpec::paper(e, FpFormat::Fp16);
            let g = geometry(&spec);
            let w = g.weights_per_cycle(e, 4.0);
            assert!((w - 4096.0).abs() < 1e-9, "{}: {w}", e.name());
        }
    }

    #[test]
    fn bit_serial_speeds_up_at_low_precision() {
        let spec = EngineSpec::paper(SimEngine::FiglutI, FpFormat::Fp16);
        let g = geometry(&spec);
        assert_eq!(g.weights_per_cycle(SimEngine::FiglutI, 2.0), 8192.0);
        assert_eq!(g.weights_per_cycle(SimEngine::FiglutI, 8.0), 2048.0);
        // Fixed engines cannot exploit sub-designed precision.
        let f = EngineSpec::paper(SimEngine::Figna, FpFormat::Fp16);
        assert_eq!(
            geometry(&f).weights_per_cycle(SimEngine::Figna, 2.0),
            4096.0
        );
    }

    #[test]
    fn figlut_fill_stages_are_15_vs_63() {
        let lut = geometry(&EngineSpec::paper(SimEngine::FiglutI, FpFormat::Fp16));
        let fpe = geometry(&EngineSpec::paper(SimEngine::Fpe, FpFormat::Fp16));
        assert_eq!(lut.fill_stages, 15);
        assert_eq!(fpe.fill_stages, 63);
    }

    #[test]
    fn fig14_fpe_is_arithmetic_dominated_and_largest() {
        let tech = t();
        let a_fpe = mpu_area(&tech, &EngineSpec::paper(SimEngine::Fpe, FpFormat::Fp16));
        assert!(a_fpe.arithmetic_um2 > a_fpe.flipflop_um2);
        for e in [SimEngine::Figna, SimEngine::Ifpu, SimEngine::FiglutI] {
            let a = mpu_area(&tech, &EngineSpec::paper(e, FpFormat::Fp16));
            assert!(
                a.total_um2() < a_fpe.total_um2(),
                "{} not smaller than FPE",
                e.name()
            );
        }
    }

    #[test]
    fn fig14_ifpu_has_more_ff_than_fpe() {
        // Paper: "iFPUs … employ a greater number of flip-flops than FPEs".
        let tech = t();
        let fpe = mpu_area(&tech, &EngineSpec::paper(SimEngine::Fpe, FpFormat::Fp16));
        let ifpu = mpu_area(&tech, &EngineSpec::paper(SimEngine::Ifpu, FpFormat::Fp16));
        assert!(ifpu.flipflop_um2 > fpe.flipflop_um2);
    }

    #[test]
    fn fig14_figlut_reduces_flipflop_area() {
        // Paper: "the introduction of LUT-based operations reduces the
        // overall flip-flop area compared to other hardware architectures".
        let tech = t();
        let lut = mpu_area(
            &tech,
            &EngineSpec::paper(SimEngine::FiglutI, FpFormat::Fp16),
        );
        for e in [SimEngine::Fpe, SimEngine::Ifpu, SimEngine::Figna] {
            let a = mpu_area(&tech, &EngineSpec::paper(e, FpFormat::Fp16));
            assert!(
                lut.flipflop_um2 < a.flipflop_um2,
                "FIGLUT FF {} !< {} FF {}",
                lut.flipflop_um2,
                e.name(),
                a.flipflop_um2
            );
        }
    }

    #[test]
    fn fig14_q8_hits_figna_harder_than_fpe() {
        // Paper: FIGNA's arithmetic scales with weight bits; FPE only grows
        // its dequantizer.
        let tech = t();
        let figna4 = mpu_area(&tech, &EngineSpec::paper(SimEngine::Figna, FpFormat::Fp16));
        let figna8 = mpu_area(
            &tech,
            &EngineSpec::paper(SimEngine::Figna, FpFormat::Fp16).q8_variant(),
        );
        let fpe4 = mpu_area(&tech, &EngineSpec::paper(SimEngine::Fpe, FpFormat::Fp16));
        let fpe8 = mpu_area(
            &tech,
            &EngineSpec::paper(SimEngine::Fpe, FpFormat::Fp16).q8_variant(),
        );
        let growth_figna = figna8.arithmetic_um2 / figna4.arithmetic_um2;
        let growth_fpe = fpe8.arithmetic_um2 / fpe4.arithmetic_um2;
        assert!(
            growth_figna > growth_fpe,
            "FIGNA growth {growth_figna} !> FPE growth {growth_fpe}"
        );
    }

    #[test]
    fn figlut_i_smaller_than_figna_mpu() {
        // Paper Fig. 13/14: FIGLUT-I is at least as dense as FIGNA.
        let tech = t();
        let lut = mpu_area(
            &tech,
            &EngineSpec::paper(SimEngine::FiglutI, FpFormat::Fp16),
        );
        let figna = mpu_area(&tech, &EngineSpec::paper(SimEngine::Figna, FpFormat::Fp16));
        assert!(
            lut.total_um2() < figna.total_um2() * 1.05,
            "FIGLUT {} vs FIGNA {}",
            lut.total_um2(),
            figna.total_um2()
        );
    }
}
