//! Weight-stationary tile scheduling and cycle counts (paper Fig. 5).
//!
//! All engines stream a GEMM as output-row × input-channel tiles. Fixed
//! engines make one pass per tile; FP-BCQ engines iterate bit-planes
//! *inside* the tile (Fig. 5(b)) so sub-4-bit models finish proportionally
//! faster and Q8 takes twice as long — the defining bit-serial trade-off of
//! Figs. 13/15/16.

use crate::memory::gemm_traffic;
use crate::mpu::{geometry, EngineSpec};
use crate::tech::Tech;

/// Cycle accounting of one GEMM on one engine.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CycleReport {
    /// Steady-state compute cycles.
    pub compute: f64,
    /// Pipeline fill / bit-plane switch overhead.
    pub fill: f64,
    /// DRAM-transfer floor (double buffering overlaps it with compute).
    pub dram: f64,
}

impl CycleReport {
    /// Wall-clock cycles: compute and DRAM streams overlap via double
    /// buffering, so the slower one dominates.
    pub fn total(&self) -> f64 {
        (self.compute + self.fill).max(self.dram)
    }

    /// `true` if the GEMM is DRAM-bound on this engine.
    pub fn memory_bound(&self) -> bool {
        self.dram > self.compute + self.fill
    }
}

/// Tile counts for an `(m × n)` weight matrix on this engine's array.
pub fn tiles(spec: &EngineSpec, m: usize, n: usize) -> f64 {
    let g = geometry(spec);
    (m as f64 / g.tm as f64).ceil() * (n as f64 / g.tn as f64).ceil()
}

/// Cycle model of one GEMM.
///
/// `q_eff` is the average weight precision actually iterated (fractional
/// for mixed-precision models); fixed-precision engines ignore it for
/// compute (they always move `designed_bits`-padded weights) but store
/// padded weights, which the DRAM floor reflects.
pub fn gemm_cycles(
    tech: &Tech,
    spec: &EngineSpec,
    m: usize,
    n: usize,
    batch: usize,
    q_eff: f64,
) -> CycleReport {
    let g = geometry(spec);
    let uses = m as f64 * n as f64 * batch as f64;
    let compute = if spec.engine.is_bit_serial() {
        uses * q_eff / g.bit_ops_per_cycle
    } else {
        uses / g.cells as f64
    };
    // Double buffering overlaps weight loads and input skew across tiles:
    // the systolic pipeline fills once per GEMM, and each tile (and each
    // bit-plane switch within it) costs only a one-cycle register swap.
    let q_stream = if spec.engine.is_bit_serial() {
        q_eff
    } else {
        1.0
    };
    let fill = g.fill_stages as f64 + tiles(spec, m, n) * q_stream;
    let q_storage = if spec.engine.is_bit_serial() {
        q_eff
    } else {
        spec.designed_bits as f64
    };
    let traffic = gemm_traffic(spec, m, n, batch, q_storage, q_stream);
    let dram = traffic.dram_bits / 8.0 / tech.dram_bytes_per_cycle();
    CycleReport {
        compute,
        fill,
        dram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpu::SimEngine;
    use figlut_num::fp::FpFormat;

    fn spec(e: SimEngine) -> EngineSpec {
        EngineSpec::paper(e, FpFormat::Fp16)
    }

    #[test]
    fn equal_throughput_at_q4() {
        let t = Tech::cmos28();
        let mut totals = Vec::new();
        for e in SimEngine::ALL {
            let c = gemm_cycles(&t, &spec(e), 4096, 4096, 32, 4.0);
            totals.push((e, c.compute));
        }
        let base = totals[0].1;
        for (e, c) in totals {
            assert!((c / base - 1.0).abs() < 0.01, "{}: {c} vs {base}", e.name());
        }
    }

    #[test]
    fn bit_serial_scales_with_q() {
        let t = Tech::cmos28();
        let s = spec(SimEngine::FiglutI);
        let c2 = gemm_cycles(&t, &s, 2048, 2048, 32, 2.0).compute;
        let c4 = gemm_cycles(&t, &s, 2048, 2048, 32, 4.0).compute;
        let c8 = gemm_cycles(&t, &s, 2048, 2048, 32, 8.0).compute;
        assert!((c4 / c2 - 2.0).abs() < 1e-9);
        assert!((c8 / c4 - 2.0).abs() < 1e-9);
        // Fixed engine: flat.
        let f = spec(SimEngine::Figna);
        let f2 = gemm_cycles(&t, &f, 2048, 2048, 32, 2.0).compute;
        let f4 = gemm_cycles(&t, &f, 2048, 2048, 32, 4.0).compute;
        assert_eq!(f2, f4);
    }

    #[test]
    fn fill_overhead_smaller_for_figlut() {
        let t = Tech::cmos28();
        let lut = gemm_cycles(&t, &spec(SimEngine::FiglutI), 512, 512, 1, 4.0);
        let fpe = gemm_cycles(&t, &spec(SimEngine::Fpe), 512, 512, 1, 4.0);
        assert!(lut.fill < fpe.fill, "{} vs {}", lut.fill, fpe.fill);
    }

    #[test]
    fn small_batch_is_memory_bound() {
        // Batch-1 GEMV is the paper's memory-bound motivation.
        let t = Tech::cmos28();
        let c1 = gemm_cycles(&t, &spec(SimEngine::FiglutI), 4096, 4096, 1, 4.0);
        assert!(c1.memory_bound(), "batch-1 should be DRAM-bound");
        let c32 = gemm_cycles(&t, &spec(SimEngine::FiglutI), 4096, 4096, 32, 4.0);
        assert!(!c32.memory_bound(), "batch-32 should be compute-bound");
    }

    #[test]
    fn tile_counts() {
        let s = spec(SimEngine::Fpe); // 64×64 tiles
        assert_eq!(tiles(&s, 128, 128), 4.0);
        assert_eq!(tiles(&s, 65, 64), 2.0);
        let l = spec(SimEngine::FiglutI); // 64×256 tiles
        assert_eq!(tiles(&l, 128, 512), 4.0);
    }
}
