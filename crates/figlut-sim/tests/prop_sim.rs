//! Property tests for the cost simulator: structural monotonicities that
//! must hold for *any* workload shape, not just the OPT points the paper
//! plots.

use figlut_num::fp::FpFormat;
use figlut_sim::engine::{evaluate, GemmShape, Workload};
use figlut_sim::lutcost::{lut_power, LutKind};
use figlut_sim::mpu::{geometry, EngineSpec, SimEngine};
use figlut_sim::tech::Tech;
use proptest::prelude::*;

fn workload() -> impl Strategy<Value = Workload> {
    (64usize..4096, 64usize..4096, 1usize..64).prop_map(|(m, n, batch)| Workload {
        gemms: vec![GemmShape {
            m,
            n,
            batch,
            repeat: 1.0,
        }],
        nongemm_flops: 0.0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bit_serial_energy_monotone_in_precision(wl in workload(), e in 0usize..3) {
        let engine = [SimEngine::Ifpu, SimEngine::FiglutF, SimEngine::FiglutI][e];
        let tech = Tech::cmos28();
        let spec = EngineSpec::paper(engine, FpFormat::Fp16);
        let mut last = 0.0;
        for q in [1.0, 2.0, 3.0, 4.0, 6.0, 8.0] {
            let r = evaluate(&tech, &spec, &wl, q);
            let total = r.energy.total_pj();
            prop_assert!(total > last, "{}: q={q} energy {total} <= {last}", engine.name());
            last = total;
        }
    }

    #[test]
    fn fixed_engines_flat_below_designed_bits(wl in workload()) {
        let tech = Tech::cmos28();
        for e in [SimEngine::Fpe, SimEngine::Figna] {
            let spec = EngineSpec::paper(e, FpFormat::Fp16);
            let r2 = evaluate(&tech, &spec, &wl, 2.0);
            let r4 = evaluate(&tech, &spec, &wl, 4.0);
            prop_assert!((r2.energy.total_pj() / r4.energy.total_pj() - 1.0).abs() < 1e-9);
            prop_assert!((r2.cycles / r4.cycles - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn figlut_wins_tops_per_w_everywhere(wl in workload(), qi in 0usize..3) {
        // The headline ordering must hold for arbitrary GEMM shapes, not
        // just OPT layers.
        let q = [2.0, 3.0, 4.0][qi];
        let tech = Tech::cmos28();
        let tw = |e| {
            evaluate(&tech, &EngineSpec::paper(e, FpFormat::Fp16), &wl, q).tops_per_w()
        };
        prop_assert!(tw(SimEngine::FiglutI) > tw(SimEngine::Figna));
        prop_assert!(tw(SimEngine::FiglutI) > tw(SimEngine::Ifpu));
        prop_assert!(tw(SimEngine::Figna) > tw(SimEngine::Fpe));
    }

    #[test]
    fn larger_batch_never_hurts_efficiency(
        m in 256usize..4096,
        n in 256usize..4096,
    ) {
        // Amortizing the weight traffic over more tokens can only help.
        let tech = Tech::cmos28();
        let spec = EngineSpec::paper(SimEngine::FiglutI, FpFormat::Fp16);
        let mut last = 0.0;
        for batch in [1usize, 4, 16, 64] {
            let wl = Workload {
                gemms: vec![GemmShape { m, n, batch, repeat: 1.0 }],
                nongemm_flops: 0.0,
            };
            let r = evaluate(&tech, &spec, &wl, 4.0);
            prop_assert!(r.tops_per_w() >= last, "batch={batch}");
            last = r.tops_per_w();
        }
    }

    #[test]
    fn energy_scales_linearly_with_repeat(wl in workload(), rep in 2.0f64..16.0) {
        let tech = Tech::cmos28();
        let spec = EngineSpec::paper(SimEngine::FiglutI, FpFormat::Fp16);
        let r1 = evaluate(&tech, &spec, &wl, 4.0);
        let mut wl2 = wl.clone();
        for g in &mut wl2.gemms {
            g.repeat *= rep;
        }
        let r2 = evaluate(&tech, &spec, &wl2, 4.0);
        prop_assert!((r2.energy.total_pj() / r1.energy.total_pj() / rep - 1.0).abs() < 1e-9);
        prop_assert!((r2.cycles / r1.cycles / rep - 1.0).abs() < 1e-9);
        // TOPS/W is repeat-invariant.
        prop_assert!((r2.tops_per_w() / r1.tops_per_w() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lut_power_monotone_in_mu_and_k(mu in 1u32..=7, k in 1u32..=63) {
        let tech = Tech::cmos28();
        for kind in [LutKind::Fflut, LutKind::Hfflut] {
            let a = lut_power(&tech, kind, mu, 16, k);
            let b = lut_power(&tech, kind, mu + 1, 16, k);
            prop_assert!(b.hold_pj_per_cycle > a.hold_pj_per_cycle);
            prop_assert!(b.area_um2 > a.area_um2);
            let c = lut_power(&tech, kind, mu, 16, k + 1);
            prop_assert!(c.hold_pj_per_cycle > a.hold_pj_per_cycle, "fan-out");
            prop_assert!(c.read_pj() > a.read_pj(), "port wiring");
        }
    }

    #[test]
    fn geometry_peak_throughput_invariant(k in 8u32..=64, mu in 2u32..=6) {
        // FIGLUT's peak bit throughput is racs × µ whatever the config.
        let mut spec = EngineSpec::paper(SimEngine::FiglutI, FpFormat::Fp16);
        spec.k = k;
        spec.mu = mu;
        let g = geometry(&spec);
        prop_assert_eq!(g.bit_ops_per_cycle as u64, (128 * k * mu) as u64);
        prop_assert_eq!(g.cells as u64, (128 * k) as u64);
    }

    #[test]
    fn node_scaling_preserves_engine_ordering(node in 4.0f64..28.0, wl in workload()) {
        let tech = Tech::cmos28().scaled_to_node(node);
        let tw = |e| {
            evaluate(&tech, &EngineSpec::paper(e, FpFormat::Fp16), &wl, 4.0).tops_per_w()
        };
        prop_assert!(tw(SimEngine::FiglutI) > tw(SimEngine::Fpe),
            "ordering must survive node scaling at {node} nm");
    }
}
