//! Serving requests and seeded arrival traces.
//!
//! A [`Request`] is one user session: a prompt, a generation budget, a
//! sampling rule, and a per-session seed. A [`Trace`] is a reproducible
//! workload — requests with virtual-clock arrival times — so every
//! throughput or latency number the scheduler reports is measured under a
//! *named*, regenerable load (the "realistic, reproducible workload"
//! requirement benchmarking methodology keeps insisting on).

use figlut_model::rng::Rng;
use figlut_model::ModelConfig;

/// How a session turns next-token logits into a token.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Sampling {
    /// Argmax (ties break toward the lowest token id).
    Greedy,
    /// Softmax sampling at the given temperature, driven by the session's
    /// own seeded RNG — deterministic, and independent of every other
    /// session in the batch.
    Temperature(f64),
}

/// One serving request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Stable identifier (also the tie-breaker for simultaneous arrivals).
    pub id: usize,
    /// Arrival time on the virtual clock (ticks).
    pub arrival: u64,
    /// Prompt token ids (non-empty; first token is conventionally BOS 0).
    pub prompt: Vec<usize>,
    /// Generation budget: the session completes after this many new tokens.
    pub max_new: usize,
    /// Token selection rule.
    pub sampling: Sampling,
    /// Seed of the session's sampling RNG.
    pub seed: u64,
}

/// A reproducible arrival trace: requests sorted by `(arrival, id)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// The requests, in arrival order.
    pub requests: Vec<Request>,
}

impl Trace {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Check the trace against a model: prompts non-empty and in-vocab,
    /// the prompt within `max_seq`, sampling temperatures positive and
    /// finite, arrivals sorted.
    ///
    /// A *budget* exceeding the remaining context is allowed: such a
    /// session is served until the model's position table runs out and then
    /// finishes early
    /// ([`FinishReason::ContextExhausted`](crate::engine::FinishReason)) —
    /// the standard serving behavior at the context limit. (Memory pressure
    /// never finishes a session: the scheduler preempts and restores
    /// instead.) Only prompts that cannot even be prefilled are rejected
    /// (prefill emits the first token, so a fitting prompt always produces
    /// at least one token).
    ///
    /// # Panics
    ///
    /// Panics (with the offending request id) on any violation.
    pub fn validate(&self, cfg: &ModelConfig) {
        let mut last = (0u64, 0usize);
        for r in &self.requests {
            assert!(!r.prompt.is_empty(), "request {}: empty prompt", r.id);
            assert!(r.max_new > 0, "request {}: zero generation budget", r.id);
            if let Sampling::Temperature(t) = r.sampling {
                assert!(
                    t > 0.0 && t.is_finite(),
                    "request {}: temperature {t} must be positive and finite",
                    r.id
                );
            }
            for &t in &r.prompt {
                assert!(t < cfg.vocab, "request {}: token {t} out of vocab", r.id);
            }
            assert!(
                r.prompt.len() <= cfg.max_seq,
                "request {}: prompt of {} exceeds max_seq {}",
                r.id,
                r.prompt.len(),
                cfg.max_seq
            );
            assert!(
                (r.arrival, r.id) >= last,
                "request {}: trace not sorted by (arrival, id)",
                r.id
            );
            last = (r.arrival, r.id);
        }
    }
}

/// Knobs of [`synthetic_trace`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceParams {
    /// Number of requests.
    pub requests: usize,
    /// Mean inter-arrival gap in ticks (exponential; 0 = all at tick 0).
    pub mean_interarrival: f64,
    /// Inclusive prompt-length range (first token is always BOS 0).
    pub prompt_len: (usize, usize),
    /// Inclusive range of the per-request generation budget.
    pub new_tokens: (usize, usize),
    /// Sampling rule shared by every request.
    pub sampling: Sampling,
}

impl TraceParams {
    /// A light open-loop load: a handful of short-prompt requests.
    pub fn light(requests: usize) -> Self {
        Self {
            requests,
            mean_interarrival: 24.0,
            prompt_len: (2, 6),
            new_tokens: (3, 8),
            sampling: Sampling::Greedy,
        }
    }
}

/// Generate a seeded open-loop arrival trace for a model of shape `cfg`.
///
/// Arrival gaps are exponential with mean `mean_interarrival` (the standard
/// open-loop Poisson arrival model), prompt bodies are uniform over the
/// vocabulary, and each request gets a distinct sampling seed derived from
/// `seed` — everything is a pure function of `(cfg, params, seed)`.
///
/// # Panics
///
/// Panics if a range is inverted or the longest request cannot fit in
/// `cfg.max_seq`.
pub fn synthetic_trace(cfg: &ModelConfig, params: &TraceParams, seed: u64) -> Trace {
    let (pmin, pmax) = params.prompt_len;
    let (nmin, nmax) = params.new_tokens;
    assert!(pmin >= 1 && pmin <= pmax, "inverted prompt_len range");
    assert!(nmin >= 1 && nmin <= nmax, "inverted new_tokens range");
    assert!(
        pmax + nmax <= cfg.max_seq,
        "prompt {pmax} + new {nmax} exceeds max_seq {}",
        cfg.max_seq
    );
    let mut rng = Rng::new(seed);
    let mut clock = 0u64;
    let requests = (0..params.requests)
        .map(|id| {
            if id > 0 && params.mean_interarrival > 0.0 {
                let u = rng.uniform();
                clock += (-params.mean_interarrival * (1.0 - u).ln()).ceil() as u64;
            }
            let plen = pmin + rng.below(pmax - pmin + 1);
            let mut prompt = vec![0usize];
            for _ in 1..plen {
                prompt.push(rng.below(cfg.vocab));
            }
            Request {
                id,
                arrival: clock,
                prompt,
                max_new: nmin + rng.below(nmax - nmin + 1),
                sampling: params.sampling,
                seed: seed ^ (0x5e1e_c7ed_u64.wrapping_add(id as u64).wrapping_mul(0x9e37)),
            }
        })
        .collect();
    let trace = Trace { requests };
    trace.validate(cfg);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_trace_is_deterministic_and_valid() {
        let cfg = ModelConfig::tiny();
        let p = TraceParams::light(6);
        let a = synthetic_trace(&cfg, &p, 9);
        let b = synthetic_trace(&cfg, &p, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        let c = synthetic_trace(&cfg, &p, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_sorted_and_spread() {
        let cfg = ModelConfig::tiny();
        let t = synthetic_trace(&cfg, &TraceParams::light(8), 3);
        let arr: Vec<u64> = t.requests.iter().map(|r| r.arrival).collect();
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        assert!(arr.last().unwrap() > &0, "gaps should accumulate");
    }

    #[test]
    fn zero_interarrival_means_burst() {
        let cfg = ModelConfig::tiny();
        let p = TraceParams {
            mean_interarrival: 0.0,
            ..TraceParams::light(4)
        };
        let t = synthetic_trace(&cfg, &p, 1);
        assert!(t.requests.iter().all(|r| r.arrival == 0));
    }

    #[test]
    #[should_panic(expected = "exceeds max_seq")]
    fn oversized_requests_rejected() {
        let cfg = ModelConfig::tiny();
        let p = TraceParams {
            prompt_len: (30, 30),
            new_tokens: (20, 20),
            ..TraceParams::light(1)
        };
        let _ = synthetic_trace(&cfg, &p, 0);
    }

    #[test]
    fn seeds_differ_per_request() {
        let cfg = ModelConfig::tiny();
        let t = synthetic_trace(&cfg, &TraceParams::light(5), 2);
        let mut seeds: Vec<u64> = t.requests.iter().map(|r| r.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 5);
    }
}
